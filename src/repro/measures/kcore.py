"""K-core decomposition (Batagelj–Zaversnik O(m) peeling).

``KC(v)`` — the paper's notation for the largest K such that v belongs
to a K-core (Definition 4).  Used as the vertex scalar field for the
dense-subgraph terrains (Figs 1(a), 6, 7) and, by Proposition 4, every
maximal α-connected component of the KC field is a K-core with K = α.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import accel
from ..accel import traverse as _traverse
from ..graph.csr import CSRGraph
from ..engine.registry import vertex_measure

__all__ = ["core_numbers", "k_core_subgraph", "degeneracy"]

# ``--accel auto``: below this many edges the per-batch numpy scatters
# cost more than the naive bucket walk.
_VECTOR_MIN_EDGES = 2048


def core_numbers(graph: CSRGraph, backend: Optional[str] = None) -> np.ndarray:
    """``KC(v)`` for every vertex, via bucket peeling in O(m).

    Repeatedly removes a minimum-degree vertex; a vertex's core number
    is its degree at removal time (made monotone over the peel).  The
    vector backend peels whole degree levels at a time
    (:func:`repro.accel.traverse.core_numbers_vector`); core numbers
    are peel-order-independent, so both backends return identical
    vectors.
    """
    n = graph.n_vertices
    degree = graph.degree().astype(np.int64)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    chosen = accel.resolve(
        backend, size=graph.n_edges, threshold=_VECTOR_MIN_EDGES
    )
    if chosen == "vector":
        return _traverse.core_numbers_vector(graph.indptr, graph.indices)
    max_deg = int(degree.max())

    # Bucket sort vertices by degree.
    bin_start = np.zeros(max_deg + 2, dtype=np.int64)
    for d in degree:
        bin_start[d + 1] += 1
    bin_start = np.cumsum(bin_start)
    pos = np.empty(n, dtype=np.int64)
    vert = np.empty(n, dtype=np.int64)
    fill = bin_start[:-1].copy()
    for v in range(n):
        pos[v] = fill[degree[v]]
        vert[pos[v]] = v
        fill[degree[v]] += 1

    core = degree.copy()
    bin_ptr = bin_start[:-1].copy()  # start index of each degree bucket
    indptr = graph.indptr.tolist()
    indices = graph.indices.tolist()
    core_list = core.tolist()
    pos_list = pos.tolist()
    vert_list = vert.tolist()
    bin_list = bin_ptr.tolist()

    for i in range(n):
        v = vert_list[i]
        dv = core_list[v]
        for p in range(indptr[v], indptr[v + 1]):
            u = indices[p]
            du = core_list[u]
            if du > dv:
                # Move u to the front of its bucket, then shrink it.
                pu = pos_list[u]
                front = bin_list[du]
                w = vert_list[front]
                if u != w:
                    vert_list[front], vert_list[pu] = u, w
                    pos_list[u], pos_list[w] = front, pu
                bin_list[du] += 1
                core_list[u] = du - 1
    return np.array(core_list, dtype=np.int64)


def k_core_subgraph(graph: CSRGraph, k: int) -> np.ndarray:
    """Vertices of the (maximal) K-core: all v with ``KC(v) >= k``."""
    return np.flatnonzero(core_numbers(graph) >= k)


def degeneracy(graph: CSRGraph) -> int:
    """The graph's degeneracy — the largest K with a non-empty K-core."""
    if graph.n_vertices == 0:
        return 0
    return int(core_numbers(graph).max())


# ----------------------------------------------------------------------
# Registry adapter (repro.engine): KC(v) as a float scalar field.
# ----------------------------------------------------------------------
@vertex_measure(
    "kcore", cost="moderate", replace=True, backend="accel",
    description="K-core number KC(v) (peeling, Table II's field)",
)
def _kcore_field(graph: CSRGraph, backend=None) -> np.ndarray:
    return core_numbers(graph, backend=backend).astype(np.float64)
