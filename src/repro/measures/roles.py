"""Structural role extraction (hub / dense-community / periphery / whisker).

The paper's Fig 9 colours a community terrain by each vertex's *dominant
role*, following the simultaneous communities-and-roles method of Ruan &
Parthasarathy [33] with the four canonical roles of RolX [32].  We
reproduce this with a transparent substitute (see DESIGN.md §3):
per-vertex structural features are z-scored and projected onto four
fixed role prototypes:

* **hub** — exceptionally high degree;
* **dense community member** — high clustering and core number;
* **whisker** — low degree, zero clustering, low-degree neighbours
  (chains hanging off the graph);
* **periphery** — low degree but attached to well-connected vertices.

``role_affinities`` returns the softmax over prototype scores — the
paper's "role affinity vector" — and ``extract_roles`` its argmax.
A seeded k-means implementation is exported as a generic utility (it
also backs other feature-space analyses in the examples).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..graph.csr import CSRGraph
from .kcore import core_numbers
from .triangles import clustering_coefficients

__all__ = [
    "ROLE_NAMES",
    "role_features",
    "kmeans",
    "extract_roles",
    "role_affinities",
]

ROLE_NAMES = ("hub", "dense", "periphery", "whisker")

# Rows: roles in ROLE_NAMES order.  Columns: z-scored features
# [log degree, clustering, log mean-neighbour-degree, core number].
# A vertex is assigned the role of the *nearest* prototype.  Hubs out-degree
# everything but their star neighbourhood is sparse (low clustering); dense
# members sit in high-core cliques; periphery vertices are weak themselves
# yet attach to strong vertices; whiskers are weak vertices among weak ones.
_PROTOTYPES = np.array(
    [
        [1.6, -0.8, -0.2, 1.0],   # hub
        [0.9, 0.3, 0.2, 1.0],     # dense
        [-0.9, 0.2, 0.6, -0.9],   # periphery
        [-1.1, -1.6, -2.4, -1.2], # whisker
    ]
)


def role_features(graph: CSRGraph) -> np.ndarray:
    """Per-vertex structural feature matrix (n, 4), z-scored.

    Columns: log(1+degree), clustering coefficient, log(1+mean neighbour
    degree), core number.
    """
    degree = graph.degree().astype(np.float64)
    cc = clustering_coefficients(graph)
    core = core_numbers(graph).astype(np.float64)
    nbr_deg = np.zeros(graph.n_vertices)
    for v in range(graph.n_vertices):
        nbrs = graph.neighbors(v)
        if len(nbrs):
            nbr_deg[v] = degree[nbrs].mean()
    feats = np.column_stack(
        [np.log1p(degree), cc, np.log1p(nbr_deg), core]
    )
    mean = feats.mean(axis=0)
    std = feats.std(axis=0)
    std[std == 0] = 1.0
    return (feats - mean) / std


def role_affinities(graph: CSRGraph) -> np.ndarray:
    """Soft role-affinity vectors, one row per vertex, rows sum to 1.

    Softmax over negative squared distances between z-scored features
    and the four role prototypes (nearest-prototype classification).
    Deterministic (no randomness involved).
    """
    feats = role_features(graph)
    d2 = ((feats[:, None, :] - _PROTOTYPES[None, :, :]) ** 2).sum(axis=2)
    logits = -d2
    logits -= logits.max(axis=1, keepdims=True)
    soft = np.exp(logits)
    return soft / soft.sum(axis=1, keepdims=True)


def extract_roles(graph: CSRGraph) -> np.ndarray:
    """Dominant role per vertex: 0=hub, 1=dense, 2=periphery, 3=whisker."""
    return role_affinities(graph).argmax(axis=1).astype(np.int64)


def kmeans(
    points: np.ndarray, k: int, max_iter: int = 100, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Plain Lloyd's k-means with k-means++ seeding.

    Returns ``(labels, centroids)``.  Deterministic under ``seed``.
    """
    points = np.asarray(points, dtype=np.float64)
    n = len(points)
    if k > n:
        raise ValueError("k may not exceed the number of points")
    rng = np.random.default_rng(seed)
    centroids = [points[rng.integers(0, n)]]
    for __ in range(k - 1):
        d2 = np.min(
            [np.sum((points - c) ** 2, axis=1) for c in centroids], axis=0
        )
        total = d2.sum()
        if total <= 0:
            centroids.append(points[rng.integers(0, n)])
            continue
        probs = d2 / total
        centroids.append(points[rng.choice(n, p=probs)])
    centroids = np.array(centroids)
    labels = np.zeros(n, dtype=np.int64)
    for iteration in range(max_iter):
        dists = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        new_labels = dists.argmin(axis=1)
        if iteration > 0 and np.array_equal(new_labels, labels):
            break
        labels = new_labels
        for c in range(k):
            mask = labels == c
            if mask.any():
                centroids[c] = points[mask].mean(axis=0)
    return labels, centroids
