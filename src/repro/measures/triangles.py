"""Triangle counting and clustering coefficients.

Edge triangle *support* feeds the K-truss decomposition; vertex triangle
counts and clustering coefficients are used as derived scalar measures
and as role-extraction features.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..engine.registry import edge_measure, vertex_measure

__all__ = [
    "edge_supports",
    "vertex_triangles",
    "total_triangles",
    "clustering_coefficients",
    "average_clustering",
]


def edge_supports(graph: CSRGraph) -> np.ndarray:
    """Number of triangles through each edge (dense edge-id order).

    ``support(u, v) = |N(u) ∩ N(v)|``, computed by merging the two
    sorted neighbour lists.
    """
    pairs = graph.edge_array()
    supports = np.zeros(len(pairs), dtype=np.int64)
    for eid, (u, v) in enumerate(pairs):
        a = graph.neighbors(int(u))
        b = graph.neighbors(int(v))
        if len(a) > len(b):
            a, b = b, a
        # Sorted-merge intersection count.
        supports[eid] = len(np.intersect1d(a, b, assume_unique=True))
    return supports


def vertex_triangles(graph: CSRGraph) -> np.ndarray:
    """Number of triangles incident to each vertex."""
    counts = np.zeros(graph.n_vertices, dtype=np.int64)
    for (u, v), s in zip(graph.edge_array(), edge_supports(graph)):
        counts[u] += s
        counts[v] += s
    # Each triangle at vertex w is counted once per incident edge pair;
    # an edge (u, v) with support s contributes s to u and to v, so each
    # triangle is counted twice at each of its three corners.
    return counts // 2


def total_triangles(graph: CSRGraph) -> int:
    """Total number of triangles in the graph."""
    return int(edge_supports(graph).sum()) // 3


def clustering_coefficients(graph: CSRGraph) -> np.ndarray:
    """Local clustering coefficient per vertex (0 where degree < 2)."""
    tri = vertex_triangles(graph).astype(np.float64)
    deg = graph.degree().astype(np.float64)
    possible = deg * (deg - 1) / 2.0
    with np.errstate(divide="ignore", invalid="ignore"):
        cc = np.where(possible > 0, tri / np.where(possible > 0, possible, 1), 0.0)
    return cc


def average_clustering(graph: CSRGraph) -> float:
    """Mean local clustering coefficient."""
    if graph.n_vertices == 0:
        return 0.0
    return float(clustering_coefficients(graph).mean())


# ----------------------------------------------------------------------
# Registry adapters (repro.engine).
# ----------------------------------------------------------------------
@vertex_measure(
    "clustering", cost="moderate", replace=True,
    description="local clustering coefficient per vertex",
)
def _clustering_field(graph: CSRGraph) -> np.ndarray:
    return clustering_coefficients(graph)


@edge_measure(
    "support", cost="moderate", replace=True,
    description="triangle support sup(e) per edge",
)
def _support_field(graph: CSRGraph) -> np.ndarray:
    return edge_supports(graph).astype(np.float64)
