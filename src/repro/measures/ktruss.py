"""K-truss decomposition (truss peeling).

``KT(e)`` — the largest K such that edge ``e`` belongs to a K-truss, a
subgraph where every edge participates in at least K triangles
(Definition 5; this is the *triangle-count* convention the paper uses,
not the k = support+2 convention of some libraries).  By Proposition 5,
maximal α-edge connected components of the KT field are K-trusses.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import accel
from ..accel import traverse as _traverse
from ..graph.csr import CSRGraph
from ..engine.registry import edge_measure
from .triangles import edge_supports

__all__ = ["truss_numbers", "k_truss_edges", "max_truss"]

# ``--accel auto`` never picks the vector peel here: its per-cascade
# numpy overhead loses to the dict-adjacency peel on the skewed graphs
# this repo targets (measured ~2x slower at 1e5 edges), so the batched
# kernel stays an explicit opt-in (--accel vector / backend="vector").
_AUTO_THRESHOLD = float("inf")


def truss_numbers(graph: CSRGraph, backend: Optional[str] = None) -> np.ndarray:
    """``KT(e)`` per dense edge id, via support peeling.

    Repeatedly removes an edge of minimum remaining support; its truss
    number is its support at removal (made monotone over the peel).
    Removing (u, v) decrements the support of (u, w) and (v, w) for every
    surviving common neighbour w.  The vector backend peels whole
    support levels per batch
    (:func:`repro.accel.traverse.truss_numbers_vector`); truss numbers
    are peel-order-independent, so both backends return identical
    vectors — but note ``auto`` keeps the naive peel (see
    ``_AUTO_THRESHOLD``), so the vector path runs only when forced.
    """
    chosen = accel.resolve(
        backend, size=graph.n_edges, threshold=_AUTO_THRESHOLD
    )
    if chosen == "vector":
        return _traverse.truss_numbers_vector(
            graph.indptr, graph.indices, support=edge_supports(graph)
        )
    pairs = graph.edge_array()
    m = len(pairs)
    support = edge_supports(graph).tolist()
    # adjacency as vertex -> {neighbor: edge_id} for surviving edges.
    adj = [dict() for _ in range(graph.n_vertices)]
    for eid, (u, v) in enumerate(pairs):
        adj[int(u)][int(v)] = eid
        adj[int(v)][int(u)] = eid

    # Bucket queue over supports.
    max_sup = max(support) if m else 0
    buckets = [[] for _ in range(max_sup + 1)]
    for eid, s in enumerate(support):
        buckets[s].append(eid)
    in_bucket = support[:]  # support level at which eid was last queued
    alive = [True] * m
    truss = [0] * m
    peeled = 0
    current = 0
    level = 0  # monotone truss level
    while peeled < m:
        while current <= max_sup and not buckets[current]:
            current += 1
        eid = buckets[current].pop()
        if not alive[eid] or in_bucket[eid] != current:
            continue
        u, v = int(pairs[eid][0]), int(pairs[eid][1])
        level = max(level, support[eid])
        truss[eid] = level
        alive[eid] = False
        peeled += 1
        del adj[u][v]
        del adj[v][u]
        small, big = (adj[u], adj[v]) if len(adj[u]) < len(adj[v]) else (adj[v], adj[u])
        for w, ew in small.items():
            eo = big.get(w)
            if eo is None:
                continue
            for edge in (ew, eo):
                if support[edge] > level:
                    support[edge] -= 1
                    in_bucket[edge] = support[edge]
                    buckets[support[edge]].append(edge)
                    if support[edge] < current:
                        current = support[edge]
    return np.array(truss, dtype=np.int64)


def k_truss_edges(graph: CSRGraph, k: int) -> np.ndarray:
    """Dense edge ids of the (maximal) K-truss: edges with ``KT(e) >= k``."""
    return np.flatnonzero(truss_numbers(graph) >= k)


def max_truss(graph: CSRGraph) -> int:
    """The largest K with a non-empty K-truss."""
    if graph.n_edges == 0:
        return 0
    return int(truss_numbers(graph).max())


# ----------------------------------------------------------------------
# Registry adapter (repro.engine): KT(e) as a float edge scalar field.
# ----------------------------------------------------------------------
@edge_measure(
    "ktruss", cost="expensive", replace=True, backend="accel",
    description="K-truss number KT(e) (support peeling, Algorithm 3 input)",
)
def _ktruss_field(graph: CSRGraph, backend=None) -> np.ndarray:
    return truss_numbers(graph, backend=backend).astype(np.float64)
