"""Centrality measures on CSR graphs.

Degree, closeness, harmonic, PageRank and Brandes betweenness (exact and
sampled-pivot).  Degree and betweenness are the two fields compared in
the paper's §III-C / Fig 10 / user-study Task 3.

The traversal-based measures (closeness, harmonic, betweenness) carry a
``backend`` switch: the naive path is the per-source Python BFS below,
the vector path the frontier-at-a-time kernels of
:mod:`repro.accel.traverse` (identical distances, hence identical
closeness/harmonic values; betweenness agrees to 1e-9).  They also take
an optional ``runner`` — a :class:`repro.serve.workers.StageRunner` —
to shard their source lists across a thread/process pool.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Sequence

import numpy as np

from .. import accel
from ..accel import traverse as _traverse
from ..graph.csr import CSRGraph
from ..engine.registry import vertex_measure

# ``--accel auto``: per-source Python BFS wins only on very small graphs.
_VECTOR_MIN_VERTICES = 256

__all__ = [
    "degree_centrality",
    "closeness_centrality",
    "harmonic_centrality",
    "pagerank",
    "betweenness_centrality",
    "eigenvector_centrality",
]


def degree_centrality(graph: CSRGraph, normalized: bool = True) -> np.ndarray:
    """Degree of each vertex, optionally divided by ``n - 1``."""
    deg = graph.degree().astype(np.float64)
    if normalized and graph.n_vertices > 1:
        deg = deg / (graph.n_vertices - 1)
    return deg


def _bfs_distances(graph: CSRGraph, source: int) -> np.ndarray:
    dist = np.full(graph.n_vertices, -1, dtype=np.int64)
    dist[source] = 0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        for v in graph.neighbors(u):
            if dist[v] < 0:
                dist[v] = du + 1
                queue.append(int(v))
    return dist


def closeness_centrality(
    graph: CSRGraph,
    backend: Optional[str] = None,
    sources: Optional[Sequence[int]] = None,
    runner=None,
) -> np.ndarray:
    """Closeness with the Wasserman–Faust component correction
    (matches networkx): ``((r-1)/(n-1)) * (r-1)/Σd`` where ``r`` is the
    size of v's reachable set.  ``sources`` restricts the computation to
    those vertices (zeros elsewhere); ``runner`` shards sources across a
    :class:`~repro.serve.workers.StageRunner` pool on the vector path.
    """
    n = graph.n_vertices
    chosen = accel.resolve(backend, size=n, threshold=_VECTOR_MIN_VERTICES)
    if chosen == "vector":
        return _traverse.shard_sources(
            _traverse.closeness_values,
            graph.indptr, graph.indices,
            range(n) if sources is None else sources,
            runner=runner,
        )
    out = np.zeros(n)
    for v in range(n) if sources is None else sources:
        dist = _bfs_distances(graph, int(v))
        reach = dist >= 0
        r = int(reach.sum())
        total = int(dist[reach].sum())
        if total > 0 and n > 1:
            out[v] = ((r - 1) / (n - 1)) * ((r - 1) / total)
    return out


def harmonic_centrality(
    graph: CSRGraph,
    backend: Optional[str] = None,
    sources: Optional[Sequence[int]] = None,
    runner=None,
) -> np.ndarray:
    """Harmonic centrality: ``Σ_{u != v} 1 / d(u, v)`` (0 for unreachable).

    ``sources`` restricts the computation to those vertices (zeros
    elsewhere); ``runner`` shards sources across a
    :class:`~repro.serve.workers.StageRunner` pool on the vector path.
    """
    n = graph.n_vertices
    chosen = accel.resolve(backend, size=n, threshold=_VECTOR_MIN_VERTICES)
    if chosen == "vector":
        return _traverse.shard_sources(
            _traverse.harmonic_values,
            graph.indptr, graph.indices,
            range(n) if sources is None else sources,
            runner=runner,
        )
    out = np.zeros(n)
    for v in range(n) if sources is None else sources:
        dist = _bfs_distances(graph, int(v))
        pos = dist > 0
        out[v] = float((1.0 / dist[pos]).sum())
    return out


def pagerank(
    graph: CSRGraph,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iter: int = 200,
) -> np.ndarray:
    """PageRank by power iteration on the undirected adjacency.

    Dangling (isolated) vertices redistribute uniformly.  Returns a
    probability vector (sums to 1).
    """
    n = graph.n_vertices
    if n == 0:
        return np.zeros(0)
    deg = graph.degree().astype(np.float64)
    rank = np.full(n, 1.0 / n)
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
    for __ in range(max_iter):
        contrib = np.where(deg > 0, rank / np.where(deg > 0, deg, 1), 0.0)
        nxt = np.zeros(n)
        np.add.at(nxt, graph.indices, contrib[src])
        dangling = rank[deg == 0].sum()
        nxt = (1 - damping) / n + damping * (nxt + dangling / n)
        if np.abs(nxt - rank).sum() < tol:
            rank = nxt
            break
        rank = nxt
    return rank


def eigenvector_centrality(
    graph: CSRGraph,
    tol: float = 1e-10,
    max_iter: int = 1000,
) -> np.ndarray:
    """Eigenvector centrality by power iteration on the adjacency.

    Iterates the shifted operator ``A + I`` (same eigenvectors, and the
    shift guarantees convergence on bipartite graphs where plain power
    iteration oscillates).  Normalised to unit Euclidean norm
    (networkx's convention).  Raises ``RuntimeError`` if the iteration
    fails to converge.
    """
    n = graph.n_vertices
    if n == 0:
        return np.zeros(0)
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
    x = np.full(n, 1.0 / np.sqrt(n))
    for __ in range(max_iter):
        nxt = x.copy()
        np.add.at(nxt, graph.indices, x[src])
        norm = np.linalg.norm(nxt)
        if norm == 0:
            return x  # edgeless graph: uniform vector is fine
        nxt /= norm
        if np.abs(nxt - x).max() < tol:
            return nxt
        x = nxt
    raise RuntimeError("eigenvector centrality did not converge")


def betweenness_centrality(
    graph: CSRGraph,
    normalized: bool = True,
    samples: Optional[int] = None,
    seed: int = 0,
    backend: Optional[str] = None,
    runner=None,
) -> np.ndarray:
    """Brandes betweenness centrality (unweighted).

    Parameters
    ----------
    normalized:
        Divide by ``(n-1)(n-2)/2`` (the undirected pair count).
    samples:
        If given, accumulate from this many random source pivots and
        scale by ``n / samples`` — the standard unbiased estimator,
        needed to keep the larger stand-in graphs tractable.
    seed:
        Pivot-sampling seed.
    backend:
        Accumulation kernel (see :mod:`repro.accel`); both backends use
        the same pivots, and agree to ~1e-9 (the level-synchronous
        vector pass sums dependencies in a different order).
    runner:
        Optional :class:`~repro.serve.workers.StageRunner` to shard the
        pivots across on the vector path.
    """
    n = graph.n_vertices
    bc = np.zeros(n)
    if n < 3:
        return bc
    if samples is not None and samples < n:
        rng = np.random.default_rng(seed)
        sources = rng.choice(n, size=samples, replace=False)
        scale_samples = n / samples
    else:
        sources = np.arange(n)
        scale_samples = 1.0

    chosen = accel.resolve(backend, size=n, threshold=_VECTOR_MIN_VERTICES)
    if chosen == "vector":
        bc = _traverse.shard_sources(
            _traverse.betweenness_accumulate,
            graph.indptr, graph.indices, sources,
            runner=runner,
        )
        bc *= scale_samples / 2.0  # each undirected pair counted twice
        if normalized:
            bc /= (n - 1) * (n - 2) / 2.0
        return bc

    indptr = graph.indptr.tolist()
    indices = graph.indices.tolist()
    for s in sources.tolist():
        # BFS computing shortest-path counts (sigma) and predecessors.
        dist = [-1] * n
        sigma = [0.0] * n
        preds = [[] for __ in range(n)]
        dist[s] = 0
        sigma[s] = 1.0
        order = [s]
        queue = deque([s])
        while queue:
            u = queue.popleft()
            du = dist[u]
            for p in range(indptr[u], indptr[u + 1]):
                v = indices[p]
                if dist[v] < 0:
                    dist[v] = du + 1
                    queue.append(v)
                    order.append(v)
                if dist[v] == du + 1:
                    sigma[v] += sigma[u]
                    preds[v].append(u)
        # Dependency accumulation in reverse BFS order.
        delta = [0.0] * n
        for v in reversed(order):
            coeff = (1.0 + delta[v]) / sigma[v]
            for u in preds[v]:
                delta[u] += sigma[u] * coeff
            if v != s:
                bc[v] += delta[v]
    bc *= scale_samples / 2.0  # each undirected pair counted twice
    if normalized:
        bc /= (n - 1) * (n - 2) / 2.0
    return bc


# ----------------------------------------------------------------------
# Registry adapters (repro.engine).  Parameter choices match what the
# CLI always used: raw degrees, and sampled-pivot betweenness with a
# fixed seed so repeated builds are cache-identical.
# ----------------------------------------------------------------------
@vertex_measure(
    "degree", cost="cheap", replace=True,
    description="degree (unnormalized)",
)
def _degree_field(graph: CSRGraph) -> np.ndarray:
    return degree_centrality(graph, normalized=False)


@vertex_measure(
    "pagerank", cost="moderate", replace=True,
    description="PageRank (d=0.85)",
)
def _pagerank_field(graph: CSRGraph) -> np.ndarray:
    return pagerank(graph)


@vertex_measure(
    "closeness", cost="expensive", replace=True, backend="accel",
    description="closeness centrality (all-pairs BFS)",
)
def _closeness_field(graph: CSRGraph, backend=None) -> np.ndarray:
    return closeness_centrality(graph, backend=backend)


@vertex_measure(
    "harmonic", cost="expensive", replace=True, backend="accel",
    description="harmonic centrality (all-pairs BFS)",
)
def _harmonic_field(graph: CSRGraph, backend=None) -> np.ndarray:
    return harmonic_centrality(graph, backend=backend)


@vertex_measure(
    "eigenvector", cost="moderate", replace=True,
    description="eigenvector centrality (power iteration)",
)
def _eigenvector_field(graph: CSRGraph) -> np.ndarray:
    return eigenvector_centrality(graph)


@vertex_measure(
    "betweenness", cost="expensive", replace=True, backend="accel",
    description="betweenness centrality (sampled pivots, seed 0)",
)
def _betweenness_field(graph: CSRGraph, backend=None) -> np.ndarray:
    return betweenness_centrality(
        graph, samples=min(256, graph.n_vertices), seed=0, backend=backend
    )
