"""Graph measures: cores, trusses, triangles, centralities, communities, roles."""

from .centrality import (
    betweenness_centrality,
    eigenvector_centrality,
    closeness_centrality,
    degree_centrality,
    harmonic_centrality,
    pagerank,
)
from .community import bigclam, community_scores, label_propagation
from .kcore import core_numbers, degeneracy, k_core_subgraph
from .ktruss import k_truss_edges, max_truss, truss_numbers
from .roles import ROLE_NAMES, extract_roles, kmeans, role_affinities, role_features
from .triangles import (
    average_clustering,
    clustering_coefficients,
    edge_supports,
    total_triangles,
    vertex_triangles,
)

__all__ = [
    "core_numbers",
    "k_core_subgraph",
    "degeneracy",
    "truss_numbers",
    "k_truss_edges",
    "max_truss",
    "edge_supports",
    "vertex_triangles",
    "total_triangles",
    "clustering_coefficients",
    "average_clustering",
    "degree_centrality",
    "closeness_centrality",
    "harmonic_centrality",
    "pagerank",
    "betweenness_centrality",
    "eigenvector_centrality",
    "bigclam",
    "community_scores",
    "label_propagation",
    "ROLE_NAMES",
    "role_features",
    "kmeans",
    "extract_roles",
    "role_affinities",
]
