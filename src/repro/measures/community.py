"""Overlapping community detection (BigCLAM-style NMF).

The paper's community experiments (Figs 1(b), 8) run the Yang–Leskovec
non-negative matrix factorisation detector [14] to obtain a per-vertex
*community score vector* ``(c_0, …, c_{k-1})``; community i is then
visualised with ``c_i`` as the scalar field.  We implement the BigCLAM
objective with projected gradient ascent:

.. math::
    \\ell(F) = \\sum_{(u,v) \\in E} \\log(1 - e^{-F_u \\cdot F_v})
               - \\sum_{(u,v) \\notin E} F_u \\cdot F_v

using the standard trick of maintaining ``Σ_v F_v`` so each row update
is O(deg(u) · k).  A label-propagation detector is included as a fast
non-overlapping helper.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["bigclam", "community_scores", "label_propagation"]

_EPS = 1e-10


def _label_propagation_seed(graph: CSRGraph, k: int, rng: np.random.Generator) -> np.ndarray:
    """Initialise F from label propagation: the k largest propagated
    communities become the initial affiliation columns (BigCLAM's
    locally-minimal-neighbourhood init plays the same warm-start role)."""
    n = graph.n_vertices
    labels = label_propagation(graph, seed=int(rng.integers(0, 2**31)))
    sizes = np.bincount(labels)
    top = np.argsort(-sizes)[:k]
    F = rng.random((n, k)) * 0.05
    for c, lab in enumerate(top):
        F[labels == lab, c] = 1.0
    return F


def _row_objective(fu: np.ndarray, Fn: np.ndarray, rest_sum: np.ndarray) -> float:
    """BigCLAM log-likelihood terms that depend on row ``fu``.

    ``Fn`` holds the neighbour rows, ``rest_sum = Σ_v F_v − fu − Σ Fn``
    (the non-neighbour column sums).
    """
    dots = np.clip(Fn @ fu, _EPS, 50.0)
    edge_term = float(np.log1p(-np.exp(-dots)).sum())
    return edge_term - float(fu @ rest_sum)


def bigclam(
    graph: CSRGraph,
    k: int,
    max_iter: int = 60,
    seed: int = 0,
    tol: float = 1e-4,
    step0: float = 0.1,
    backtracks: int = 12,
) -> np.ndarray:
    """Fit a BigCLAM affiliation matrix ``F`` of shape ``(n, k)``.

    ``F[v, c]`` is vertex v's (non-negative) affiliation strength with
    community c.  Each row is updated by projected gradient ascent with
    backtracking line search on the row log-likelihood (the non-edge
    term is handled with the O(k) column-sum trick, so a row update is
    O(deg(u)·k)).  Iteration stops when the mean absolute row change
    falls below ``tol``.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    n = graph.n_vertices
    rng = np.random.default_rng(seed)
    F = _label_propagation_seed(graph, k, rng)
    col_sum = F.sum(axis=0)
    order = np.arange(n)
    for __ in range(max_iter):
        rng.shuffle(order)
        total_change = 0.0
        for u in order.tolist():
            nbrs = graph.neighbors(u)
            if len(nbrs) == 0:
                continue
            fu = F[u]
            Fn = F[nbrs]
            rest_sum = np.maximum(col_sum - fu - Fn.sum(axis=0), 0.0)
            dots = np.clip(Fn @ fu, _EPS, 50.0)
            expx = np.exp(-dots)
            weights = expx / np.maximum(1.0 - expx, _EPS)
            grad = Fn.T @ weights - rest_sum
            base = _row_objective(fu, Fn, rest_sum)
            step = step0
            new_fu = fu
            for __bt in range(backtracks):
                cand = np.clip(fu + step * grad, 0.0, 1e3)
                if _row_objective(cand, Fn, rest_sum) > base:
                    new_fu = cand
                    break
                step *= 0.5
            col_sum += new_fu - fu
            total_change += float(np.abs(new_fu - fu).sum())
            F[u] = new_fu
        if total_change / max(n, 1) < tol:
            break
    return F


def community_scores(F: np.ndarray) -> np.ndarray:
    """Normalise an affiliation matrix to per-vertex scores in [0, 1].

    Each column is scaled by its maximum so a score of 1 marks the most
    central member of that community — the form the terrain scalar
    fields use.
    """
    F = np.asarray(F, dtype=np.float64)
    peaks = F.max(axis=0)
    return F / np.where(peaks > 0, peaks, 1.0)


def label_propagation(
    graph: CSRGraph, max_iter: int = 50, seed: int = 0
) -> np.ndarray:
    """Asynchronous label propagation: fast hard community ids.

    Each vertex repeatedly adopts the most frequent label among its
    neighbours (ties broken by smallest label) until stable.  Labels are
    compacted to ``0..k-1``.
    """
    n = graph.n_vertices
    rng = np.random.default_rng(seed)
    labels = np.arange(n)
    order = np.arange(n)
    for __ in range(max_iter):
        rng.shuffle(order)
        changed = 0
        for v in order.tolist():
            nbrs = graph.neighbors(v)
            if len(nbrs) == 0:
                continue
            counts: dict = {}
            for lab in labels[nbrs].tolist():
                counts[lab] = counts.get(lab, 0) + 1
            best = max(counts.items(), key=lambda kv: (kv[1], -kv[0]))[0]
            if best != labels[v]:
                labels[v] = best
                changed += 1
        if changed == 0:
            break
    __, compact = np.unique(labels, return_inverse=True)
    return compact
