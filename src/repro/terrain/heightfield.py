"""Rasterize a nested-disc layout into a regular heightfield.

The terrain surface of the paper (Fig 4(c)) is the function that assigns
to every point of the 2D layout the scalar value of the *deepest*
boundary containing it; "walls" between a parent and a child boundary
are the resulting height discontinuities.  A regular-grid sampling of
this function is simple to build (paint discs parents-first), trivially
correct, and feeds both the 3D renderer and image-space analyses
(peak saliency in the user-study simulator).

For serving (:mod:`repro.serve`) a heightfield is additionally sliced
into fixed-size :class:`Tile` blocks and downsampled into coarser
level-of-detail copies: :meth:`Heightfield.downsample` halves the
resolution with peak-preserving 2×2 max-pooling, :meth:`Heightfield.crop`
cuts an axis-aligned sub-grid with a correctly remapped extent, and
:meth:`Tile.to_bytes` / :meth:`Tile.from_bytes` give tiles a compact
binary wire form.
"""

from __future__ import annotations

import json
import struct
from typing import Optional, Tuple

import numpy as np

from .. import accel
from ..accel.raster import forest_depths, stamp_points
from .layout2d import TerrainLayout

__all__ = ["Heightfield", "Tile", "rasterize", "RASTER_ORDER_VERSION"]

_TILE_MAGIC = b"RPTILE1\n"

# Bumped whenever the canonical paint order changes, so persisted
# artifacts derived from a heightfield (LOD tiles) can salt their cache
# keys and never mix grids painted under different orders.  Version 1:
# DFS subtree order; version 2: level-major (deepest boundary always
# wins, full discs before sub-pixel stamps within a level).
RASTER_ORDER_VERSION = 2

# ``--accel auto``: batching tiny-disc stamps needs enough nodes to
# matter.
_VECTOR_MIN_NODES = 256


class Heightfield:
    """Grid sampling of the terrain function.

    Attributes
    ----------
    height:
        ``(res, res)`` float array of terrain heights.  Cells outside
        every root boundary sit at :attr:`base` (just below the minimum
        scalar, so the ground plane reads as "no component").
    node:
        ``(res, res)`` int array — deepest super node id per cell, −1
        outside.
    extent:
        ``(xmin, ymin, xmax, ymax)`` of the layout mapped onto the grid.
    base:
        Ground-plane height.
    """

    __slots__ = ("height", "node", "extent", "base")

    def __init__(
        self,
        height: np.ndarray,
        node: np.ndarray,
        extent: Tuple[float, float, float, float],
        base: float,
    ) -> None:
        self.height = height
        self.node = node
        self.extent = extent
        self.base = base

    @property
    def resolution(self) -> int:
        return self.height.shape[0]

    def grid_to_world(self, i: float, j: float) -> Tuple[float, float]:
        """Map fractional grid coordinates (row i, col j) to layout x, y."""
        xmin, ymin, xmax, ymax = self.extent
        res = self.resolution
        x = xmin + (j + 0.5) / res * (xmax - xmin)
        y = ymin + (i + 0.5) / res * (ymax - ymin)
        return x, y

    def world_to_grid(self, x: float, y: float) -> Tuple[int, int]:
        """Map layout coordinates to the nearest grid cell (row, col)."""
        xmin, ymin, xmax, ymax = self.extent
        res = self.resolution
        j = int((x - xmin) / (xmax - xmin) * res)
        i = int((y - ymin) / (ymax - ymin) * res)
        return min(max(i, 0), res - 1), min(max(j, 0), res - 1)

    def downsample(self) -> "Heightfield":
        """Half-resolution copy via 2×2 max-pooling.

        Each coarse cell takes the *highest* of its four fine cells (and
        that cell's node id), so peaks survive every level of an LOD
        pyramid — a mean would erode exactly the summits the terrain
        metaphor is built to show.  Ties break to the first cell in row-
        major scan order, making the result deterministic.
        """
        res = self.resolution
        if res % 2 != 0 or res < 2:
            raise ValueError(
                f"downsample needs an even resolution, got {res}"
            )
        half = res // 2
        blocks_h = (
            self.height.reshape(half, 2, half, 2)
            .transpose(0, 2, 1, 3)
            .reshape(half, half, 4)
        )
        blocks_n = (
            self.node.reshape(half, 2, half, 2)
            .transpose(0, 2, 1, 3)
            .reshape(half, half, 4)
        )
        pick = blocks_h.argmax(axis=2)[..., None]
        height = np.take_along_axis(blocks_h, pick, axis=2)[..., 0]
        node = np.take_along_axis(blocks_n, pick, axis=2)[..., 0]
        return Heightfield(height, node, self.extent, self.base)

    def crop(self, i0: int, j0: int, rows: int, cols: int) -> "Heightfield":
        """The ``rows × cols`` sub-grid starting at cell ``(i0, j0)``,
        with the extent remapped so world/grid round-trips stay exact.
        """
        res_i, res_j = self.height.shape
        if rows < 1 or cols < 1:
            raise ValueError("crop size must be at least 1x1")
        if i0 < 0 or j0 < 0 or i0 + rows > res_i or j0 + cols > res_j:
            raise ValueError(
                f"crop [{i0}:{i0 + rows}, {j0}:{j0 + cols}] outside "
                f"a {res_i}x{res_j} heightfield"
            )
        xmin, ymin, xmax, ymax = self.extent
        dx = (xmax - xmin) / res_j
        dy = (ymax - ymin) / res_i
        extent = (
            xmin + j0 * dx,
            ymin + i0 * dy,
            xmin + (j0 + cols) * dx,
            ymin + (i0 + rows) * dy,
        )
        return Heightfield(
            self.height[i0: i0 + rows, j0: j0 + cols].copy(),
            self.node[i0: i0 + rows, j0: j0 + cols].copy(),
            extent,
            self.base,
        )


class Tile:
    """One fixed-size block of an LOD level: ``(level, tx, ty)``.

    ``height`` and ``node`` are the block's slices of the level's
    heightfield; ``extent`` is the block's world rectangle and ``base``
    the ground-plane height (both needed to reassemble or hit-test a
    tile on its own).  The wire form (:meth:`to_bytes`) is a small JSON
    header plus the raw little-endian array bytes — compact enough to
    serve directly and stable enough to content-hash for ETags.
    """

    __slots__ = ("level", "tx", "ty", "height", "node", "extent", "base")

    def __init__(
        self,
        level: int,
        tx: int,
        ty: int,
        height: np.ndarray,
        node: np.ndarray,
        extent: Tuple[float, float, float, float],
        base: float,
    ) -> None:
        self.level = int(level)
        self.tx = int(tx)
        self.ty = int(ty)
        self.height = np.ascontiguousarray(height, dtype=np.float64)
        self.node = np.ascontiguousarray(node, dtype=np.int64)
        if self.height.shape != self.node.shape or self.height.ndim != 2:
            raise ValueError("tile height/node must be equal-shape 2D grids")
        self.extent = tuple(float(v) for v in extent)
        self.base = float(base)

    @property
    def size(self) -> int:
        return self.height.shape[0]

    def heightfield(self) -> Heightfield:
        """The tile as a standalone :class:`Heightfield`."""
        return Heightfield(self.height, self.node, self.extent, self.base)

    def to_bytes(self) -> bytes:
        """Binary envelope: magic, header length, JSON header, raw arrays."""
        header = json.dumps(
            {
                "level": self.level,
                "tx": self.tx,
                "ty": self.ty,
                "shape": list(self.height.shape),
                "extent": list(self.extent),
                "base": self.base,
            },
            sort_keys=True,
        ).encode()
        return b"".join(
            (
                _TILE_MAGIC,
                struct.pack("<I", len(header)),
                header,
                self.height.astype("<f8").tobytes(),
                self.node.astype("<i8").tobytes(),
            )
        )

    @classmethod
    def from_bytes(cls, payload: bytes) -> "Tile":
        """Inverse of :meth:`to_bytes`."""
        magic_len = len(_TILE_MAGIC)
        if payload[:magic_len] != _TILE_MAGIC:
            raise ValueError("not a repro tile payload (bad magic)")
        (header_len,) = struct.unpack_from("<I", payload, magic_len)
        body = magic_len + 4
        doc = json.loads(payload[body: body + header_len].decode())
        rows, cols = doc["shape"]
        cells = rows * cols
        data = body + header_len
        expect = data + cells * 16
        if len(payload) != expect:
            raise ValueError(
                f"truncated tile payload: {len(payload)} bytes, "
                f"expected {expect}"
            )
        height = np.frombuffer(
            payload, dtype="<f8", count=cells, offset=data
        ).reshape(rows, cols)
        node = np.frombuffer(
            payload, dtype="<i8", count=cells, offset=data + cells * 8
        ).reshape(rows, cols)
        return cls(
            doc["level"], doc["tx"], doc["ty"],
            height, node, tuple(doc["extent"]), doc["base"],
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, Tile):
            return NotImplemented
        return (
            (self.level, self.tx, self.ty) == (other.level, other.tx, other.ty)
            and self.extent == other.extent
            and self.base == other.base
            and np.array_equal(self.height, other.height)
            and np.array_equal(self.node, other.node)
        )

    def __repr__(self) -> str:
        return (
            f"Tile(level={self.level}, tx={self.tx}, ty={self.ty}, "
            f"size={self.size})"
        )


def _paint_disc(height, node, xs, ys, cx, cy, j_lo, j_hi, i_lo, i_hi, r, h, nid):
    """Overwrite one disc's cells (shared by both rasterize backends)."""
    sub_x = xs[j_lo:j_hi] - cx
    sub_y = ys[i_lo:i_hi] - cy
    mask = (sub_x[None, :] ** 2 + sub_y[:, None] ** 2) <= r * r
    height[i_lo:i_hi, j_lo:j_hi][mask] = h
    node[i_lo:i_hi, j_lo:j_hi][mask] = nid


def rasterize(
    layout: TerrainLayout,
    resolution: int = 160,
    backend: Optional[str] = None,
) -> Heightfield:
    """Paint the layout's discs in level-major order.

    Discs paint one tree level at a time, shallowest first, so a deeper
    boundary always paints after (and therefore over) a shallower one —
    each cell ends at the *deepest* containing boundary, exactly the
    terrain function, even where discs from different subtrees overlap.
    Within a level, full discs paint in ascending node id, then the
    level's sub-pixel discs stamp their nearest cell (conditioned on
    the standing height, so tiny leaves register without burying a
    taller stamp).  O(nodes × disc pixels), vectorised per disc; the
    vector backend (:mod:`repro.accel.raster`) additionally batches a
    level's sub-pixel stamps — typically the *bulk* of a real tree's
    nodes — into one sort-and-scatter.  Both backends produce
    byte-identical grids.
    """
    if resolution < 4:
        raise ValueError("resolution must be >= 4")
    tree = layout.tree
    xmin, ymin, xmax, ymax = layout.extent
    span_x = xmax - xmin
    span_y = ymax - ymin
    res = resolution
    scalars = tree.scalars
    spread = float(scalars.max() - scalars.min())
    base = float(scalars.min()) - (0.05 * spread if spread > 0 else 1.0)
    height = np.full((res, res), base)
    node = np.full((res, res), -1, dtype=np.int64)

    # Cell-centre coordinate axes.
    xs = xmin + (np.arange(res) + 0.5) / res * span_x
    ys = ymin + (np.arange(res) + 0.5) / res * span_y

    # Canonical paint order: by depth, then node id.
    depth = forest_depths(tree.parent)
    order = np.lexsort((np.arange(tree.n_nodes), depth))
    level_starts = np.searchsorted(depth[order], np.arange(depth.max() + 2))

    chosen = accel.resolve(
        backend, size=tree.n_nodes, threshold=_VECTOR_MIN_NODES
    )
    if chosen == "vector":
        cxs, cys, rs = layout.cx, layout.cy, layout.r
        j_lo = np.searchsorted(xs, cxs - rs)
        j_hi = np.searchsorted(xs, cxs + rs)
        i_lo = np.searchsorted(ys, cys - rs)
        i_hi = np.searchsorted(ys, cys + rs)
        tiny = (j_lo >= j_hi) | (i_lo >= i_hi)
        # Sub-pixel stamp cells, truncated toward zero then clamped
        # exactly like the naive int()+clip.
        t_i = np.clip(((cys - ymin) / span_y * res).astype(np.int64), 0, res - 1)
        t_j = np.clip(((cxs - xmin) / span_x * res).astype(np.int64), 0, res - 1)
        for lo, hi in zip(level_starts[:-1], level_starts[1:]):
            nodes = order[lo:hi]
            for nid in nodes[~tiny[nodes]].tolist():
                _paint_disc(
                    height, node, xs, ys, cxs[nid], cys[nid],
                    int(j_lo[nid]), int(j_hi[nid]),
                    int(i_lo[nid]), int(i_hi[nid]),
                    rs[nid], scalars[nid], nid,
                )
            points = nodes[tiny[nodes]]
            stamp_points(
                height, node, t_i[points], t_j[points], points,
                scalars[points],
            )
        return Heightfield(height, node, layout.extent, base)

    for lo, hi in zip(level_starts[:-1], level_starts[1:]):
        deferred = []
        for nid in order[lo:hi].tolist():
            cx, cy, r = layout.cx[nid], layout.cy[nid], layout.r[nid]
            j_lo = int(np.searchsorted(xs, cx - r))
            j_hi = int(np.searchsorted(xs, cx + r))
            i_lo = int(np.searchsorted(ys, cy - r))
            i_hi = int(np.searchsorted(ys, cy + r))
            if j_lo >= j_hi or i_lo >= i_hi:
                # Sub-pixel disc: stamp its nearest cell (after the
                # level's full discs) so tiny leaves still register
                # (the paper draws them as points).
                deferred.append(nid)
                continue
            _paint_disc(
                height, node, xs, ys, cx, cy,
                j_lo, j_hi, i_lo, i_hi, r, scalars[nid], nid,
            )
        for nid in deferred:
            cx, cy = layout.cx[nid], layout.cy[nid]
            i, j = np.clip(
                [int((cy - ymin) / span_y * res), int((cx - xmin) / span_x * res)],
                0,
                res - 1,
            )
            if scalars[nid] >= height[i, j]:
                height[i, j] = scalars[nid]
                node[i, j] = nid
    return Heightfield(height, node, layout.extent, base)
