"""Rasterize a nested-disc layout into a regular heightfield.

The terrain surface of the paper (Fig 4(c)) is the function that assigns
to every point of the 2D layout the scalar value of the *deepest*
boundary containing it; "walls" between a parent and a child boundary
are the resulting height discontinuities.  A regular-grid sampling of
this function is simple to build (paint discs parents-first), trivially
correct, and feeds both the 3D renderer and image-space analyses
(peak saliency in the user-study simulator).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .layout2d import TerrainLayout

__all__ = ["Heightfield", "rasterize"]


class Heightfield:
    """Grid sampling of the terrain function.

    Attributes
    ----------
    height:
        ``(res, res)`` float array of terrain heights.  Cells outside
        every root boundary sit at :attr:`base` (just below the minimum
        scalar, so the ground plane reads as "no component").
    node:
        ``(res, res)`` int array — deepest super node id per cell, −1
        outside.
    extent:
        ``(xmin, ymin, xmax, ymax)`` of the layout mapped onto the grid.
    base:
        Ground-plane height.
    """

    __slots__ = ("height", "node", "extent", "base")

    def __init__(
        self,
        height: np.ndarray,
        node: np.ndarray,
        extent: Tuple[float, float, float, float],
        base: float,
    ) -> None:
        self.height = height
        self.node = node
        self.extent = extent
        self.base = base

    @property
    def resolution(self) -> int:
        return self.height.shape[0]

    def grid_to_world(self, i: float, j: float) -> Tuple[float, float]:
        """Map fractional grid coordinates (row i, col j) to layout x, y."""
        xmin, ymin, xmax, ymax = self.extent
        res = self.resolution
        x = xmin + (j + 0.5) / res * (xmax - xmin)
        y = ymin + (i + 0.5) / res * (ymax - ymin)
        return x, y

    def world_to_grid(self, x: float, y: float) -> Tuple[int, int]:
        """Map layout coordinates to the nearest grid cell (row, col)."""
        xmin, ymin, xmax, ymax = self.extent
        res = self.resolution
        j = int((x - xmin) / (xmax - xmin) * res)
        i = int((y - ymin) / (ymax - ymin) * res)
        return min(max(i, 0), res - 1), min(max(j, 0), res - 1)


def rasterize(layout: TerrainLayout, resolution: int = 160) -> Heightfield:
    """Paint the layout's discs, parents before children.

    Children overwrite their parents, so each cell ends at the deepest
    containing boundary — exactly the terrain function.  O(nodes × disc
    pixels), vectorised per disc.
    """
    if resolution < 4:
        raise ValueError("resolution must be >= 4")
    tree = layout.tree
    xmin, ymin, xmax, ymax = layout.extent
    span_x = xmax - xmin
    span_y = ymax - ymin
    res = resolution
    scalars = tree.scalars
    spread = float(scalars.max() - scalars.min())
    base = float(scalars.min()) - (0.05 * spread if spread > 0 else 1.0)
    height = np.full((res, res), base)
    node = np.full((res, res), -1, dtype=np.int64)

    # Cell-centre coordinate axes.
    xs = xmin + (np.arange(res) + 0.5) / res * span_x
    ys = ymin + (np.arange(res) + 0.5) / res * span_y

    order = []
    stack = list(tree.roots)
    while stack:
        cur = stack.pop()
        order.append(cur)
        stack.extend(tree.children(cur))

    for nid in order:
        cx, cy, r = layout.cx[nid], layout.cy[nid], layout.r[nid]
        j_lo = int(np.searchsorted(xs, cx - r))
        j_hi = int(np.searchsorted(xs, cx + r))
        i_lo = int(np.searchsorted(ys, cy - r))
        i_hi = int(np.searchsorted(ys, cy + r))
        if j_lo >= j_hi or i_lo >= i_hi:
            # Sub-pixel disc: stamp its nearest cell so tiny leaves
            # still register (the paper draws them as points).
            i, j = np.clip(
                [int((cy - ymin) / span_y * res), int((cx - xmin) / span_x * res)],
                0,
                res - 1,
            )
            if scalars[nid] >= height[i, j]:
                height[i, j] = scalars[nid]
                node[i, j] = nid
            continue
        sub_x = xs[j_lo:j_hi] - cx
        sub_y = ys[i_lo:i_hi] - cy
        mask = (sub_x[None, :] ** 2 + sub_y[:, None] ** 2) <= r * r
        block_h = height[i_lo:i_hi, j_lo:j_hi]
        block_n = node[i_lo:i_hi, j_lo:j_hi]
        block_h[mask] = scalars[nid]
        block_n[mask] = nid
    return Heightfield(height, node, layout.extent, base)
