"""Terrain-metaphor visualization of scalar trees."""

from .camera import Camera
from .colormap import (
    intensity_ramp,
    quartile_colors,
    rgb_to_hex,
    role_colors,
)
from .heightfield import Heightfield, Tile, rasterize
from .layout2d import TerrainLayout, layout_tree
from .mesh import TerrainMesh, build_mesh
from .export import export_obj, export_svg3d, orbit_frames
from .profile import profile_intervals, profile_svg
from .peaks import LinkedSelection, Peak, highest_peaks, peaks_at, select_region
from .render import (
    node_colors_categorical,
    node_colors_from_item_values,
    render_mesh,
    render_terrain,
    save_png,
    save_ppm,
)
from .svg import SVGCanvas
from .treemap import treemap_svg

__all__ = [
    "Camera",
    "TerrainLayout",
    "layout_tree",
    "Heightfield",
    "Tile",
    "rasterize",
    "TerrainMesh",
    "build_mesh",
    "render_mesh",
    "render_terrain",
    "node_colors_from_item_values",
    "node_colors_categorical",
    "save_png",
    "save_ppm",
    "Peak",
    "peaks_at",
    "highest_peaks",
    "select_region",
    "LinkedSelection",
    "treemap_svg",
    "profile_svg",
    "profile_intervals",
    "export_obj",
    "export_svg3d",
    "orbit_frames",
    "SVGCanvas",
    "intensity_ramp",
    "quartile_colors",
    "role_colors",
    "rgb_to_hex",
]
