"""Linked 2D treemap display (paper Fig 5(a)).

The treemap is the terrain with every boundary dropped to height 0:
nested circles coloured by value quartile (red = highest, then yellow,
green, blue).  It shows at a glance *where* high-value regions sit in
the layout — the paper links it beside the 3D view — at the cost of
losing fine height differences (Fig 5's peak-1 vs peak-2 discussion).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..core.super_tree import SuperTree
from .colormap import quartile_colors
from .layout2d import TerrainLayout, layout_tree
from .svg import SVGCanvas

__all__ = ["treemap_svg"]


def treemap_svg(
    tree: SuperTree,
    layout: Optional[TerrainLayout] = None,
    size: int = 640,
    path: Optional[Union[str, Path]] = None,
) -> str:
    """Render the nested-boundary treemap as an SVG string.

    Boundaries are drawn root-first; each is filled with the quartile
    colour of its node's scalar value.  If ``path`` is given the SVG is
    also written there.
    """
    layout = layout or layout_tree(tree)
    xmin, ymin, xmax, ymax = layout.extent
    span = max(xmax - xmin, ymax - ymin)
    scale = size / span

    def sx(x: float) -> float:
        return (x - xmin) * scale

    def sy(y: float) -> float:
        return (y - ymin) * scale

    colors = quartile_colors(tree.scalars)
    canvas = SVGCanvas(size, size)
    stack = list(tree.roots)
    order = []
    while stack:
        node = stack.pop()
        order.append(node)
        stack.extend(tree.children(node))
    for node in order:
        canvas.circle(
            sx(layout.cx[node]),
            sy(layout.cy[node]),
            layout.r[node] * scale,
            fill=tuple(colors[node]),
            stroke=(0.25, 0.25, 0.25),
            stroke_width=0.6,
            opacity=1.0,
        )
    svg = canvas.to_string()
    if path is not None:
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(svg)
    return svg
