"""Triangle-mesh generation from a heightfield.

Turns the grid sampling of the terrain function into renderable
geometry: one vertex per grid cell centre, two triangles per grid quad.
Face colours come from a per-super-node colour table (intensity of the
primary measure by default, or any second measure / nominal attribute,
as in the paper's multi-field colouring).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .heightfield import Heightfield

__all__ = ["TerrainMesh", "build_mesh"]


@dataclass
class TerrainMesh:
    """Indexed triangle mesh with per-face colours.

    Attributes
    ----------
    vertices:
        ``(n, 3)`` world-space positions (x, y in [−1, 1] footprint,
        z = scaled height).
    faces:
        ``(m, 3)`` vertex indices.
    face_colors:
        ``(m, 3)`` RGB floats in [0, 1].
    face_nodes:
        ``(m,)`` super-node id that coloured each face (−1 = ground).
    """

    vertices: np.ndarray
    faces: np.ndarray
    face_colors: np.ndarray
    face_nodes: np.ndarray

    @property
    def n_faces(self) -> int:
        return len(self.faces)


def build_mesh(
    hf: Heightfield,
    node_colors: Optional[np.ndarray] = None,
    z_scale: float = 0.55,
    ground_color=(0.82, 0.80, 0.76),
) -> TerrainMesh:
    """Build a renderable mesh from a heightfield.

    Parameters
    ----------
    hf:
        The rasterized terrain.
    node_colors:
        ``(n_super_nodes, 3)`` RGB table; faces take the colour of the
        highest-corner cell's node.  Default: warm grey ground and a
        height-based intensity ramp is the caller's job (pass colours).
    z_scale:
        Height of the tallest peak in world units (footprint is 2×2).
    ground_color:
        Colour of cells outside every boundary.
    """
    height = hf.height
    node = hf.node
    res = hf.resolution
    lo = float(height.min())
    hi = float(height.max())
    span = hi - lo if hi > lo else 1.0

    # Vertex grid in world space: footprint [-1, 1] x [-1, 1].
    ij = np.linspace(-1.0, 1.0, res)
    xv, yv = np.meshgrid(ij, ij)
    zv = (height - lo) / span * z_scale
    vertices = np.column_stack([xv.ravel(), -yv.ravel(), zv.ravel()])

    # Two triangles per quad.
    idx = np.arange(res * res).reshape(res, res)
    a = idx[:-1, :-1].ravel()
    b = idx[:-1, 1:].ravel()
    c = idx[1:, :-1].ravel()
    d = idx[1:, 1:].ravel()
    faces = np.concatenate(
        [np.column_stack([a, b, c]), np.column_stack([b, d, c])]
    )

    # Face node: the corner cell with maximum height wins, so walls take
    # the colour of the boundary they belong to (paper §II-E footnote).
    cells = np.stack([a, b, c, d])  # flattened cell ids per quad
    quad_heights = height.ravel()[cells]
    winner = cells[quad_heights.argmax(axis=0), np.arange(len(a))]
    quad_nodes = node.ravel()[winner]
    face_nodes = np.concatenate([quad_nodes, quad_nodes])

    ground = np.asarray(ground_color, dtype=np.float64)
    if node_colors is None:
        n_nodes = int(node.max()) + 1 if node.max() >= 0 else 0
        node_colors = np.tile(
            np.array([0.45, 0.55, 0.50]), (max(n_nodes, 1), 1)
        )
    face_colors = np.empty((len(face_nodes), 3))
    outside = face_nodes < 0
    face_colors[outside] = ground
    face_colors[~outside] = node_colors[face_nodes[~outside]]
    return TerrainMesh(vertices, faces, face_colors, face_nodes)
