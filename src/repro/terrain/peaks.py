"""Peak queries and region selection (paper Definition 6, §II-E).

A *peak_α* is the terrain area within a boundary whose height is α; it
corresponds one-to-one to a maximal α-connected component.  This module
exposes the interaction layer of the paper's tool:

* :func:`peaks_at` — cut the terrain with the plane ``height = α`` and
  enumerate the resulting peaks;
* :func:`highest_peaks` — the most prominent peaks (used to drill into
  the densest K-core / K-truss, Figs 7(e)/(f));
* :func:`select_region` — map a 2D layout point to the peak under it
  (the "click on the terrain" primitive);
* :class:`LinkedSelection` — the "callback" bridge: hand the selected
  component's items to any other visualization (e.g. a spring layout).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import math

import numpy as np

from ..core.super_tree import SuperTree
from .layout2d import TerrainLayout

__all__ = ["Peak", "peaks_at", "highest_peaks", "select_region", "LinkedSelection"]


@dataclass(frozen=True)
class Peak:
    """One terrain peak = one maximal α-connected component.

    Attributes
    ----------
    node:
        Super node whose boundary forms the peak's base.
    alpha:
        Height of the base boundary (the peak is a *peak_alpha*).
    summit:
        Maximum scalar inside the peak.
    items:
        Graph items (vertices or edges) of the component.
    base_area:
        Area of the base boundary — ∝ component size in the layout.
    """

    node: int
    alpha: float
    summit: float
    items: np.ndarray
    base_area: float

    @property
    def size(self) -> int:
        """Number of items in the component."""
        return len(self.items)

    @property
    def prominence(self) -> float:
        """Height of the peak above its own base."""
        return self.summit - self.alpha


def _make_peak(tree: SuperTree, layout: Optional[TerrainLayout], node: int, alpha: float) -> Peak:
    items = tree.subtree_items(node)
    sub = tree.subtree_sizes()
    # Summit: max scalar within subtree = scalar of deepest descendant.
    stack = [node]
    summit = float(tree.scalars[node])
    while stack:
        cur = stack.pop()
        summit = max(summit, float(tree.scalars[cur]))
        stack.extend(tree.children(cur))
    if layout is not None:
        area = layout.boundary_area(node)
    else:
        area = float(sub[node])
    return Peak(node=node, alpha=alpha, summit=summit, items=items, base_area=area)


def peaks_at(
    tree: SuperTree,
    alpha: float,
    layout: Optional[TerrainLayout] = None,
) -> List[Peak]:
    """All peaks cut by the plane ``height = alpha``.

    Each returned peak corresponds to one maximal α-connected component
    (Property 2); peaks are sorted by descending size.
    """
    peaks = [
        _make_peak(tree, layout, node, alpha)
        for node in tree.component_roots_at(alpha)
    ]
    peaks.sort(key=lambda p: (-p.size, p.node))
    return peaks


def highest_peaks(
    tree: SuperTree,
    count: int = 1,
    layout: Optional[TerrainLayout] = None,
) -> List[Peak]:
    """The ``count`` highest disjoint-and-disconnected peaks.

    The first peak is the subtree of the highest-scalar super node —
    on a KC field, the densest K-core (user-study Task 1).  Each
    further peak is the subtree of the highest-scalar super node that
    is neither an ancestor nor a descendant of any node already chosen,
    so its component shares no items with, and is disconnected at its
    own level from, the previous picks (Task 2's "densest K-core not
    connected to the densest").
    """
    order = sorted(
        range(tree.n_nodes), key=lambda n: (-float(tree.scalars[n]), n)
    )
    chosen: List[Peak] = []
    excluded: set = set()
    for node in order:
        if len(chosen) >= count:
            break
        if node in excluded:
            continue
        peak = _make_peak(tree, layout, node, float(tree.scalars[node]))
        chosen.append(peak)
        # Exclude the whole mountain: ancestors and descendants.
        anc = node
        while anc >= 0:
            excluded.add(int(anc))
            anc = int(tree.parent[anc])
        excluded.update(int(x) for x in tree.subtree_node_ids(node))
    return chosen


def select_region(
    tree: SuperTree, layout: TerrainLayout, x: float, y: float
) -> Optional[Peak]:
    """Peak under the layout point ``(x, y)``, or None on open ground."""
    node = layout.node_at(x, y)
    if node is None:
        return None
    return _make_peak(tree, layout, node, float(tree.scalars[node]))


class LinkedSelection:
    """The paper's linked-2D-display "callback" hook.

    Register any number of callbacks taking ``(peak, items)``; selecting
    a terrain region invokes them all — e.g. to draw the selected
    component with a spring layout next to the terrain (Fig 6(c)).
    """

    def __init__(self, tree: SuperTree, layout: TerrainLayout) -> None:
        self._tree = tree
        self._layout = layout
        self._callbacks: List[Callable[[Peak, np.ndarray], None]] = []

    def register(self, callback: Callable[[Peak, np.ndarray], None]) -> None:
        """Add a callback fired on every selection."""
        self._callbacks.append(callback)

    def select(self, x: float, y: float) -> Optional[Peak]:
        """Select the peak at layout coordinates and fire callbacks."""
        peak = select_region(self._tree, self._layout, x, y)
        if peak is not None:
            for callback in self._callbacks:
                callback(peak, peak.items)
        return peak
