"""Mesh export and turntable rendering.

Rounds out the headless toolchain:

* :func:`export_obj` — write the terrain mesh as Wavefront OBJ (with
  per-face material colours in a sidecar MTL), so the terrain opens in
  any 3D package;
* :func:`export_svg3d` — vector 3D render via painter's-algorithm
  depth sorting (resolution-independent figures for papers);
* :func:`orbit_frames` — a deterministic turntable: N renders on an
  azimuth sweep, standing in for the paper's interactive rotation.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from .camera import Camera
from .colormap import rgb_to_hex
from .mesh import TerrainMesh
from .render import render_mesh, save_png
from .svg import SVGCanvas

__all__ = ["export_obj", "export_svg3d", "orbit_frames"]

PathLike = Union[str, Path]


def export_obj(mesh: TerrainMesh, path: PathLike) -> Path:
    """Write ``mesh`` as Wavefront OBJ + MTL.

    One material per distinct face colour; faces are grouped by
    material so the files stay compact.  Returns the OBJ path.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    mtl_path = path.with_suffix(".mtl")

    colors = np.round(mesh.face_colors, 4)
    uniq, inverse = np.unique(colors, axis=0, return_inverse=True)

    with open(mtl_path, "w") as mtl:
        for i, (r, g, b) in enumerate(uniq):
            mtl.write(f"newmtl terrain_{i}\n")
            mtl.write(f"Kd {r:.4f} {g:.4f} {b:.4f}\n")

    with open(path, "w") as obj:
        obj.write(f"mtllib {mtl_path.name}\n")
        for x, y, z in mesh.vertices:
            obj.write(f"v {x:.6f} {y:.6f} {z:.6f}\n")
        for material in range(len(uniq)):
            obj.write(f"usemtl terrain_{material}\n")
            for face in mesh.faces[inverse == material]:
                a, b, c = (int(v) + 1 for v in face)  # OBJ is 1-based
                obj.write(f"f {a} {b} {c}\n")
    return path


def export_svg3d(
    mesh: TerrainMesh,
    camera: Optional[Camera] = None,
    width: int = 640,
    height: int = 480,
    ambient: float = 0.45,
    path: Optional[PathLike] = None,
) -> str:
    """Vector 3D render: project, depth-sort, draw back-to-front.

    The painter's algorithm is exact for a heightfield viewed from
    above the ground plane, and yields resolution-independent figures.
    Large meshes produce large files — simplify the tree first.
    """
    camera = camera or Camera()
    xy, depth = camera.project(mesh.vertices, width, height)
    tri = mesh.vertices[mesh.faces]
    normals = np.cross(tri[:, 1] - tri[:, 0], tri[:, 2] - tri[:, 0])
    norms = np.linalg.norm(normals, axis=1, keepdims=True)
    normals = normals / np.where(norms > 1e-12, norms, 1.0)
    normals[normals[:, 2] < 0] *= -1
    light = np.array([0.35, -0.5, 0.85])
    light /= np.linalg.norm(light)
    shade = ambient + (1 - ambient) * np.clip(normals @ light, 0, 1)
    colors = np.clip(mesh.face_colors * shade[:, None], 0, 1)

    face_depth = depth[mesh.faces].mean(axis=1)
    order = np.argsort(-face_depth)  # farthest first

    canvas = SVGCanvas(width, height)
    for f in order:
        zs = depth[mesh.faces[f]]
        if (zs <= 0).any():
            continue
        points = [(float(x), float(y)) for x, y in xy[mesh.faces[f]]]
        canvas.polygon(points, fill=tuple(colors[f]), stroke=None)
    svg = canvas.to_string()
    if path is not None:
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(svg)
    return svg


def orbit_frames(
    mesh: TerrainMesh,
    n_frames: int = 8,
    camera: Optional[Camera] = None,
    width: int = 320,
    height: int = 240,
    directory: Optional[PathLike] = None,
) -> List[np.ndarray]:
    """Render a full 360° azimuth sweep (the rotate interaction).

    Returns the frames; if ``directory`` is given, also writes
    ``frame_000.png`` … so they can be assembled into an animation.
    """
    if n_frames < 1:
        raise ValueError("n_frames must be >= 1")
    camera = camera or Camera()
    frames = []
    for i in range(n_frames):
        view = camera.rotated(d_azimuth=360.0 * i / n_frames)
        image = render_mesh(mesh, camera=view, width=width, height=height)
        frames.append(image)
        if directory is not None:
            save_png(image, Path(directory) / f"frame_{i:03d}.png")
    return frames
