"""Nested-disc 2D layout of a super tree (paper Fig 4(b)).

Every super node becomes a circular *boundary* in the plane; a child's
disc lies strictly inside its parent's, and the enclosed area is
proportional to the number of graph items in the subtree below the node
(leaves degenerate to near-points, exactly as in the paper).  Sibling
subtrees share their parent's disc via weight-proportional sectors plus
a deterministic overlap-relaxation pass.

The layout is the single geometric source of truth: the heightfield
rasterizer, the treemap, peak selection, and region picking all consume
a :class:`TerrainLayout`.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from .. import accel
from ..accel.geometry import relax_siblings_naive, relax_siblings_vector
from ..core.super_tree import SuperTree

__all__ = ["TerrainLayout", "layout_tree"]

# ``--accel auto``: the k×k broadcast only pays off once a sibling group
# is big enough to amortize the array setup.
_VECTOR_MIN_SIBLINGS = 8


class TerrainLayout:
    """Disc per super node: centres ``cx, cy``, radii ``r``.

    Produced by :func:`layout_tree`.  Coordinates live in an abstract
    plane with the overall bounding square given by :attr:`extent` =
    ``(xmin, ymin, xmax, ymax)``.
    """

    __slots__ = ("tree", "cx", "cy", "r", "extent")

    def __init__(
        self,
        tree: SuperTree,
        cx: np.ndarray,
        cy: np.ndarray,
        r: np.ndarray,
    ) -> None:
        self.tree = tree
        self.cx = np.asarray(cx, dtype=np.float64)
        self.cy = np.asarray(cy, dtype=np.float64)
        self.r = np.asarray(r, dtype=np.float64)
        roots = np.asarray(tree.roots, dtype=np.int64)
        xmin = float((self.cx[roots] - self.r[roots]).min())
        xmax = float((self.cx[roots] + self.r[roots]).max())
        ymin = float((self.cy[roots] - self.r[roots]).min())
        ymax = float((self.cy[roots] + self.r[roots]).max())
        margin = 0.03 * max(xmax - xmin, ymax - ymin, 1e-9)
        self.extent = (
            xmin - margin,
            ymin - margin,
            xmax + margin,
            ymax + margin,
        )

    def node_at(self, x: float, y: float) -> Optional[int]:
        """Deepest super node whose boundary contains the point.

        Returns ``None`` when the point lies outside every root disc.
        This is the "select a region of the terrain" primitive of the
        paper's linked-2D-display interaction.
        """
        tree = self.tree
        current = None
        candidates = tree.roots
        while True:
            hit = None
            for node in candidates:
                dx = x - self.cx[node]
                dy = y - self.cy[node]
                if dx * dx + dy * dy <= self.r[node] ** 2:
                    hit = node
                    break
            if hit is None:
                return current
            current = hit
            candidates = tree.children(hit)

    def contains(self, node: int, x: float, y: float) -> bool:
        """Whether the disc of ``node`` contains the point."""
        dx = x - self.cx[node]
        dy = y - self.cy[node]
        return bool(dx * dx + dy * dy <= self.r[node] ** 2)

    def boundary_area(self, node: int) -> float:
        """Area enclosed by the node's boundary (∝ component size)."""
        return float(math.pi * self.r[node] ** 2)


def _place_children(
    cx: float,
    cy: float,
    radius: float,
    weights: np.ndarray,
    parent_weight: float,
    inner: float,
    fill: float,
    relax_iters: int,
    backend: Optional[str] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Place child discs inside a parent disc.

    Child areas are proportional to their subtree weight *relative to
    the parent's* (the paper's area rule) — so a chain of single-member
    nodes shrinks only marginally per level and deep hierarchies keep
    their summit area.  Children are seeded at weight-proportional
    sector angles, then relaxed apart to remove sibling overlap with
    the accumulate-then-apply sweep of :mod:`repro.accel.geometry`
    (both backends of which are bit-identical).
    """
    k = len(weights)
    available = radius * inner
    parent_weight = max(parent_weight, float(weights.sum()), 1e-9)
    if k == 1:
        # Area-proportional, capped only to keep a hairline wall visible.
        ratio = math.sqrt(float(weights[0]) / parent_weight)
        return (
            np.array([cx]),
            np.array([cy]),
            np.array([min(ratio, 0.985) * radius]),
        )
    total = float(weights.sum())
    radii = radius * np.sqrt(weights / parent_weight)
    # Joint-fit guard: shrink if the siblings cannot possibly pack.
    packing = math.sqrt(total / parent_weight) / fill
    if packing > inner:
        radii *= inner / packing
    if k > 24:
        return _ring_pack(cx, cy, available, radii)
    # Seed on a ring at weight-proportional sector centres.
    fractions = np.cumsum(weights) / total
    centers_frac = fractions - weights / (2 * total)
    angles = 2 * math.pi * centers_frac
    dist = np.minimum(available - radii, available * 0.55)
    xs = cx + dist * np.cos(angles)
    ys = cy + dist * np.sin(angles)
    # Deterministic relaxation: push overlapping siblings apart, keep
    # each child inside the parent.
    chosen = accel.resolve(backend, size=k, threshold=_VECTOR_MIN_SIBLINGS)
    relax = (
        relax_siblings_vector if chosen == "vector" else relax_siblings_naive
    )
    xs, ys = relax(xs, ys, radii, cx, cy, available, relax_iters)
    return xs, ys, radii


def _ring_pack(
    cx: float, cy: float, available: float, radii: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Deterministic concentric-ring packing for large sibling counts.

    Children are sorted by radius (descending) and placed on successive
    rings from the outside in; avoids the O(k²) relaxation.
    """
    k = len(radii)
    order = np.argsort(-radii, kind="stable")
    xs = np.zeros(k)
    ys = np.zeros(k)
    idx = 0
    ring_r = available - float(radii[order[0]]) * 1.05
    while idx < k:
        r_big = float(radii[order[idx]])
        ring_r = min(ring_r, available - r_big * 1.05)
        if ring_r <= r_big:
            # Everything remaining piles near the centre.
            for j in range(idx, k):
                xs[order[j]], ys[order[j]] = cx, cy
            break
        angle = 0.0
        start = idx
        while idx < k and angle < 2 * math.pi:
            child = order[idx]
            step = 2 * math.asin(min(float(radii[child]) * 1.05 / ring_r, 1.0))
            if idx > start and angle + step > 2 * math.pi:
                break
            xs[child] = cx + ring_r * math.cos(angle + step / 2)
            ys[child] = cy + ring_r * math.sin(angle + step / 2)
            angle += step * 1.05
            idx += 1
        if idx < k:
            ring_r -= (r_big + float(radii[order[idx]])) * 1.1
    return xs, ys, radii


def layout_tree(
    tree: SuperTree,
    inner: float = 0.88,
    fill: float = 0.8,
    leaf_radius: float = 0.012,
    relax_iters: int = 40,
    backend: Optional[str] = None,
) -> TerrainLayout:
    """Compute the nested-disc layout of a super tree.

    Parameters
    ----------
    tree:
        The super tree to lay out.
    inner:
        Fraction of a parent's radius available to its children (the
        remaining annulus renders as the parent's own terrain "wall").
    fill:
        Shrink factor on child radii; smaller leaves more spacing.
    leaf_radius:
        Radius (relative to the unit root) for zero-weight leaves, which
        the paper draws as degenerate points.
    relax_iters:
        Iterations of the sibling-overlap relaxation.
    backend:
        Relaxation kernel (see :mod:`repro.accel`); the layouts are
        bit-identical either way.
    """
    n = tree.n_nodes
    cx = np.zeros(n)
    cy = np.zeros(n)
    r = np.zeros(n)
    sizes = tree.subtree_sizes()
    # Paper: the enclosed area is proportional to the subtree *excluding*
    # the node itself, so single-vertex leaves degenerate to points.  In
    # a super tree a node may hold a whole plateau of vertices, and the
    # paper also requires a peak's base area to reflect its component
    # size — so we exclude exactly one "self" vertex, which reproduces
    # both behaviours.
    weights = (sizes - 1).clip(min=0).astype(np.float64) + 1e-3

    roots = tree.roots
    # Radius ∝ sqrt(total items); the largest component sits at the
    # origin and smaller ones pack around it in deterministic rings.
    root_r = np.sqrt(sizes[roots].astype(np.float64))
    root_r = root_r / root_r.max()
    order = np.argsort(-root_r, kind="stable")
    main = order[0]
    cx[roots[main]] = 0.0
    cy[roots[main]] = 0.0
    r[roots[main]] = root_r[main]
    if len(roots) > 1:
        ring_r = root_r[main] * 1.05 + float(root_r[order[1]])
        angle = 0.0
        for pos in order[1:]:
            root = roots[pos]
            rr = float(root_r[pos])
            step = 2 * math.asin(min(rr * 1.1 / ring_r, 1.0))
            if angle + step > 2 * math.pi:
                angle = 0.0
                ring_r += 2.2 * rr
            cx[root] = ring_r * math.cos(angle + step / 2)
            cy[root] = ring_r * math.sin(angle + step / 2)
            r[root] = rr
            angle += step * 1.05

    stack = list(roots)
    while stack:
        node = stack.pop()
        kids = tree.children(node)
        if not kids:
            continue
        kid_weights = weights[kids]
        xs, ys, radii = _place_children(
            cx[node], cy[node], r[node], kid_weights, weights[node],
            inner, fill, relax_iters, backend=backend,
        )
        for kid, x, y, radius in zip(kids, xs, ys, radii):
            cx[kid] = x
            cy[kid] = y
            r[kid] = max(radius, leaf_radius * r[node])
            stack.append(kid)
    return TerrainLayout(tree, cx, cy, r)
