"""1-D terrain profiles (mountain silhouettes).

A lightweight alternative view of a scalar tree: every subtree gets an
x-interval proportional to its size, and the silhouette height at x is
the scalar of the deepest spanning node — the classic contour-tree
"landscape profile".  Profiles read like the 3D terrain's skyline and
fit in a strip chart, so they complement the treemap as a linked 2D
display.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from ..core.super_tree import SuperTree
from .colormap import intensity_ramp
from .svg import SVGCanvas

__all__ = ["profile_intervals", "profile_svg"]


def profile_intervals(tree: SuperTree) -> np.ndarray:
    """Per-node x-intervals of the landscape profile.

    Returns an ``(n_nodes, 2)`` array of ``[x0, x1)`` spans in [0, 1]:
    the root spans everything; each child's span nests inside its
    parent's, width proportional to subtree size, children centred in
    weight order so the tallest structure rises mid-span (the standard
    landscape aesthetic).
    """
    n = tree.n_nodes
    spans = np.zeros((n, 2))
    sizes = tree.subtree_sizes().astype(np.float64)
    roots = tree.roots
    total = float(sizes[roots].sum())
    cursor = 0.0
    order: List[int] = []
    for root in roots:
        width = sizes[root] / total
        spans[root] = (cursor, cursor + width)
        order.append(root)
        cursor += width
    stack = list(roots)
    while stack:
        node = stack.pop()
        kids = tree.children(node)
        if not kids:
            continue
        x0, x1 = spans[node]
        width = x1 - x0
        # Children sorted by size, alternating to the middle: biggest
        # central, smaller ones flanking.
        by_size = sorted(kids, key=lambda k: -sizes[k])
        arrangement: List[int] = []
        for i, kid in enumerate(by_size):
            if i % 2 == 0:
                arrangement.insert(len(arrangement) // 2, kid)
            else:
                arrangement.insert(0, kid)
        kid_total = float(sizes[kids].sum()) if len(kids) else 1.0
        denom = max(float(sizes[node]), kid_total)
        margin = width * (1.0 - kid_total / denom) / 2
        cursor = x0 + margin
        for kid in arrangement:
            kw = width * sizes[kid] / denom
            spans[kid] = (cursor, cursor + kw)
            cursor += kw
            stack.append(kid)
    return spans


def profile_svg(
    tree: SuperTree,
    width: int = 720,
    height: int = 240,
    path: Optional[Union[str, Path]] = None,
) -> str:
    """Render the landscape profile as an SVG strip chart.

    Each super node draws as a block from the base (its parent's
    height) up to its own scalar, coloured by the intensity ramp —
    stacking into the terrain's skyline.
    """
    spans = profile_intervals(tree)
    scalars = tree.scalars
    lo = float(scalars.min())
    hi = float(scalars.max())
    span_h = hi - lo if hi > lo else 1.0
    margin = 18.0
    plot_w = width - 2 * margin
    plot_h = height - 2 * margin

    def sx(x: float) -> float:
        return margin + x * plot_w

    def sy(value: float) -> float:
        return margin + (1.0 - (value - lo) / span_h) * plot_h

    colors = intensity_ramp(scalars)
    canvas = SVGCanvas(width, height)
    base_y = height - margin
    order = []
    stack = list(tree.roots)
    while stack:
        node = stack.pop()
        order.append(node)
        stack.extend(tree.children(node))
    for node in order:
        x0, x1 = spans[node]
        p = tree.parent[node]
        y_base = base_y if p < 0 else sy(float(scalars[p]))
        y_top = sy(float(scalars[node]))
        canvas.rect(
            sx(x0), y_top, (x1 - x0) * plot_w, max(y_base - y_top, 0.0),
            fill=tuple(colors[node]), stroke=(0.2, 0.2, 0.2),
            stroke_width=0.3,
        )
    canvas.line(margin, base_y, width - margin, base_y,
                stroke=(0.1, 0.1, 0.1))
    svg = canvas.to_string()
    if path is not None:
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(svg)
    return svg
