"""Software 3D renderer: z-buffered triangle rasterizer + image writers.

A from-scratch replacement for the paper's OpenGL viewer, so the whole
terrain pipeline runs headless: project triangles through an orbit
:class:`~repro.terrain.camera.Camera`, fill them with scanline
barycentric rasterization into a numpy z-buffer, shade with a single
directional light, and write PNG (stdlib zlib) or binary PPM.

High-level entry point: :func:`render_terrain` — scalar graph/tree in,
image (and optional file) out.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from ..core.super_tree import SuperTree
from .camera import Camera
from .colormap import intensity_ramp
from .heightfield import Heightfield, rasterize
from .layout2d import TerrainLayout, layout_tree
from .mesh import TerrainMesh, build_mesh

__all__ = [
    "render_mesh",
    "render_terrain",
    "node_colors_from_item_values",
    "save_png",
    "save_ppm",
]

_LIGHT = np.array([0.35, -0.5, 0.85])
_LIGHT_DIR = _LIGHT / np.linalg.norm(_LIGHT)


def render_mesh(
    mesh: TerrainMesh,
    camera: Optional[Camera] = None,
    width: int = 640,
    height: int = 480,
    background=(1.0, 1.0, 1.0),
    ambient: float = 0.45,
) -> np.ndarray:
    """Rasterize a terrain mesh to an (H, W, 3) uint8 image."""
    camera = camera or Camera()
    xy, depth = camera.project(mesh.vertices, width, height)

    # Lambert shading per face.
    tri = mesh.vertices[mesh.faces]
    normals = np.cross(tri[:, 1] - tri[:, 0], tri[:, 2] - tri[:, 0])
    norms = np.linalg.norm(normals, axis=1, keepdims=True)
    normals = normals / np.where(norms > 1e-12, norms, 1.0)
    # Faces are viewed from above; flip normals pointing down.
    normals[normals[:, 2] < 0] *= -1
    diffuse = np.clip(normals @ _LIGHT_DIR, 0.0, 1.0)
    shade = ambient + (1.0 - ambient) * diffuse
    colors = np.clip(mesh.face_colors * shade[:, None], 0.0, 1.0)

    frame = np.empty((height, width, 3), dtype=np.float64)
    frame[:] = np.asarray(background)
    zbuf = np.full((height, width), np.inf)

    pts = xy[mesh.faces]  # (m, 3, 2)
    zs = depth[mesh.faces]  # (m, 3)
    # Painter-friendly order is unnecessary with a z-buffer; iterate as is.
    for f in range(len(mesh.faces)):
        z0, z1, z2 = zs[f]
        if z0 <= 0 or z1 <= 0 or z2 <= 0:
            continue
        (x0, y0), (x1, y1), (x2, y2) = pts[f]
        min_x = max(int(min(x0, x1, x2)), 0)
        max_x = min(int(max(x0, x1, x2)) + 1, width)
        min_y = max(int(min(y0, y1, y2)), 0)
        max_y = min(int(max(y0, y1, y2)) + 1, height)
        if min_x >= max_x or min_y >= max_y:
            continue
        area = (x1 - x0) * (y2 - y0) - (x2 - x0) * (y1 - y0)
        if abs(area) < 1e-12:
            continue
        px = (np.arange(min_x, max_x) + 0.5)[None, :]
        py = (np.arange(min_y, max_y) + 0.5)[:, None]
        w0 = ((x1 - x0) * (py - y0) - (px - x0) * (y1 - y0)) / area
        w1 = ((px - x0) * (y2 - y0) - (x2 - x0) * (py - y0)) / area
        # Barycentrics: b1 = w1 (vertex 1), b2 = w0 (vertex 2).
        b0 = 1.0 - w0 - w1
        inside = (b0 >= 0) & (w0 >= 0) & (w1 >= 0)
        if not inside.any():
            continue
        z = b0 * z0 + w1 * z1 + w0 * z2
        block_z = zbuf[min_y:max_y, min_x:max_x]
        visible = inside & (z < block_z)
        if not visible.any():
            continue
        block_z[visible] = z[visible]
        frame[min_y:max_y, min_x:max_x][visible] = colors[f]
    return (frame * 255).astype(np.uint8)


def node_colors_from_item_values(
    tree: SuperTree, values: np.ndarray, palette=intensity_ramp
) -> np.ndarray:
    """Per-super-node colours from per-*item* values.

    ``values`` holds one number per graph item (vertex or edge); each
    super node takes the palette colour of its members' mean value.
    This is how the paper colours a terrain by a *second* measure.
    """
    values = np.asarray(values, dtype=np.float64)
    node_values = np.array(
        [values[m].mean() if len(m) else 0.0 for m in tree.members]
    )
    return palette(node_values)


def node_colors_categorical(
    tree: SuperTree, labels: np.ndarray, color_table: np.ndarray
) -> np.ndarray:
    """Per-super-node colours from per-item categorical labels.

    Each super node takes the colour of its members' majority label
    (e.g. dominant role, Fig 9; plant genus, Fig 11).
    """
    labels = np.asarray(labels, dtype=np.int64)
    out = np.zeros((tree.n_nodes, 3))
    for s, member in enumerate(tree.members):
        if len(member):
            counts = np.bincount(labels[member])
            out[s] = color_table[int(counts.argmax())]
    return out


def render_terrain(
    tree: SuperTree,
    color_values: Optional[np.ndarray] = None,
    categorical_labels: Optional[np.ndarray] = None,
    color_table: Optional[np.ndarray] = None,
    camera: Optional[Camera] = None,
    resolution: int = 160,
    width: int = 640,
    height: int = 480,
    z_scale: float = 0.55,
    layout: Optional[TerrainLayout] = None,
    heightfield: Optional[Heightfield] = None,
    path: Optional[Union[str, Path]] = None,
) -> np.ndarray:
    """One-call pipeline: super tree → layout → heightfield → image.

    By default the terrain is coloured by its own scalar (height);
    pass ``color_values`` (one per item) to colour by a second measure,
    or ``categorical_labels`` + ``color_table`` for nominal attributes.
    Precomputed ``layout``/``heightfield`` can be reused across camera
    angles.  If ``path`` is given, the image is saved (suffix picks
    PNG or PPM).
    """
    layout = layout or layout_tree(tree)
    hf = heightfield or rasterize(layout, resolution=resolution)
    if categorical_labels is not None:
        if color_table is None:
            raise ValueError("categorical_labels requires color_table")
        node_colors = node_colors_categorical(
            tree, categorical_labels, np.asarray(color_table)
        )
    elif color_values is not None:
        node_colors = node_colors_from_item_values(tree, color_values)
    else:
        node_colors = intensity_ramp(tree.scalars)
    mesh = build_mesh(hf, node_colors, z_scale=z_scale)
    image = render_mesh(mesh, camera=camera, width=width, height=height)
    if path is not None:
        path = Path(path)
        if path.suffix.lower() == ".ppm":
            save_ppm(image, path)
        else:
            save_png(image, path)
    return image


def save_png(image: np.ndarray, path: Union[str, Path]) -> Path:
    """Write an (H, W, 3) uint8 image as PNG (pure stdlib zlib)."""
    image = np.ascontiguousarray(image, dtype=np.uint8)
    h, w = image.shape[:2]
    raw = b"".join(
        b"\x00" + image[row].tobytes() for row in range(h)
    )

    def chunk(tag: bytes, payload: bytes) -> bytes:
        return (
            struct.pack(">I", len(payload))
            + tag
            + payload
            + struct.pack(">I", zlib.crc32(tag + payload) & 0xFFFFFFFF)
        )

    header = struct.pack(">IIBBBBB", w, h, 8, 2, 0, 0, 0)
    blob = (
        b"\x89PNG\r\n\x1a\n"
        + chunk(b"IHDR", header)
        + chunk(b"IDAT", zlib.compress(raw, 6))
        + chunk(b"IEND", b"")
    )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(blob)
    return path


def save_ppm(image: np.ndarray, path: Union[str, Path]) -> Path:
    """Write an (H, W, 3) uint8 image as binary PPM (P6)."""
    image = np.ascontiguousarray(image, dtype=np.uint8)
    h, w = image.shape[:2]
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as handle:
        handle.write(f"P6\n{w} {h}\n255\n".encode())
        handle.write(image.tobytes())
    return path
