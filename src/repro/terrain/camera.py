"""Orbit camera for the software 3D renderer.

Implements the paper's *rotate* and *zoom in/out* interactions: the
camera orbits the terrain centre at a given azimuth/elevation/distance
and projects perspectively onto the image plane.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Tuple

import numpy as np

__all__ = ["Camera"]


@dataclass(frozen=True)
class Camera:
    """An orbiting perspective camera.

    Attributes
    ----------
    azimuth:
        Rotation around the vertical axis, degrees.
    elevation:
        Angle above the ground plane, degrees.
    distance:
        Distance from the orbit target (zoom: smaller = closer).
    target:
        World-space point the camera looks at.
    fov:
        Vertical field of view, degrees.
    """

    azimuth: float = 35.0
    elevation: float = 38.0
    distance: float = 3.2
    target: Tuple[float, float, float] = (0.0, 0.0, 0.2)
    fov: float = 42.0

    def rotated(self, d_azimuth: float = 0.0, d_elevation: float = 0.0) -> "Camera":
        """A new camera rotated by the given angular deltas (degrees)."""
        return replace(
            self,
            azimuth=self.azimuth + d_azimuth,
            elevation=min(max(self.elevation + d_elevation, 2.0), 88.0),
        )

    def zoomed(self, factor: float) -> "Camera":
        """A new camera with distance scaled by ``factor`` (<1 zooms in)."""
        if factor <= 0:
            raise ValueError("zoom factor must be positive")
        return replace(self, distance=self.distance * factor)

    @property
    def position(self) -> np.ndarray:
        """World-space camera position."""
        az = math.radians(self.azimuth)
        el = math.radians(self.elevation)
        tx, ty, tz = self.target
        return np.array(
            [
                tx + self.distance * math.cos(el) * math.cos(az),
                ty + self.distance * math.cos(el) * math.sin(az),
                tz + self.distance * math.sin(el),
            ]
        )

    def view_basis(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Right/up/forward unit vectors of the view frame."""
        eye = self.position
        forward = np.asarray(self.target, dtype=np.float64) - eye
        forward /= np.linalg.norm(forward)
        world_up = np.array([0.0, 0.0, 1.0])
        right = np.cross(forward, world_up)
        norm = np.linalg.norm(right)
        if norm < 1e-9:  # looking straight down
            right = np.array([1.0, 0.0, 0.0])
        else:
            right /= norm
        up = np.cross(right, forward)
        return right, up, forward

    def project(
        self, points: np.ndarray, width: int, height: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Project world points (N, 3) to pixel coordinates.

        Returns ``(xy, depth)`` where ``xy`` is (N, 2) pixel positions
        and ``depth`` the view-space distance along the camera forward
        axis (used by the z-buffer).  Points behind the camera receive
        depth <= 0 and should be culled by the caller.
        """
        points = np.asarray(points, dtype=np.float64)
        eye = self.position
        right, up, forward = self.view_basis()
        rel = points - eye
        x_cam = rel @ right
        y_cam = rel @ up
        depth = rel @ forward
        f = 1.0 / math.tan(math.radians(self.fov) / 2)
        safe = np.where(depth > 1e-9, depth, 1e-9)
        ndc_x = f * x_cam / safe
        ndc_y = f * y_cam / safe
        aspect = width / height
        px = (ndc_x / aspect + 1.0) * 0.5 * width
        py = (1.0 - ndc_y) * 0.5 * height
        return np.column_stack([px, py]), depth
