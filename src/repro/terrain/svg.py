"""A minimal SVG document builder.

All 2D artifacts in this repository (treemaps, spring layouts, terrain
profiles, CSV plots, LaNet-vi shells) are written as standalone SVG
files through this tiny builder — no plotting library is available in
the reproduction environment.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, Sequence, Tuple, Union

from .colormap import rgb_to_hex

__all__ = ["SVGCanvas"]


class SVGCanvas:
    """Accumulates SVG elements; ``save`` writes a standalone file.

    Coordinates are in user units with the origin at the top-left, like
    raw SVG.  Colours may be ``(r, g, b)`` float triples or CSS strings.
    """

    def __init__(self, width: float, height: float, background: str = "white"):
        self.width = width
        self.height = height
        self._parts = [
            f'<rect x="0" y="0" width="{width}" height="{height}" '
            f'fill="{background}"/>'
        ]

    @staticmethod
    def _color(color) -> str:
        if color is None:
            return "none"
        if isinstance(color, str):
            return color
        return rgb_to_hex(color)

    def circle(
        self,
        cx: float,
        cy: float,
        r: float,
        fill=None,
        stroke="black",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
    ) -> None:
        """Add a circle."""
        self._parts.append(
            f'<circle cx="{cx:.2f}" cy="{cy:.2f}" r="{max(r, 0.0):.2f}" '
            f'fill="{self._color(fill)}" stroke="{self._color(stroke)}" '
            f'stroke-width="{stroke_width:.2f}" opacity="{opacity:.3f}"/>'
        )

    def line(
        self,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        stroke="black",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
    ) -> None:
        """Add a line segment."""
        self._parts.append(
            f'<line x1="{x1:.2f}" y1="{y1:.2f}" x2="{x2:.2f}" y2="{y2:.2f}" '
            f'stroke="{self._color(stroke)}" stroke-width="{stroke_width:.2f}" '
            f'opacity="{opacity:.3f}"/>'
        )

    def polygon(
        self,
        points: Sequence[Tuple[float, float]],
        fill=None,
        stroke=None,
        stroke_width: float = 1.0,
        opacity: float = 1.0,
    ) -> None:
        """Add a filled polygon."""
        coords = " ".join(f"{x:.2f},{y:.2f}" for x, y in points)
        self._parts.append(
            f'<polygon points="{coords}" fill="{self._color(fill)}" '
            f'stroke="{self._color(stroke)}" stroke-width="{stroke_width:.2f}" '
            f'opacity="{opacity:.3f}"/>'
        )

    def polyline(
        self,
        points: Sequence[Tuple[float, float]],
        stroke="black",
        stroke_width: float = 1.0,
    ) -> None:
        """Add an open polyline."""
        coords = " ".join(f"{x:.2f},{y:.2f}" for x, y in points)
        self._parts.append(
            f'<polyline points="{coords}" fill="none" '
            f'stroke="{self._color(stroke)}" stroke-width="{stroke_width:.2f}"/>'
        )

    def rect(
        self,
        x: float,
        y: float,
        width: float,
        height: float,
        fill=None,
        stroke=None,
        stroke_width: float = 1.0,
    ) -> None:
        """Add a rectangle."""
        self._parts.append(
            f'<rect x="{x:.2f}" y="{y:.2f}" width="{width:.2f}" '
            f'height="{height:.2f}" fill="{self._color(fill)}" '
            f'stroke="{self._color(stroke)}" stroke-width="{stroke_width:.2f}"/>'
        )

    def text(
        self,
        x: float,
        y: float,
        content: str,
        size: float = 12.0,
        fill="black",
        anchor: str = "start",
    ) -> None:
        """Add a text label."""
        safe = (
            content.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
        )
        self._parts.append(
            f'<text x="{x:.2f}" y="{y:.2f}" font-size="{size:.1f}" '
            f'fill="{self._color(fill)}" text-anchor="{anchor}" '
            f'font-family="sans-serif">{safe}</text>'
        )

    def to_string(self) -> str:
        """The full SVG document as a string."""
        body = "\n".join(self._parts)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">\n{body}\n</svg>\n'
        )

    def save(self, path: Union[str, Path]) -> Path:
        """Write the document to ``path`` and return it."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_string())
        return path
