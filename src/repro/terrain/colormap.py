"""Colour ramps for terrain and treemap displays.

The paper's convention (§III): colour encodes measure intensity, ranging
over red (most intense) → yellow → green → blue (least intense).  Role
colouring (Fig 9) uses categorical colours: hub = green, dense community
member = blue, periphery = red.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "intensity_ramp",
    "quartile_colors",
    "role_colors",
    "rgb_to_hex",
    "BLUE",
    "GREEN",
    "YELLOW",
    "RED",
]

Color = Tuple[float, float, float]

BLUE: Color = (0.20, 0.35, 0.85)
GREEN: Color = (0.25, 0.70, 0.30)
YELLOW: Color = (0.95, 0.85, 0.20)
RED: Color = (0.90, 0.15, 0.10)

_RAMP = np.array([BLUE, GREEN, YELLOW, RED])

# Fig 9's categorical role colours, indexed by repro.measures.ROLE_NAMES
# order (hub, dense, periphery, whisker).
_ROLE_COLORS = np.array(
    [
        GREEN,            # hub
        BLUE,             # dense community member
        RED,              # periphery
        (0.55, 0.30, 0.65),  # whisker (not shown in the paper; distinct)
    ]
)


def intensity_ramp(values: np.ndarray) -> np.ndarray:
    """Map values to the blue→green→yellow→red ramp, (n, 3) floats in [0,1].

    Values are min-max normalised; a constant field maps to green.
    """
    values = np.asarray(values, dtype=np.float64)
    lo, hi = float(values.min()), float(values.max())
    if hi == lo:
        t = np.full(len(values), 0.5)
    else:
        t = (values - lo) / (hi - lo)
    # Piecewise-linear interpolation across the 4 ramp anchors.
    x = t * (len(_RAMP) - 1)
    i = np.clip(x.astype(np.int64), 0, len(_RAMP) - 2)
    frac = (x - i)[:, None]
    return _RAMP[i] * (1 - frac) + _RAMP[i + 1] * frac


def quartile_colors(values: np.ndarray) -> np.ndarray:
    """Map values to 4 discrete colours by quartile (2D treemap style):
    top quartile red, then yellow, green, bottom quartile blue."""
    values = np.asarray(values, dtype=np.float64)
    qs = np.quantile(values, [0.25, 0.5, 0.75])
    idx = np.searchsorted(qs, values, side="right")  # 0..3 (low..high)
    return _RAMP[idx]


def role_colors(roles: np.ndarray) -> np.ndarray:
    """Categorical colours for role labels 0..3 (hub/dense/periphery/whisker)."""
    roles = np.asarray(roles, dtype=np.int64)
    if roles.size and (roles.min() < 0 or roles.max() > 3):
        raise ValueError("role labels must lie in 0..3")
    return _ROLE_COLORS[roles]


def rgb_to_hex(color) -> str:
    """``(r, g, b)`` floats in [0, 1] → ``#rrggbb``."""
    r, g, b = (int(round(255 * float(c))) for c in color)
    return f"#{r:02x}{g:02x}{b:02x}"
