"""Core contribution: scalar graphs, scalar trees, components, multifield."""

from .components import (
    edge_mcc,
    maximal_alpha_components,
    maximal_alpha_edge_components,
    mcc,
)
from .edge_tree import build_edge_tree, build_edge_tree_naive
from .multifield import (
    edge_global_correlation_index,
    edge_local_correlation_index,
    global_correlation_index,
    khop_local_correlation_index,
    local_correlation_index,
    outlier_score,
)
from .scalar_graph import EdgeScalarGraph, ScalarGraph
from .serialize import (
    load_tree,
    save_tree,
    scalar_tree_from_json,
    scalar_tree_to_json,
    super_tree_from_json,
    super_tree_to_json,
)
from .scalar_tree import ScalarTree, attach_vertex, build_vertex_tree
from .simplify import discretize_quantile, discretize_uniform, simplify_tree
from .super_tree import SuperTree, build_super_tree, splice_super_tree
from .union_find import NaiveUnionFind, RollbackUnionFind, UnionFind

__all__ = [
    "ScalarGraph",
    "EdgeScalarGraph",
    "ScalarTree",
    "SuperTree",
    "build_vertex_tree",
    "build_edge_tree",
    "build_edge_tree_naive",
    "build_super_tree",
    "simplify_tree",
    "discretize_uniform",
    "discretize_quantile",
    "maximal_alpha_components",
    "maximal_alpha_edge_components",
    "mcc",
    "edge_mcc",
    "local_correlation_index",
    "edge_local_correlation_index",
    "edge_global_correlation_index",
    "save_tree",
    "load_tree",
    "scalar_tree_to_json",
    "scalar_tree_from_json",
    "super_tree_to_json",
    "super_tree_from_json",
    "khop_local_correlation_index",
    "global_correlation_index",
    "outlier_score",
    "UnionFind",
    "NaiveUnionFind",
    "RollbackUnionFind",
    "attach_vertex",
    "splice_super_tree",
]
