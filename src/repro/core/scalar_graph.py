"""Scalar graphs: a graph plus a scalar value per vertex or per edge.

These are the paper's central objects (§II, Notation).  A *vertex-based
scalar graph* carries one number per vertex (``v.scalar``); an
*edge-based scalar graph* one number per edge (``e.scalar``).  Both
wrap an immutable :class:`~repro.graph.csr.CSRGraph` plus an aligned
float vector, and can carry any number of named auxiliary fields (used
e.g. to colour a terrain by a second measure).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["ScalarGraph", "EdgeScalarGraph"]


def _as_field(values, expected: int, what: str) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1 or len(arr) != expected:
        raise ValueError(f"{what} must be a 1-D vector of length {expected}")
    if not np.isfinite(arr).all():
        raise ValueError(f"{what} must be finite (no NaN/inf)")
    return arr


class ScalarGraph:
    """A graph whose vertices carry scalar values.

    Parameters
    ----------
    graph:
        The underlying :class:`CSRGraph`.
    scalars:
        Primary scalar field, one float per vertex.
    fields:
        Optional extra named vertex fields (e.g. a second measure for
        colouring, nominal attributes encoded as floats).
    """

    __slots__ = ("graph", "scalars", "fields")

    def __init__(
        self,
        graph: CSRGraph,
        scalars,
        fields: Optional[Dict[str, np.ndarray]] = None,
    ) -> None:
        self.graph = graph
        self.scalars = _as_field(scalars, graph.n_vertices, "scalars")
        self.fields: Dict[str, np.ndarray] = {}
        for name, values in (fields or {}).items():
            self.fields[name] = _as_field(
                values, graph.n_vertices, f"field {name!r}"
            )

    @property
    def n_vertices(self) -> int:
        return self.graph.n_vertices

    @property
    def n_edges(self) -> int:
        return self.graph.n_edges

    def scalar_of(self, v: int) -> float:
        """``v.scalar`` in the paper's notation."""
        return float(self.scalars[v])

    def with_scalars(self, scalars) -> "ScalarGraph":
        """Same graph and fields, different primary scalar field."""
        return ScalarGraph(self.graph, scalars, fields=dict(self.fields))

    def add_field(self, name: str, values) -> None:
        """Attach (or replace) a named auxiliary vertex field."""
        self.fields[name] = _as_field(
            values, self.n_vertices, f"field {name!r}"
        )

    def __repr__(self) -> str:
        extra = f", fields={sorted(self.fields)}" if self.fields else ""
        return (
            f"ScalarGraph(n_vertices={self.n_vertices}, "
            f"n_edges={self.n_edges}{extra})"
        )


class EdgeScalarGraph:
    """A graph whose edges carry scalar values.

    ``scalars[i]`` is the value of edge ``i`` in the dense edge-id order
    of :meth:`CSRGraph.edge_array` (pairs sorted with ``u < v``).
    """

    __slots__ = ("graph", "scalars", "fields", "_edge_pairs")

    def __init__(
        self,
        graph: CSRGraph,
        scalars,
        fields: Optional[Dict[str, np.ndarray]] = None,
    ) -> None:
        self.graph = graph
        self.scalars = _as_field(scalars, graph.n_edges, "scalars")
        self.fields: Dict[str, np.ndarray] = {}
        for name, values in (fields or {}).items():
            self.fields[name] = _as_field(
                values, graph.n_edges, f"field {name!r}"
            )
        self._edge_pairs: Optional[np.ndarray] = None

    @property
    def n_vertices(self) -> int:
        return self.graph.n_vertices

    @property
    def n_edges(self) -> int:
        return self.graph.n_edges

    @property
    def edge_pairs(self) -> np.ndarray:
        """The ``(m, 2)`` endpoint array aligned with ``scalars`` (cached)."""
        if self._edge_pairs is None:
            self._edge_pairs = self.graph.edge_array()
        return self._edge_pairs

    def scalar_of(self, u: int, v: int) -> float:
        """``e.scalar`` for the edge ``(u, v)``."""
        return float(self.scalars[self.graph.edge_id(u, v)])

    def with_scalars(self, scalars) -> "EdgeScalarGraph":
        """Same graph and fields, different primary scalar field."""
        return EdgeScalarGraph(self.graph, scalars, fields=dict(self.fields))

    def __repr__(self) -> str:
        return (
            f"EdgeScalarGraph(n_vertices={self.n_vertices}, "
            f"n_edges={self.n_edges})"
        )
