"""Disjoint-set (union-find) structures.

Algorithm 1 and Algorithm 3 of the paper lean on union-find for their
near-linear running time: the amortised cost per operation is
O(α(n)) with path compression + union by size.  A no-compression variant
is kept for the ablation bench (``bench_ablation_union_find``), and a
rollback-capable variant (:class:`RollbackUnionFind`) backs the
incremental scalar-tree maintenance in :mod:`repro.stream.incremental`.
"""

from __future__ import annotations

from typing import List

__all__ = ["UnionFind", "NaiveUnionFind", "RollbackUnionFind"]


class UnionFind:
    """Union-find with path halving and union by size.

    Elements are the integers ``0..n-1``; every element starts in its own
    singleton set.
    """

    __slots__ = ("parent", "size", "n_sets")

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))
        self.size = [1] * n
        self.n_sets = n

    def find(self, x: int) -> int:
        """Representative of the set containing ``x`` (with path halving)."""
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, x: int, y: int) -> int:
        """Merge the sets of ``x`` and ``y``; return the new representative."""
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return rx
        if self.size[rx] < self.size[ry]:
            rx, ry = ry, rx
        self.parent[ry] = rx
        self.size[rx] += self.size[ry]
        self.n_sets -= 1
        return rx

    def connected(self, x: int, y: int) -> bool:
        """Whether ``x`` and ``y`` are currently in the same set."""
        return self.find(x) == self.find(y)

    def set_size(self, x: int) -> int:
        """Size of the set containing ``x``."""
        return self.size[self.find(x)]

    def groups(self) -> List[List[int]]:
        """All current sets, as lists keyed by discovery order."""
        by_root: dict = {}
        for x in range(len(self.parent)):
            by_root.setdefault(self.find(x), []).append(x)
        return list(by_root.values())

    def __len__(self) -> int:
        return len(self.parent)


class RollbackUnionFind:
    """Union-find with union by size and snapshot/rollback.

    Path compression is deliberately absent: rolling a compressed
    structure back would require journalling every ``find``, so this
    variant trades O(α(n)) for a clean O(log n) bound per ``find`` and
    O(1) undo per ``union``.  :class:`repro.stream.incremental` uses it
    to rewind Algorithm 1 to a checkpoint above the edited scalar level
    and replay only the suffix.

    ``snapshot()`` returns an opaque token; ``rollback(token)`` undoes
    every union performed since that token was taken.
    """

    __slots__ = ("parent", "size", "n_sets", "_history")

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))
        self.size = [1] * n
        self.n_sets = n
        self._history: List[int] = []

    def find(self, x: int) -> int:
        """Representative of the set containing ``x`` (no compression)."""
        parent = self.parent
        while parent[x] != x:
            x = parent[x]
        return x

    def union(self, x: int, y: int) -> int:
        """Merge the sets of ``x`` and ``y``; return the new representative."""
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return rx
        if self.size[rx] < self.size[ry]:
            rx, ry = ry, rx
        self.parent[ry] = rx
        self.size[rx] += self.size[ry]
        self.n_sets -= 1
        self._history.append(ry)
        return rx

    def connected(self, x: int, y: int) -> bool:
        """Whether ``x`` and ``y`` are currently in the same set."""
        return self.find(x) == self.find(y)

    def snapshot(self) -> int:
        """Opaque token for the current state; pass to :meth:`rollback`."""
        return len(self._history)

    def rollback(self, token: int) -> None:
        """Undo every union performed since ``snapshot()`` returned ``token``."""
        if not 0 <= token <= len(self._history):
            raise ValueError("rollback token out of range")
        history = self._history
        while len(history) > token:
            ry = history.pop()
            rx = self.parent[ry]
            self.parent[ry] = ry
            self.size[rx] -= self.size[ry]
            self.n_sets += 1

    def __len__(self) -> int:
        return len(self.parent)


class NaiveUnionFind:
    """Union-find *without* path compression or balancing.

    Worst-case O(n) per find.  Exists only so the ablation bench can show
    what the inverse-Ackermann bound buys on scalar-tree construction;
    do not use it elsewhere.
    """

    __slots__ = ("parent", "n_sets")

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))
        self.n_sets = n

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            x = parent[x]
        return x

    def union(self, x: int, y: int) -> int:
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return rx
        self.parent[ry] = rx
        self.n_sets -= 1
        return rx

    def connected(self, x: int, y: int) -> bool:
        return self.find(x) == self.find(y)

    def __len__(self) -> int:
        return len(self.parent)
