"""Disjoint-set (union-find) structures.

Algorithm 1 and Algorithm 3 of the paper lean on union-find for their
near-linear running time: the amortised cost per operation is
O(α(n)) with path compression + union by size.  A no-compression variant
is kept for the ablation bench (``bench_ablation_union_find``).
"""

from __future__ import annotations

from typing import List

__all__ = ["UnionFind", "NaiveUnionFind"]


class UnionFind:
    """Union-find with path halving and union by size.

    Elements are the integers ``0..n-1``; every element starts in its own
    singleton set.
    """

    __slots__ = ("parent", "size", "n_sets")

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))
        self.size = [1] * n
        self.n_sets = n

    def find(self, x: int) -> int:
        """Representative of the set containing ``x`` (with path halving)."""
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, x: int, y: int) -> int:
        """Merge the sets of ``x`` and ``y``; return the new representative."""
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return rx
        if self.size[rx] < self.size[ry]:
            rx, ry = ry, rx
        self.parent[ry] = rx
        self.size[rx] += self.size[ry]
        self.n_sets -= 1
        return rx

    def connected(self, x: int, y: int) -> bool:
        """Whether ``x`` and ``y`` are currently in the same set."""
        return self.find(x) == self.find(y)

    def set_size(self, x: int) -> int:
        """Size of the set containing ``x``."""
        return self.size[self.find(x)]

    def groups(self) -> List[List[int]]:
        """All current sets, as lists keyed by discovery order."""
        by_root: dict = {}
        for x in range(len(self.parent)):
            by_root.setdefault(self.find(x), []).append(x)
        return list(by_root.values())

    def __len__(self) -> int:
        return len(self.parent)


class NaiveUnionFind:
    """Union-find *without* path compression or balancing.

    Worst-case O(n) per find.  Exists only so the ablation bench can show
    what the inverse-Ackermann bound buys on scalar-tree construction;
    do not use it elsewhere.
    """

    __slots__ = ("parent", "n_sets")

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))
        self.n_sets = n

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            x = parent[x]
        return x

    def union(self, x: int, y: int) -> int:
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return rx
        self.parent[ry] = rx
        self.n_sets -= 1
        return rx

    def connected(self, x: int, y: int) -> bool:
        return self.find(x) == self.find(y)

    def __len__(self) -> int:
        return len(self.parent)
