"""Vertex scalar trees — the paper's Algorithm 1.

A scalar tree has one node per vertex (same scalar value) such that the
subtrees obtained by cutting the tree at height α are exactly the maximal
α-connected components of the scalar graph (Properties 1–4, §II-B).

Construction processes vertices in decreasing scalar order and maintains
a union-find over the already-processed ones; when the current vertex
touches a previously processed subtree it becomes the new root of that
subtree.  Worst-case O(E·α(n) + V log V).

The same tree structure is reused for *edge* scalar trees (Algorithm 3,
:mod:`repro.core.edge_tree`): a :class:`ScalarTree` is simply a rooted
forest over item ids (vertex ids or edge ids) with a scalar per item.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from .. import accel
from ..accel import tree as _accel_tree
from .scalar_graph import ScalarGraph
from .union_find import UnionFind

__all__ = ["ScalarTree", "build_vertex_tree", "attach_vertex"]

# Below this many edges the vectorized build's presort does not pay for
# itself; ``--accel auto`` stays on the naive path.
_VECTOR_MIN_EDGES = 2048


def _children_table(parent: np.ndarray, n: int) -> List[List[int]]:
    """Child-list table of a parent-pointer forest, built by numpy
    grouping: stable-argsort the child ids by parent, then slice each
    parent's contiguous run.  Equivalent to the naive
    ``for i, p in enumerate(parent)`` append loop (within each parent,
    children remain in ascending id order) but ~1.3-1.9x faster as the
    forest grows past ~1e5 nodes — the residual cost is materialising
    one Python list per node, which the API shape requires."""
    kids = np.flatnonzero(parent >= 0)
    if not len(kids):
        return [[] for _ in range(n)]
    order = kids[np.argsort(parent[kids], kind="stable")]
    counts = np.bincount(parent[order], minlength=n)
    offsets = np.concatenate(([0], np.cumsum(counts))).tolist()
    order_list = order.tolist()
    return [
        order_list[offsets[i]: offsets[i + 1]] for i in range(n)
    ]


class ScalarTree:
    """A rooted forest over items ``0..n-1``, each carrying a scalar.

    Every node's scalar is >= its parent's scalar, so cutting the forest
    at height α leaves subtrees that correspond one-to-one with maximal
    α-connected components (after super-node postprocessing when values
    repeat — see :mod:`repro.core.super_tree`).

    Attributes
    ----------
    parent:
        ``parent[i]`` is the tree parent of item ``i`` (−1 for roots).
    scalars:
        Scalar value per item.
    kind:
        ``"vertex"`` or ``"edge"`` — what the items are.
    """

    __slots__ = ("parent", "scalars", "kind", "_children", "_roots")

    def __init__(
        self, parent: np.ndarray, scalars: np.ndarray, kind: str = "vertex"
    ) -> None:
        self.parent = np.asarray(parent, dtype=np.int64)
        self.scalars = np.asarray(scalars, dtype=np.float64)
        if len(self.parent) != len(self.scalars):
            raise ValueError("parent and scalars must have equal length")
        if kind not in ("vertex", "edge"):
            raise ValueError("kind must be 'vertex' or 'edge'")
        self.kind = kind
        self._children: Optional[List[List[int]]] = None
        self._roots: Optional[List[int]] = None

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of tree nodes (= number of items)."""
        return len(self.parent)

    @property
    def roots(self) -> List[int]:
        """All forest roots (one per connected component of the graph)."""
        if self._roots is None:
            self._roots = [int(i) for i in np.flatnonzero(self.parent < 0)]
        return self._roots

    def children(self, node: Optional[int] = None):
        """Children of ``node``, or the full child-list table if ``None``.

        The table is grouped vectorised (stable argsort over the parent
        column + offset slicing) rather than by a Python append loop;
        children stay in ascending id order within each parent.
        """
        if self._children is None:
            self._children = _children_table(self.parent, self.n_nodes)
        if node is None:
            return self._children
        return self._children[node]

    def subtree_nodes(self, node: int) -> np.ndarray:
        """All items in the subtree rooted at ``node`` (pre-order)."""
        out = []
        stack = [node]
        children = self.children()
        while stack:
            cur = stack.pop()
            out.append(cur)
            stack.extend(children[cur])
        return np.array(out, dtype=np.int64)

    def depth(self, node: int) -> int:
        """Number of ancestors of ``node``."""
        d = 0
        while self.parent[node] >= 0:
            node = int(self.parent[node])
            d += 1
        return d

    def iter_topological(self) -> Iterator[int]:
        """Yield nodes parents-first (roots, then their children, ...)."""
        children = self.children()
        stack = list(self.roots)
        while stack:
            cur = stack.pop()
            yield cur
            stack.extend(children[cur])

    def validate(self) -> None:
        """Check structural invariants; raise ``ValueError`` on violation.

        Invariants: acyclic with a parent chain ending at a root, and
        every child's scalar >= its parent's scalar.
        """
        seen = 0
        for __ in self.iter_topological():
            seen += 1
        if seen != self.n_nodes:
            raise ValueError("parent pointers contain a cycle or orphan")
        has_parent = self.parent >= 0
        kids = np.flatnonzero(has_parent)
        if len(kids) and np.any(
            self.scalars[kids] < self.scalars[self.parent[kids]]
        ):
            raise ValueError("child scalar below parent scalar")

    def spliced(self, items, parents, scalars=None) -> "ScalarTree":
        """New tree with ``parent[items]`` replaced by ``parents``.

        The splice hook for incremental maintenance
        (:mod:`repro.stream.incremental`): after a localized update has
        re-derived parent pointers for a dirty region, the clean
        majority of the tree is reused by copying and patching rather
        than re-running Algorithm 1.  ``scalars``, when given, replaces
        the whole scalar field (scalar edits change values outside the
        spliced parent set).  Caches (children table, roots) are not
        carried over.
        """
        new_parent = self.parent.copy()
        if len(np.asarray(items, dtype=np.int64)):
            new_parent[np.asarray(items, dtype=np.int64)] = np.asarray(
                parents, dtype=np.int64
            )
        new_scalars = self.scalars if scalars is None else scalars
        return ScalarTree(
            new_parent, np.array(new_scalars, dtype=np.float64), kind=self.kind
        )

    def __repr__(self) -> str:
        return (
            f"ScalarTree(kind={self.kind!r}, n_nodes={self.n_nodes}, "
            f"n_roots={len(self.roots)})"
        )


def attach_vertex(v, neighbors, rank, uf, parent, tree_root, journal=None):
    """One step of Algorithm 1: fold vertex ``v`` into the partial forest.

    Scans ``neighbors`` of ``v``; every already-processed neighbour
    (``rank[w] < rank[v]``) whose subtree is disjoint from ``v``'s makes
    ``v`` the new root of the merged subtree.  ``rank``, ``parent`` and
    ``tree_root`` are plain lists mutated in place; ``uf`` is any of the
    union-find variants in :mod:`repro.core.union_find`.

    When ``journal`` is given, each merge appends
    ``(child, merged_root, previous_tree_root)`` so callers pairing it
    with a :class:`~repro.core.union_find.RollbackUnionFind` can undo the
    step exactly (see :mod:`repro.stream.incremental`).
    """
    rank_v = rank[v]
    for w in neighbors:
        if rank[w] < rank_v:
            root_v = uf.find(v)
            root_w = uf.find(w)
            if root_v != root_w:
                parent[tree_root[root_w]] = v
                merged = uf.union(root_v, root_w)
                if journal is not None:
                    journal.append(
                        (tree_root[root_w], merged, tree_root[merged])
                    )
                tree_root[merged] = v


def build_vertex_tree(
    scalar_graph: ScalarGraph, backend: Optional[str] = None
) -> ScalarTree:
    """Algorithm 1: construct the vertex scalar tree of a scalar graph.

    Vertices are processed in decreasing scalar order (ties broken by
    vertex id, ascending, via a stable sort); each time the current
    vertex meets an already-processed subtree it is attached as that
    subtree's new root.  Disconnected graphs yield a forest.

    ``backend`` picks the construction kernel (default: the global
    :mod:`repro.accel` setting): the naive path replays the adjacency
    through :func:`attach_vertex`, the vector and native paths run the
    edge-ordered merge scan of :mod:`repro.accel.tree` (the latter
    through the compiled C kernel of :mod:`repro.accel.native`) — all
    produce byte-identical parent arrays.

    When scalar values repeat, apply
    :func:`repro.core.super_tree.build_super_tree` to restore the
    subtree ↔ component correspondence (paper's Algorithm 2).
    """
    graph = scalar_graph.graph
    n = graph.n_vertices
    scalars = scalar_graph.scalars
    # Decreasing scalar, ties by ascending vertex id.
    order, rank = _accel_tree.rank_order(scalars)

    chosen = accel.resolve(
        backend, size=graph.n_edges, threshold=_VECTOR_MIN_EDGES,
        native=True,
    )
    if chosen != "naive":
        parent = _accel_tree.vertex_tree_parents(
            n, graph.edge_array(), rank, chosen
        )
        return ScalarTree(parent, scalars.copy(), kind="vertex")

    parent = [-1] * n
    uf = UnionFind(n)
    tree_root = list(range(n))  # union-find root -> current subtree root node
    # List conversions are the naive scan's price of admission (numpy
    # element access is several times slower than list access from
    # Python); they live behind the backend switch so the vector path
    # never pays them.
    indptr = graph.indptr.tolist()
    indices = graph.indices.tolist()
    rank_list = rank.tolist()

    for v in order.tolist():
        attach_vertex(
            v, indices[indptr[v]: indptr[v + 1]],
            rank_list, uf, parent, tree_root,
        )

    return ScalarTree(
        np.array(parent, dtype=np.int64), scalars.copy(), kind="vertex"
    )
