"""Edge scalar trees — the paper's Algorithm 3 and the naive baseline.

For an edge-based scalar graph, the tree has one node per *edge*;
subtrees correspond to maximal α-edge connected components (Definition 3).

Two constructions are provided:

* :func:`build_edge_tree` — the paper's optimized Algorithm 3,
  O(E log E): when processing edge ``e_i`` only the ``min_id_edge`` of
  its two endpoints needs checking (Proposition 3), not all neighbours.
* :func:`build_edge_tree_naive` — convert to the line graph and run
  Algorithm 1; O(Σ deg(v)² log E).  Kept as the Table II ``te`` baseline
  and as a cross-validation oracle in tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import accel
from ..accel import tree as _accel_tree
from ..graph.dual import line_graph
from .scalar_graph import EdgeScalarGraph, ScalarGraph
from .scalar_tree import ScalarTree, build_vertex_tree
from .union_find import UnionFind

__all__ = ["build_edge_tree", "build_edge_tree_naive"]

# ``--accel auto`` switch-over point, matching the vertex-tree build.
_VECTOR_MIN_EDGES = 2048


def build_edge_tree(
    edge_graph: EdgeScalarGraph, backend: Optional[str] = None
) -> ScalarTree:
    """Algorithm 3: edge scalar tree in O(E log E).

    Edges are processed in decreasing scalar order (ties by edge id).
    For each vertex, ``min_id_edge`` is its incident edge with minimum
    sorted index — i.e. the first-processed one.  By Proposition 3, when
    edge ``e_i = (v1, v2)`` is processed, the subtree roots reachable
    through *any* earlier neighbouring edge equal the subtree roots of
    ``min_id_edge(v1)`` and ``min_id_edge(v2)``, so only those two are
    inspected.

    Returns a :class:`ScalarTree` whose items are dense edge ids (the
    order of :attr:`EdgeScalarGraph.edge_pairs`).  ``backend`` picks the
    merge kernel exactly as in
    :func:`~repro.core.scalar_tree.build_vertex_tree` (byte-identical
    results either way).
    """
    m = edge_graph.n_edges
    scalars = edge_graph.scalars
    pairs = edge_graph.edge_pairs
    # Decreasing scalar, ties by ascending edge id.
    order, rank = _accel_tree.rank_order(scalars)

    chosen = accel.resolve(
        backend, size=m, threshold=_VECTOR_MIN_EDGES, native=True
    )
    if chosen != "naive":
        parent = _accel_tree.edge_tree_parents(
            edge_graph.n_vertices, pairs, rank, chosen
        )
        return ScalarTree(parent, scalars.copy(), kind="edge")

    # min_id_edge per vertex: incident edge with minimum rank.
    n = edge_graph.n_vertices
    INF = m + 1
    min_id_edge = np.full(n, -1, dtype=np.int64)
    best_rank = np.full(n, INF, dtype=np.int64)
    for eid in range(m):
        u, v = pairs[eid]
        r = rank[eid]
        if r < best_rank[u]:
            best_rank[u] = r
            min_id_edge[u] = eid
        if r < best_rank[v]:
            best_rank[v] = r
            min_id_edge[v] = eid

    parent = [-1] * m
    uf = UnionFind(m)
    tree_root = list(range(m))
    rank_list = rank.tolist()
    min_edge_list = min_id_edge.tolist()
    pairs_list = pairs.tolist()

    for eid in order.tolist():
        rank_e = rank_list[eid]
        u, v = pairs_list[eid]
        for em in (min_edge_list[u], min_edge_list[v]):
            if em >= 0 and rank_list[em] < rank_e:
                root_e, root_m = uf.find(eid), uf.find(em)
                if root_e != root_m:
                    parent[tree_root[root_m]] = eid
                    merged = uf.union(root_e, root_m)
                    tree_root[merged] = eid

    return ScalarTree(
        np.array(parent, dtype=np.int64), scalars.copy(), kind="edge"
    )


def build_edge_tree_naive(edge_graph: EdgeScalarGraph) -> ScalarTree:
    """Naive edge scalar tree via the dual (line) graph.

    Builds ``Gd`` — a vertex per edge, adjacency when edges share an
    endpoint — then runs Algorithm 1 on it.  The dual has
    ``Σ_v deg(v)²`` edges, which is what makes this slow on skewed
    degree distributions (the paper reports >300× slower than
    Algorithm 3 on Wikipedia).
    """
    dual, edge_pairs = line_graph(edge_graph.graph)
    # Dual vertex i corresponds to dense edge id i, so scalars align.
    dual_scalar_graph = ScalarGraph(dual, edge_graph.scalars)
    tree = build_vertex_tree(dual_scalar_graph)
    return ScalarTree(tree.parent, tree.scalars, kind="edge")
