"""Tree simplification by scalar discretization (paper §II-E).

Rendering a super tree with hundreds of thousands of nodes is slow, so
the paper discretizes scalar values — nearby values snap to a common
level — and reruns Algorithm 2, producing an *approximate* super tree
with far fewer nodes.  Two binning schemes are provided; quantile bins
adapt to skewed measure distributions (k-core numbers, centralities).
"""

from __future__ import annotations

import numpy as np

from .scalar_tree import ScalarTree
from .super_tree import SuperTree, build_super_tree

__all__ = [
    "discretize_uniform",
    "discretize_quantile",
    "simplify_tree",
]


def discretize_uniform(values: np.ndarray, n_bins: int) -> np.ndarray:
    """Snap ``values`` to ``n_bins`` uniform levels over their range.

    Each value maps to the lower edge of its bin, so thresholds stay
    meaningful (a simplified peak is never taller than the original).
    """
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    values = np.asarray(values, dtype=np.float64)
    lo, hi = float(values.min()), float(values.max())
    if hi == lo:
        return values.copy()
    width = (hi - lo) / n_bins
    levels = np.floor((values - lo) / width).clip(0, n_bins - 1)
    return lo + levels * width


def discretize_quantile(values: np.ndarray, n_bins: int) -> np.ndarray:
    """Snap ``values`` to quantile levels (equal-population bins).

    Each value maps to the smallest value in its bin.  Robust to the
    heavy-tailed distributions typical of graph measures.
    """
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    values = np.asarray(values, dtype=np.float64)
    edges = np.quantile(values, np.linspace(0, 1, n_bins + 1))
    edges = np.unique(edges)
    if len(edges) <= 1:
        return values.copy()
    bins = np.searchsorted(edges, values, side="right") - 1
    bins = bins.clip(0, len(edges) - 2)
    # Representative of each bin: the minimum original value inside it.
    reps = np.full(len(edges) - 1, np.inf)
    np.minimum.at(reps, bins, values)
    return reps[bins]


def simplify_tree(
    tree: ScalarTree, n_bins: int, scheme: str = "uniform"
) -> SuperTree:
    """Approximate super tree with at most ~``n_bins`` distinct levels.

    Discretizes the tree's node scalars (``scheme`` in ``{"uniform",
    "quantile"}``) and reruns Algorithm 2.  Discretization can only
    *merge* values, and merging equal-valued parent/child chains is
    exactly what Algorithm 2 does, so the result is a coarsened version
    of the exact super tree.
    """
    if scheme == "uniform":
        snapped = discretize_uniform(tree.scalars, n_bins)
    elif scheme == "quantile":
        snapped = discretize_quantile(tree.scalars, n_bins)
    else:
        raise ValueError("scheme must be 'uniform' or 'quantile'")
    coarse = ScalarTree(tree.parent.copy(), snapped, kind=tree.kind)
    return build_super_tree(coarse)
