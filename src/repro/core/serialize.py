"""JSON (de)serialization of scalar trees and super trees.

Building the tree for a huge graph can dominate an analysis session;
persisting it lets the visualization side (or another process) reload
in milliseconds.  The format is a plain JSON document — stable,
diff-able, and language-agnostic.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from .scalar_tree import ScalarTree
from .super_tree import SuperTree

__all__ = [
    "scalar_tree_to_json",
    "scalar_tree_from_json",
    "super_tree_to_json",
    "super_tree_from_json",
    "save_tree",
    "load_tree",
    "array_to_json",
    "array_from_json",
    "tile_to_json",
    "tile_from_json",
    "artifact_to_json",
    "artifact_from_json",
]

PathLike = Union[str, Path]
_FORMAT = "repro-scalar-tree/1"
_ARRAY_FORMAT = "repro-artifact/1"


def scalar_tree_to_json(tree: ScalarTree) -> str:
    """Serialize a :class:`ScalarTree` to a JSON string."""
    return json.dumps(
        {
            "format": _FORMAT,
            "type": "scalar_tree",
            "kind": tree.kind,
            "parent": tree.parent.tolist(),
            "scalars": tree.scalars.tolist(),
        }
    )


def scalar_tree_from_json(text: str) -> ScalarTree:
    """Inverse of :func:`scalar_tree_to_json`."""
    doc = json.loads(text)
    _check(doc, "scalar_tree")
    return ScalarTree(
        np.array(doc["parent"], dtype=np.int64),
        np.array(doc["scalars"], dtype=np.float64),
        kind=doc["kind"],
    )


def super_tree_to_json(tree: SuperTree) -> str:
    """Serialize a :class:`SuperTree` to a JSON string."""
    return json.dumps(
        {
            "format": _FORMAT,
            "type": "super_tree",
            "kind": tree.kind,
            "parent": tree.parent.tolist(),
            "scalars": tree.scalars.tolist(),
            "members": [m.tolist() for m in tree.members],
        }
    )


def super_tree_from_json(text: str) -> SuperTree:
    """Inverse of :func:`super_tree_to_json`."""
    doc = json.loads(text)
    _check(doc, "super_tree")
    return SuperTree(
        np.array(doc["scalars"], dtype=np.float64),
        np.array(doc["parent"], dtype=np.int64),
        [np.array(m, dtype=np.int64) for m in doc["members"]],
        kind=doc["kind"],
    )


def save_tree(tree, path: PathLike) -> Path:
    """Save either tree type to ``path`` (dispatch on type)."""
    if isinstance(tree, SuperTree):
        text = super_tree_to_json(tree)
    elif isinstance(tree, ScalarTree):
        text = scalar_tree_to_json(tree)
    else:
        raise TypeError("expected ScalarTree or SuperTree")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path


def load_tree(path: PathLike):
    """Load whichever tree type ``path`` holds."""
    text = Path(path).read_text()
    doc = json.loads(text)
    if doc.get("type") == "super_tree":
        return super_tree_from_json(text)
    return scalar_tree_from_json(text)


def array_to_json(arr: np.ndarray) -> str:
    """Serialize a numeric numpy array (any shape) to a JSON string.

    Together with the tree documents this is the cache storage format of
    :mod:`repro.engine.cache`: every persistable pipeline artifact is a
    tree or a numeric array.
    """
    arr = np.asarray(arr)
    if arr.dtype.kind not in "fiub":
        raise TypeError(f"cannot serialize array of dtype {arr.dtype}")
    return json.dumps(
        {
            "format": _ARRAY_FORMAT,
            "type": "array",
            "dtype": arr.dtype.name,
            "shape": list(arr.shape),
            "data": arr.ravel().tolist(),
        }
    )


def array_from_json(text: str) -> np.ndarray:
    """Inverse of :func:`array_to_json`."""
    doc = json.loads(text)
    if doc.get("format") != _ARRAY_FORMAT or doc.get("type") != "array":
        raise ValueError(f"not a {_ARRAY_FORMAT} array document")
    return np.array(doc["data"], dtype=np.dtype(doc["dtype"])).reshape(
        doc["shape"]
    )


def tile_to_json(tile) -> str:
    """Serialize a terrain :class:`~repro.terrain.heightfield.Tile`.

    The cache's disk tier stores tiles in the same JSON envelope family
    as trees and arrays; the compact binary wire form
    (:meth:`Tile.to_bytes`) is only used on the serving path.
    """
    return json.dumps(
        {
            "format": _ARRAY_FORMAT,
            "type": "tile",
            "level": tile.level,
            "tx": tile.tx,
            "ty": tile.ty,
            "shape": list(tile.height.shape),
            "extent": list(tile.extent),
            "base": tile.base,
            "height": tile.height.ravel().tolist(),
            "node": tile.node.ravel().tolist(),
        }
    )


def tile_from_json(text: str):
    """Inverse of :func:`tile_to_json`."""
    from ..terrain.heightfield import Tile

    doc = json.loads(text)
    if doc.get("format") != _ARRAY_FORMAT or doc.get("type") != "tile":
        raise ValueError(f"not a {_ARRAY_FORMAT} tile document")
    shape = tuple(doc["shape"])
    return Tile(
        doc["level"], doc["tx"], doc["ty"],
        np.array(doc["height"], dtype=np.float64).reshape(shape),
        np.array(doc["node"], dtype=np.int64).reshape(shape),
        tuple(doc["extent"]),
        doc["base"],
    )


def artifact_to_json(obj) -> str:
    """Serialize any cacheable pipeline artifact (tree, array or tile).

    Raises ``TypeError`` for objects with no stable on-disk form (e.g.
    terrain layouts), which the cache keeps in memory only.
    """
    # Late import: terrain depends on core, so core can only reach the
    # Tile type at call time.
    from ..terrain.heightfield import Tile

    if isinstance(obj, SuperTree):
        return super_tree_to_json(obj)
    if isinstance(obj, ScalarTree):
        return scalar_tree_to_json(obj)
    if isinstance(obj, Tile):
        return tile_to_json(obj)
    if isinstance(obj, np.ndarray):
        return array_to_json(obj)
    raise TypeError(f"no serialized form for {type(obj).__name__}")


def artifact_from_json(text: str):
    """Inverse of :func:`artifact_to_json` (dispatch on document type)."""
    doc = json.loads(text)
    kind = doc.get("type")
    if kind == "super_tree":
        return super_tree_from_json(text)
    if kind == "scalar_tree":
        return scalar_tree_from_json(text)
    if kind == "array":
        return array_from_json(text)
    if kind == "tile":
        return tile_from_json(text)
    raise ValueError(f"unknown artifact document type {kind!r}")


def _check(doc: dict, expected: str) -> None:
    if doc.get("format") != _FORMAT:
        raise ValueError(f"not a {_FORMAT} document")
    if doc.get("type") != expected:
        raise ValueError(
            f"expected a {expected} document, got {doc.get('type')!r}"
        )
