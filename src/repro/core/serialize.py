"""JSON (de)serialization of scalar trees and super trees.

Building the tree for a huge graph can dominate an analysis session;
persisting it lets the visualization side (or another process) reload
in milliseconds.  The format is a plain JSON document — stable,
diff-able, and language-agnostic.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from .scalar_tree import ScalarTree
from .super_tree import SuperTree

__all__ = [
    "scalar_tree_to_json",
    "scalar_tree_from_json",
    "super_tree_to_json",
    "super_tree_from_json",
    "save_tree",
    "load_tree",
]

PathLike = Union[str, Path]
_FORMAT = "repro-scalar-tree/1"


def scalar_tree_to_json(tree: ScalarTree) -> str:
    """Serialize a :class:`ScalarTree` to a JSON string."""
    return json.dumps(
        {
            "format": _FORMAT,
            "type": "scalar_tree",
            "kind": tree.kind,
            "parent": tree.parent.tolist(),
            "scalars": tree.scalars.tolist(),
        }
    )


def scalar_tree_from_json(text: str) -> ScalarTree:
    """Inverse of :func:`scalar_tree_to_json`."""
    doc = json.loads(text)
    _check(doc, "scalar_tree")
    return ScalarTree(
        np.array(doc["parent"], dtype=np.int64),
        np.array(doc["scalars"], dtype=np.float64),
        kind=doc["kind"],
    )


def super_tree_to_json(tree: SuperTree) -> str:
    """Serialize a :class:`SuperTree` to a JSON string."""
    return json.dumps(
        {
            "format": _FORMAT,
            "type": "super_tree",
            "kind": tree.kind,
            "parent": tree.parent.tolist(),
            "scalars": tree.scalars.tolist(),
            "members": [m.tolist() for m in tree.members],
        }
    )


def super_tree_from_json(text: str) -> SuperTree:
    """Inverse of :func:`super_tree_to_json`."""
    doc = json.loads(text)
    _check(doc, "super_tree")
    return SuperTree(
        np.array(doc["scalars"], dtype=np.float64),
        np.array(doc["parent"], dtype=np.int64),
        [np.array(m, dtype=np.int64) for m in doc["members"]],
        kind=doc["kind"],
    )


def save_tree(tree, path: PathLike) -> Path:
    """Save either tree type to ``path`` (dispatch on type)."""
    if isinstance(tree, SuperTree):
        text = super_tree_to_json(tree)
    elif isinstance(tree, ScalarTree):
        text = scalar_tree_to_json(tree)
    else:
        raise TypeError("expected ScalarTree or SuperTree")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path


def load_tree(path: PathLike):
    """Load whichever tree type ``path`` holds."""
    text = Path(path).read_text()
    doc = json.loads(text)
    if doc.get("type") == "super_tree":
        return super_tree_from_json(text)
    return scalar_tree_from_json(text)


def _check(doc: dict, expected: str) -> None:
    if doc.get("format") != _FORMAT:
        raise ValueError(f"not a {_FORMAT} document")
    if doc.get("type") != expected:
        raise ValueError(
            f"expected a {expected} document, got {doc.get('type')!r}"
        )
