"""Super scalar trees — the paper's Algorithm 2.

When scalar values repeat, the raw tree from Algorithm 1 can contain
subtrees that do not correspond to any maximal α-connected component
(paper Fig 3).  Algorithm 2 repairs this by merging every node with all
of its equal-valued descendants into a *super node*; the resulting super
tree again satisfies Properties 2–4 (a super node may represent several
items, so Property 1 is relaxed).

The super tree is also the structure the terrain layout consumes, and
the structure reported in Table II (``Nt`` = number of super nodes).
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Tuple

import numpy as np

from .scalar_tree import ScalarTree, _children_table

__all__ = ["SuperTree", "build_super_tree", "splice_super_tree"]


class SuperTree:
    """Tree of super nodes; each super node groups equal-valued items.

    Attributes
    ----------
    scalars:
        Scalar value per super node.
    parent:
        Parent super node id (−1 for roots); parent scalar is strictly
        smaller.
    members:
        ``members[s]`` — array of original item ids merged into ``s``.
    kind:
        ``"vertex"`` or ``"edge"`` (inherited from the source tree).
    """

    __slots__ = (
        "scalars",
        "parent",
        "members",
        "kind",
        "_children",
        "_roots",
        "_node_of_item",
        "_pre_order",
        "_span",
        "_node_span",
        "_subtree_items",
    )

    def __init__(
        self,
        scalars: np.ndarray,
        parent: np.ndarray,
        members: List[np.ndarray],
        kind: str = "vertex",
    ) -> None:
        self.scalars = np.asarray(scalars, dtype=np.float64)
        self.parent = np.asarray(parent, dtype=np.int64)
        self.members = [np.asarray(m, dtype=np.int64) for m in members]
        self.kind = kind
        if not (len(self.scalars) == len(self.parent) == len(self.members)):
            raise ValueError("scalars, parent, members must align")
        self._children: Optional[List[List[int]]] = None
        self._roots: Optional[List[int]] = None
        self._node_of_item: Optional[np.ndarray] = None
        self._pre_order: Optional[np.ndarray] = None
        self._span: Optional[np.ndarray] = None
        self._node_span: Optional[np.ndarray] = None
        self._subtree_items: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Shape accessors
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of super nodes (Table II's ``Nt``)."""
        return len(self.scalars)

    @property
    def n_items(self) -> int:
        """Number of original items across all members."""
        return int(sum(len(m) for m in self.members))

    @property
    def roots(self) -> List[int]:
        if self._roots is None:
            self._roots = [int(i) for i in np.flatnonzero(self.parent < 0)]
        return self._roots

    def children(self, node: Optional[int] = None):
        """Children of ``node``, or the whole table when ``node`` is None."""
        if self._children is None:
            self._children = _children_table(self.parent, self.n_nodes)
        if node is None:
            return self._children
        return self._children[node]

    def node_of_item(self, item: Optional[int] = None):
        """Super node containing original item ``item`` (or full map)."""
        if self._node_of_item is None:
            n_items = self.n_items
            mapping = -np.ones(n_items, dtype=np.int64)
            for s, member in enumerate(self.members):
                mapping[member] = s
            self._node_of_item = mapping
        if item is None:
            return self._node_of_item
        return int(self._node_of_item[item])

    # ------------------------------------------------------------------
    # Subtree machinery (Euler-tour spans for O(size) member extraction)
    # ------------------------------------------------------------------
    def _ensure_tour(self) -> None:
        if self._pre_order is not None:
            return
        n = self.n_nodes
        children = self.children()
        pre = np.empty(n, dtype=np.int64)
        span = np.empty((n, 2), dtype=np.int64)
        cursor = 0
        for root in self.roots:
            stack: List[Tuple[int, bool]] = [(root, False)]
            while stack:
                node, done = stack.pop()
                if done:
                    span[node, 1] = cursor
                    continue
                pre[cursor] = node
                span[node, 0] = cursor
                cursor += 1
                stack.append((node, True))
                for child in reversed(children[node]):
                    stack.append((child, False))
        self._pre_order = pre
        self._node_span = span.copy()  # spans over super-node pre-order
        # Items concatenated in pre-order; a subtree's items are one slice.
        counts = np.array([len(self.members[int(s)]) for s in pre])
        offsets = np.zeros(n + 1, dtype=np.int64)
        offsets[1:] = np.cumsum(counts)
        items = np.empty(offsets[-1], dtype=np.int64)
        for i, s in enumerate(pre):
            items[offsets[i]: offsets[i + 1]] = self.members[int(s)]
        self._subtree_items = items
        # Re-index span into item offsets.
        self._span = np.column_stack(
            [offsets[span[:, 0]], offsets[span[:, 1]]]
        )

    def subtree_node_ids(self, node: int) -> np.ndarray:
        """All super node ids in the subtree rooted at ``node`` (pre-order)."""
        self._ensure_tour()
        lo, hi = self._node_span[node]
        return self._pre_order[lo:hi]

    def subtree_size(self, node: int) -> int:
        """Number of original items in the subtree rooted at ``node``."""
        self._ensure_tour()
        lo, hi = self._span[node]
        return int(hi - lo)

    def subtree_items(self, node: int) -> np.ndarray:
        """All original item ids in the subtree rooted at ``node``."""
        self._ensure_tour()
        lo, hi = self._span[node]
        return self._subtree_items[lo:hi]

    def subtree_sizes(self) -> np.ndarray:
        """Vector of :meth:`subtree_size` for every super node."""
        self._ensure_tour()
        return (self._span[:, 1] - self._span[:, 0]).copy()

    def is_ancestor(self, anc: int, desc: int) -> bool:
        """Whether super node ``anc`` is an ancestor of (or is) ``desc``."""
        self._ensure_tour()
        lo_a, hi_a = self._span[anc]
        lo_d, hi_d = self._span[desc]
        return bool(lo_a <= lo_d and hi_d <= hi_a)

    # ------------------------------------------------------------------
    # α-component queries (the tree-side of Properties 2–4)
    # ------------------------------------------------------------------
    def component_roots_at(self, alpha: float) -> List[int]:
        """Super nodes whose subtree is a maximal α-connected component.

        These are the nodes at height >= α whose parent lies strictly
        below α — i.e. the subtrees remaining when the tree is cut by
        the plane ``height = alpha``.
        """
        above = self.scalars >= alpha
        out = []
        for node in np.flatnonzero(above):
            p = self.parent[node]
            if p < 0 or self.scalars[p] < alpha:
                out.append(int(node))
        return out

    def components_at(self, alpha: float) -> List[np.ndarray]:
        """Item sets of all maximal α-connected components."""
        return [
            self.subtree_items(root)
            for root in self.component_roots_at(alpha)
        ]

    def mcc_items(self, item: int) -> np.ndarray:
        """Items of ``MCC(item)`` — the maximal ``scalar(item)``-connected
        component containing ``item`` (paper Definition 2 / Proposition 2:
        the subtree rooted at the super node that contains the item)."""
        return self.subtree_items(self.node_of_item(item))

    def validate(self) -> None:
        """Check super-tree invariants; raise ``ValueError`` on violation."""
        for i, p in enumerate(self.parent):
            if p >= 0 and not self.scalars[p] < self.scalars[i]:
                raise ValueError(
                    "parent scalar must be strictly below child scalar"
                )
        counts = np.zeros(self.n_items, dtype=np.int64)
        for member in self.members:
            counts[member] += 1
        if not np.all(counts == 1):
            raise ValueError("members must partition the items")

    def __repr__(self) -> str:
        return (
            f"SuperTree(kind={self.kind!r}, n_nodes={self.n_nodes}, "
            f"n_items={self.n_items}, n_roots={len(self.roots)})"
        )


def build_super_tree(tree: ScalarTree) -> SuperTree:
    """Algorithm 2: merge equal-valued ancestor/descendant chains.

    Breadth-first from each chain head (a node whose parent is absent or
    strictly lower), absorb all descendants reachable through equal-valued
    children into one super node.  Single pass, O(n).
    """
    n = tree.n_nodes
    scalars = tree.scalars
    children = tree.children()
    parent = tree.parent

    node_of = -np.ones(n, dtype=np.int64)
    super_scalars: List[float] = []
    super_parent: List[int] = []
    members: List[List[int]] = []

    # Chain heads in topological order so a head's parent super node
    # already exists when the head is reached.
    heads = deque()
    for node in tree.iter_topological():
        p = parent[node]
        if p < 0 or scalars[p] < scalars[node]:
            heads.append(int(node))

    for head in heads:
        sid = len(super_scalars)
        super_scalars.append(float(scalars[head]))
        p = parent[head]
        super_parent.append(-1 if p < 0 else int(node_of[p]))
        group: List[int] = []
        queue = deque([head])
        while queue:
            node = queue.popleft()
            node_of[node] = sid
            group.append(node)
            for child in children[node]:
                if scalars[child] == scalars[node]:
                    queue.append(child)
        members.append(group)

    return SuperTree(
        np.array(super_scalars, dtype=np.float64),
        np.array(super_parent, dtype=np.int64),
        [np.array(g, dtype=np.int64) for g in members],
        kind=tree.kind,
    )


def splice_super_tree(
    tree: ScalarTree, old: SuperTree, clean_above: float
) -> SuperTree:
    """Algorithm 2 with structural reuse after a localized tree update.

    Contract (provided by the suffix replay in
    :mod:`repro.stream.incremental`): every equal-value chain of ``tree``
    whose scalar is strictly greater than ``clean_above`` has exactly the
    same membership it had in the tree that ``old`` was built from — only
    the chain's *parent* may differ.  Such chains reuse their member
    arrays from ``old`` (one vectorised ``node_of`` assignment instead of
    a Python BFS); chains at or below ``clean_above`` are rebuilt as in
    :func:`build_super_tree`.

    Super-node ids follow the same topological head order as
    :func:`build_super_tree`, so the result is array-identical to a full
    rebuild on ``tree``.
    """
    n = tree.n_nodes
    scalars = tree.scalars
    children = tree.children()
    parent = tree.parent

    old_node_of = old.node_of_item()
    node_of = -np.ones(n, dtype=np.int64)
    super_scalars: List[float] = []
    super_parent: List[int] = []
    members: List[np.ndarray] = []

    for head in tree.iter_topological():
        p = parent[head]
        if p >= 0 and scalars[p] >= scalars[head]:
            continue  # not a chain head
        sid = len(super_scalars)
        super_scalars.append(float(scalars[head]))
        super_parent.append(-1 if p < 0 else int(node_of[p]))
        if scalars[head] > clean_above:
            group = old.members[int(old_node_of[head])]
            node_of[group] = sid
            members.append(group)
        else:
            collected: List[int] = []
            queue = deque([int(head)])
            while queue:
                node = queue.popleft()
                node_of[node] = sid
                collected.append(node)
                for child in children[node]:
                    if scalars[child] == scalars[node]:
                        queue.append(child)
            members.append(np.array(collected, dtype=np.int64))

    return SuperTree(
        np.array(super_scalars, dtype=np.float64),
        np.array(super_parent, dtype=np.int64),
        members,
        kind=tree.kind,
    )
