"""Direct extraction of maximal α-(edge-)connected components.

These brute-force routines implement Definitions 1–3 literally: filter
by threshold, take connected components of the induced structure.  They
are the ground truth the scalar-tree machinery is validated against, and
they also serve callers who need a single threshold without building the
whole tree.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .scalar_graph import EdgeScalarGraph, ScalarGraph
from .union_find import UnionFind

__all__ = [
    "maximal_alpha_components",
    "mcc",
    "maximal_alpha_edge_components",
    "edge_mcc",
]


def maximal_alpha_components(
    scalar_graph: ScalarGraph, alpha: float
) -> List[np.ndarray]:
    """All maximal α-connected components (Definition 1).

    Each component is returned as a sorted array of vertex ids; the list
    is ordered by (descending size, then smallest member) for
    determinism.
    """
    graph = scalar_graph.graph
    keep = scalar_graph.scalars >= alpha
    uf = UnionFind(graph.n_vertices)
    for u, v in graph.edges():
        if keep[u] and keep[v]:
            uf.union(u, v)
    by_root: dict = {}
    for v in np.flatnonzero(keep):
        by_root.setdefault(uf.find(int(v)), []).append(int(v))
    comps = [np.array(sorted(c), dtype=np.int64) for c in by_root.values()]
    comps.sort(key=lambda c: (-len(c), int(c[0])))
    return comps


def mcc(scalar_graph: ScalarGraph, v: int) -> np.ndarray:
    """``MCC(v)``: the maximal ``v.scalar``-connected component containing
    ``v`` (Definition 2), as a sorted vertex array."""
    alpha = scalar_graph.scalars[v]
    for comp in maximal_alpha_components(scalar_graph, alpha):
        if v in comp:
            return comp
    raise AssertionError("v must belong to some component at its own level")


def maximal_alpha_edge_components(
    edge_graph: EdgeScalarGraph, alpha: float
) -> List[np.ndarray]:
    """All maximal α-edge connected components (Definition 3).

    Components are returned as sorted arrays of dense *edge ids* (two
    edges are adjacent when they share an endpoint).
    """
    m = edge_graph.n_edges
    keep = edge_graph.scalars >= alpha
    pairs = edge_graph.edge_pairs
    uf = UnionFind(m)
    # Union surviving edges sharing an endpoint: link every surviving
    # edge at a vertex to the first surviving edge seen at that vertex.
    first_at = -np.ones(edge_graph.n_vertices, dtype=np.int64)
    for eid in range(m):
        if not keep[eid]:
            continue
        for vertex in pairs[eid]:
            anchor = first_at[vertex]
            if anchor < 0:
                first_at[vertex] = eid
            else:
                uf.union(int(anchor), eid)
    by_root: dict = {}
    for eid in np.flatnonzero(keep):
        by_root.setdefault(uf.find(int(eid)), []).append(int(eid))
    comps = [np.array(sorted(c), dtype=np.int64) for c in by_root.values()]
    comps.sort(key=lambda c: (-len(c), int(c[0])))
    return comps


def edge_mcc(edge_graph: EdgeScalarGraph, eid: int) -> np.ndarray:
    """Edge analogue of :func:`mcc`: the maximal ``e.scalar``-edge
    connected component containing edge ``eid``."""
    alpha = edge_graph.scalars[eid]
    for comp in maximal_alpha_edge_components(edge_graph, alpha):
        if eid in comp:
            return comp
    raise AssertionError("edge must belong to some component at its own level")
