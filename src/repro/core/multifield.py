"""Multi-field analysis: Local/Global Correlation Index (paper §II-F).

Given two scalar fields Sᵢ, Sⱼ on the same graph, the Local Correlation
Index ``LCI(v)`` is the Pearson correlation of the two fields over the
(closed) 1-hop neighbourhood of ``v``; the Global Correlation Index is
the average LCI over all vertices.  ``outlier_score = −LCI`` flags
vertices whose local trend opposes the global one (paper §III-C uses it
to find low-degree/high-betweenness bridge vertices).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..graph.csr import CSRGraph

__all__ = [
    "local_correlation_index",
    "global_correlation_index",
    "outlier_score",
    "khop_local_correlation_index",
    "edge_local_correlation_index",
    "edge_global_correlation_index",
]


def _neighborhood_mean(graph: CSRGraph, values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Mean of ``values`` over each closed 1-hop neighbourhood.

    Returns ``(means, sizes)``.  The neighbourhood of ``v`` includes
    ``v`` itself, so isolated vertices are well-defined.
    """
    n = graph.n_vertices
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
    sums = values.copy()
    np.add.at(sums, src, values[graph.indices])
    sizes = graph.degree().astype(np.float64) + 1.0
    return sums / sizes, sizes


def local_correlation_index(
    graph: CSRGraph, field_i: np.ndarray, field_j: np.ndarray
) -> np.ndarray:
    """``LCI(v)`` for every vertex, vectorised over 1-hop neighbourhoods.

    Implements the paper's covariance formulation:

    .. math::
        LCI(v) = \\frac{Cov_{ij}(v)}{\\sqrt{Cov_{ii}(v)}\\sqrt{Cov_{jj}(v)}}

    with moments taken over the closed neighbourhood ``N(v)``.  Where a
    field is constant on ``N(v)`` (zero variance) LCI is defined as 0.
    """
    field_i = np.asarray(field_i, dtype=np.float64)
    field_j = np.asarray(field_j, dtype=np.float64)
    if len(field_i) != graph.n_vertices or len(field_j) != graph.n_vertices:
        raise ValueError("fields must have one value per vertex")
    mean_i, __ = _neighborhood_mean(graph, field_i)
    mean_j, __ = _neighborhood_mean(graph, field_j)
    mean_ii, __ = _neighborhood_mean(graph, field_i * field_i)
    mean_jj, __ = _neighborhood_mean(graph, field_j * field_j)
    mean_ij, __ = _neighborhood_mean(graph, field_i * field_j)
    cov_ij = mean_ij - mean_i * mean_j
    var_i = np.maximum(mean_ii - mean_i * mean_i, 0.0)
    var_j = np.maximum(mean_jj - mean_j * mean_j, 0.0)
    denom = np.sqrt(var_i) * np.sqrt(var_j)
    with np.errstate(divide="ignore", invalid="ignore"):
        lci = np.where(denom > 0, cov_ij / np.where(denom > 0, denom, 1.0), 0.0)
    return np.clip(lci, -1.0, 1.0)


def khop_local_correlation_index(
    graph: CSRGraph, field_i: np.ndarray, field_j: np.ndarray, k: int = 1
) -> np.ndarray:
    """``LCI(v)`` over closed k-hop neighbourhoods (paper allows any k;
    experiments use k = 1, for which this matches
    :func:`local_correlation_index`)."""
    if k < 1:
        raise ValueError("k must be >= 1")
    if k == 1:
        return local_correlation_index(graph, field_i, field_j)
    field_i = np.asarray(field_i, dtype=np.float64)
    field_j = np.asarray(field_j, dtype=np.float64)
    n = graph.n_vertices
    lci = np.zeros(n)
    for v in range(n):
        frontier = {v}
        seen = {v}
        for __ in range(k):
            nxt = set()
            for u in frontier:
                nxt.update(int(w) for w in graph.neighbors(u))
            frontier = nxt - seen
            seen |= nxt
        idx = np.fromiter(seen, dtype=np.int64)
        a, b = field_i[idx], field_j[idx]
        va = a.var()
        vb = b.var()
        if va > 0 and vb > 0:
            lci[v] = float(((a - a.mean()) * (b - b.mean())).mean()
                           / (np.sqrt(va) * np.sqrt(vb)))
    return np.clip(lci, -1.0, 1.0)


def global_correlation_index(
    graph: CSRGraph, field_i: np.ndarray, field_j: np.ndarray
) -> float:
    """``GCI`` — the mean LCI over all vertices (paper §II-F)."""
    return float(local_correlation_index(graph, field_i, field_j).mean())


def edge_local_correlation_index(
    graph: CSRGraph, field_i: np.ndarray, field_j: np.ndarray
) -> np.ndarray:
    """LCI over *edge* scalar fields (paper: "this method can easily be
    adapted to analyze edge-based scalar graphs").

    The neighbourhood of an edge is itself plus every edge sharing one
    of its endpoints; moments are taken over that closed edge set.
    Fields are indexed by dense edge id.  O(Σ deg(v)) per pass.
    """
    field_i = np.asarray(field_i, dtype=np.float64)
    field_j = np.asarray(field_j, dtype=np.float64)
    m = graph.n_edges
    if len(field_i) != m or len(field_j) != m:
        raise ValueError("fields must have one value per edge")
    pairs = graph.edge_array()
    # Per-vertex sums over incident edges, for the five moments.
    n = graph.n_vertices

    def vertex_sums(values: np.ndarray) -> np.ndarray:
        out = np.zeros(n)
        np.add.at(out, pairs[:, 0], values)
        np.add.at(out, pairs[:, 1], values)
        return out

    degree = graph.degree().astype(np.float64)
    # |N(e)| = deg(u) + deg(v) − 1 (e counted at both endpoints).
    sizes = degree[pairs[:, 0]] + degree[pairs[:, 1]] - 1.0

    def edge_mean(values: np.ndarray) -> np.ndarray:
        per_vertex = vertex_sums(values)
        total = per_vertex[pairs[:, 0]] + per_vertex[pairs[:, 1]] - values
        return total / sizes

    mean_i = edge_mean(field_i)
    mean_j = edge_mean(field_j)
    mean_ii = edge_mean(field_i * field_i)
    mean_jj = edge_mean(field_j * field_j)
    mean_ij = edge_mean(field_i * field_j)
    cov_ij = mean_ij - mean_i * mean_j
    var_i = np.maximum(mean_ii - mean_i * mean_i, 0.0)
    var_j = np.maximum(mean_jj - mean_j * mean_j, 0.0)
    denom = np.sqrt(var_i) * np.sqrt(var_j)
    lci = np.where(denom > 0, cov_ij / np.where(denom > 0, denom, 1.0), 0.0)
    return np.clip(lci, -1.0, 1.0)


def edge_global_correlation_index(
    graph: CSRGraph, field_i: np.ndarray, field_j: np.ndarray
) -> float:
    """Mean edge-LCI over all edges."""
    return float(edge_local_correlation_index(graph, field_i, field_j).mean())


def outlier_score(
    graph: CSRGraph, field_i: np.ndarray, field_j: np.ndarray
) -> np.ndarray:
    """``outlier_score(v) = −LCI(v)`` (paper §III-C): large where the
    local correlation opposes the fields' typical relationship."""
    return -local_correlation_index(graph, field_i, field_j)
