"""Persistent measured-cost ledger feeding planning decisions.

PR 5's ledger showed ``--dist auto`` *losing* wall-clock (0.77–0.83×)
on this host because :mod:`repro.dist.plan` guessed costs from a static
table.  This module closes that loop: the engine and the dist layer
record what stages *actually* cost here — per-stage build seconds,
per-shard serialization bytes/seconds, reduce seconds — and the
planner consults those measurements before agreeing to shard.

Entries are EWMA-aggregated under a composite key::

    stage|measure|backend|size_bucket

where ``size_bucket`` is the power-of-two bucket of the input size
(edge count), so a measurement on a 50k-edge graph informs an estimate
for a 70k-edge one without being polluted by a 1M-edge run.
:meth:`CostLedger.estimate` scales across buckets linearly in
``2**Δbucket`` when only a neighbouring bucket has data.

The ledger persists as JSON under the artifact cache directory
(atomic write-then-rename) and is stamped with a host fingerprint;
measurements from a different host are discarded on load rather than
silently steering this host's planner.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import threading
from pathlib import Path
from typing import Dict, Optional

__all__ = [
    "CostLedger",
    "host_fingerprint",
    "size_bucket",
    "default_ledger",
    "ledger_for",
]

_WILDCARD = "-"

_fingerprint_cache: Optional[Dict[str, object]] = None
_fingerprint_lock = threading.Lock()


def _compiler_banner() -> str:
    cc = os.environ.get("CC", "cc")
    try:
        out = subprocess.run(
            [cc, "--version"],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            timeout=5,
        ).stdout
    except (OSError, subprocess.SubprocessError):
        return "none"
    first = out.decode(errors="replace").splitlines()
    return first[0].strip() if first else "none"


def host_fingerprint() -> Dict[str, object]:
    """A stable identity for *this* host's performance envelope.

    Used to stamp bench ledgers and the cost ledger so comparisons
    across different machines are refused instead of producing phantom
    regressions.  Cached after the first call (the compiler probe costs
    a subprocess).
    """
    global _fingerprint_cache
    with _fingerprint_lock:
        if _fingerprint_cache is None:
            try:
                from repro import accel

                backend = accel.get_backend()
            except Exception:
                backend = "unknown"
            _fingerprint_cache = {
                "cpus": os.cpu_count() or 1,
                "platform": platform.platform(),
                "machine": platform.machine(),
                "python": sys.version.split()[0],
                "compiler": _compiler_banner(),
                "accel": backend,
            }
        return dict(_fingerprint_cache)


def size_bucket(size: int) -> int:
    """Power-of-two bucket index for an input size (edge count)."""
    size = int(size)
    if size <= 0:
        return 0
    return size.bit_length()


def _key(stage: str, measure: Optional[str], backend: Optional[str],
         bucket: int) -> str:
    return "|".join(
        (stage, measure or _WILDCARD, backend or _WILDCARD, str(bucket))
    )


class CostLedger:
    """EWMA-aggregated measured costs, optionally persisted to JSON.

    ``path=None`` gives a memory-only ledger (used in tests and when no
    cache directory is configured).  With a path, every :meth:`record`
    autosaves (atomic write-then-rename) unless ``autosave=False``.
    """

    def __init__(
        self,
        path: Optional[os.PathLike] = None,
        *,
        alpha: float = 0.3,
        autosave: bool = True,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.path = Path(path) if path is not None else None
        self.alpha = alpha
        self.autosave = autosave
        self.host = host_fingerprint()
        self._entries: Dict[str, Dict[str, float]] = {}
        self._lock = threading.Lock()
        if self.path is not None:
            self._load()

    # -- persistence ---------------------------------------------------
    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return
        if not isinstance(raw, dict):
            return
        # Measurements from another machine would steer this host's
        # planner with someone else's timings: start fresh instead.
        if raw.get("host") != self.host:
            return
        entries = raw.get("entries")
        if isinstance(entries, dict):
            self._entries = {
                k: dict(v) for k, v in entries.items() if isinstance(v, dict)
            }

    def save(self) -> None:
        if self.path is None:
            return
        payload = {"version": 1, "host": self.host, "entries": self._entries}
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_name(self.path.name + f".tmp{os.getpid()}")
            tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
            tmp.replace(self.path)
        except OSError:
            # A read-only or vanished cache dir must never fail a build.
            pass

    # -- recording / estimating ---------------------------------------
    def record(
        self,
        stage: str,
        seconds: float,
        *,
        measure: Optional[str] = None,
        backend: Optional[str] = None,
        size: int = 0,
        nbytes: Optional[int] = None,
    ) -> None:
        """Fold one measurement into the ledger."""
        if seconds < 0:
            return
        key = _key(stage, measure, backend, size_bucket(size))
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = {"ewma_s": float(seconds), "last_s": float(seconds),
                         "count": 0}
                self._entries[key] = entry
            else:
                entry["ewma_s"] = (
                    self.alpha * float(seconds)
                    + (1.0 - self.alpha) * entry["ewma_s"]
                )
                entry["last_s"] = float(seconds)
            entry["count"] = int(entry.get("count", 0)) + 1
            if nbytes is not None:
                prev = entry.get("ewma_bytes")
                entry["ewma_bytes"] = (
                    float(nbytes) if prev is None
                    else self.alpha * float(nbytes)
                    + (1.0 - self.alpha) * prev
                )
        if self.autosave:
            self.save()

    def _match(self, stage: str, measure: Optional[str],
               backend: Optional[str]) -> Dict[int, Dict[str, float]]:
        """Entries for ``stage`` whose measure/backend are compatible
        with the query (``None`` in the query matches anything),
        keyed by size bucket.  Exact matches shadow wildcard ones."""
        by_bucket: Dict[int, Dict[str, float]] = {}
        exactness: Dict[int, int] = {}
        with self._lock:
            items = list(self._entries.items())
        for key, entry in items:
            k_stage, k_measure, k_backend, k_bucket = key.split("|", 3)
            if k_stage != stage:
                continue
            if measure is not None and k_measure not in (measure, _WILDCARD):
                continue
            if backend is not None and k_backend not in (backend, _WILDCARD):
                continue
            score = (k_measure != _WILDCARD) + (k_backend != _WILDCARD)
            bucket = int(k_bucket)
            if score >= exactness.get(bucket, -1):
                exactness[bucket] = score
                by_bucket[bucket] = entry
        return by_bucket

    def estimate(
        self,
        stage: str,
        *,
        measure: Optional[str] = None,
        backend: Optional[str] = None,
        size: int = 0,
    ) -> Optional[float]:
        """Estimated seconds for ``stage`` at ``size``, or ``None`` if
        nothing relevant was ever measured.

        Prefers the exact size bucket; otherwise takes the nearest
        measured bucket and scales linearly by ``2**Δbucket`` (stage
        costs here are near-linear in edge count).
        """
        by_bucket = self._match(stage, measure, backend)
        if not by_bucket:
            return None
        want = size_bucket(size)
        best = min(by_bucket, key=lambda b: (abs(b - want), b))
        base = by_bucket[best]["ewma_s"]
        return base * (2.0 ** (want - best))

    def estimate_bytes(
        self,
        stage: str,
        *,
        measure: Optional[str] = None,
        backend: Optional[str] = None,
        size: int = 0,
    ) -> Optional[float]:
        by_bucket = self._match(stage, measure, backend)
        want = size_bucket(size)
        candidates = {
            b: e for b, e in by_bucket.items() if "ewma_bytes" in e
        }
        if not candidates:
            return None
        best = min(candidates, key=lambda b: (abs(b - want), b))
        return candidates[best]["ewma_bytes"] * (2.0 ** (want - best))

    # -- introspection -------------------------------------------------
    def entries(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            return {k: dict(v) for k, v in self._entries.items()}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        where = str(self.path) if self.path else "memory"
        return f"CostLedger({where}, entries={len(self)})"

    # -- constructors --------------------------------------------------
    @classmethod
    def from_env(cls) -> "CostLedger":
        """Ledger at ``$REPRO_COST_LEDGER``, else ``$REPRO_CACHE_DIR/
        costs.json``, else memory-only."""
        explicit = os.environ.get("REPRO_COST_LEDGER")
        if explicit:
            return cls(explicit)
        cache_dir = os.environ.get("REPRO_CACHE_DIR")
        if cache_dir:
            return cls(Path(cache_dir) / "costs.json")
        return cls(None)


_default: Optional[CostLedger] = None
_default_lock = threading.Lock()
_by_dir: Dict[str, CostLedger] = {}


def default_ledger() -> CostLedger:
    """Process-wide ledger resolved from the environment once."""
    global _default
    with _default_lock:
        if _default is None:
            _default = CostLedger.from_env()
        return _default


def ledger_for(directory) -> CostLedger:
    """Ledger stored as ``costs.json`` under ``directory`` (one shared
    instance per directory); falls back to :func:`default_ledger` when
    the directory is ``None`` (memory-only cache)."""
    if directory is None:
        return default_ledger()
    key = str(directory)
    with _default_lock:
        ledger = _by_dir.get(key)
        if ledger is None:
            ledger = CostLedger(Path(directory) / "costs.json")
            _by_dir[key] = ledger
        return ledger
