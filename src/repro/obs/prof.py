"""Sampling wall-clock profiler (stdlib-only) with flamegraph output.

The third observability layer: :mod:`repro.obs.trace` says *what* ran
and for how long, :mod:`repro.obs.metrics` says *how often* — this
module says *where the time went inside a stage*, without recompiling
anything and without a tracing-sized overhead.

A background daemon thread snapshots every live thread's Python stack
via ``sys._current_frames()`` at a configurable rate (default
:data:`DEFAULT_HZ` = 97 Hz — prime, so the sampler cannot phase-lock
with periodic work) and aggregates them as *collapsed stacks*: one
``frame;frame;frame count`` line per unique stack, the interchange
format of Brendan Gregg's flamegraph tooling.  :func:`flamegraph_svg`
renders a profile to a self-contained SVG with no external assets.

Three entry points:

* :class:`SamplingProfiler` — start/stop (or context-manager) capture
  of everything the process does;
* :func:`capture` — span-scoped capture: profiles a region *and*
  attaches the sample summary to the active trace span, so the profile
  rides the existing contextvars parent propagation (including into
  ``StageRunner`` thread jobs, and process jobs via
  :func:`repro.obs.trace.traced_job` / ``adopt``);
* :class:`ContinuousProfiler` — an always-on, low-rate sampler over a
  bounded ring of timestamped samples; :meth:`ContinuousProfiler.window`
  slices the ring by wall-clock interval, which is how the server
  attaches a profile slice to a slow request after the fact.

The sampler's overhead is bounded: each tick is one
``sys._current_frames()`` call plus a dict update per thread, with no
tracing hooks installed in the profiled code — the <5 % bound on a real
tree-construction workload is asserted in ``tests/obs/test_prof.py``.
"""

from __future__ import annotations

import html
import sys
import threading
import time
from collections import Counter, deque
from typing import Dict, Iterable, List, Optional, Tuple

from . import trace as obs_trace

__all__ = [
    "DEFAULT_HZ",
    "Profile",
    "SamplingProfiler",
    "ContinuousProfiler",
    "capture",
    "flamegraph_svg",
]

#: Default sampling rate.  Prime on purpose: a 100 Hz sampler watching
#: 10 ms-periodic work sees the same frame every tick; 97 Hz drifts
#: through the period and samples it fairly.
DEFAULT_HZ = 97

#: Stacks deeper than this are truncated at the root end (the leaf
#: frames are the interesting part of a runaway recursion).
_MAX_DEPTH = 128


def _frame_label(frame) -> str:
    code = frame.f_code
    filename = code.co_filename
    # Compact module-ish label: last path component without extension.
    slash = max(filename.rfind("/"), filename.rfind("\\"))
    stem = filename[slash + 1:]
    if stem.endswith(".py"):
        stem = stem[:-3]
    return f"{stem}:{code.co_name}"


def _collapse(frame) -> str:
    """One thread's stack as a root-first ``;``-joined collapsed line."""
    parts: List[str] = []
    while frame is not None and len(parts) < _MAX_DEPTH:
        parts.append(_frame_label(frame))
        frame = frame.f_back
    parts.reverse()
    return ";".join(parts)


class Profile:
    """An aggregated set of stack samples.

    ``counts`` maps a collapsed stack string to how many samples landed
    there; ``n_samples`` is the total, ``duration_s`` the wall-clock
    window the samples cover, ``hz`` the configured rate.
    """

    __slots__ = ("counts", "n_samples", "duration_s", "hz")

    def __init__(
        self,
        counts: Optional[Dict[str, int]] = None,
        *,
        n_samples: int = 0,
        duration_s: float = 0.0,
        hz: int = DEFAULT_HZ,
    ) -> None:
        self.counts: Dict[str, int] = dict(counts or {})
        self.n_samples = n_samples
        self.duration_s = duration_s
        self.hz = hz

    def collapsed(self) -> str:
        """The profile in collapsed-stack text format (one ``stack
        count`` line per unique stack, heaviest first)."""
        lines = [
            f"{stack} {count}"
            for stack, count in sorted(
                self.counts.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def self_times(self) -> Counter:
        """Samples attributed to each *leaf* frame (self time)."""
        leaves: Counter = Counter()
        for stack, count in self.counts.items():
            leaves[stack.rsplit(";", 1)[-1]] += count
        return leaves

    def top(self, n: int = 10) -> List[Tuple[str, int]]:
        """The ``n`` hottest leaf frames as ``(label, samples)``."""
        return self.self_times().most_common(n)

    def merge(self, other: "Profile") -> "Profile":
        """Fold another profile's samples into this one (in place)."""
        for stack, count in other.counts.items():
            self.counts[stack] = self.counts.get(stack, 0) + count
        self.n_samples += other.n_samples
        self.duration_s += other.duration_s
        return self

    def __repr__(self) -> str:
        return (
            f"Profile(samples={self.n_samples}, "
            f"stacks={len(self.counts)}, "
            f"duration_s={self.duration_s:.2f})"
        )


class SamplingProfiler:
    """Background-thread sampler over ``sys._current_frames()``.

    Use as a context manager or via explicit :meth:`start` /
    :meth:`stop`; the result is a :class:`Profile`.  All threads except
    the sampler itself are captured; pass ``threads`` (thread idents)
    to restrict to a subset.
    """

    def __init__(
        self,
        hz: int = DEFAULT_HZ,
        *,
        threads: Optional[Iterable[int]] = None,
    ) -> None:
        if hz < 1:
            raise ValueError("hz must be >= 1")
        self.hz = int(hz)
        self._only = frozenset(threads) if threads is not None else None
        self._counts: Counter = Counter()
        self._n_samples = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._t0: Optional[float] = None
        self._elapsed = 0.0

    # ------------------------------------------------------------------
    def _sample_once(self) -> None:
        me = threading.get_ident()
        for tid, frame in sys._current_frames().items():
            if tid == me:
                continue
            if self._only is not None and tid not in self._only:
                continue
            self._counts[_collapse(frame)] += 1
            self._n_samples += 1

    def _run(self) -> None:
        interval = 1.0 / self.hz
        next_tick = time.perf_counter()
        while not self._stop.is_set():
            self._sample_once()
            # Fixed-rate scheduling: sleep to the next tick boundary so
            # a slow sample doesn't compound into a slower rate.
            next_tick += interval
            delay = next_tick - time.perf_counter()
            if delay > 0:
                self._stop.wait(delay)
            else:
                next_tick = time.perf_counter()

    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._stop.clear()
        self._t0 = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-prof", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> Profile:
        if self._t0 is None:
            raise RuntimeError("profiler was never started")
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
            self._elapsed = time.perf_counter() - self._t0
        return self.profile()

    def profile(self) -> Profile:
        return Profile(
            dict(self._counts),
            n_samples=self._n_samples,
            duration_s=self._elapsed or (
                time.perf_counter() - self._t0
                if self._t0 is not None else 0.0
            ),
            hz=self.hz,
        )

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._thread is not None:
            self.stop()
        return False


class ContinuousProfiler:
    """Always-on low-rate sampler over a bounded ring of samples.

    Each sample is ``(wall_time, collapsed_stack)``; the ring holds the
    most recent ``capacity`` of them (at the default 19 Hz and 4096
    samples that is a ~3.5 minute window).  :meth:`window` aggregates
    the slice inside a wall-clock interval — how a slow request gets a
    profile slice attached *after* it finished.
    """

    def __init__(self, hz: int = 19, capacity: int = 4096) -> None:
        if hz < 1:
            raise ValueError("hz must be >= 1")
        self.hz = int(hz)
        self._ring: "deque[Tuple[float, str]]" = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    @property
    def running(self) -> bool:
        return self._thread is not None

    def _run(self) -> None:
        interval = 1.0 / self.hz
        me = threading.get_ident()
        while not self._stop.is_set():
            now = time.time()
            stacks = [
                _collapse(frame)
                for tid, frame in sys._current_frames().items()
                if tid != me
            ]
            with self._lock:
                for stack in stacks:
                    self._ring.append((now, stack))
            self._stop.wait(interval)

    def start(self) -> "ContinuousProfiler":
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-prof-cont", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None

    def window(self, t0: float, t1: float) -> Profile:
        """Samples whose wall time falls in ``[t0, t1]``, aggregated."""
        counts: Counter = Counter()
        with self._lock:
            for ts, stack in self._ring:
                if t0 <= ts <= t1:
                    counts[stack] += 1
        return Profile(
            dict(counts),
            n_samples=sum(counts.values()),
            duration_s=max(0.0, t1 - t0),
            hz=self.hz,
        )

    def profile(self) -> Profile:
        """Everything currently in the ring."""
        with self._lock:
            if not self._ring:
                return Profile(hz=self.hz)
            t0, t1 = self._ring[0][0], self._ring[-1][0]
        return self.window(t0, t1)


class _Capture:
    """Context manager pairing a profiler with a trace span."""

    __slots__ = ("name", "hz", "attrs", "profiler", "profile", "_span")

    def __init__(self, name: str, hz: int, attrs: dict) -> None:
        self.name = name
        self.hz = hz
        self.attrs = attrs
        self.profiler: Optional[SamplingProfiler] = None
        self.profile: Optional[Profile] = None
        self._span = None

    def __enter__(self) -> "_Capture":
        self._span = obs_trace.span(self.name, hz=self.hz, **self.attrs)
        self._span.__enter__()
        self.profiler = SamplingProfiler(hz=self.hz).start()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        try:
            self.profile = self.profiler.stop()
            self._span.set(
                samples=self.profile.n_samples,
                stacks=len(self.profile.counts),
                top=[
                    [label, count] for label, count in self.profile.top(5)
                ],
            )
        finally:
            self._span.__exit__(exc_type, exc, tb)
        return False


def capture(
    name: str = "prof.capture", hz: int = DEFAULT_HZ, **attrs
) -> _Capture:
    """Span-scoped profile capture.

    Opens a ``name`` trace span around a :class:`SamplingProfiler` run
    and, on exit, attaches the sample summary (total samples, unique
    stacks, top-5 self-time frames) as span attributes.  Because this
    is an ordinary span, it parents correctly wherever spans already
    do: under ``await`` points, inside ``StageRunner`` worker threads
    (context copy), and inside process-pool jobs run through
    :func:`repro.obs.trace.traced_job` — the captured span records are
    serialized back and re-parented under the submitting span by
    ``adopt``, summary attributes included.  The full profile stays on
    the returned object (``cap.profile``) for callers that want the
    collapsed text or an SVG.
    """
    return _Capture(name, hz, attrs)


# ----------------------------------------------------------------------
# Flamegraph rendering
# ----------------------------------------------------------------------
_ROW_H = 17
_MIN_W = 0.4          # rects narrower than this many px are dropped
_TEXT_W = 45          # rects narrower than this get no label


def _build_tree(counts: Dict[str, int]):
    """Collapsed stacks -> nested ``{child_label: [total, children]}``."""
    root: dict = {}
    for stack, count in counts.items():
        node = root
        for label in stack.split(";"):
            entry = node.setdefault(label, [0, {}])
            entry[0] += count
            node = entry[1]
    return root


def _color(label: str) -> str:
    """Deterministic warm color per frame label (flame palette)."""
    h = 0
    for ch in label:
        h = (h * 131 + ord(ch)) & 0xFFFFFF
    r = 205 + (h & 0x1F)          # 205..236
    g = 80 + ((h >> 5) & 0x7F)    # 80..207
    b = (h >> 12) & 0x37          # 0..55
    return f"rgb({r},{g},{b})"


def flamegraph_svg(
    profile,
    *,
    title: str = "repro profile",
    width: int = 1200,
) -> str:
    """Render a :class:`Profile` (or a raw ``{stack: count}`` dict) to a
    self-contained flamegraph SVG string — no scripts, no external
    assets, openable in any browser.  Wider rectangles = more samples;
    the stack grows upward from the root row at the bottom.
    """
    counts = profile.counts if isinstance(profile, Profile) else dict(profile)
    total = sum(counts.values())
    tree = _build_tree(counts)

    rects: List[str] = []
    max_depth = [0]

    def emit(node: dict, depth: int, x: float, scale: float) -> None:
        for label in sorted(node):
            samples, children = node[label]
            w = samples * scale
            if w < _MIN_W:
                continue
            max_depth[0] = max(max_depth[0], depth)
            pct = 100.0 * samples / total if total else 0.0
            tip = html.escape(
                f"{label} — {samples} samples ({pct:.1f}%)", quote=True
            )
            rects.append(
                (depth, x, w, label, tip)  # type: ignore[arg-type]
            )
            emit(children, depth + 1, x, scale)
            x += w

    if total:
        emit(tree, 0, 0.0, float(width) / total)

    height = (max_depth[0] + 1) * _ROW_H + 40 if total else 60
    parts = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="monospace" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="#fdf6ec"/>',
        f'<text x="8" y="16" font-size="13">{html.escape(title)} '
        f"&#8212; {total} samples</text>",
    ]
    for depth, x, w, label, tip in rects:  # type: ignore[misc]
        y = height - 24 - (depth + 1) * _ROW_H
        parts.append(
            f'<g><title>{tip}</title>'
            f'<rect x="{x:.2f}" y="{y}" width="{w:.2f}" '
            f'height="{_ROW_H - 1}" fill="{_color(label)}" '
            f'stroke="#fdf6ec" stroke-width="0.5"/>'
        )
        if w >= _TEXT_W:
            shown = label
            # ~6.6 px per monospace char at font-size 11.
            keep = max(3, int(w / 6.6))
            if len(shown) > keep:
                shown = shown[: keep - 1] + "…"
            parts.append(
                f'<text x="{x + 3:.2f}" y="{y + 12}">'
                f"{html.escape(shown)}</text>"
            )
        parts.append("</g>")
    if not total:
        parts.append(
            '<text x="8" y="40">no samples captured</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)
