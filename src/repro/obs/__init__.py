"""repro.obs — structured tracing, metrics and profiling.

The observability layer the rest of the system reports through:

``repro.obs.trace``
    Hierarchical spans (``with obs.span("tree.build", edges=n):``)
    with contextvars parent propagation across threads, processes and
    asyncio tasks, plus ring-buffer / JSONL / Chrome ``trace_event``
    exporters.  Off by default; the disabled path is a single branch
    returning a shared no-op span.
``repro.obs.metrics``
    A process-wide registry of counters, gauges and fixed-bucket
    histograms with Prometheus text-format exposition (served by
    ``GET /metrics``, printed by the CLI's ``--metrics`` flag).
``repro.obs.prof``
    A stdlib-only sampling wall-clock profiler (background thread over
    ``sys._current_frames()``), span-scoped capture, and a
    self-contained flamegraph SVG renderer.  Served by
    ``GET /debug/prof``, driven from the CLI by ``repro prof``.
``repro.obs.costs``
    A persistent EWMA ledger of *measured* stage/shard costs, stamped
    with a host fingerprint; ``repro.dist.plan`` consults it so
    ``--dist auto`` declines to shard when measurements say sharding
    loses on this host.

Instrumented layers: :class:`~repro.engine.pipeline.Pipeline` stages,
:class:`~repro.engine.cache.ArtifactCache` tiers,
:class:`~repro.dist.executor.ShardedExecutor` shard jobs (worker spans
serialized back and re-parented), every :mod:`repro.serve` request,
and :mod:`repro.stream` replay batches.  Enable tracing with the
global ``--trace PATH`` CLI flag or ``$REPRO_TRACE``; both write JSONL
convertible to Chrome trace JSON via
:func:`~repro.obs.trace.chrome_trace_from_jsonl`.
"""

from . import costs, metrics, prof, trace
from .costs import CostLedger, host_fingerprint
from .metrics import REGISTRY
from .prof import ContinuousProfiler, SamplingProfiler, capture, flamegraph_svg
from .trace import (
    JSONLExporter,
    RingBufferExporter,
    RollupAccumulator,
    add_exporter,
    chrome_trace_from_jsonl,
    current_span_id,
    enabled,
    remove_exporter,
    rollup,
    sample_rate,
    set_enabled,
    set_sample_rate,
    span,
    to_chrome_trace,
    traced_job,
)

__all__ = [
    "metrics",
    "trace",
    "prof",
    "costs",
    "REGISTRY",
    "span",
    "enabled",
    "set_enabled",
    "set_sample_rate",
    "sample_rate",
    "add_exporter",
    "remove_exporter",
    "current_span_id",
    "traced_job",
    "rollup",
    "RingBufferExporter",
    "JSONLExporter",
    "RollupAccumulator",
    "SamplingProfiler",
    "ContinuousProfiler",
    "capture",
    "flamegraph_svg",
    "CostLedger",
    "host_fingerprint",
]
