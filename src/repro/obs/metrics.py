"""Process-wide counters, gauges and fixed-bucket histograms with
Prometheus text-format exposition (stdlib-only).

One :class:`Registry` (the module-level :data:`REGISTRY`) is shared by
every instrumented layer — the artifact cache, pipeline stages, the
sharded executor, the HTTP server, stream replay — so ``GET /metrics``
and the CLI's ``--metrics`` flag expose one coherent snapshot.

Metric families are cheap and always-on (an increment is one lock and
one float add; there is no per-event allocation beyond the label
lookup), unlike tracing, which is off by default.  Families are
created idempotently: declaring the same name with the same type and
label names returns the existing family, so independent modules can
share one family without import-order coupling.

Labels are passed as keyword arguments at observation time::

    HITS = REGISTRY.counter("repro_cache_hits_total",
                            "Cache hits by tier.", ("tier",))
    HITS.inc(tier="memory")

Exposition (:meth:`Registry.render`) follows the Prometheus text
format, version 0.0.4: ``# HELP`` / ``# TYPE`` headers, escaped label
values, and for histograms cumulative ``_bucket{le=...}`` series plus
``_sum`` and ``_count``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "REGISTRY",
    "DEFAULT_BUCKETS",
    "escape_label_value",
]

#: Latency-shaped default buckets (seconds), 1 ms .. 10 s.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text format."""
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r'\"')
    )


def _format_value(value: float) -> str:
    """Integers render bare (``3`` not ``3.0``); floats as repr."""
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_str(labelnames: Tuple[str, ...], labelvalues: Tuple[str, ...],
               extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = [
        f'{name}="{escape_label_value(value)}"'
        for name, value in zip(labelnames, labelvalues)
    ]
    if extra is not None:
        pairs.append(f'{extra[0]}="{extra[1]}"')
    return "{" + ",".join(pairs) + "}" if pairs else ""


class _Family:
    """Shared machinery: label handling + the per-child value table."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Tuple[str, ...]) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: "OrderedDict[Tuple[str, ...], object]" = OrderedDict()

    def _key(self, labels: Dict[str, str]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def children(self) -> List[Tuple[Tuple[str, ...], object]]:
        with self._lock:
            return list(self._children.items())


class Counter(_Family):
    """A monotonically increasing value (optionally per label set)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        key = self._key(labels)
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        key = self._key(labels)
        with self._lock:
            return float(self._children.get(key, 0.0))

    def render(self) -> List[str]:
        lines = []
        for key, value in self.children():
            lines.append(
                f"{self.name}{_label_str(self.labelnames, key)} "
                f"{_format_value(value)}"
            )
        return lines or [f"{self.name} 0"] if not self.labelnames else lines


class Gauge(_Family):
    """A value that can go up and down, or be computed at scrape time
    via :meth:`set_function` (e.g. uptime from a monotonic clock)."""

    kind = "gauge"

    def __init__(self, name, help, labelnames=()):
        super().__init__(name, help, labelnames)
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._children[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Compute the (unlabelled) value lazily on every collection."""
        if self.labelnames:
            raise ValueError("callback gauges cannot have labels")
        self._fn = fn

    def value(self, **labels) -> float:
        if self._fn is not None:
            return float(self._fn())
        key = self._key(labels)
        with self._lock:
            return float(self._children.get(key, 0.0))

    def render(self) -> List[str]:
        if self._fn is not None:
            return [f"{self.name} {_format_value(float(self._fn()))}"]
        lines = []
        for key, value in self.children():
            lines.append(
                f"{self.name}{_label_str(self.labelnames, key)} "
                f"{_format_value(value)}"
            )
        return lines or [f"{self.name} 0"] if not self.labelnames else lines


class _HistogramChild:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * n_buckets
        self.sum = 0.0
        self.count = 0


class Histogram(_Family):
    """Fixed-bucket histogram; buckets are upper bounds (seconds for
    the default latency buckets) with an implicit ``+Inf``."""

    kind = "histogram"

    def __init__(self, name, help, labelnames=(), buckets=DEFAULT_BUCKETS):
        super().__init__(name, help, labelnames)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("at least one bucket is required")

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        value = float(value)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = _HistogramChild(len(self.buckets))
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    child.counts[i] += 1
                    break
            child.sum += value
            child.count += 1

    def time(self, **labels):
        """``with hist.time(stage="tree"):`` — observe the block's
        wall-clock seconds on exit; ``.seconds`` holds the reading."""
        return _Timer(self, labels)

    def child(self, **labels) -> Tuple[List[int], float, int]:
        """(bucket counts, sum, count) for one label set (testing)."""
        key = self._key(labels)
        with self._lock:
            c = self._children.get(key)
            if c is None:
                return [0] * len(self.buckets), 0.0, 0
            return list(c.counts), c.sum, c.count

    def render(self) -> List[str]:
        lines = []
        for key, child in self.children():
            cumulative = 0
            for bound, count in zip(self.buckets, child.counts):
                cumulative += count
                lines.append(
                    f"{self.name}_bucket"
                    f"{_label_str(self.labelnames, key, ('le', _format_value(bound)))}"
                    f" {cumulative}"
                )
            lines.append(
                f"{self.name}_bucket"
                f"{_label_str(self.labelnames, key, ('le', '+Inf'))}"
                f" {child.count}"
            )
            lines.append(
                f"{self.name}_sum{_label_str(self.labelnames, key)} "
                f"{_format_value(child.sum)}"
            )
            lines.append(
                f"{self.name}_count{_label_str(self.labelnames, key)} "
                f"{child.count}"
            )
        return lines


class _Timer:
    __slots__ = ("_histogram", "_labels", "_t0", "seconds")

    def __init__(self, histogram: Histogram, labels: Dict[str, str]) -> None:
        self._histogram = histogram
        self._labels = labels
        self.seconds = 0.0

    def __enter__(self) -> "_Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.seconds = time.perf_counter() - self._t0
        self._histogram.observe(self.seconds, **self._labels)
        return False


class Registry:
    """Named metric families, rendered together.

    ``counter``/``gauge``/``histogram`` are get-or-create: a second
    declaration with the same name must match the first's type and
    label names and returns the same family object."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: "OrderedDict[str, _Family]" = OrderedDict()

    def _get_or_create(self, cls, name, help, labelnames, **kwargs) -> _Family:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != tuple(
                    labelnames
                ):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.labelnames}"
                    )
                return existing
            family = cls(name, help, tuple(labelnames), **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "", labelnames=()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames=()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self, name: str, help: str = "", labelnames=(),
        buckets=DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def families(self) -> List[_Family]:
        with self._lock:
            return list(self._families.values())

    def render(self) -> str:
        """The Prometheus text-format exposition of every family."""
        lines: List[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            lines.extend(family.render())
        return "\n".join(lines) + "\n"

    def summary(self) -> Dict[str, object]:
        """A JSON-able snapshot (the ``/stats`` integration point)."""
        out: Dict[str, object] = {}
        for family in self.families():
            if isinstance(family, Histogram):
                out[family.name] = {
                    ",".join(key) or "_": {
                        "count": child.count,
                        "sum": round(child.sum, 6),
                    }
                    for key, child in family.children()
                }
            elif isinstance(family, Gauge) and family._fn is not None:
                out[family.name] = family.value()
            else:
                out[family.name] = {
                    ",".join(key) or "_": value
                    for key, value in family.children()
                }
        return out


#: The process-wide default registry every instrumented layer uses.
REGISTRY = Registry()
