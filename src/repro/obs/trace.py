"""Hierarchical spans with pluggable exporters (stdlib-only).

A *span* is one timed unit of work — a pipeline stage, a cache lookup,
an HTTP request, a per-shard reduce job — recorded as a plain dict::

    {"name": "stage.tree", "id": "1a2f-3", "parent": "1a2f-1",
     "ts_us": 1700000000000000.0, "dur_us": 8123.4,
     "pid": 4242, "tid": 139632, "attrs": {"stage": "tree"}}

Parent/child relationships propagate through a :mod:`contextvars`
variable, so spans nest correctly across ``await`` points, across
:class:`~repro.serve.workers.StageRunner` worker threads (the runner
copies the caller's context into each job), and — via
:func:`traced_job` — across process-pool workers, whose spans are
serialized back to the parent and re-parented under the submitting
span (:func:`adopt`).

The disabled path is a single branch on the module flag
:data:`ENABLED`: :func:`span` returns one shared no-op singleton, so
instrumented hot paths cost a dict lookup and a truth test when
tracing is off.  Enable with :func:`set_enabled` (the CLI's global
``--trace PATH`` flag and the ``$REPRO_TRACE`` environment variable do
this for you) and attach any number of exporters:

* :class:`RingBufferExporter` — bounded in-memory buffer (the server's
  ``/stats`` span summary reads one);
* :class:`JSONLExporter` — one JSON record per line, append-mode (safe
  for multi-process runs writing whole lines);
* :func:`to_chrome_trace` / :func:`chrome_trace_from_jsonl` — convert
  records to Chrome ``trace_event`` JSON, openable in
  ``chrome://tracing`` or https://ui.perfetto.dev.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import os
import random
import threading
import time
from collections import deque
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

__all__ = [
    "ENABLED",
    "enabled",
    "set_enabled",
    "set_sample_rate",
    "sample_rate",
    "add_exporter",
    "remove_exporter",
    "span",
    "current_span_id",
    "Span",
    "Tracer",
    "RingBufferExporter",
    "JSONLExporter",
    "RollupAccumulator",
    "traced_job",
    "adopt",
    "to_chrome_trace",
    "read_jsonl",
    "chrome_trace_from_jsonl",
    "rollup",
]

#: Module-level enable flag — the one branch every disabled call pays.
ENABLED = False

#: Head-based sampling rate in [0, 1].  The keep/drop decision is made
#: once per *root* span; descendants inherit it, so traces stay whole —
#: either a request's full span tree is recorded or none of it is.
_SAMPLE_RATE = 1.0

_rng = random.Random()

_sampled_out: "contextvars.ContextVar[bool]" = contextvars.ContextVar(
    "repro_obs_sampled_out", default=False
)

_parent_id: "contextvars.ContextVar[Optional[str]]" = contextvars.ContextVar(
    "repro_obs_parent", default=None
)

# Wall-anchored monotonic clock: perf_counter deltas (immune to NTP
# steps) hung off one wall-clock epoch, so spans from different
# processes land on roughly the same Chrome-trace timeline.
_EPOCH_WALL = time.time()
_EPOCH_PERF = time.perf_counter()

_ids = itertools.count(1)


def _now_us() -> float:
    return (_EPOCH_WALL + (time.perf_counter() - _EPOCH_PERF)) * 1e6


def _new_id() -> str:
    # pid-qualified so ids from worker processes can never collide with
    # the parent's when their spans are adopted back.
    return f"{os.getpid():x}-{next(_ids):x}"


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
class RingBufferExporter:
    """Keeps the most recent ``capacity`` span records in memory."""

    def __init__(self, capacity: int = 4096) -> None:
        self.records: "deque[dict]" = deque(maxlen=capacity)

    def export(self, record: dict) -> None:
        self.records.append(record)

    def snapshot(self) -> List[dict]:
        """A copy of the buffered records (oldest first)."""
        return list(self.records)

    def clear(self) -> None:
        self.records.clear()


class JSONLExporter:
    """Appends one JSON record per line to ``path``.

    Opened in append mode and flushed per record: concurrent processes
    tracing to the same file interleave whole lines, never partial
    ones (each record is one short ``write`` on an ``O_APPEND`` fd).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._file = open(self.path, "a", encoding="utf-8")

    def export(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            if not self._file.closed:
                self._file.write(line)
                self._file.flush()

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()


class _ListExporter:
    """Unbounded collector used by :func:`traced_job`."""

    def __init__(self) -> None:
        self.records: List[dict] = []

    def export(self, record: dict) -> None:
        self.records.append(record)


# ----------------------------------------------------------------------
# Tracer and spans
# ----------------------------------------------------------------------
class Tracer:
    """Fans finished span records out to its exporters."""

    def __init__(self) -> None:
        self._exporters: List[object] = []
        self._lock = threading.Lock()

    def add_exporter(self, exporter) -> None:
        with self._lock:
            if exporter not in self._exporters:
                self._exporters.append(exporter)

    def remove_exporter(self, exporter) -> None:
        with self._lock:
            if exporter in self._exporters:
                self._exporters.remove(exporter)

    @property
    def exporters(self) -> List[object]:
        with self._lock:
            return list(self._exporters)

    def export(self, record: dict) -> None:
        for exporter in self.exporters:
            exporter.export(record)


_TRACER = Tracer()


class Span:
    """A live span; use as a context manager (see :func:`span`)."""

    __slots__ = ("name", "span_id", "parent_id", "attrs", "_t0", "_ts", "_token")

    def __init__(self, name: str, attrs: Dict[str, object]) -> None:
        self.name = name
        self.span_id = _new_id()
        self.parent_id: Optional[str] = None
        self.attrs = attrs
        self._t0 = 0.0
        self._ts = 0.0
        self._token: Optional[contextvars.Token] = None

    def set(self, **attrs) -> "Span":
        """Attach attributes after entry (e.g. the response status)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.parent_id = _parent_id.get()
        self._token = _parent_id.set(self.span_id)
        self._ts = _now_us()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur_us = (time.perf_counter() - self._t0) * 1e6
        if self._token is not None:
            _parent_id.reset(self._token)
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        _TRACER.export(
            {
                "name": self.name,
                "id": self.span_id,
                "parent": self.parent_id,
                "ts_us": self._ts,
                "dur_us": dur_us,
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "attrs": self.attrs,
            }
        )
        return False


class _NoopSpan:
    """Shared do-nothing span for the disabled path (zero per-call
    allocations beyond the interpreter's own kwargs handling)."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        return self


_NOOP = _NoopSpan()


class _SuppressSpan:
    """Entered by a sampled-out *root* span: marks the context so every
    descendant takes the no-op path without re-drawing the dice (a
    partial subtree with a missing root would count as an orphan)."""

    __slots__ = ("_token",)

    def __init__(self) -> None:
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> "_SuppressSpan":
        self._token = _sampled_out.set(True)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token is not None:
            _sampled_out.reset(self._token)
        return False

    def set(self, **attrs) -> "_SuppressSpan":
        return self


def span(name: str, **attrs):
    """A context manager timing one unit of work.

    When tracing is disabled this returns one shared no-op object —
    the instrumentation's entire disabled cost is this branch.  With
    head-based sampling active (:func:`set_sample_rate` < 1), the
    keep/drop decision happens only at root spans; a dropped root
    suppresses its whole subtree."""
    if not ENABLED:
        return _NOOP
    if _sampled_out.get():
        return _NOOP
    if _SAMPLE_RATE < 1.0 and _parent_id.get() is None:
        if _rng.random() >= _SAMPLE_RATE:
            return _SuppressSpan()
    return Span(name, attrs)


def enabled() -> bool:
    return ENABLED


def set_enabled(flag: bool) -> None:
    global ENABLED
    ENABLED = bool(flag)


def set_sample_rate(rate: float, seed: Optional[int] = None) -> None:
    """Head-based sampling: keep roughly ``rate`` of root span trees.

    ``rate=1.0`` (the default) records everything; ``rate=0.1`` keeps
    ~10% of traces whole and drops the other ~90% entirely — the knob
    that makes always-on tracing affordable on a busy server
    (``$REPRO_TRACE_SAMPLE`` sets it at import time).  ``seed`` pins
    the decision sequence for tests.
    """
    global _SAMPLE_RATE
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"sample rate must be in [0, 1], got {rate!r}")
    _SAMPLE_RATE = float(rate)
    if seed is not None:
        _rng.seed(seed)


def sample_rate() -> float:
    return _SAMPLE_RATE


def add_exporter(exporter) -> None:
    _TRACER.add_exporter(exporter)


def remove_exporter(exporter) -> None:
    _TRACER.remove_exporter(exporter)


def current_span_id() -> Optional[str]:
    """The innermost live span's id in this context (``None`` at root)."""
    return _parent_id.get()


# ----------------------------------------------------------------------
# Cross-process capture
# ----------------------------------------------------------------------
def traced_job(
    fn,
    args: tuple,
    name: str,
    attrs: Optional[Dict[str, object]] = None,
) -> Tuple[object, List[dict]]:
    """Run ``fn(*args)`` under a locally enabled capturing tracer.

    The process-pool counterpart of context propagation: a worker
    process starts with tracing disabled and no exporters, so the
    parent submits this picklable wrapper instead of ``fn`` directly.
    It enables tracing for the duration, wraps the call in a ``name``
    span, and returns ``(result, records)`` — plain dicts the parent
    feeds to :func:`adopt`.  Pool workers execute one job at a time on
    one thread, so the module-global flip is safe there; in-process
    (thread-mode) callers should rely on context propagation instead.
    """
    global ENABLED, _SAMPLE_RATE
    collector = _ListExporter()
    _TRACER.add_exporter(collector)
    prev = ENABLED
    prev_rate = _SAMPLE_RATE
    ENABLED = True
    # The parent made the keep/drop decision when it submitted the job;
    # a worker re-sampling would punch holes in an already-kept trace.
    _SAMPLE_RATE = 1.0
    try:
        with span(name, **(attrs or {})):
            result = fn(*args)
    finally:
        ENABLED = prev
        _SAMPLE_RATE = prev_rate
        _TRACER.remove_exporter(collector)
    return result, collector.records


def adopt(records: Iterable[dict], parent_id: Optional[str] = None) -> List[dict]:
    """Re-parent and re-export span records captured elsewhere.

    Roots (records with no parent) are attached under ``parent_id`` —
    usually :func:`current_span_id` at the submission site — and every
    record is exported through the local tracer, so worker spans land
    in the same trace file / ring buffer as the parent's own.
    """
    adopted = []
    for record in records:
        if record.get("parent") is None:
            record = dict(record, parent=parent_id)
        adopted.append(record)
        if ENABLED:
            _TRACER.export(record)
    return adopted


# ----------------------------------------------------------------------
# Chrome trace_event conversion and rollups
# ----------------------------------------------------------------------
def to_chrome_trace(records: Iterable[dict]) -> dict:
    """Records → Chrome ``trace_event`` JSON (complete ``"X"`` events),
    loadable in ``chrome://tracing`` / Perfetto."""
    events = []
    for r in records:
        events.append(
            {
                "name": r["name"],
                "ph": "X",
                "ts": r["ts_us"],
                "dur": r["dur_us"],
                "pid": r["pid"],
                "tid": r["tid"],
                "args": dict(
                    r.get("attrs") or {}, span=r["id"], parent=r.get("parent")
                ),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def read_jsonl(path: Union[str, Path]) -> List[dict]:
    """Load span records from a JSONL trace file (blank lines skipped;
    a ``ValueError`` names the offending line)."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                raise ValueError(f"{path}:{lineno}: not a JSON span record")
            records.append(record)
    return records


def chrome_trace_from_jsonl(
    path: Union[str, Path], out_path: Optional[Union[str, Path]] = None
) -> dict:
    """Convert a ``--trace`` JSONL file to Chrome trace JSON; when
    ``out_path`` is given the JSON is also written there."""
    trace = to_chrome_trace(read_jsonl(path))
    if out_path is not None:
        Path(out_path).write_text(json.dumps(trace))
    return trace


def _summarize(durations: List[float]) -> Dict[str, float]:
    durations.sort()
    n = len(durations)
    return {
        "count": n,
        "p50_ms": round(durations[n // 2], 3),
        "p95_ms": round(durations[min(n - 1, int(n * 0.95))], 3),
        "max_ms": round(durations[-1], 3),
        "total_ms": round(sum(durations), 3),
    }


def rollup(
    records: Iterable[dict], top: Optional[int] = None
) -> Dict[str, Dict[str, float]]:
    """Per-span-name duration rollups: count, p50/p95/max/total ms.

    The shape embedded in bench ledgers and served under ``/stats`` —
    enough to localize a regression to a stage without opening the
    full trace.  ``top=N`` keeps only the N names with the largest
    ``total_ms`` (ordered hottest first), bounding the payload on
    long-lived servers with many distinct span names."""
    by_name: Dict[str, List[float]] = {}
    for r in records:
        by_name.setdefault(r["name"], []).append(float(r["dur_us"]) / 1000.0)
    out: Dict[str, Dict[str, float]] = {}
    for name, durations in sorted(by_name.items()):
        out[name] = _summarize(durations)
    if top is not None and top >= 0 and len(out) > top:
        keep = sorted(out.items(), key=lambda kv: -kv[1]["total_ms"])[:top]
        out = dict(keep)
    return out


class RollupAccumulator:
    """Streaming rollup over an unbounded span feed in bounded memory.

    Usable directly as an exporter (:meth:`export`).  ``total_ms``,
    ``max_ms`` and ``count`` are exact; the percentiles come from a
    per-name reservoir of the most recent ``window`` durations, so they
    track current behaviour instead of averaging over the server's
    whole lifetime.
    """

    def __init__(self, window: int = 512) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self._window = window
        self._lock = threading.Lock()
        self._state: Dict[str, dict] = {}

    def add(self, record: dict) -> None:
        ms = float(record["dur_us"]) / 1000.0
        name = record["name"]
        with self._lock:
            state = self._state.get(name)
            if state is None:
                state = {
                    "count": 0,
                    "total_ms": 0.0,
                    "max_ms": 0.0,
                    "recent": deque(maxlen=self._window),
                }
                self._state[name] = state
            state["count"] += 1
            state["total_ms"] += ms
            if ms > state["max_ms"]:
                state["max_ms"] = ms
            state["recent"].append(ms)

    # Exporter protocol, so an accumulator can sit on the tracer.
    export = add

    def summary(
        self, top: Optional[int] = None
    ) -> Dict[str, Dict[str, float]]:
        with self._lock:
            snapshot = [
                (name, state["count"], state["total_ms"], state["max_ms"],
                 list(state["recent"]))
                for name, state in self._state.items()
            ]
        out: Dict[str, Dict[str, float]] = {}
        for name, count, total, mx, recent in sorted(snapshot):
            recent.sort()
            n = len(recent)
            out[name] = {
                "count": count,
                "p50_ms": round(recent[n // 2], 3) if n else 0.0,
                "p95_ms": round(recent[min(n - 1, int(n * 0.95))], 3)
                if n else 0.0,
                "max_ms": round(mx, 3),
                "total_ms": round(total, 3),
            }
        if top is not None and top >= 0 and len(out) > top:
            keep = sorted(out.items(), key=lambda kv: -kv[1]["total_ms"])[:top]
            out = dict(keep)
        return out

    def clear(self) -> None:
        with self._lock:
            self._state.clear()


# $REPRO_TRACE=<path> turns tracing on at import time — how benchmark
# subprocesses and the obs-enabled CI tier inherit a trace sink without
# every entry point growing plumbing.  $REPRO_TRACE_SAMPLE=<rate>
# applies head-based sampling on top (serve sets 0.1 for always-on
# tracing at affordable cost).
_env_path = os.environ.get("REPRO_TRACE")
if _env_path:  # pragma: no cover - exercised via subprocess tests
    add_exporter(JSONLExporter(_env_path))
    ENABLED = True
_env_sample = os.environ.get("REPRO_TRACE_SAMPLE")
if _env_sample:  # pragma: no cover - exercised via subprocess tests
    try:
        set_sample_rate(float(_env_sample))
    except ValueError:
        pass
