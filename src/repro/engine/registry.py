"""Measure registry: named scalar fields over graphs.

Every pipeline stage that turns a graph into a scalar field goes
through here.  A *measure* is a named function ``graph -> float64
vector`` (one value per vertex or per edge) plus declared metadata:

* ``kind`` — ``"vertex"`` or ``"edge"``, which decides whether the
  downstream tree stage runs Algorithm 1 or Algorithm 3;
* ``cost`` — ``"cheap"`` / ``"moderate"`` / ``"expensive"``, a hint the
  artifact cache uses to decide whether persisting the field to disk is
  worth the I/O (degrees are cheaper to recompute than to reload);
* ``backend`` — ``"naive"`` (a single implementation) or ``"accel"``
  (the function takes a ``backend=`` keyword and dispatches through
  :mod:`repro.accel`'s naive/vector kernels).  Accelerated measures are
  equivalence-tested against their naive path — identical vectors, save
  betweenness which agrees to ~1e-9 — so the choice never enters a
  cache key;
* ``description`` — one line for ``--help`` and docs.

Built-in measures are registered *lazily*: the registry knows their
names and kinds up front (so CLI parsing and ``measure_names()`` stay
import-light), but the implementing module is imported only when a
measure is first resolved.  Third-party code registers its own measures
with the :func:`vertex_measure` / :func:`edge_measure` decorators::

    from repro.engine import vertex_measure

    @vertex_measure("coreness2", cost="cheap", description="halved KC")
    def half_core(graph):
        return core_numbers(graph) / 2.0
"""

from __future__ import annotations

from dataclasses import dataclass, field
from importlib import import_module
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "MeasureSpec",
    "register_measure",
    "vertex_measure",
    "edge_measure",
    "unregister",
    "get_measure",
    "measure_names",
    "compute",
]

_KINDS = ("vertex", "edge")
_COSTS = ("cheap", "moderate", "expensive")
_BACKENDS = ("naive", "accel")


@dataclass(frozen=True)
class MeasureSpec:
    """A registered measure: the function plus its declared metadata."""

    name: str
    kind: str
    func: Callable = field(repr=False)
    cost: str = "moderate"
    description: str = ""
    backend: str = "naive"


_REGISTRY: Dict[str, MeasureSpec] = {}

# Built-ins, declared without importing their modules: name -> (module
# that registers it on import, kind).  Keeping the kind here lets
# ``measure_names(kind=...)`` answer without any imports.
_LAZY: Dict[str, Tuple[str, str]] = {
    "kcore": ("repro.measures.kcore", "vertex"),
    "ktruss": ("repro.measures.ktruss", "edge"),
    "degree": ("repro.measures.centrality", "vertex"),
    "pagerank": ("repro.measures.centrality", "vertex"),
    "closeness": ("repro.measures.centrality", "vertex"),
    "harmonic": ("repro.measures.centrality", "vertex"),
    "eigenvector": ("repro.measures.centrality", "vertex"),
    "betweenness": ("repro.measures.centrality", "vertex"),
    "clustering": ("repro.measures.triangles", "vertex"),
    "support": ("repro.measures.triangles", "edge"),
}


def register_measure(
    name: str,
    *,
    kind: str,
    cost: str = "moderate",
    description: str = "",
    backend: str = "naive",
    replace: bool = False,
):
    """Decorator: register ``func`` as the measure called ``name``.

    ``backend="accel"`` declares that ``func`` accepts a ``backend=``
    keyword and dispatches through :mod:`repro.accel`.
    """
    if kind not in _KINDS:
        raise ValueError(f"kind must be one of {_KINDS}, got {kind!r}")
    if cost not in _COSTS:
        raise ValueError(f"cost must be one of {_COSTS}, got {cost!r}")
    if backend not in _BACKENDS:
        raise ValueError(
            f"backend must be one of {_BACKENDS}, got {backend!r}"
        )

    def decorator(func: Callable) -> Callable:
        # Not-yet-imported built-ins count as taken too: without this, a
        # custom measure could silently shadow e.g. "betweenness" and
        # then be silently clobbered when the built-in's module is
        # lazy-imported (built-in adapters register with replace=True).
        if not replace and (name in _REGISTRY or name in _LAZY):
            raise ValueError(f"measure {name!r} is already registered")
        _REGISTRY[name] = MeasureSpec(
            name=name, kind=kind, func=func, cost=cost,
            description=description, backend=backend,
        )
        return func

    return decorator


def vertex_measure(name: str, **kwargs):
    """Shorthand for ``register_measure(name, kind="vertex", ...)``."""
    return register_measure(name, kind="vertex", **kwargs)


def edge_measure(name: str, **kwargs):
    """Shorthand for ``register_measure(name, kind="edge", ...)``."""
    return register_measure(name, kind="edge", **kwargs)


def unregister(name: str) -> None:
    """Remove a (custom) measure; built-in names cannot be removed."""
    if name in _LAZY:
        raise ValueError(f"cannot unregister built-in measure {name!r}")
    _REGISTRY.pop(name, None)


def get_measure(name: str) -> MeasureSpec:
    """Resolve ``name`` to its :class:`MeasureSpec` (lazy-importing
    the implementing module for built-ins)."""
    if name not in _REGISTRY and name in _LAZY:
        import_module(_LAZY[name][0])
        if name not in _REGISTRY:  # pragma: no cover - registration bug
            raise RuntimeError(
                f"{_LAZY[name][0]} did not register measure {name!r}"
            )
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown measure {name!r}; known measures: "
            f"{', '.join(measure_names())}"
        )
    return _REGISTRY[name]


def measure_names(kind: Optional[str] = None) -> List[str]:
    """All known measure names (registered + lazy), optionally filtered
    by kind.  Never triggers an import."""
    if kind is not None and kind not in _KINDS:
        raise ValueError(f"kind must be one of {_KINDS}, got {kind!r}")
    names = {
        name for name, (_, k) in _LAZY.items() if kind in (None, k)
    }
    names.update(
        name for name, spec in _REGISTRY.items() if kind in (None, spec.kind)
    )
    return sorted(names)


def compute(name: str, graph, backend: Optional[str] = None) -> np.ndarray:
    """Evaluate measure ``name`` on ``graph`` as a float64 vector.

    ``backend`` is forwarded to measures registered with
    ``backend="accel"`` (others have a single implementation); ``None``
    defers to the process-global :mod:`repro.accel` setting.
    """
    spec = get_measure(name)
    if spec.backend == "accel":
        values = spec.func(graph, backend=backend)
    else:
        values = spec.func(graph)
    return np.asarray(values, dtype=np.float64)
