"""Content-addressed artifact cache for pipeline stages.

Every expensive pipeline stage (measure evaluation, tree construction,
super-tree/simplification, layout) is keyed by a SHA-256 content hash of
its *inputs* — the underlying graph's CSR arrays, the scalar field, and
the stage parameters — so a key can only ever map to one value: there is
no invalidation logic, a changed input simply hashes to a different key.

Two tiers:

* **memory** — every artifact, including ones with no on-disk form
  (terrain layouts);
* **disk** (optional) — artifacts with a stable serialized form (trees
  and numeric arrays, via :mod:`repro.core.serialize`'s artifact
  envelope) are written to ``<directory>/<key>.json`` so a second
  process skips straight to render.

``stats`` counts hits/misses for tests and benchmark reporting.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from ..core.serialize import artifact_from_json, artifact_to_json
from ..graph.csr import CSRGraph

__all__ = [
    "ArtifactCache",
    "fingerprint_array",
    "fingerprint_graph",
    "stage_key",
]

PathLike = Union[str, Path]


def _sha256(*parts: bytes) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part)
    return digest.hexdigest()


def fingerprint_array(arr: np.ndarray) -> str:
    """Content hash of a numpy array (dtype, shape and bytes)."""
    arr = np.ascontiguousarray(arr)
    header = f"{arr.dtype.str}|{arr.shape}".encode()
    return _sha256(header, arr.tobytes())


def fingerprint_graph(graph: CSRGraph) -> str:
    """Content hash of a CSR graph's structure."""
    return _sha256(
        b"csr",
        np.ascontiguousarray(graph.indptr).tobytes(),
        np.ascontiguousarray(graph.indices).tobytes(),
    )


def stage_key(stage: str, params: Dict[str, object], *fingerprints: str) -> str:
    """Cache key of one stage execution: stage name + JSON-able
    parameters + the content fingerprints of its inputs."""
    payload = json.dumps(
        {"stage": stage, "params": params, "inputs": list(fingerprints)},
        sort_keys=True,
    )
    return _sha256(payload.encode())


class ArtifactCache:
    """In-memory (always) + on-disk (optional) store of stage artifacts.

    Parameters
    ----------
    directory:
        Where to persist serializable artifacts.  ``None`` keeps the
        cache memory-only (still useful: repeated builds in one process
        share artifacts).
    """

    def __init__(self, directory: Optional[PathLike] = None) -> None:
        self.directory = Path(directory) if directory else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._memory: Dict[str, object] = {}
        self.stats: Dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "memory_hits": 0,
            "disk_hits": 0,
            "puts": 0,
        }

    @classmethod
    def from_env(cls) -> "ArtifactCache":
        """Cache honouring ``$REPRO_CACHE_DIR`` (memory-only if unset)."""
        return cls(os.environ.get("REPRO_CACHE_DIR") or None)

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str):
        """The cached artifact for ``key``, or ``None`` on a miss."""
        if key in self._memory:
            self.stats["hits"] += 1
            self.stats["memory_hits"] += 1
            return self._memory[key]
        if self.directory is not None:
            path = self._path(key)
            try:
                value = artifact_from_json(path.read_text())
            except FileNotFoundError:
                pass
            except ValueError:
                # Truncated/corrupt entry (e.g. a writer killed
                # mid-write by an older version): treat as a miss and
                # drop it so it cannot poison future runs.
                path.unlink(missing_ok=True)
            else:
                self._memory[key] = value
                self.stats["hits"] += 1
                self.stats["disk_hits"] += 1
                return value
        self.stats["misses"] += 1
        return None

    def put(self, key: str, value, disk: bool = True):
        """Store ``value`` under ``key``; returns ``value``.

        Persists to disk only when a directory is configured, ``disk``
        is true (stages pass ``False`` for cheap-to-recompute or
        unserializable artifacts), and the value has a serialized form.
        """
        self._memory[key] = value
        self.stats["puts"] += 1
        if self.directory is not None and disk:
            try:
                text = artifact_to_json(value)
            except TypeError:
                return value
            # Write-then-rename so concurrent readers (the cache is
            # meant to be shared across processes) never observe a
            # partially written entry.
            tmp = self._path(key).with_suffix(f".tmp{os.getpid()}")
            tmp.write_text(text)
            os.replace(tmp, self._path(key))
        return value

    def clear(self, disk: bool = False) -> None:
        """Drop the memory tier (and the disk tier when ``disk=True``)."""
        self._memory.clear()
        if disk and self.directory is not None:
            for path in self.directory.glob("*.json"):
                path.unlink()

    def __len__(self) -> int:
        return len(self._memory)

    def __repr__(self) -> str:
        where = str(self.directory) if self.directory else "memory-only"
        return (
            f"ArtifactCache({where}, entries={len(self._memory)}, "
            f"hits={self.stats['hits']}, misses={self.stats['misses']})"
        )
