"""Content-addressed artifact cache for pipeline stages.

Every expensive pipeline stage (measure evaluation, tree construction,
super-tree/simplification, layout) is keyed by a SHA-256 content hash of
its *inputs* — the underlying graph's CSR arrays, the scalar field, and
the stage parameters — so a key can only ever map to one value: there is
no invalidation logic, a changed input simply hashes to a different key.

Two tiers:

* **memory** — every artifact, including ones with no on-disk form
  (terrain layouts);
* **disk** (optional) — artifacts with a stable serialized form (trees,
  numeric arrays and terrain tiles, via :mod:`repro.core.serialize`'s
  artifact envelope) are written to ``<directory>/<key>.json`` so a
  second process skips straight to render.

The cache is safe for concurrent use: an ``RLock`` guards the memory
tier (the server's request handlers, worker callbacks and benchmarks all
share one instance), and an optional ``max_memory_bytes`` turns the
memory tier into an LRU so a long-running server cannot grow without
bound.  CLI runs keep the default of unbounded memory — a one-shot build
wants every stage hot.

``stats`` counts hits/misses/evictions for tests and benchmark
reporting.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from ..core.serialize import artifact_from_json, artifact_to_json
from ..graph.csr import CSRGraph
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..resil import faults as resil_faults

# Process-wide cache metric families (repro.obs): the per-instance
# ``stats`` dict stays (tests and /stats read it per cache), but every
# event also lands here so /metrics and --metrics see one global truth.
_M_HITS = obs_metrics.REGISTRY.counter(
    "repro_cache_hits_total", "Artifact cache hits by tier.", ("tier",)
)
_M_MISSES = obs_metrics.REGISTRY.counter(
    "repro_cache_misses_total", "Artifact cache misses."
)
_M_PUTS = obs_metrics.REGISTRY.counter(
    "repro_cache_puts_total", "Artifacts stored in the cache."
)
_M_EVICTIONS = obs_metrics.REGISTRY.counter(
    "repro_cache_evictions_total", "Cache evictions by tier.", ("tier",)
)
_M_BYTES = obs_metrics.REGISTRY.gauge(
    "repro_cache_bytes", "Approximate cache footprint by tier.", ("tier",)
)
_M_CORRUPT = obs_metrics.REGISTRY.counter(
    "repro_cache_corrupt_total",
    "Corrupted/truncated disk-cache envelopes dropped and rebuilt.",
)

__all__ = [
    "ArtifactCache",
    "artifact_nbytes",
    "fingerprint_array",
    "fingerprint_graph",
    "stage_key",
]

PathLike = Union[str, Path]


def _sha256(*parts: bytes) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part)
    return digest.hexdigest()


def fingerprint_array(arr: np.ndarray) -> str:
    """Content hash of a numpy array (dtype, shape and bytes)."""
    arr = np.ascontiguousarray(arr)
    header = f"{arr.dtype.str}|{arr.shape}".encode()
    return _sha256(header, arr.tobytes())


def fingerprint_graph(graph: CSRGraph) -> str:
    """Content hash of a CSR graph's structure."""
    return _sha256(
        b"csr",
        np.ascontiguousarray(graph.indptr).tobytes(),
        np.ascontiguousarray(graph.indices).tobytes(),
    )


def stage_key(stage: str, params: Dict[str, object], *fingerprints: str) -> str:
    """Cache key of one stage execution: stage name + JSON-able
    parameters + the content fingerprints of its inputs."""
    payload = json.dumps(
        {"stage": stage, "params": params, "inputs": list(fingerprints)},
        sort_keys=True,
    )
    return _sha256(payload.encode())


def artifact_nbytes(value) -> int:
    """Approximate memory footprint of a cached artifact.

    Arrays and array-backed objects (trees, tiles, heightfields) report
    their buffer sizes; anything else falls back to ``sys.getsizeof``.
    Used by the cache's LRU accounting — an estimate is fine, the bound
    exists to stop unbounded growth, not to meter bytes exactly.
    """
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    total = 0
    seen = False
    for attr in ("parent", "scalars", "height", "node"):
        part = getattr(value, attr, None)
        if isinstance(part, np.ndarray):
            total += int(part.nbytes)
            seen = True
    members = getattr(value, "members", None)
    if isinstance(members, list):
        total += sum(
            int(m.nbytes) for m in members if isinstance(m, np.ndarray)
        )
        seen = True
    if seen:
        return total
    return int(sys.getsizeof(value))


class ArtifactCache:
    """In-memory (always) + on-disk (optional) store of stage artifacts.

    Parameters
    ----------
    directory:
        Where to persist serializable artifacts.  ``None`` keeps the
        cache memory-only (still useful: repeated builds in one process
        share artifacts).
    max_memory_bytes:
        LRU budget for the memory tier; ``None`` (the default) keeps it
        unbounded.  Eviction only drops the in-memory copy — entries
        persisted to ``directory`` reload transparently on the next get.

    All memory-tier operations are guarded by an ``RLock``, so one
    instance can back concurrent server handlers and worker threads.
    """

    def __init__(
        self,
        directory: Optional[PathLike] = None,
        max_memory_bytes: Optional[int] = None,
    ) -> None:
        self.directory = Path(directory) if directory else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        if max_memory_bytes is not None and max_memory_bytes < 0:
            raise ValueError("max_memory_bytes must be >= 0 (or None)")
        self.max_memory_bytes = max_memory_bytes
        self._lock = threading.RLock()
        self._memory: "OrderedDict[str, object]" = OrderedDict()
        self._memory_bytes = 0
        self.stats: Dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "memory_hits": 0,
            "disk_hits": 0,
            "puts": 0,
            "evictions": 0,
            "corrupt": 0,
        }

    @classmethod
    def from_env(cls) -> "ArtifactCache":
        """Cache honouring ``$REPRO_CACHE_DIR`` (memory-only if unset)."""
        return cls(os.environ.get("REPRO_CACHE_DIR") or None)

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def _remember(self, key: str, value) -> None:
        """Insert into the memory tier (lock held) and evict LRU entries
        past the budget.  The just-inserted entry is never evicted, even
        when it alone exceeds the budget — the caller is about to use it.
        """
        if key in self._memory:
            self._memory_bytes -= artifact_nbytes(self._memory[key])
        self._memory[key] = value
        self._memory.move_to_end(key)
        self._memory_bytes += artifact_nbytes(value)
        if self.max_memory_bytes is None:
            return
        while (
            self._memory_bytes > self.max_memory_bytes
            and len(self._memory) > 1
        ):
            old_key, old_value = self._memory.popitem(last=False)
            self._memory_bytes -= artifact_nbytes(old_value)
            self.stats["evictions"] += 1
            _M_EVICTIONS.inc(tier="memory")

    @property
    def memory_bytes(self) -> int:
        """Approximate bytes held by the memory tier."""
        with self._lock:
            return self._memory_bytes

    def get(self, key: str):
        """The cached artifact for ``key``, or ``None`` on a miss."""
        if not obs_trace.ENABLED:
            return self._get(key)
        with obs_trace.span("cache.get", key=key[:12]) as sp:
            value = self._get(key)
            sp.set(hit=value is not None)
            return value

    def _get(self, key: str):
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                self.stats["hits"] += 1
                self.stats["memory_hits"] += 1
                _M_HITS.inc(tier="memory")
                return self._memory[key]
        if self.directory is not None:
            # Read and parse outside the lock: a multi-MB JSON load must
            # not stall other threads' pure memory hits.
            path = self._path(key)
            try:
                value = artifact_from_json(path.read_text())
            except FileNotFoundError:
                pass
            except Exception:
                # Any corrupted/truncated entry — invalid JSON, a bad
                # envelope shape (KeyError/TypeError), undecodable bytes
                # — is a miss, never an error: drop it so it cannot
                # poison future runs, and let the stage rebuild.
                with self._lock:
                    self.stats["corrupt"] += 1
                _M_CORRUPT.inc()
                try:
                    path.unlink(missing_ok=True)
                except OSError:
                    pass
            else:
                with self._lock:
                    self._remember(key, value)
                    self.stats["hits"] += 1
                    self.stats["disk_hits"] += 1
                _M_HITS.inc(tier="disk")
                return value
        with self._lock:
            self.stats["misses"] += 1
        _M_MISSES.inc()
        return None

    def put(self, key: str, value, disk: bool = True):
        """Store ``value`` under ``key``; returns ``value``.

        Persists to disk only when a directory is configured, ``disk``
        is true (stages pass ``False`` for cheap-to-recompute or
        unserializable artifacts), and the value has a serialized form.
        """
        if not obs_trace.ENABLED:
            return self._put(key, value, disk)
        with obs_trace.span("cache.put", key=key[:12], disk=disk):
            return self._put(key, value, disk)

    def _put(self, key: str, value, disk: bool = True):
        with self._lock:
            self._remember(key, value)
            self.stats["puts"] += 1
            _M_BYTES.set(self._memory_bytes, tier="memory")
        _M_PUTS.inc()
        if self.directory is not None and disk:
            try:
                text = artifact_to_json(value)
            except TypeError:
                return value
            # Write-then-rename so concurrent readers (the cache is
            # meant to be shared across processes) never observe a
            # partially written entry.
            tmp = self._path(key).with_suffix(
                f".tmp{os.getpid()}.{threading.get_ident()}"
            )
            tmp.write_text(text)
            os.replace(tmp, self._path(key))
            # Fault site `cache_corrupt`: truncate the envelope we just
            # wrote, simulating a writer killed mid-write — the next get
            # must treat it as a miss and rebuild.
            if resil_faults.active() and resil_faults.should_fire(
                "cache_corrupt"
            ) is not None:
                resil_faults.corrupt_file(self._path(key), mode="truncate")
        return value

    def clear(self, disk: bool = False) -> None:
        """Drop the memory tier (and the disk tier when ``disk=True``)."""
        with self._lock:
            self._memory.clear()
            self._memory_bytes = 0
        if disk and self.directory is not None:
            for path in self.directory.glob("*.json"):
                path.unlink()

    # ------------------------------------------------------------------
    # Disk-tier accounting
    # ------------------------------------------------------------------
    def disk_stats(self) -> Dict[str, int]:
        """Entry count and byte total of the disk tier (both 0 when the
        cache is memory-only).  A glob per call — cheap next to any
        build, but meant for ``/stats``-style instrumentation, not hot
        paths."""
        entries = 0
        nbytes = 0
        if self.directory is not None:
            for path in self.directory.glob("*.json"):
                try:
                    nbytes += path.stat().st_size
                except FileNotFoundError:
                    continue  # concurrently pruned
                entries += 1
        return {"entries": entries, "bytes": nbytes}

    def prune(self, max_bytes: int) -> Dict[str, int]:
        """Shrink the disk tier to at most ``max_bytes`` by deleting the
        least-recently-*written* entries first (mtime order — content
        keys never change, so mtime is creation time and the oldest
        artifacts are the stalest).

        Long-lived sharded runs re-key per-shard artifacts whenever a
        shard's edges or field change, so without pruning the disk tier
        grows without bound.  Returns ``{"removed", "bytes"}`` — how
        many entries went and how many bytes remain.  Memory-tier
        entries are untouched; a pruned artifact that is requested
        again is simply rebuilt (or re-persisted on its next put).
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        removed = 0
        total = 0
        if self.directory is None:
            return {"removed": 0, "bytes": 0}
        entries = []
        for path in self.directory.glob("*.json"):
            try:
                stat = path.stat()
            except FileNotFoundError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()  # oldest first
        total = sum(size for __, size, __p in entries)
        for __, size, path in entries:
            if total <= max_bytes:
                break
            path.unlink(missing_ok=True)
            total -= size
            removed += 1
        if removed:
            _M_EVICTIONS.inc(removed, tier="disk")
        _M_BYTES.set(total, tier="disk")
        return {"removed": removed, "bytes": total}

    def refresh_metrics(self) -> None:
        """Push the current tier footprints into the global byte gauges.

        Puts and prunes keep the gauges fresh on the write path; this is
        the scrape-time refresh (``/metrics``, ``--metrics``) so a
        read-only process still reports accurate tier sizes."""
        _M_BYTES.set(self.memory_bytes, tier="memory")
        _M_BYTES.set(self.disk_stats()["bytes"], tier="disk")

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def __repr__(self) -> str:
        where = str(self.directory) if self.directory else "memory-only"
        return (
            f"ArtifactCache({where}, entries={len(self)}, "
            f"hits={self.stats['hits']}, misses={self.stats['misses']})"
        )
