"""The staged pipeline every workload runs through.

All of the paper's workloads — terrain, peaks, treemap, profile,
correlate, and the streaming replay — are the same staged computation::

    source -> field -> tree -> super/simplified tree -> layout -> sink

:class:`Pipeline` wires those stages once, lazily, with each stage keyed
by a content hash of its inputs and parameters and looked up in an
:class:`~repro.engine.cache.ArtifactCache` before it is computed, so a
repeated build (same dataset, measure, bins) skips straight to render.

Stage *computation* honours the :mod:`repro.accel` backend setting
(measures via their registry spec's ``backend`` declaration, tree
construction / layout / rasterization via their builders' dispatch).
Because the backends are equivalence-tested to produce identical
arrays (betweenness: equal to ~1e-9, different float summation order),
the choice never enters a cache key: a warm cache hit bypasses both
kernels, and artifacts built under either backend are interchangeable
— a cached betweenness field is reused as-is rather than recomputed to
the other backend's 1e-9 variant.

:class:`StreamingPipeline` swaps the tree stage for a
:class:`~repro.stream.incremental.StreamingScalarTree` over a
:class:`~repro.stream.delta.DeltaGraph` while reusing every other stage
(source, field via the registry, and all sinks), so static and
incremental builds share one code path; the maintained super tree is
array-identical to the one a static pipeline builds on the compacted
snapshot (see ``tests/engine/test_stream_mode.py``).

Example::

    from repro.engine import ArtifactCache, Pipeline

    cache = ArtifactCache("~/.cache/repro")        # or None: memory-only
    p = Pipeline.from_dataset("grqc", "kcore", cache=cache)
    p.render(path="grqc_kcore.png")                # cold: builds + caches
    Pipeline.from_dataset("grqc", "kcore", cache=cache).render(
        path="again.png")                          # warm: cache hits only
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from ..core import (
    EdgeScalarGraph,
    ScalarGraph,
    build_edge_tree,
    build_super_tree,
    build_vertex_tree,
    simplify_tree,
)
from ..core.scalar_tree import ScalarTree
from ..core.super_tree import SuperTree
from ..graph import datasets
from ..obs import costs as obs_costs
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..graph.csr import CSRGraph
from ..graph.io import read_edge_list
from ..stream import SlidingWindow, StreamingScalarTree
from ..terrain import (
    highest_peaks,
    layout_tree,
    rasterize,
    render_terrain,
    treemap_svg,
)
from ..terrain.profile import profile_svg
from ..resil import faults as resil_faults
from ..resil.retry import RetryPolicy, retry_call
from . import registry
from .cache import ArtifactCache, fingerprint_array, fingerprint_graph, stage_key

#: Transient-fault budget for one stage build: injected `stage_fail`
#: faults (and any future TransientFault from a flaky source) are
#: retried quickly; deterministic exceptions still propagate unretried.
_STAGE_RETRY = RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.2)

__all__ = [
    "Source",
    "DatasetSource",
    "EdgeListSource",
    "GraphSource",
    "Pipeline",
    "StreamingPipeline",
]

PathLike = Union[str, Path]
FieldGraph = Union[ScalarGraph, EdgeScalarGraph]

#: Wall time of every cold stage build, by stage name — the histogram
#: behind the per-stage p50/p95 rollups in the bench ledger and the
#: ``repro_stage_build_seconds`` family on ``GET /metrics``.
STAGE_BUILD_SECONDS = obs_metrics.REGISTRY.histogram(
    "repro_stage_build_seconds",
    "Cold pipeline stage build time by stage.",
    ("stage",),
)

#: Streaming replay batches and their application time.
STREAM_BATCHES = obs_metrics.REGISTRY.counter(
    "repro_stream_batches_total", "Edit batches applied by streaming pipelines."
)
STREAM_BATCH_SECONDS = obs_metrics.REGISTRY.histogram(
    "repro_stream_batch_seconds", "Edit batch application time."
)


# ----------------------------------------------------------------------
# Source stage
# ----------------------------------------------------------------------
class Source:
    """Where the graph comes from (the pipeline's first stage)."""

    def load(self) -> CSRGraph:
        raise NotImplementedError


class DatasetSource(Source):
    """A registered dataset (memoized by :mod:`repro.graph.datasets`)."""

    def __init__(self, name: str) -> None:
        self.name = name

    def load(self) -> CSRGraph:
        return datasets.load(self.name).graph

    def __repr__(self) -> str:
        return f"DatasetSource({self.name!r})"


class EdgeListSource(Source):
    """A SNAP-style edge-list file."""

    def __init__(self, path: PathLike) -> None:
        self.path = path

    def load(self) -> CSRGraph:
        return read_edge_list(self.path)

    def __repr__(self) -> str:
        return f"EdgeListSource({str(self.path)!r})"


class GraphSource(Source):
    """An already-built :class:`CSRGraph`."""

    def __init__(self, graph: CSRGraph) -> None:
        self.graph = graph

    def load(self) -> CSRGraph:
        return self.graph

    def __repr__(self) -> str:
        return f"GraphSource({self.graph!r})"


def _as_source(source) -> Source:
    if isinstance(source, Source):
        return source
    if isinstance(source, CSRGraph):
        return GraphSource(source)
    raise TypeError(
        "source must be a Source, a CSRGraph, or a scalar graph; "
        f"got {type(source).__name__}"
    )


# ----------------------------------------------------------------------
# Shared sink stages
# ----------------------------------------------------------------------
class _TreeSinks:
    """Sink stages shared by the static and streaming pipelines.

    Subclasses provide ``display_tree`` (the super tree to draw) and
    ``layout()``; everything downstream of the layout is identical.
    """

    @property
    def display_tree(self) -> SuperTree:
        raise NotImplementedError

    def layout(self):
        raise NotImplementedError

    def heightfield(self, resolution: int = 160):
        """The rasterized heightfield for ``resolution`` (cached, so
        repeated renders — rotated cameras, stream frames — skip the
        rasterization, the most expensive part of the sink stage)."""
        raise NotImplementedError

    def render(
        self,
        path: Optional[PathLike] = None,
        *,
        camera=None,
        resolution: int = 160,
        width: int = 640,
        height: int = 480,
        **kwargs,
    ) -> np.ndarray:
        """Render the terrain image (returns the RGB array)."""
        return render_terrain(
            self.display_tree,
            camera=camera,
            resolution=resolution,
            width=width,
            height=height,
            layout=self.layout(),
            heightfield=self.heightfield(resolution),
            path=path,
            **kwargs,
        )

    def treemap(self, path: Optional[PathLike] = None, *, size: int = 640) -> str:
        """Render the linked 2D treemap SVG."""
        return treemap_svg(
            self.display_tree, layout=self.layout(), size=size, path=path
        )

    def profile(
        self,
        path: Optional[PathLike] = None,
        *,
        width: int = 720,
        height: int = 240,
    ) -> str:
        """Render the linked 1D profile SVG."""
        return profile_svg(
            self.display_tree, width=width, height=height, path=path
        )

    def peaks(self, count: int = 3) -> List:
        """The ``count`` highest disjoint-and-disconnected peaks."""
        return highest_peaks(
            self.display_tree, count=count, layout=self.layout()
        )


# ----------------------------------------------------------------------
# Static pipeline
# ----------------------------------------------------------------------
class Pipeline(_TreeSinks):
    """Staged, cached build: source → field → tree → display → layout.

    Parameters
    ----------
    source:
        A :class:`Source`, a raw :class:`CSRGraph`, or a
        :class:`ScalarGraph` / :class:`EdgeScalarGraph` that already
        carries its scalars (then ``measure`` must be omitted).
    measure:
        Registered measure name (see
        :func:`repro.engine.registry.measure_names`); its declared kind
        picks the vertex or edge tree algorithm.
    bins:
        When given, the display tree is simplified to ~``bins`` scalar
        levels (paper §II-E) instead of the exact super tree.
    scheme:
        Discretization scheme for ``bins`` (``"quantile"``/``"uniform"``).
    cache:
        An :class:`ArtifactCache`; defaults to a fresh memory-only cache.
        Share one instance (or point several at one directory) to reuse
        artifacts across builds.
    dist:
        Sharded execution backend (``repro.dist``): ``None``/``"off"``
        runs single-process, ``"auto"`` shards when the graph and host
        justify it, an integer runs that many process workers, and a
        :class:`~repro.dist.plan.DistPlan` pins everything.  Like the
        :mod:`repro.accel` backend choice, ``dist`` never enters a
        cache key — the sharded build is node-for-node identical to the
        single-process one, so artifacts are interchangeable.  Only
        vertex fields shard; edge fields fall back single-process (see
        :meth:`dist_stats`).
    """

    def __init__(
        self,
        source,
        measure: Optional[str] = None,
        *,
        bins: Optional[int] = None,
        scheme: str = "quantile",
        cache: Optional[ArtifactCache] = None,
        dist=None,
    ) -> None:
        self._explicit_field: Optional[FieldGraph] = None
        if isinstance(source, (ScalarGraph, EdgeScalarGraph)):
            if measure is not None:
                raise ValueError(
                    "measure must be omitted when the source already "
                    "carries scalars"
                )
            self._explicit_field = source
            self.source: Source = GraphSource(source.graph)
        else:
            self.source = _as_source(source)
            if measure is None:
                raise ValueError("a measure name is required")
            if measure not in registry.measure_names():
                raise KeyError(
                    f"unknown measure {measure!r}; known measures: "
                    f"{', '.join(registry.measure_names())}"
                )
        self.measure = measure
        self.bins = bins
        self.scheme = scheme
        self.cache = cache if cache is not None else ArtifactCache()
        # Measured build times land here (and persist next to the cache
        # when it has a directory) so dist_plan can decide from data.
        self.cost_ledger = obs_costs.ledger_for(self.cache.directory)
        self.dist = dist
        self._dist_resolved = False
        self._dist_plan = None
        self._dist_note: Optional[str] = None
        self._dist_executor = None
        self._dist_shards = None
        self._graph: Optional[CSRGraph] = None
        self._graph_fp: Optional[str] = None
        self._field: Optional[FieldGraph] = None
        self._field_fp: Optional[str] = None
        self._tree: Optional[ScalarTree] = None
        self._display: Optional[SuperTree] = None
        self._layout = None
        self._heightfields: dict = {}

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_dataset(cls, name: str, measure: str, **kwargs) -> "Pipeline":
        """Pipeline over a registered dataset."""
        return cls(DatasetSource(name), measure, **kwargs)

    @classmethod
    def from_edge_list(cls, path: PathLike, measure: str, **kwargs) -> "Pipeline":
        """Pipeline over a SNAP-style edge-list file."""
        return cls(EdgeListSource(path), measure, **kwargs)

    # -- keyed stage helper --------------------------------------------
    def _stage(self, name, params, fingerprints, build, disk=True):
        key = stage_key(name, params, *fingerprints)
        with obs_trace.span(f"stage.{name}", measure=self.measure) as sp:
            value = self.cache.get(key)
            if value is None:
                def guarded():
                    # Fault site `stage_fail`: a scheduled transient
                    # failure before the build runs; healed by the
                    # bounded retry below (occurrence counters advance).
                    resil_faults.maybe_fail("stage_fail", f"stage.{name}")
                    return build()

                with STAGE_BUILD_SECONDS.time(stage=name) as timer:
                    value = retry_call(
                        guarded, policy=_STAGE_RETRY, site=f"stage.{name}"
                    )
                sp.set(built=True)
                self._record_cost(f"stage.{name}", timer.seconds)
                value = self.cache.put(key, value, disk=disk)
        return value

    def _record_cost(self, stage: str, seconds: float) -> None:
        """Fold a measured cold-build time into the cost ledger (sized
        by the graph when it's already loaded — source loads aren't)."""
        try:
            from .. import accel

            # A sharded tree build is the executor's measurement
            # (recorded as ``dist.tree``); folding it into the
            # single-process ``stage.tree`` estimate would make the
            # planner compare sharding against itself.
            if stage == "stage.tree" and self._dist_plan is not None:
                return
            size = self._graph.n_edges if self._graph is not None else 0
            self.cost_ledger.record(
                stage,
                seconds,
                measure=self.measure,
                backend=accel.get_backend(),
                size=size,
            )
        except Exception:
            # Ledger trouble (read-only cache dir, etc.) must never
            # fail a build that already succeeded.
            pass

    # -- stage-level entry points --------------------------------------
    def stage(self, name: str, params: Dict[str, object], build, disk=True):
        """Run ``build()`` as a *custom* cached stage of this pipeline.

        The stage is keyed exactly like the built-in ones — name +
        params + the graph and field content fingerprints — so derived
        artifacts (e.g. :mod:`repro.serve`'s LOD tiles) share the
        pipeline's cache identity: same inputs hit, changed inputs miss.
        """
        return self._stage(
            name,
            params,
            [self.graph_fingerprint, self.field_fingerprint],
            build,
            disk=disk,
        )

    def stage_artifact_key(self, name: str, params: Dict[str, object]) -> str:
        """The cache key :meth:`stage` would use (for instrumentation)."""
        return stage_key(
            name, params, self.graph_fingerprint, self.field_fingerprint
        )

    def display_params(self) -> Dict[str, object]:
        """The parameter triple shared by every display-derived stage."""
        return {
            "kind": self.kind,
            "bins": self.bins,
            "scheme": self.scheme if self.bins else None,
        }

    # -- sharded execution backend (repro.dist) -------------------------
    def dist_plan(self):
        """The resolved :class:`~repro.dist.plan.DistPlan`, or ``None``
        for single-process execution.  Resolution is lazy (it may need
        the graph) and happens once; the decision and its reason are
        visible through :meth:`dist_stats`."""
        if not self._dist_resolved:
            self._dist_resolved = True
            if self.dist not in (None, "off", 0):
                from .. import dist as dist_mod

                if self.measure is not None:
                    spec = registry.get_measure(self.measure)
                    kind, cost = spec.kind, spec.cost
                else:
                    kind, cost = self.kind, "moderate"
                if kind != "vertex":
                    self._dist_note = (
                        "edge fields run single-process (Algorithm 3 "
                        "is not sharded)"
                    )
                else:
                    from ..dist.plan import last_decline_reason

                    self._dist_plan = dist_mod.plan(
                        self.dist,
                        self.graph,
                        measure_cost=cost,
                        measure=self.measure,
                        ledger=self.cost_ledger,
                    )
                    if self._dist_plan is None:
                        self._dist_note = (
                            last_decline_reason()
                            or "auto: graph/host below sharding thresholds"
                        )
        return self._dist_plan

    def _dist_backend(self):
        """The executor + shards for the resolved plan (lazy)."""
        from .. import dist as dist_mod

        plan = self.dist_plan()
        if self._dist_executor is None:
            self._dist_executor = dist_mod.ShardedExecutor(
                workers=plan.workers, ledger=self.cost_ledger
            )
        if self._dist_shards is None:
            self._dist_shards = dist_mod.partition_edges(
                self.graph, plan.n_shards, plan.partitioner
            )
        return self._dist_executor, self._dist_shards

    def dist_stats(self) -> Optional[Dict[str, object]]:
        """Shard summary for instrumentation (``repro serve /stats``,
        ``repro dist-build``); ``None`` when ``dist`` was never
        requested."""
        if self.dist in (None, "off", 0):
            return None
        plan = self._dist_plan
        out: Dict[str, object] = {
            "requested": str(self.dist),
            "active": plan is not None,
        }
        if self._dist_note:
            out["note"] = self._dist_note
        if plan is not None:
            out["plan"] = plan.summary()
        if self._dist_shards is not None:
            from ..dist import cut_vertices

            out["shard_edges"] = [
                int(s.n_edges) for s in self._dist_shards
            ]
            out["boundary_vertices"] = cut_vertices(self._dist_shards)
        if self._dist_executor is not None:
            out["executor"] = dict(self._dist_executor.stats)
        return out

    def close_dist(self) -> None:
        """Release the sharded backend's worker pool (if any)."""
        if self._dist_executor is not None:
            self._dist_executor.shutdown()
            self._dist_executor = None

    def _dist_tree_build(self) -> ScalarTree:
        """Tree-stage build via the sharded executor.  Per-shard merge
        forests flow through this pipeline's :class:`ArtifactCache`, so
        a warm re-run only re-reduces shards whose edges or field
        changed."""
        executor, shards = self._dist_backend()
        return executor.build_tree(
            self.field.scalars,
            shards,
            cache=self.cache,
            scalars_fingerprint=self.field_fingerprint,
        )

    # -- stages ---------------------------------------------------------
    @property
    def graph(self) -> CSRGraph:
        """Source stage: the underlying graph."""
        if self._graph is None:
            with obs_trace.span("stage.source", source=repr(self.source)):
                with STAGE_BUILD_SECONDS.time(stage="source"):
                    self._graph = self.source.load()
        return self._graph

    @property
    def graph_fingerprint(self) -> str:
        if self._graph_fp is None:
            self._graph_fp = fingerprint_graph(self.graph)
        return self._graph_fp

    def _field_stage(self, spec) -> np.ndarray:
        """Run the cached field stage for one measure spec.  The stage
        key (name, params, fingerprints) and the disk policy live only
        here so every caller shares cache identity.

        Under an active dist plan, shard-mergeable measures (see
        :data:`repro.dist.executor.DIST_FIELD_MERGERS`) are summed from
        per-shard contributions — exactly equal to the global
        computation, so the cache key is unchanged."""

        def build() -> np.ndarray:
            if spec.kind == "vertex" and self.dist_plan() is not None:
                from ..dist.executor import DIST_FIELD_MERGERS

                if spec.name in DIST_FIELD_MERGERS:
                    executor, shards = self._dist_backend()
                    merged = executor.merged_field(spec.name, shards)
                    if merged is not None:
                        return merged
            return registry.compute(spec.name, self.graph)

        return self._stage(
            "field",
            {"measure": spec.name},
            [self.graph_fingerprint],
            build,
            disk=spec.cost != "cheap",
        )

    @property
    def field(self) -> FieldGraph:
        """Field stage: the scalar graph (measure evaluated, cached)."""
        if self._field is None:
            if self._explicit_field is not None:
                self._field = self._explicit_field
            else:
                spec = registry.get_measure(self.measure)
                values = self._field_stage(spec)
                wrap = ScalarGraph if spec.kind == "vertex" else EdgeScalarGraph
                self._field = wrap(self.graph, values)
        return self._field

    @property
    def field_fingerprint(self) -> str:
        if self._field_fp is None:
            self._field_fp = fingerprint_array(self.field.scalars)
        return self._field_fp

    @property
    def kind(self) -> str:
        """``"vertex"`` or ``"edge"`` — which tree algorithm runs."""
        return "vertex" if isinstance(self.field, ScalarGraph) else "edge"

    @property
    def tree(self) -> ScalarTree:
        """Tree stage: the raw scalar tree (Algorithm 1 or 3, cached).

        With an active ``dist`` plan (vertex fields only) the build
        fans out over shards instead — same cache key, because the
        sharded result is node-for-node identical."""
        if self._tree is None:
            kind = self.kind
            if self.dist_plan() is not None and kind == "vertex":
                build = self._dist_tree_build
            else:
                builder = (
                    build_vertex_tree if kind == "vertex" else build_edge_tree
                )
                build = lambda: builder(self.field)  # noqa: E731
            self._tree = self._stage(
                "tree",
                {"kind": kind},
                [self.graph_fingerprint, self.field_fingerprint],
                build,
            )
        return self._tree

    @property
    def display_tree(self) -> SuperTree:
        """Display stage: super tree (Algorithm 2), simplified if
        ``bins`` is set.  A cache hit here skips the tree stage too."""
        if self._display is None:
            params = self.display_params()
            if self.bins:
                build = lambda: simplify_tree(  # noqa: E731
                    self.tree, self.bins, scheme=self.scheme
                )
            else:
                build = lambda: build_super_tree(self.tree)  # noqa: E731
            self._display = self._stage(
                "display",
                params,
                [self.graph_fingerprint, self.field_fingerprint],
                build,
            )
        return self._display

    def layout(self):
        """Layout stage: the nested-disc 2D layout (memory-cached —
        layouts have no on-disk form)."""
        if self._layout is None:
            params = self.display_params()
            self._layout = self._stage(
                "layout",
                params,
                [self.graph_fingerprint, self.field_fingerprint],
                lambda: layout_tree(self.display_tree),
                disk=False,
            )
        return self._layout

    def heightfield(self, resolution: int = 160):
        if resolution not in self._heightfields:
            params = dict(self.display_params(), resolution=resolution)
            self._heightfields[resolution] = self._stage(
                "heightfield",
                params,
                [self.graph_fingerprint, self.field_fingerprint],
                lambda: rasterize(self.layout(), resolution=resolution),
                disk=False,
            )
        return self._heightfields[resolution]

    # -- extras ---------------------------------------------------------
    def measure_field(self, name: str) -> np.ndarray:
        """Evaluate another *vertex* measure on this pipeline's graph,
        through the same cached field stage (used by ``correlate``)."""
        spec = registry.get_measure(name)
        if spec.kind != "vertex":
            raise ValueError(
                f"measure {name!r} is edge-based; correlation needs "
                "vertex measures"
            )
        return self._field_stage(spec)

    def build(self) -> "Pipeline":
        """Force every stage through layout; returns ``self``."""
        self.layout()
        return self

    def __repr__(self) -> str:
        return (
            f"Pipeline(source={self.source!r}, measure={self.measure!r}, "
            f"bins={self.bins})"
        )


# ----------------------------------------------------------------------
# Streaming pipeline
# ----------------------------------------------------------------------
class StreamingPipeline(_TreeSinks):
    """The pipeline with the tree stage running incrementally.

    The source and field stages are exactly :class:`Pipeline`'s (cached
    through the same :class:`ArtifactCache`); the tree stage is a
    :class:`StreamingScalarTree` maintained under edit batches, and the
    sinks are inherited unchanged.  After any sequence of edits the
    display tree is array-identical to the one a static pipeline builds
    on the compacted snapshot (:meth:`static_equivalent`).

    Parameters
    ----------
    source, measure, bins, scheme, cache:
        As for :class:`Pipeline`; the measure (or the explicit field)
        must be vertex-based.
    rebuild_threshold:
        Dirty-vertex fraction beyond which the maintainer falls back to
        a full rebuild (see :class:`StreamingScalarTree`).
    window:
        Optional sliding-window horizon; enables :meth:`push`.
    """

    def __init__(
        self,
        source,
        measure: Optional[str] = None,
        *,
        bins: Optional[int] = None,
        scheme: str = "quantile",
        rebuild_threshold: float = 0.5,
        window: Optional[float] = None,
        cache: Optional[ArtifactCache] = None,
    ) -> None:
        base = Pipeline(source, measure, bins=bins, scheme=scheme, cache=cache)
        # Reject edge measures from the registry's declared kind, before
        # the (possibly expensive) field stage ever runs.  For an
        # explicit field, base.kind is a free isinstance check.
        if base.measure is not None:
            kind = registry.get_measure(base.measure).kind
        else:
            kind = base.kind
        if kind != "vertex":
            raise ValueError(
                "streaming mode needs a vertex measure; pick from "
                f"{', '.join(registry.measure_names(kind='vertex'))}"
            )
        self.base = base
        self.bins = bins
        self.scheme = scheme
        self.stream = StreamingScalarTree(
            base.field, rebuild_threshold=rebuild_threshold
        )
        self.window = (
            SlidingWindow(self.stream, window) if window is not None else None
        )
        self._display: Optional[SuperTree] = None
        self._layout = None
        self._heightfields: dict = {}

    # -- edit application ----------------------------------------------
    def apply(self, batch) -> ScalarTree:
        """Apply one edit transaction; downstream stages recompute lazily."""
        self._invalidate()
        with obs_trace.span("stream.apply", edits=len(batch)):
            with STREAM_BATCH_SECONDS.time():
                tree = self.stream.apply(batch)
        STREAM_BATCHES.inc()
        return tree

    def push(self, t: float, batch) -> None:
        """Apply a timestamped batch through the sliding window."""
        if self.window is None:
            raise ValueError(
                "no sliding window configured (pass window=... )"
            )
        self._invalidate()
        with obs_trace.span("stream.push", edits=len(batch), t=t):
            with STREAM_BATCH_SECONDS.time():
                self.window.push(t, batch)
        STREAM_BATCHES.inc()

    def _invalidate(self) -> None:
        self._display = None
        self._layout = None
        self._heightfields.clear()

    # -- tree/display stages -------------------------------------------
    @property
    def tree(self) -> ScalarTree:
        """The incrementally maintained raw scalar tree."""
        return self.stream.tree

    @property
    def display_tree(self) -> SuperTree:
        if self._display is None:
            self._display = self.stream.display_tree(
                self.bins, scheme=self.scheme
            )
        return self._display

    def layout(self):
        if self._layout is None:
            self._layout = layout_tree(self.display_tree)
        return self._layout

    def heightfield(self, resolution: int = 160):
        if resolution not in self._heightfields:
            self._heightfields[resolution] = rasterize(
                self.layout(), resolution=resolution
            )
        return self._heightfields[resolution]

    @property
    def stats(self):
        """The maintainer's counters (batches, incremental, rebuilds...)."""
        return self.stream.stats

    def static_equivalent(self) -> Pipeline:
        """A static :class:`Pipeline` over the compacted current
        snapshot — its display tree must be array-identical to
        :attr:`display_tree` (the streaming/static equivalence
        contract)."""
        return Pipeline(
            self.stream.snapshot(), bins=self.bins, scheme=self.scheme
        )

    def __repr__(self) -> str:
        return (
            f"StreamingPipeline(source={self.base.source!r}, "
            f"measure={self.base.measure!r}, bins={self.bins}, "
            f"batches={self.stats['batches']})"
        )
