"""repro.engine — the unified, cached pipeline layer.

Every workload (terrain, peaks, treemap, profile, correlate, streaming
replay) is one staged computation; this package factors it out of the
drivers:

``repro.engine.registry``
    Named measure registry with declared kind (vertex/edge), cost hints
    and lazy imports; drivers validate ``--measure`` against it and
    third-party code extends it with decorators.
``repro.engine.cache``
    :class:`ArtifactCache` — content-hash-keyed, in-memory + on-disk
    store of stage artifacts (fields, trees, layouts).
``repro.engine.pipeline``
    :class:`Pipeline` (static) and :class:`StreamingPipeline`
    (incremental tree stage over :mod:`repro.stream`), sharing sources,
    the field stage and all sinks.
"""

from . import registry
from .cache import (
    ArtifactCache,
    artifact_nbytes,
    fingerprint_array,
    fingerprint_graph,
    stage_key,
)
from .pipeline import (
    DatasetSource,
    EdgeListSource,
    GraphSource,
    Pipeline,
    Source,
    StreamingPipeline,
)
from .registry import (
    MeasureSpec,
    compute,
    edge_measure,
    get_measure,
    measure_names,
    register_measure,
    vertex_measure,
)

__all__ = [
    "registry",
    "ArtifactCache",
    "artifact_nbytes",
    "fingerprint_array",
    "fingerprint_graph",
    "stage_key",
    "Source",
    "DatasetSource",
    "EdgeListSource",
    "GraphSource",
    "Pipeline",
    "StreamingPipeline",
    "MeasureSpec",
    "register_measure",
    "vertex_measure",
    "edge_measure",
    "get_measure",
    "measure_names",
    "compute",
]
