"""Query-result visualization: NN graphs over tabular data."""

from .nngraph import knn_graph, plant_query_table, radius_graph

__all__ = ["knn_graph", "radius_graph", "plant_query_table"]
