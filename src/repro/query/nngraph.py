"""Query-result visualization substrate (paper §III-D, Fig 11).

The paper models the output of a SQL query — a materialised table —
as a nearest-neighbour graph over the selected attributes, then draws
the terrain of a per-row scalar (one of the selected attributes).  We
provide the k-NN / ε-radius graph builders (scipy cKDTree) and a
seeded synthetic stand-in for the OSU plant-genus table: three genera,
five numeric attributes, with attribute 1 separating the genera more
strongly than attribute 2 (the property Fig 11 demonstrates).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.spatial import cKDTree

from ..graph.builders import from_edge_array
from ..graph.csr import CSRGraph

__all__ = ["knn_graph", "radius_graph", "plant_query_table"]


def knn_graph(points: np.ndarray, k: int) -> CSRGraph:
    """Symmetrised k-nearest-neighbour graph over row vectors.

    Each row links to its ``k`` nearest other rows (Euclidean); the
    union of directed pairs forms the undirected edge set.
    """
    points = np.asarray(points, dtype=np.float64)
    n = len(points)
    if k < 1 or k >= n:
        raise ValueError("require 1 <= k < n_points")
    tree = cKDTree(points)
    __, idx = tree.query(points, k=k + 1)  # first hit is the point itself
    src = np.repeat(np.arange(n, dtype=np.int64), k)
    dst = idx[:, 1:].reshape(-1).astype(np.int64)
    return from_edge_array(np.column_stack([src, dst]), n_vertices=n)


def radius_graph(points: np.ndarray, eps: float) -> CSRGraph:
    """ε-radius graph: rows within distance ``eps`` are adjacent."""
    points = np.asarray(points, dtype=np.float64)
    n = len(points)
    tree = cKDTree(points)
    pairs = tree.query_pairs(eps, output_type="ndarray").astype(np.int64)
    return from_edge_array(pairs.reshape(-1, 2), n_vertices=n)


def plant_query_table(
    per_genus: int = 60, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Synthetic stand-in for the plant-genus query result.

    Returns ``(table, genus)``: a ``(3 · per_genus, 5)`` float table and
    integer genus labels 0/1/2.  Genus structure mirrors Fig 11's
    findings: genus 2 ("blue") is well separated from the other two;
    genus 0 ("red") nests inside the attribute-range of genus 1
    ("green"); and attribute 0 separates the genera more strongly than
    attribute 1 (larger between-genus variance), with attributes 2–4 as
    weakly-informative noise.
    """
    rng = np.random.default_rng(seed)
    # Genus means over the 5 attributes.
    means = np.array(
        [
            #   a0    a1    a2   a3   a4
            [4.0, 2.6, 1.0, 0.5, 0.2],   # red: inside green's range
            [3.2, 2.2, 1.1, 0.6, 0.3],   # green: broad
            [9.0, 4.0, 0.9, 0.4, 0.25],  # blue: far away on a0
        ]
    )
    spreads = np.array(
        [
            [0.35, 0.35, 0.3, 0.2, 0.1],
            [1.10, 0.80, 0.3, 0.2, 0.1],
            [0.60, 0.50, 0.3, 0.2, 0.1],
        ]
    )
    rows = []
    genus = []
    for g in range(3):
        block = means[g] + rng.standard_normal((per_genus, 5)) * spreads[g]
        rows.append(block)
        genus.extend([g] * per_genus)
    return np.vstack(rows), np.array(genus, dtype=np.int64)
