"""Command-line interface: ``python -m repro <command> ...``.

The commands cover the common workflows without writing any Python,
and all of them are thin wrappers over one :class:`repro.engine.Pipeline`
(static), :class:`repro.engine.StreamingPipeline` (incremental), or the
:mod:`repro.serve` application:

* ``terrain`` — render the terrain of a registered dataset (or an edge
  list file) under a chosen measure;
* ``peaks``   — list the highest disconnected peaks (densest K-cores /
  K-trusses / community cores);
* ``treemap`` / ``profile`` — the linked 2D displays;
* ``correlate`` — LCI/GCI of two vertex measures;
* ``stream``  — replay a JSONL edit log through the incremental
  maintainer and emit terrain frames;
* ``evolve``  — drive a timestamped ``src dst ts [w]`` edge log (or
  the planted dynamic-community generator) through the windowed
  timeline, track peaks into trajectories, and report lifecycle
  events and terrain-diff summaries;
* ``serve``   — boot the concurrent terrain tile/query HTTP server
  (LOD tile pyramid, peaks/hit/treemap/profile endpoints, SSE stream
  replay) on top of the same cached pipelines.

Measures are resolved through :mod:`repro.engine.registry` (so
``--measure`` is validated at parse time against the registry's known
names), and expensive stage artifacts are reused through the engine's
cache — pass ``--cache-dir`` (or set ``$REPRO_CACHE_DIR``) to persist
them across runs.

Examples::

    python -m repro terrain --dataset grqc --measure kcore -o out.png
    python -m repro peaks --dataset ppi --measure ktruss --count 3
    python -m repro correlate --dataset astro degree betweenness
    python -m repro stream --dataset amazon --log edits.jsonl \
        --frames-dir frames/
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

import numpy as np

from . import accel
from .core import global_correlation_index, outlier_score
from .obs import metrics as obs_metrics
from .obs import trace as obs_trace
from .resil import faults as resil_faults
from .engine import (
    ArtifactCache,
    DatasetSource,
    EdgeListSource,
    Pipeline,
    StreamingPipeline,
    registry,
)
from .stream import read_edit_log
from .terrain import Camera

__all__ = ["main", "version_string"]


def version_string() -> str:
    """``repro X.Y.Z`` from installed package metadata, falling back to
    the in-tree ``__version__`` for PYTHONPATH=src checkouts."""
    try:
        from importlib.metadata import version

        return f"repro {version('repro')}"
    except Exception:
        from . import __version__

        return f"repro {__version__}"


def _measure_arg(value: str) -> str:
    """argparse type: any registered measure (choices-style error)."""
    known = registry.measure_names()
    if value not in known:
        raise argparse.ArgumentTypeError(
            f"invalid choice: {value!r} (choose from {', '.join(known)})"
        )
    return value


def _vertex_measure_arg(value: str) -> str:
    """argparse type: a registered *vertex* measure."""
    known = registry.measure_names(kind="vertex")
    if value not in known:
        raise argparse.ArgumentTypeError(
            f"invalid choice: {value!r} (vertex measures only; choose "
            f"from {', '.join(known)})"
        )
    return value


def _source(args):
    if args.dataset:
        return DatasetSource(args.dataset)
    if args.edge_list:
        return EdgeListSource(args.edge_list)
    raise SystemExit("provide --dataset or --edge-list")


def _cache(args) -> ArtifactCache:
    if args.cache_dir:
        return ArtifactCache(args.cache_dir)
    return ArtifactCache.from_env()


def _dist_arg(value: str):
    """argparse type for ``--dist``: 'auto', 'off', or a worker count."""
    if value in ("auto", "off"):
        return value
    try:
        workers = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid choice: {value!r} (choose 'auto', 'off', or a "
            "worker count)"
        )
    if workers < 0:
        raise argparse.ArgumentTypeError("worker count must be >= 0")
    return workers


def _pipeline(args) -> Pipeline:
    return Pipeline(
        _source(args), args.measure, bins=args.bins, cache=_cache(args),
        dist=getattr(args, "dist", None),
    )


def _add_common(
    parser: argparse.ArgumentParser, measure_type=_measure_arg
) -> None:
    kind = "vertex" if measure_type is _vertex_measure_arg else None
    parser.add_argument("--dataset", help="registered dataset name")
    parser.add_argument("--edge-list", help="path to a SNAP-style edge list")
    parser.add_argument(
        "--measure", default="kcore", type=measure_type,
        help="scalar measure; one of: "
             + ", ".join(registry.measure_names(kind=kind)),
    )
    parser.add_argument(
        "--bins", type=int, default=None,
        help="simplify the tree to ~N scalar levels before drawing",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="persist pipeline artifacts here (default: $REPRO_CACHE_DIR "
             "if set, else in-memory only)",
    )
    parser.add_argument(
        "--dist", type=_dist_arg, default="off", metavar="{auto,off,N}",
        help="sharded execution backend: 'auto' shards when the graph "
             "and host justify it, N runs N process workers; results "
             "are identical to single-process (default: off)",
    )
    _add_accel(parser)
    _add_obs(parser)
    _add_resil(parser)


def _add_resil(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="deterministic fault injection for chaos testing: "
             "'site:occurrences[:param]' rules joined by ';' (e.g. "
             "'worker_kill:1;fragment_corrupt:1'); sites: "
             + ", ".join(resil_faults.SITES)
             + " (default: $REPRO_FAULTS if set, else off)",
    )


def _add_obs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="enable repro.obs tracing and append span records (JSONL) "
             "to PATH; convert with repro.obs.trace.chrome_trace_from_jsonl "
             "for chrome://tracing / Perfetto (default: $REPRO_TRACE "
             "if set, else off)",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print the repro.obs metrics registry (Prometheus text "
             "format) to stderr on exit",
    )


def _add_accel(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--accel", choices=accel.BACKENDS, default=None,
        help="compute-kernel backend for tree construction, measures, "
             "layout and rasterization; all backends produce identical "
             "results ('native' self-compiles a C merge-scan kernel at "
             "first use and falls back to 'vector' without a toolchain; "
             "default: $REPRO_ACCEL if set, else 'auto')",
    )


def _cmd_terrain(args) -> int:
    pipeline = _pipeline(args)
    try:
        camera = Camera(
            azimuth=args.azimuth, elevation=args.elevation,
        ).zoomed(args.zoom)
        pipeline.render(
            path=args.output,
            camera=camera,
            resolution=args.resolution,
            width=args.width, height=args.height,
        )
        print(f"terrain of {args.measure} -> {args.output} "
              f"({pipeline.display_tree.n_nodes} super nodes)")
    finally:
        pipeline.close_dist()
    return 0


def _cmd_peaks(args) -> int:
    pipeline = _pipeline(args)
    try:
        unit = "edges" if pipeline.display_tree.kind == "edge" else "vertices"
        for i, peak in enumerate(pipeline.peaks(count=args.count)):
            print(f"#{i + 1}: level {peak.alpha:g}, {peak.size} {unit}, "
                  f"summit {peak.summit:g}")
    finally:
        pipeline.close_dist()
    return 0


def _cmd_treemap(args) -> int:
    pipeline = _pipeline(args)
    try:
        pipeline.treemap(path=args.output, size=args.width)
        print(f"treemap of {args.measure} -> {args.output}")
    finally:
        pipeline.close_dist()
    return 0


def _cmd_profile(args) -> int:
    pipeline = _pipeline(args)
    try:
        pipeline.profile(
            path=args.output, width=args.width, height=args.height
        )
        print(f"profile of {args.measure} -> {args.output}")
    finally:
        pipeline.close_dist()
    return 0


def _cmd_prof(args) -> int:
    """Run another CLI command under the sampling profiler and write
    ``<output>.collapsed`` (collapsed-stack text) + ``<output>.svg``
    (flamegraph)."""
    from .obs import prof as obs_prof

    rest = list(args.argv)
    if rest and rest[0] == "--":
        rest = rest[1:]
    if not rest:
        print("prof: nothing to profile — usage: repro prof [-o NAME] "
              "[--hz HZ] -- <command> [args...]", file=sys.stderr)
        return 2
    if rest[0] == "prof":
        print("prof: refusing to profile a nested 'prof' run",
              file=sys.stderr)
        return 2

    profiler = obs_prof.SamplingProfiler(hz=args.hz).start()
    try:
        rc = main(rest)
    finally:
        profile = profiler.stop()

    out = Path(args.output)
    collapsed_path = out.with_suffix(".collapsed")
    svg_path = out.with_suffix(".svg")
    collapsed_path.write_text(profile.collapsed() + "\n", encoding="utf-8")
    svg_path.write_text(
        obs_prof.flamegraph_svg(
            profile, title=f"repro {' '.join(rest)} — {args.hz}Hz"
        ),
        encoding="utf-8",
    )
    print(
        f"prof: {profile.n_samples} samples over "
        f"{profile.duration_s:.2f}s at {args.hz}Hz -> "
        f"{collapsed_path}, {svg_path}"
    )
    return rc


def _cmd_dist_build(args) -> int:
    """Build a scalar tree through the sharded backend and report the
    shard/merge summary — the scaling counterpart of ``terrain``.

    Two modes share the executor:

    * default — partition the in-memory graph (any vertex measure);
    * ``--scatter-dir`` — stream ``--edge-list`` through the
      out-of-core scatter first and build from the on-disk shards (for
      shard-mergeable measures like ``degree`` the global CSR is never
      materialized).
    """
    import json as json_mod
    import time as time_mod

    from .core.serialize import save_tree
    from .engine.pipeline import STAGE_BUILD_SECONDS
    from .dist import (
        DistPlan,
        ShardedExecutor,
        choose_partitioner,
        resilient_scatter,
        usable_cpus,
    )
    from .engine.cache import fingerprint_array
    from .graph.io import read_edge_list

    # --measure is parse-time validated to a vertex measure.
    # dist-build always shards (that is the command); --dist only sizes
    # the pool.  0 = in-process threads, 'auto'/'off' = size to the host.
    if isinstance(args.dist, int):
        workers = args.dist
    else:
        workers = min(4, usable_cpus()) if usable_cpus() >= 2 else 0
    cache = _cache(args)

    t0 = time_mod.perf_counter()
    if args.scatter_dir:
        if not args.edge_list:
            raise SystemExit("--scatter-dir needs --edge-list (the "
                             "on-disk edge list to stream)")
        if not Path(args.edge_list).exists():
            raise SystemExit(f"edge list not found: {args.edge_list}")
        if args.partitioner == "auto":
            # The cost model scores in-memory partitions; a streaming
            # scatter picks the one scheme that needs no pre-pass.
            method = "hash"
            print("--partitioner auto: scatter mode uses 'hash' "
                  "(stateless, single-pass); pass an explicit "
                  "partitioner to override")
        else:
            method = args.partitioner
        n_shards = args.shards or max(2, workers)
        # Resilient scatter: fragments are sha256-verified on reload,
        # bad ones quarantined and the scatter re-run (bounded retries).
        scatter, shards = resilient_scatter(
            args.edge_list, n_shards, args.scatter_dir,
            method=method,
            chunk_edges=args.chunk_edges,
            max_buffer_bytes=args.max_buffer_mb * (1 << 20),
        )
        print(
            f"scattered {scatter.stats['n_edges']} edges into "
            f"{n_shards} {method} shards (peak buffer "
            f"{scatter.stats['peak_buffered_bytes']} B, limit "
            f"{scatter.stats['buffer_limit_bytes']} B)"
        )
        executor = ShardedExecutor(workers=workers)
        try:
            scalars = executor.merged_field(args.measure, shards)
            graph = None
            if scalars is None:
                graph = read_edge_list(args.edge_list)
                scalars = registry.compute(args.measure, graph)
            tree = executor.build_tree(
                scalars, shards, cache=cache,
                scalars_fingerprint=fingerprint_array(scalars),
            )
            summary = executor.stats["last_build"]
            if args.verify:
                if graph is None:
                    graph = read_edge_list(args.edge_list)
                _verify_dist(tree, graph, scalars)
        finally:
            executor.shutdown()
    else:
        pipeline = Pipeline(_source(args), args.measure, cache=cache)
        try:
            n_shards = args.shards or max(2, workers)
            method = (
                choose_partitioner(pipeline.graph, n_shards)
                if args.partitioner == "auto"
                else args.partitioner
            )
            pipeline.dist = DistPlan(
                partitioner=method, n_shards=n_shards, workers=workers,
                reason=f"dist-build --dist {args.dist}",
            )
            tree = pipeline.tree
            stats = pipeline.dist_stats() or {}
            summary = (stats.get("executor") or {}).get("last_build")
            if summary is None:
                summary = dict(
                    stats.get("plan", {}),
                    note="tree served from cache (no shard work ran)",
                )
            if args.verify:
                _verify_dist(tree, pipeline.graph, pipeline.field.scalars)
        finally:
            pipeline.close_dist()
    seconds = time_mod.perf_counter() - t0
    # Same number the print below reports, mirrored into the global
    # registry so --metrics and /metrics tell the same story.
    STAGE_BUILD_SECONDS.observe(seconds, stage="dist_build")

    print(f"dist-build {args.measure}: {tree.n_nodes} nodes, "
          f"{len(tree.roots)} roots in {seconds:.2f}s")
    print(json_mod.dumps(summary, indent=2, sort_keys=True))
    if args.verify:
        print("verify: sharded tree identical to single-process build")
    if args.output:
        save_tree(tree, args.output)
        print(f"tree -> {args.output}")
    return 0


def _verify_dist(tree, graph, scalars) -> None:
    """Assert the sharded tree equals the single-process build."""
    from .core import ScalarGraph, build_vertex_tree

    ref = build_vertex_tree(ScalarGraph(graph, scalars))
    if not (
        np.array_equal(tree.parent, ref.parent)
        and np.array_equal(tree.scalars, ref.scalars)
    ):
        raise SystemExit(
            "verify FAILED: sharded tree differs from the "
            "single-process build"
        )


def _cmd_correlate(args) -> int:
    pipeline = Pipeline(
        _source(args), args.field_i, cache=_cache(args), dist=args.dist,
    )
    try:
        field_i = pipeline.measure_field(args.field_i)
        field_j = pipeline.measure_field(args.field_j)
        gci = global_correlation_index(pipeline.graph, field_i, field_j)
        print(f"GCI({args.field_i}, {args.field_j}) = {gci:.4f}")
        scores = outlier_score(pipeline.graph, field_i, field_j)
        top = np.argsort(-scores)[: args.count]
        print("top outlier vertices (most locally anti-correlated):")
        for v in top:
            print(f"  vertex {int(v)}: outlier_score {scores[v]:.3f}")
    finally:
        pipeline.close_dist()
    return 0


def _cmd_stream(args) -> int:
    # Cheap flag/log validation first — measure + tree construction on
    # a large dataset can take minutes.  (--measure itself is already
    # validated at parse time against the registry's vertex measures.)
    if getattr(args, "dist", "off") not in ("off", 0):
        raise SystemExit(
            "--dist is not supported for streaming replay (the tree "
            "stage is maintained incrementally, not rebuilt per batch)"
        )
    if args.window is not None and args.window <= 0:
        raise SystemExit("--window must be a positive horizon")
    if args.frame_every < 1:
        raise SystemExit("--frame-every must be >= 1")
    try:
        batches = read_edit_log(args.log)
    except FileNotFoundError:
        raise SystemExit(f"edit log not found: {args.log}")
    except ValueError as exc:
        raise SystemExit(f"bad edit log {args.log}: {exc}")

    pipeline = StreamingPipeline(
        _source(args), args.measure,
        bins=args.bins,
        rebuild_threshold=args.rebuild_threshold,
        window=args.window,
        cache=_cache(args),
    )

    frames_dir: Optional[Path] = None
    if args.frames_dir:
        frames_dir = Path(args.frames_dir)
        frames_dir.mkdir(parents=True, exist_ok=True)

    n_edits = 0
    n_frames = 0
    last_t = float("-inf")
    for i, (when, batch) in enumerate(batches):
        n_edits += len(batch)
        try:
            if pipeline.window is not None:
                # Untimed commits fall back to the batch index, clamped
                # so a mix with earlier explicit timestamps never goes
                # backwards; explicit decreasing stamps still error.
                t = max(last_t, float(i)) if when is None else when
                pipeline.push(t, batch)
                last_t = t
            else:
                pipeline.apply(batch)
        except (IndexError, ValueError) as exc:
            raise SystemExit(f"edit batch {i} of {args.log}: {exc}")
        if frames_dir is not None and i % args.frame_every == 0:
            pipeline.render(
                path=frames_dir / f"frame_{i:05d}.png",
                resolution=args.resolution,
                width=args.width, height=args.height,
            )
            n_frames += 1

    stats = pipeline.stats
    print(
        f"replayed {stats['batches']} batches ({n_edits} edits) of "
        f"{args.log}: {stats['incremental']} incremental, "
        f"{stats['full_rebuilds']} full rebuilds, "
        f"{stats['replayed_vertices']} vertices replayed"
    )
    if frames_dir is not None:
        print(f"{n_frames} terrain frames -> {frames_dir}")
    print(
        f"final tree: {pipeline.stream.super_tree().n_nodes} super nodes "
        f"over {pipeline.stream.delta.n_edges} edges"
    )
    return 0


def _cmd_evolve(args) -> int:
    """Windowed terrain evolution: timeline -> tracker -> diff report."""
    import json as json_mod

    from .evolve import (
        DiffTiler,
        PeakTracker,
        event_f1,
        frames_from_log,
        frames_from_rows,
        peaks_from_tree,
    )
    from .graph.generators import dynamic_planted_partition

    if bool(args.log) == bool(args.synthetic):
        raise SystemExit("provide exactly one of --log or --synthetic")
    if args.window <= 0:
        raise SystemExit("--window must be a positive horizon")
    if args.resolution and args.resolution % args.tile_size != 0:
        raise SystemExit("--resolution must be a multiple of --tile-size")

    truth_events = None
    origin = args.origin
    if args.synthetic:
        log = dynamic_planted_partition(
            n_vertices=args.vertices,
            n_windows=args.windows,
            n_communities=args.communities,
            community_size=args.community_size,
            p_in=args.p_in,
            churn=args.churn,
            noise_per_window=args.noise,
            seed=args.seed,
        )
        truth_events = log.events
        if origin is None:
            origin = log.origin
        if args.write_log:
            log.write(args.write_log)
            print(f"synthetic temporal log -> {args.write_log} "
                  f"({len(log.rows)} edges, {log.n_windows} windows)")
        frames = frames_from_rows(
            log.rows, log.n_vertices,
            measure=args.measure, horizon=args.window,
            stride=args.stride, origin=origin, bins=args.bins,
        )
    else:
        if not Path(args.log).exists():
            raise SystemExit(f"temporal edge log not found: {args.log}")
        try:
            frames = frames_from_log(
                args.log,
                measure=args.measure, horizon=args.window,
                stride=args.stride, origin=origin, bins=args.bins,
            )
        except ValueError as exc:
            raise SystemExit(f"bad temporal log {args.log}: {exc}")

    tracker = PeakTracker(jaccard=args.jaccard, min_size=args.min_size)
    tiler = (
        DiffTiler(resolution=args.resolution, tile_size=args.tile_size)
        if args.resolution
        else None
    )
    report = {"windows": [], "events": []}
    try:
        for frame in frames:
            peaks = peaks_from_tree(
                frame.super, args.alpha, args.min_size, window=frame.index
            )
            events = tracker.observe(frame.index, peaks)
            row = dict(frame.describe())
            row["n_peaks"] = len(peaks)
            if tiler is not None:
                tiler.add_frame(frame)
                if frame.index > 0:
                    row["diff"] = tiler.summary(frame.index)
            report["windows"].append(row)
            report["events"].extend(e.describe() for e in events)
            line = (
                f"window {frame.index}: {frame.n_edges} edges, "
                f"{len(peaks)} peaks"
            )
            if events:
                line += " | " + ", ".join(
                    f"{e.kind}#{e.trajectory}" for e in events
                )
            print(line)
    except ValueError as exc:
        raise SystemExit(f"evolve failed: {exc}")
    report["tracker"] = tracker.stats()
    if truth_events is not None:
        report["event_f1"] = event_f1(tracker.events, truth_events)
        print(f"event F1 vs planted ground truth: "
              f"{report['event_f1']:.3f}")
    stats = report["tracker"]
    print(
        f"tracked {stats['trajectories']} trajectories over "
        f"{len(report['windows'])} windows ({stats['live']} live); "
        "events: "
        + ", ".join(f"{k}={v}" for k, v in sorted(stats["events"].items()))
    )
    if args.output:
        Path(args.output).write_text(
            json_mod.dumps(report, indent=2, sort_keys=True)
        )
        print(f"report -> {args.output}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from .graph import datasets as dataset_registry
    from .serve import (
        EvolveSession,
        HTTPServer,
        ServeApp,
        StageRunner,
        StreamSession,
    )

    # Fail fast on flags the lazy pyramid/runner would otherwise only
    # reject on the first request (as a 500) or with a raw traceback.
    if args.tile_size < 8 or args.tile_size % 2 != 0:
        raise SystemExit("--tile-size must be an even integer >= 8")
    if args.levels < 1:
        raise SystemExit("--levels must be >= 1")
    if args.workers < 0:
        raise SystemExit("--workers must be >= 0")

    measures = [m.strip() for m in args.measures.split(",") if m.strip()]
    if not measures:
        raise SystemExit("--measures must name at least one measure")
    for measure in measures:
        _measure_arg_exit(measure)

    cache = _cache(args)
    if args.cache_memory_mb is not None:
        if args.cache_memory_mb < 0:
            raise SystemExit("--cache-memory-mb must be >= 0")
        cache.max_memory_bytes = args.cache_memory_mb * (1 << 20)
    if args.cache_disk_mb is not None and args.cache_disk_mb < 0:
        raise SystemExit("--cache-disk-mb must be >= 0")
    if args.max_inflight < 0:
        raise SystemExit("--max-inflight must be >= 0")
    if args.max_sse_sessions < 0:
        raise SystemExit("--max-sse-sessions must be >= 0")
    if args.request_timeout < 0:
        raise SystemExit("--request-timeout must be >= 0")
    if args.drain_grace < 0:
        raise SystemExit("--drain-grace must be >= 0")
    runner = StageRunner(workers=args.workers, max_inflight=args.max_inflight)
    app = ServeApp(
        cache=cache,
        runner=runner,
        tile_size=args.tile_size,
        levels=args.levels,
        bins=args.bins,
        dist=None if args.dist in ("off", 0) else args.dist,
        max_disk_bytes=(
            None if args.cache_disk_mb is None
            else args.cache_disk_mb * (1 << 20)
        ),
        request_timeout=args.request_timeout or None,
    )

    names = [n.strip() for n in args.datasets.split(",") if n.strip()]
    if names == ["all"]:
        names = dataset_registry.names()
    for name in names:
        if name not in dataset_registry.names():
            raise SystemExit(
                f"unknown dataset {name!r}; available: "
                f"{', '.join(dataset_registry.names())} (or 'all')"
            )
        app.add_dataset(name, measures)
    for spec in args.edge_list or []:
        name, sep, path = spec.partition("=")
        if not sep or not name or not path:
            raise SystemExit(f"--edge-list expects NAME=PATH, got {spec!r}")
        if not Path(path).exists():
            raise SystemExit(f"edge list not found: {path}")
        app.add_dataset(name, measures, edge_list=path)
    if not app.datasets:
        raise SystemExit("nothing to serve: no datasets or edge lists")

    for spec in args.stream_log or []:
        name, sep, rest = spec.partition("=")
        parts = rest.split(":", 2)
        if not sep or len(parts) != 3 or not all(parts):
            raise SystemExit(
                "--stream-log expects NAME=DATASET:MEASURE:LOGPATH, "
                f"got {spec!r}"
            )
        ds, measure, log_path = parts
        entry = app.datasets.get(ds)
        if entry is None:
            raise SystemExit(
                f"--stream-log {name}: dataset {ds!r} is not served"
            )
        _vertex_measure_arg_exit(measure)
        if not Path(log_path).exists():
            raise SystemExit(f"edit log not found: {log_path}")
        app.add_stream_session(StreamSession(
            name, entry.source, measure, log_path,
            bins=args.bins,
            tile_size=args.tile_size, levels=args.levels,
        ))

    for spec in args.evolve_log or []:
        name, sep, rest = spec.partition("=")
        parts = rest.split(":", 2)
        if not sep or len(parts) != 3 or not all(parts):
            raise SystemExit(
                "--evolve-log expects NAME=MEASURE:WINDOW:LOGPATH, "
                f"got {spec!r}"
            )
        measure, window, log_path = parts
        _vertex_measure_arg_exit(measure)
        try:
            horizon = float(window)
        except ValueError:
            horizon = -1.0
        if horizon <= 0:
            raise SystemExit(
                f"--evolve-log {name}: WINDOW must be a positive "
                f"horizon, got {window!r}"
            )
        if not Path(log_path).exists():
            raise SystemExit(f"temporal edge log not found: {log_path}")
        app.add_evolve_session(EvolveSession(
            name, log_path, measure=measure, horizon=horizon,
            bins=args.bins, tile_size=args.tile_size,
        ))

    async def _run() -> None:
        import signal

        server = HTTPServer(
            app.router(), args.host, args.port,
            max_sse_sessions=args.max_sse_sessions,
        )
        # /debug/slow exemplars ride the post-response hook.
        server.request_observer = app.observe_request
        await server.start()
        resolution = args.tile_size * 2 ** (args.levels - 1)
        print(
            f"repro serve: http://{args.host}:{server.port} — "
            f"{len(app.datasets)} dataset(s) x {len(measures)} measure(s), "
            f"{args.levels}-level pyramid at {resolution}px "
            f"({args.workers or 'thread'}-worker builds)",
            flush=True,
        )
        loop = asyncio.get_running_loop()
        sigterm = asyncio.Event()
        try:
            loop.add_signal_handler(signal.SIGTERM, sigterm.set)
        except (NotImplementedError, RuntimeError):
            pass  # no signal support on this loop/platform
        serving = asyncio.ensure_future(server.serve_forever())
        stopping = asyncio.ensure_future(sigterm.wait())
        try:
            await asyncio.wait(
                {serving, stopping}, return_when=asyncio.FIRST_COMPLETED
            )
            if sigterm.is_set():
                print(
                    f"repro serve: SIGTERM — draining "
                    f"(grace {args.drain_grace:g}s)",
                    flush=True,
                )
                await server.drain(grace=args.drain_grace)
        finally:
            for task in (serving, stopping):
                task.cancel()
            await asyncio.gather(serving, stopping, return_exceptions=True)
            await server.aclose()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("repro serve: shutting down")
    finally:
        runner.shutdown()
    return 0


def _measure_arg_exit(value: str) -> str:
    """Like :func:`_measure_arg`, but for post-parse validation."""
    try:
        return _measure_arg(value)
    except argparse.ArgumentTypeError as exc:
        raise SystemExit(f"--measures: {exc}")


def _vertex_measure_arg_exit(value: str) -> str:
    try:
        return _vertex_measure_arg(value)
    except argparse.ArgumentTypeError as exc:
        raise SystemExit(f"--stream-log: {exc}")


def build_parser() -> argparse.ArgumentParser:
    """The assembled argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Scalar fields on graphs: terrains, peaks, correlation.",
    )
    parser.add_argument(
        "--version", action="version", version=version_string(),
        help="print the installed repro version and exit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    terrain = sub.add_parser("terrain", help="render a terrain image")
    _add_common(terrain)
    terrain.add_argument("-o", "--output", default="terrain.png")
    terrain.add_argument("--azimuth", type=float, default=35.0)
    terrain.add_argument("--elevation", type=float, default=38.0)
    terrain.add_argument("--zoom", type=float, default=1.0)
    terrain.add_argument("--resolution", type=int, default=160)
    terrain.add_argument("--width", type=int, default=640)
    terrain.add_argument("--height", type=int, default=480)
    terrain.set_defaults(func=_cmd_terrain)

    peaks = sub.add_parser("peaks", help="list highest disconnected peaks")
    _add_common(peaks)
    peaks.add_argument("--count", type=int, default=3)
    peaks.set_defaults(func=_cmd_peaks)

    treemap = sub.add_parser("treemap", help="write the 2D treemap SVG")
    _add_common(treemap)
    treemap.add_argument("-o", "--output", default="treemap.svg")
    treemap.add_argument("--width", type=int, default=640)
    treemap.set_defaults(func=_cmd_treemap)

    profile = sub.add_parser("profile", help="write the 1D profile SVG")
    _add_common(profile)
    profile.add_argument("-o", "--output", default="profile.svg")
    profile.add_argument("--width", type=int, default=720)
    profile.add_argument("--height", type=int, default=240)
    profile.set_defaults(func=_cmd_profile)

    prof = sub.add_parser(
        "prof",
        help="profile another repro command, write .collapsed + "
             "flamegraph .svg",
        description=(
            "Run any other repro command under the stdlib sampling "
            "profiler: repro prof -o run --hz 97 -- terrain --dataset "
            "grqc --measure kcore -o t.png.  Writes run.collapsed "
            "(collapsed-stack text, flamegraph.pl compatible) and "
            "run.svg (self-contained flamegraph)."
        ),
    )
    prof.add_argument(
        "-o", "--output", default="profile",
        help="output basename (writes <name>.collapsed and <name>.svg)",
    )
    prof.add_argument(
        "--hz", type=int, default=97,
        help="sampling frequency (default: 97)",
    )
    prof.add_argument(
        "argv", nargs=argparse.REMAINDER,
        help="the command to profile, after an optional '--'",
    )
    prof.set_defaults(func=_cmd_prof)

    dist_build = sub.add_parser(
        "dist-build",
        help="build a scalar tree via the sharded backend, print the "
             "shard/merge summary",
        description=(
            "Shard the edge set, reduce each shard's merge forest in a "
            "worker, and merge into a tree identical to the "
            "single-process build.  With --scatter-dir the edge list "
            "is streamed from disk into per-shard fragments first "
            "(bounded memory; shard-mergeable measures like 'degree' "
            "never materialize the global graph)."
        ),
    )
    _add_common(dist_build, measure_type=_vertex_measure_arg)
    dist_build.add_argument(
        "--partitioner", default="auto",
        choices=("auto", "hash", "range", "degree"),
        help="edge partitioner; 'auto' lets the cost model score all "
             "three in-memory, and falls back to 'hash' in "
             "--scatter-dir mode (default: %(default)s)",
    )
    dist_build.add_argument(
        "--shards", type=int, default=None,
        help="shard count override (default: from the dist plan)",
    )
    dist_build.add_argument(
        "--scatter-dir", default=None, metavar="DIR",
        help="out-of-core mode: stream --edge-list into per-shard "
             "fragments under DIR and build from them",
    )
    dist_build.add_argument(
        "--chunk-edges", type=int, default=65536,
        help="streaming chunk size for --scatter-dir (default: %(default)s)",
    )
    dist_build.add_argument(
        "--max-buffer-mb", type=int, default=8,
        help="scatter buffer budget in MiB (default: %(default)s)",
    )
    dist_build.add_argument(
        "--verify", action="store_true",
        help="also run the single-process build and assert the trees "
             "are identical",
    )
    dist_build.add_argument(
        "-o", "--output", default=None,
        help="write the merged tree as JSON (repro.core.serialize)",
    )
    dist_build.set_defaults(func=_cmd_dist_build)

    correlate = sub.add_parser(
        "correlate", help="GCI and outliers of two vertex measures"
    )
    _add_common(correlate)
    correlate.add_argument("field_i", type=_vertex_measure_arg)
    correlate.add_argument("field_j", type=_vertex_measure_arg)
    correlate.add_argument("--count", type=int, default=5)
    correlate.set_defaults(func=_cmd_correlate)

    stream = sub.add_parser(
        "stream",
        help="replay a JSONL edit log incrementally, emit terrain frames",
    )
    _add_common(stream, measure_type=_vertex_measure_arg)
    stream.add_argument(
        "--log", required=True, help="JSONL edit log (see repro.stream.editlog)"
    )
    stream.add_argument(
        "--frames-dir", default=None,
        help="directory for terrain frames (omit to skip rendering)",
    )
    stream.add_argument(
        "--frame-every", type=int, default=1,
        help="render every Nth batch",
    )
    stream.add_argument(
        "--window", type=float, default=None,
        help="sliding-window horizon W: edits expire after W time units",
    )
    stream.add_argument(
        "--rebuild-threshold", type=float, default=0.5,
        help="dirty-vertex fraction beyond which a full rebuild is used",
    )
    stream.add_argument("--resolution", type=int, default=120)
    stream.add_argument("--width", type=int, default=480)
    stream.add_argument("--height", type=int, default=360)
    stream.set_defaults(func=_cmd_stream)

    evolve = sub.add_parser(
        "evolve",
        help="windowed terrain evolution over a timestamped edge log",
        description=(
            "Slice a timestamped 'src dst ts [w]' edge log into "
            "tumbling (or sliding) windows, maintain the terrain "
            "incrementally per window, track peaks across windows "
            "into trajectories with lifecycle events "
            "(birth/growth/shrink/merge/split/death), and summarize "
            "the signed terrain diff between consecutive windows.  "
            "--synthetic swaps the log for the planted "
            "dynamic-community generator and scores the tracked "
            "events against its ground truth (event F1)."
        ),
    )
    evolve.add_argument(
        "--log", default=None,
        help="timestamped edge list ('src dst ts [w]' per line)",
    )
    evolve.add_argument(
        "--synthetic", action="store_true",
        help="use the planted dynamic-community generator instead of "
             "--log, and score events against its ground truth",
    )
    evolve.add_argument(
        "--measure", default="degree", type=_vertex_measure_arg,
        help="vertex measure recomputed per window; one of: "
             + ", ".join(registry.measure_names(kind="vertex")),
    )
    evolve.add_argument(
        "--window", type=float, default=1.0,
        help="window horizon in time units (default: %(default)s)",
    )
    evolve.add_argument(
        "--stride", type=float, default=None,
        help="window stride; defaults to the horizon (tumbling)",
    )
    evolve.add_argument(
        "--origin", type=float, default=None,
        help="timeline origin; defaults to just below the first "
             "timestamp (0.0 for --synthetic)",
    )
    evolve.add_argument(
        "--alpha", type=float, default=None,
        help="peak cut level (default: per-window midpoint)",
    )
    evolve.add_argument(
        "--min-size", type=int, default=3,
        help="ignore peaks smaller than this (default: %(default)s)",
    )
    evolve.add_argument(
        "--jaccard", type=float, default=0.3,
        help="member-set Jaccard threshold for matching peaks across "
             "windows (default: %(default)s)",
    )
    evolve.add_argument(
        "--resolution", type=int, default=128,
        help="diff heightfield resolution; 0 skips terrain diffs "
             "(default: %(default)s)",
    )
    evolve.add_argument(
        "--tile-size", type=int, default=64,
        help="diff tile edge length (default: %(default)s)",
    )
    evolve.add_argument(
        "--bins", type=int, default=None,
        help="simplify display trees to ~N scalar levels",
    )
    evolve.add_argument(
        "--vertices", type=int, default=96,
        help="--synthetic: vertex count (default: %(default)s)",
    )
    evolve.add_argument(
        "--windows", type=int, default=8,
        help="--synthetic: window count (default: %(default)s)",
    )
    evolve.add_argument(
        "--communities", type=int, default=3,
        help="--synthetic: planted community count (default: %(default)s)",
    )
    evolve.add_argument(
        "--community-size", type=int, default=14,
        help="--synthetic: members per community (default: %(default)s)",
    )
    evolve.add_argument(
        "--p-in", type=float, default=0.6,
        help="--synthetic: intra-community edge probability "
             "(default: %(default)s)",
    )
    evolve.add_argument(
        "--churn", type=float, default=0.2,
        help="--synthetic: per-window edge churn fraction "
             "(default: %(default)s)",
    )
    evolve.add_argument(
        "--noise", type=int, default=6,
        help="--synthetic: background noise edges per window "
             "(default: %(default)s)",
    )
    evolve.add_argument(
        "--seed", type=int, default=0,
        help="--synthetic: RNG seed (default: %(default)s)",
    )
    evolve.add_argument(
        "--write-log", default=None, metavar="PATH",
        help="--synthetic: also write the generated temporal edge log",
    )
    evolve.add_argument(
        "-o", "--output", default=None,
        help="write the full window/event/diff report as JSON",
    )
    _add_accel(evolve)
    _add_obs(evolve)
    _add_resil(evolve)
    evolve.set_defaults(func=_cmd_evolve)

    serve = sub.add_parser(
        "serve",
        help="serve terrain tiles, peaks and linked displays over HTTP",
        description=(
            "Boot the concurrent terrain server: an LOD tile pyramid "
            "(strong ETags, 304 revalidation), peak/hit-test/treemap/"
            "profile endpoints and SSE stream replay, all built lazily "
            "through the cached engine pipeline — concurrent cold "
            "requests for one artifact coalesce to a single build."
        ),
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: %(default)s)")
    serve.add_argument("--port", type=int, default=8321,
                       help="TCP port; 0 picks an ephemeral port "
                            "(default: %(default)s)")
    serve.add_argument(
        "--datasets", default="grqc",
        help="comma-separated registered dataset names, or 'all' "
             "(default: %(default)s)",
    )
    serve.add_argument(
        "--measures", default="kcore",
        help="comma-separated measures to serve each dataset under "
             "(default: %(default)s)",
    )
    serve.add_argument(
        "--edge-list", action="append", metavar="NAME=PATH",
        help="additionally serve a SNAP-style edge-list file under NAME "
             "(repeatable)",
    )
    serve.add_argument(
        "--bins", type=int, default=None,
        help="simplify display trees to ~N scalar levels",
    )
    serve.add_argument(
        "--tile-size", type=int, default=64,
        help="tile edge length in cells (default: %(default)s)",
    )
    serve.add_argument(
        "--levels", type=int, default=3,
        help="LOD pyramid depth; base resolution is "
             "tile-size * 2^(levels-1) (default: %(default)s)",
    )
    serve.add_argument(
        "--workers", type=int, default=0,
        help="size of the ProcessPoolExecutor for pipeline builds; "
             "0 = bounded in-process threads (default: %(default)s)",
    )
    serve.add_argument(
        "--cache-dir", default=None,
        help="persist pipeline artifacts here (default: $REPRO_CACHE_DIR "
             "if set, else in-memory only)",
    )
    serve.add_argument(
        "--cache-memory-mb", type=int, default=None, metavar="MB",
        help="LRU-bound the server's cache memory (stage artifacts plus "
             "the encoded-tile memo share this budget; default: unbounded)",
    )
    serve.add_argument(
        "--stream-log", action="append", metavar="NAME=DATASET:MEASURE:PATH",
        help="register an SSE replay session at /stream/NAME over a "
             "JSONL edit log (repeatable)",
    )
    serve.add_argument(
        "--evolve-log", action="append", metavar="NAME=MEASURE:WINDOW:PATH",
        help="register a temporal evolution run at /evolve/* (windows, "
             "peak trajectories, diff tiles) and /stream/NAME over a "
             "timestamped 'src dst ts [w]' edge log (repeatable)",
    )
    serve.add_argument(
        "--dist", type=_dist_arg, default="off", metavar="{auto,off,N}",
        help="run pipelines on the sharded backend (thread-mode builds "
             "only; shard summary appears under /stats)",
    )
    serve.add_argument(
        "--cache-disk-mb", type=int, default=None, metavar="MB",
        help="prune the on-disk artifact cache to this budget after "
             "each cold build (default: unbounded)",
    )
    serve.add_argument(
        "--request-timeout", type=float, default=30.0, metavar="SECONDS",
        help="per-request build deadline; expired builds answer 504 "
             "(0 disables; default: %(default)s)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=0, metavar="N",
        help="admission control: cap concurrent cold builds at N and "
             "answer 429 + Retry-After beyond it, with a slice "
             "reserved for interactive hit/peak queries "
             "(0 = unbounded; default: %(default)s)",
    )
    serve.add_argument(
        "--max-sse-sessions", type=int, default=0, metavar="N",
        help="cap concurrent SSE replay sessions at N; extra clients "
             "get 429 + Retry-After (0 = unbounded; default: %(default)s)",
    )
    serve.add_argument(
        "--drain-grace", type=float, default=10.0, metavar="SECONDS",
        help="SIGTERM drain window: stop accepting, finish in-flight "
             "requests, end SSE streams with a terminal 'shutdown' "
             "event, then exit (default: %(default)s)",
    )
    _add_accel(serve)
    _add_obs(serve)
    _add_resil(serve)
    serve.set_defaults(func=_cmd_serve)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "accel", None):
        accel.set_backend(args.accel)
    if getattr(args, "faults", None):
        import os

        try:
            resil_faults.configure(args.faults)
        except ValueError as exc:
            raise SystemExit(f"--faults: {exc}")
        # Exported so pool workers inherit the same schedule (each
        # process keeps its own pass counters).
        os.environ[resil_faults.ENV_VAR] = args.faults
    exporter = None
    if getattr(args, "trace", None):
        exporter = obs_trace.JSONLExporter(args.trace)
        obs_trace.add_exporter(exporter)
        obs_trace.set_enabled(True)
    try:
        with obs_trace.span(f"cli.{args.command}"):
            return args.func(args)
    finally:
        if exporter is not None:
            obs_trace.set_enabled(False)
            obs_trace.remove_exporter(exporter)
            exporter.close()
            print(f"trace -> {args.trace}", file=sys.stderr)
        if getattr(args, "metrics", False):
            print(obs_metrics.REGISTRY.render(), file=sys.stderr, end="")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
