"""Command-line interface: ``python -m repro <command> ...``.

Six commands cover the common workflows without writing any Python:

* ``terrain`` — render the terrain of a registered dataset (or an edge
  list file) under a chosen measure;
* ``peaks``   — list the highest disconnected peaks (densest K-cores /
  K-trusses / community cores);
* ``treemap`` / ``profile`` — the linked 2D displays;
* ``correlate`` — LCI/GCI of two vertex measures;
* ``stream``  — replay a JSONL edit log through the incremental
  maintainer and emit terrain frames.

Examples::

    python -m repro terrain --dataset grqc --measure kcore -o out.png
    python -m repro peaks --dataset ppi --measure ktruss --count 3
    python -m repro correlate --dataset astro degree betweenness
    python -m repro stream --dataset amazon --log edits.jsonl \
        --frames-dir frames/
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

import numpy as np

from .core import (
    EdgeScalarGraph,
    ScalarGraph,
    build_edge_tree,
    build_super_tree,
    build_vertex_tree,
    global_correlation_index,
    outlier_score,
    simplify_tree,
)
from .graph import datasets
from .graph.csr import CSRGraph
from .graph.io import read_edge_list
from .measures import (
    betweenness_centrality,
    closeness_centrality,
    core_numbers,
    degree_centrality,
    eigenvector_centrality,
    harmonic_centrality,
    pagerank,
    truss_numbers,
)
from .stream import SlidingWindow, StreamingScalarTree, read_edit_log
from .terrain import (
    Camera,
    highest_peaks,
    layout_tree,
    render_terrain,
    treemap_svg,
)
from .terrain.profile import profile_svg

__all__ = ["main"]

_VERTEX_MEASURES = {
    "kcore": lambda g: core_numbers(g).astype(float),
    "degree": lambda g: degree_centrality(g, normalized=False),
    "pagerank": pagerank,
    "closeness": closeness_centrality,
    "harmonic": harmonic_centrality,
    "eigenvector": eigenvector_centrality,
    "betweenness": lambda g: betweenness_centrality(
        g, samples=min(256, g.n_vertices), seed=0
    ),
}
_EDGE_MEASURES = {
    "ktruss": lambda g: truss_numbers(g).astype(float),
}


def _load_graph(args) -> CSRGraph:
    if args.dataset:
        return datasets.load(args.dataset).graph
    if args.edge_list:
        return read_edge_list(args.edge_list)
    raise SystemExit("provide --dataset or --edge-list")


def _build_tree(graph: CSRGraph, measure: str, bins: Optional[int]):
    if measure in _VERTEX_MEASURES:
        field = ScalarGraph(graph, _VERTEX_MEASURES[measure](graph))
        raw = build_vertex_tree(field)
    elif measure in _EDGE_MEASURES:
        field = EdgeScalarGraph(graph, _EDGE_MEASURES[measure](graph))
        raw = build_edge_tree(field)
    else:
        known = sorted(_VERTEX_MEASURES) + sorted(_EDGE_MEASURES)
        raise SystemExit(f"unknown measure {measure!r}; pick from {known}")
    if bins:
        return simplify_tree(raw, bins, scheme="quantile")
    return build_super_tree(raw)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", help="registered dataset name")
    parser.add_argument("--edge-list", help="path to a SNAP-style edge list")
    parser.add_argument(
        "--measure", default="kcore",
        help="scalar measure (kcore, ktruss, degree, betweenness, "
             "pagerank, closeness, harmonic, eigenvector)",
    )
    parser.add_argument(
        "--bins", type=int, default=None,
        help="simplify the tree to ~N scalar levels before drawing",
    )


def _cmd_terrain(args) -> int:
    graph = _load_graph(args)
    tree = _build_tree(graph, args.measure, args.bins)
    camera = Camera(
        azimuth=args.azimuth, elevation=args.elevation,
    ).zoomed(args.zoom)
    render_terrain(
        tree, camera=camera,
        resolution=args.resolution,
        width=args.width, height=args.height,
        path=args.output,
    )
    print(f"terrain of {args.measure} -> {args.output} "
          f"({tree.n_nodes} super nodes)")
    return 0


def _cmd_peaks(args) -> int:
    graph = _load_graph(args)
    tree = _build_tree(graph, args.measure, args.bins)
    layout = layout_tree(tree)
    unit = "edges" if tree.kind == "edge" else "vertices"
    for i, peak in enumerate(
        highest_peaks(tree, count=args.count, layout=layout)
    ):
        print(f"#{i + 1}: level {peak.alpha:g}, {peak.size} {unit}, "
              f"summit {peak.summit:g}")
    return 0


def _cmd_treemap(args) -> int:
    graph = _load_graph(args)
    tree = _build_tree(graph, args.measure, args.bins)
    treemap_svg(tree, size=args.width, path=args.output)
    print(f"treemap of {args.measure} -> {args.output}")
    return 0


def _cmd_profile(args) -> int:
    graph = _load_graph(args)
    tree = _build_tree(graph, args.measure, args.bins)
    profile_svg(tree, width=args.width, height=args.height,
                path=args.output)
    print(f"profile of {args.measure} -> {args.output}")
    return 0


def _cmd_correlate(args) -> int:
    graph = _load_graph(args)
    fields = []
    for name in (args.field_i, args.field_j):
        if name not in _VERTEX_MEASURES:
            raise SystemExit(f"unknown vertex measure {name!r}")
        fields.append(_VERTEX_MEASURES[name](graph))
    gci = global_correlation_index(graph, fields[0], fields[1])
    print(f"GCI({args.field_i}, {args.field_j}) = {gci:.4f}")
    scores = outlier_score(graph, fields[0], fields[1])
    top = np.argsort(-scores)[: args.count]
    print("top outlier vertices (most locally anti-correlated):")
    for v in top:
        print(f"  vertex {int(v)}: outlier_score {scores[v]:.3f}")
    return 0


def _cmd_stream(args) -> int:
    # Cheap flag/log validation first — measure + tree construction on
    # a large dataset can take minutes.
    if args.measure not in _VERTEX_MEASURES:
        raise SystemExit(
            f"stream supports vertex measures only; "
            f"pick from {sorted(_VERTEX_MEASURES)}"
        )
    if args.window is not None and args.window <= 0:
        raise SystemExit("--window must be a positive horizon")
    if args.frame_every < 1:
        raise SystemExit("--frame-every must be >= 1")
    try:
        batches = read_edit_log(args.log)
    except FileNotFoundError:
        raise SystemExit(f"edit log not found: {args.log}")
    except ValueError as exc:
        raise SystemExit(f"bad edit log {args.log}: {exc}")

    graph = _load_graph(args)
    field = ScalarGraph(graph, _VERTEX_MEASURES[args.measure](graph))
    stream = StreamingScalarTree(
        field, rebuild_threshold=args.rebuild_threshold
    )
    window = (
        SlidingWindow(stream, args.window) if args.window else None
    )

    frames_dir: Optional[Path] = None
    if args.frames_dir:
        frames_dir = Path(args.frames_dir)
        frames_dir.mkdir(parents=True, exist_ok=True)

    n_edits = 0
    n_frames = 0
    last_t = float("-inf")
    for i, (when, batch) in enumerate(batches):
        n_edits += len(batch)
        try:
            if window is not None:
                # Untimed commits fall back to the batch index, clamped
                # so a mix with earlier explicit timestamps never goes
                # backwards; explicit decreasing stamps still error.
                t = max(last_t, float(i)) if when is None else when
                window.push(t, batch)
                last_t = t
            else:
                stream.apply(batch)
        except (IndexError, ValueError) as exc:
            raise SystemExit(f"edit batch {i} of {args.log}: {exc}")
        if frames_dir is not None and i % args.frame_every == 0:
            if args.bins:
                frame_tree = simplify_tree(
                    stream.tree, args.bins, scheme="quantile"
                )
            else:
                frame_tree = stream.super_tree()
            render_terrain(
                frame_tree,
                resolution=args.resolution,
                width=args.width, height=args.height,
                path=frames_dir / f"frame_{i:05d}.png",
            )
            n_frames += 1

    stats = stream.stats
    print(
        f"replayed {stats['batches']} batches ({n_edits} edits) of "
        f"{args.log}: {stats['incremental']} incremental, "
        f"{stats['full_rebuilds']} full rebuilds, "
        f"{stats['replayed_vertices']} vertices replayed"
    )
    if frames_dir is not None:
        print(f"{n_frames} terrain frames -> {frames_dir}")
    print(
        f"final tree: {stream.super_tree().n_nodes} super nodes over "
        f"{stream.delta.n_edges} edges"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The assembled argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Scalar fields on graphs: terrains, peaks, correlation.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    terrain = sub.add_parser("terrain", help="render a terrain image")
    _add_common(terrain)
    terrain.add_argument("-o", "--output", default="terrain.png")
    terrain.add_argument("--azimuth", type=float, default=35.0)
    terrain.add_argument("--elevation", type=float, default=38.0)
    terrain.add_argument("--zoom", type=float, default=1.0)
    terrain.add_argument("--resolution", type=int, default=160)
    terrain.add_argument("--width", type=int, default=640)
    terrain.add_argument("--height", type=int, default=480)
    terrain.set_defaults(func=_cmd_terrain)

    peaks = sub.add_parser("peaks", help="list highest disconnected peaks")
    _add_common(peaks)
    peaks.add_argument("--count", type=int, default=3)
    peaks.set_defaults(func=_cmd_peaks)

    treemap = sub.add_parser("treemap", help="write the 2D treemap SVG")
    _add_common(treemap)
    treemap.add_argument("-o", "--output", default="treemap.svg")
    treemap.add_argument("--width", type=int, default=640)
    treemap.set_defaults(func=_cmd_treemap)

    profile = sub.add_parser("profile", help="write the 1D profile SVG")
    _add_common(profile)
    profile.add_argument("-o", "--output", default="profile.svg")
    profile.add_argument("--width", type=int, default=720)
    profile.add_argument("--height", type=int, default=240)
    profile.set_defaults(func=_cmd_profile)

    correlate = sub.add_parser(
        "correlate", help="GCI and outliers of two vertex measures"
    )
    _add_common(correlate)
    correlate.add_argument("field_i")
    correlate.add_argument("field_j")
    correlate.add_argument("--count", type=int, default=5)
    correlate.set_defaults(func=_cmd_correlate)

    stream = sub.add_parser(
        "stream",
        help="replay a JSONL edit log incrementally, emit terrain frames",
    )
    _add_common(stream)
    stream.add_argument(
        "--log", required=True, help="JSONL edit log (see repro.stream.editlog)"
    )
    stream.add_argument(
        "--frames-dir", default=None,
        help="directory for terrain frames (omit to skip rendering)",
    )
    stream.add_argument(
        "--frame-every", type=int, default=1,
        help="render every Nth batch",
    )
    stream.add_argument(
        "--window", type=float, default=None,
        help="sliding-window horizon W: edits expire after W time units",
    )
    stream.add_argument(
        "--rebuild-threshold", type=float, default=0.5,
        help="dirty-vertex fraction beyond which a full rebuild is used",
    )
    stream.add_argument("--resolution", type=int, default=120)
    stream.add_argument("--width", type=int, default=480)
    stream.add_argument("--height", type=int, default=360)
    stream.set_defaults(func=_cmd_stream)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
