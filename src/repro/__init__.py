"""repro — Analyzing and Visualizing Scalar Fields on Graphs.

A from-scratch reproduction of Zhang, Wang & Parthasarathy (ICDE 2017,
arXiv:1702.03825): scalar graphs, (super) scalar trees over maximal
α-connected components, terrain-metaphor visualization, multi-field
correlation analysis, comparison baselines, and a simulated user study.

Quickstart::

    from repro import (
        ScalarGraph, build_vertex_tree, build_super_tree, render_terrain,
    )
    from repro.graph import datasets
    from repro.measures import core_numbers

    graph = datasets.load("grqc").graph
    field = ScalarGraph(graph, core_numbers(graph).astype(float))
    tree = build_super_tree(build_vertex_tree(field))
    render_terrain(tree, path="grqc_kcore.png")

Subpackages
-----------
``repro.core``
    The paper's contribution: scalar graphs, Algorithms 1–3, super
    trees, α-components, simplification, LCI/GCI.
``repro.graph``
    CSR graph substrate, builders, I/O, generators, dataset registry.
``repro.measures``
    K-core, K-truss, triangles, centralities, communities, roles.
``repro.terrain``
    Nested-disc layout, heightfield, software 3D renderer, treemap,
    peak queries, linked selection.
``repro.baselines``
    Spring layout, LaNet-vi, OpenOrd, CSV plot.
``repro.query``
    Nearest-neighbour graphs over query results (Fig 11).
``repro.study``
    Simulated user study regenerating Tables IV–VI.
``repro.stream``
    Dynamic scalar fields: :class:`~repro.stream.delta.DeltaGraph`
    overlay on the immutable CSR substrate, typed edit events with a
    JSONL log format, incremental scalar-tree maintenance
    (:class:`~repro.stream.incremental.StreamingScalarTree` — checkpoint
    rollback + dirty-suffix replay, ≥5× faster than full rebuilds on
    small-batch streams), and sliding-window expiry for temporal
    networks.  Replayed from the CLI via ``repro stream``.
``repro.engine``
    The unified pipeline layer every driver runs through: a measure
    registry (named scalar fields with kind/cost metadata and lazy
    imports), a content-hash-keyed artifact cache, and the staged
    :class:`~repro.engine.pipeline.Pipeline` /
    :class:`~repro.engine.pipeline.StreamingPipeline`
    (source → field → tree → super/simplified tree → layout → sink).
``repro.serve``
    The concurrent terrain tile/query server (``repro serve``): a
    stdlib-only asyncio HTTP service that rasterizes each (dataset,
    measure, bins) once into an LOD tile pyramid of cached,
    content-hash-ETagged :class:`~repro.terrain.heightfield.Tile`
    artifacts, with peak/hit-test/treemap/profile endpoints, per-key
    request coalescing over a bounded worker pool, and SSE replay of
    edit logs with dirty-tile invalidations.
``repro.accel``
    Vectorized compute kernels for the hot stages — tree construction,
    traversal measures, k-core/k-truss peeling, layout relaxation,
    rasterization — equivalence-tested to produce the same arrays as
    the naive reference code, selected via ``repro --accel``, the
    ``REPRO_ACCEL`` environment variable or per call.
``repro.dist``
    Sharded, out-of-core pipeline execution: deterministic edge
    partitioners with self-describing shard manifests, a streaming
    scatter of on-disk edge lists under a bounded memory budget, and a
    :class:`~repro.dist.executor.ShardedExecutor` whose merged scalar
    trees are node-for-node identical to the single-process build.
    Selected via ``--dist {auto,off,N}`` (``repro dist-build`` is the
    dist-centric command).
"""

from .core import (
    EdgeScalarGraph,
    ScalarGraph,
    ScalarTree,
    SuperTree,
    build_edge_tree,
    build_edge_tree_naive,
    build_super_tree,
    build_vertex_tree,
    global_correlation_index,
    local_correlation_index,
    maximal_alpha_components,
    maximal_alpha_edge_components,
    mcc,
    outlier_score,
    simplify_tree,
)
from .terrain import (
    Camera,
    highest_peaks,
    layout_tree,
    peaks_at,
    rasterize,
    render_terrain,
    treemap_svg,
)
from .engine import ArtifactCache, Pipeline, StreamingPipeline

__version__ = "1.2.0"

__all__ = [
    "ScalarGraph",
    "EdgeScalarGraph",
    "ScalarTree",
    "SuperTree",
    "build_vertex_tree",
    "build_edge_tree",
    "build_edge_tree_naive",
    "build_super_tree",
    "simplify_tree",
    "maximal_alpha_components",
    "maximal_alpha_edge_components",
    "mcc",
    "local_correlation_index",
    "global_correlation_index",
    "outlier_score",
    "Camera",
    "layout_tree",
    "rasterize",
    "render_terrain",
    "treemap_svg",
    "peaks_at",
    "highest_peaks",
    "Pipeline",
    "StreamingPipeline",
    "ArtifactCache",
    "__version__",
]
