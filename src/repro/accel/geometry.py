"""Batched sibling-relaxation kernels for the nested-disc layout.

The layout's overlap-relaxation step pushes overlapping sibling discs
apart and clamps every disc back inside its parent.  Both backends
implement the *same* accumulate-then-apply sweep (a Jacobi iteration):
all pairwise pushes of a sweep are computed against the sweep's
starting positions, summed per disc in ascending partner order, applied
at once, and then the parent clamp runs per disc on the pushed
positions.  That definition is what makes a vectorized version possible
at all — a Gauss-Seidel sweep that mutates positions pair by pair is
inherently sequential — and both implementations follow it with the
same floating-point operations in the same order, so naive and vector
results are **byte-identical** (``tests/accel/test_geometry_equivalence``):

* :func:`relax_siblings_naive` — the reference nested Python loop,
  O(k²) pairs per sweep;
* :func:`relax_siblings_vector` — one k×k broadcast per sweep
  (pairwise differences, distances, overlap mask and push magnitudes
  all at once); the per-disc sums are folded column by column, which
  both preserves the reference's ascending-partner accumulation order
  bit-for-bit and keeps the fold a cheap O(k) vector op per partner.

Overlapping pairs at effectively zero distance separate along +x, with
the reference's historical ``d = 1`` substitution in the push magnitude
kept as-is in both backends.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["relax_siblings_naive", "relax_siblings_vector"]

_PAD = 1.02  # target separation: sum of radii plus a 2% breathing gap
_EPS = 1e-12


def relax_siblings_naive(
    xs: np.ndarray,
    ys: np.ndarray,
    radii: np.ndarray,
    cx: float,
    cy: float,
    available: float,
    iters: int,
) -> "tuple[np.ndarray, np.ndarray]":
    """Reference accumulate-then-apply relaxation (returns new arrays)."""
    xs = np.array(xs, dtype=np.float64)
    ys = np.array(ys, dtype=np.float64)
    radii = np.asarray(radii, dtype=np.float64)
    k = len(xs)
    for __ in range(iters):
        moved = False
        xl = xs.tolist()
        yl = ys.tolist()
        rl = radii.tolist()
        push_x = [0.0] * k
        push_y = [0.0] * k
        for i in range(k):
            xi = xl[i]
            yi = yl[i]
            ri = rl[i]
            for j in range(i + 1, k):
                dx = xl[j] - xi
                dy = yl[j] - yi
                d = math.sqrt(dx * dx + dy * dy)
                need = (ri + rl[j]) * _PAD
                if d < need:
                    if d < _EPS:
                        dx, dy, d = 1.0, 0.0, 1.0
                    push = (need - d) / 2
                    ux = dx / d
                    uy = dy / d
                    push_x[i] -= ux * push
                    push_y[i] -= uy * push
                    push_x[j] += ux * push
                    push_y[j] += uy * push
                    moved = True
        xs = xs + np.array(push_x)
        ys = ys + np.array(push_y)
        for i in range(k):
            dx = float(xs[i]) - cx
            dy = float(ys[i]) - cy
            d = math.sqrt(dx * dx + dy * dy)
            limit = available - float(radii[i])
            if d > limit:
                if d < _EPS:
                    xs[i] = cx
                    ys[i] = cy
                else:
                    scale = limit / d
                    xs[i] = cx + dx * scale
                    ys[i] = cy + dy * scale
                moved = True
        if not moved:
            break
    return xs, ys


def relax_siblings_vector(
    xs: np.ndarray,
    ys: np.ndarray,
    radii: np.ndarray,
    cx: float,
    cy: float,
    available: float,
    iters: int,
) -> "tuple[np.ndarray, np.ndarray]":
    """Broadcast relaxation, bit-identical to the naive sweep."""
    xs = np.array(xs, dtype=np.float64)
    ys = np.array(ys, dtype=np.float64)
    radii = np.asarray(radii, dtype=np.float64)
    k = len(xs)
    idx = np.arange(k)
    limit = available - radii
    # Iteration-invariant: target separation per pair; −1 on the
    # diagonal so a disc never "overlaps" itself (distance 0 ≮ −1).
    need = (radii[:, None] + radii[None, :]) * _PAD
    need[idx, idx] = -1.0
    for __ in range(iters):
        # diff[t, s] = position[t] - position[s]: the push direction the
        # pair {t, s} exerts on t.
        diff_x = xs[:, None] - xs[None, :]
        diff_y = ys[:, None] - ys[None, :]
        d = np.sqrt(diff_x * diff_x + diff_y * diff_y)
        overlap = d < need
        moved = bool(overlap.any())
        push_x = np.zeros(k)
        push_y = np.zeros(k)
        if moved:
            # Only overlapping pairs contribute.  np.nonzero yields them
            # in row-major order — for each disc, partners ascending —
            # and np.add.at applies the additions in exactly that order,
            # reproducing the reference accumulation bit-for-bit.
            ti, si = np.nonzero(overlap)
            dv = d[ti, si]
            nv = need[ti, si]
            dxv = diff_x[ti, si]
            dyv = diff_y[ti, si]
            degenerate = dv < _EPS
            if degenerate.any():
                dxv = np.where(degenerate, np.sign(ti - si).astype(np.float64), dxv)
                dyv = np.where(degenerate, 0.0, dyv)
                dv = np.where(degenerate, 1.0, dv)
            push = (nv - dv) / 2
            np.add.at(push_x, ti, (dxv / dv) * push)
            np.add.at(push_y, ti, (dyv / dv) * push)
        xs = xs + push_x
        ys = ys + push_y
        dxc = xs - cx
        dyc = ys - cy
        dc = np.sqrt(dxc * dxc + dyc * dyc)
        outside = dc > limit
        if outside.any():
            moved = True
            pin = outside & (dc < _EPS)
            scaled = np.flatnonzero(outside & ~pin)
            scale = limit[scaled] / dc[scaled]
            xs[scaled] = cx + dxc[scaled] * scale
            ys[scaled] = cy + dyc[scaled] * scale
            xs[pin] = cx
            ys[pin] = cy
        if not moved:
            break
    return xs, ys
