"""Self-compiled C kernel tier for the union-find merge scans.

The one loop PR 4's vectorization could not touch is the inherently
sequential union-find scan at the heart of Algorithms 1 and 3
(:func:`repro.accel.tree.merge_scan`): pointer chasing with a data
dependence between consecutive steps.  This module compiles that loop —
path-halving find, union by size, group-root caching, in three
flavours — **at first use** from the embedded C source below, using
whatever system compiler is around (``$CC``, else ``cc``/``gcc``/
``clang``), and loads it with stdlib :mod:`ctypes`.  No build system,
no wheels, no new dependencies.

Design points:

* **Disk cache.**  The shared object lands in ``$REPRO_NATIVE_CACHE``
  (default ``~/.cache/repro-native``) under a name keyed by a sha256 of
  (C source, compiler version banner, platform), so compilation happens
  once per machine and source or toolchain changes recompile cleanly.
  The compile writes to a unique temp name and ``os.replace``\\ s it in,
  so concurrent first calls (dist process workers) race benignly.
* **Zero copy.**  The wrappers hand the kernels the existing flat int64
  numpy arrays via ``ndarray.ctypes`` — no marshalling; scratch arrays
  are allocated as numpy buffers on the Python side so the C code never
  mallocs.
* **Soft fallback.**  When no toolchain exists or compilation fails,
  :func:`available` returns False, one warning is logged, the
  ``repro_accel_native_fallbacks_total`` counter is bumped, and
  :func:`repro.accel.resolve` degrades ``native`` to ``vector`` — the
  numpy+Python tier keeps every output byte-identical, so nothing above
  this layer needs to care.
* **Observability.**  The whole first-use attempt (cache probe, compile,
  load, self-test) runs inside an ``accel.compile`` trace span and is
  observed into the ``repro_accel_compile_seconds`` histogram;
  ``repro_accel_native_available`` reports the outcome as a gauge and
  :func:`info` feeds the ``/stats`` endpoint.

The kernels are semantically *identical* to their Python counterparts —
same tie-breaks, same union-by-size swaps, same journal entry order —
which is what lets the backend stay out of every cache key.  A tiny
known-answer self-test runs right after each load and a poisoned cached
``.so`` is deleted rather than trusted.
"""

from __future__ import annotations

import ctypes
import hashlib
import logging
import os
import platform
import shlex
import shutil
import subprocess
import time
from pathlib import Path
from typing import Optional

import numpy as np

from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace

__all__ = [
    "C_SOURCE",
    "available",
    "load",
    "merge_scan",
    "reduce_scan",
    "replay_scan",
    "cache_dir",
    "info",
    "reset",
]

_LOG = logging.getLogger("repro.accel.native")

_COMPILE_SECONDS = obs_metrics.REGISTRY.histogram(
    "repro_accel_compile_seconds",
    "Wall time of the native kernel first-use attempt "
    "(cache probe + compile + load + self-test).",
)
_FALLBACKS = obs_metrics.REGISTRY.counter(
    "repro_accel_native_fallbacks_total",
    "Native tier unavailable; calls degraded to the vector tier.",
    ("reason",),
)
_AVAILABLE = obs_metrics.REGISTRY.gauge(
    "repro_accel_native_available",
    "1 when the native kernels compiled and loaded, 0 after a fallback.",
)

# ----------------------------------------------------------------------
# The kernels.  int64 everywhere, matching the arrays the Python tiers
# already use; callers allocate all buffers (no malloc in C).
# ----------------------------------------------------------------------
C_SOURCE = r"""
#include <stdint.h>

typedef int64_t i64;

/* Path-halving find, mutating uf in place (UnionFind.find). */
static i64 find_halve(i64 *uf, i64 x) {
    while (uf[x] != x) {
        uf[x] = uf[uf[x]];
        x = uf[x];
    }
    return x;
}

/* Plain find, no compression (RollbackUnionFind.find). */
static i64 find_plain(const i64 *uf, i64 x) {
    while (uf[x] != x)
        x = uf[x];
    return x;
}

/* repro.accel.tree.merge_scan: replay pre-ordered merge steps and fill
 * the forest's parent array.  cur/prev are the n_steps step arrays;
 * parent, uf, size, tree_root are caller-allocated length-n_items
 * scratch/output (initialised here).  The group-root caching mirrors
 * the Python scan: a step's current item opens as a singleton, so its
 * representative starts as itself and is maintained through the
 * group's unions without a find. */
void repro_merge_scan(i64 n_items, i64 n_steps,
                      const i64 *cur, const i64 *prev,
                      i64 *parent, i64 *uf, i64 *size, i64 *tree_root) {
    i64 i, prev_cur = -1, root_v = -1;
    for (i = 0; i < n_items; i++) {
        parent[i] = -1;
        uf[i] = i;
        size[i] = 1;
        tree_root[i] = i;
    }
    for (i = 0; i < n_steps; i++) {
        i64 v = cur[i], x;
        if (v != prev_cur) {
            prev_cur = v;
            root_v = v;
        }
        x = find_halve(uf, prev[i]);
        if (root_v != x) {
            parent[tree_root[x]] = v;
            if (size[root_v] < size[x]) {
                i64 t = root_v; root_v = x; x = t;
            }
            uf[x] = root_v;
            size[root_v] += size[x];
            tree_root[root_v] = v;
        }
    }
}

/* repro.dist.executor.reduce_shard's keep-scan: the same merge scan,
 * recording the indices of merge-causing steps instead of parents.
 * kept has capacity n_steps; uf/size are length-n_vertices scratch.
 * Returns the number of kept steps (<= n_vertices - 1). */
i64 repro_reduce_scan(i64 n_vertices, i64 n_steps,
                      const i64 *cur, const i64 *prev,
                      i64 *kept, i64 *uf, i64 *size) {
    i64 i, k = 0, prev_cur = -1, root_v = -1;
    for (i = 0; i < n_vertices; i++) {
        uf[i] = i;
        size[i] = 1;
    }
    for (i = 0; i < n_steps; i++) {
        i64 v = cur[i], x;
        if (v != prev_cur) {
            prev_cur = v;
            root_v = v;
        }
        x = find_halve(uf, prev[i]);
        if (root_v != x) {
            kept[k++] = i;
            if (size[root_v] < size[x]) {
                i64 t = root_v; root_v = x; x = t;
            }
            uf[x] = root_v;
            size[root_v] += size[x];
        }
    }
    return k;
}

/* repro.stream's journalled full build: Algorithm 1 over CSR adjacency
 * in processing order, with RollbackUnionFind semantics (no path
 * compression, union by size, history of absorbed roots) and the same
 * journal triples attach_vertex records, so the Python side can rewind
 * through checkpoints exactly as if it had built the state itself.
 *
 * order/pos: the processing permutation and its inverse (rank).
 * ckpt_pos: positions i where a checkpoint is taken *before* item i is
 * processed (strict scalar decreases, precomputed by the caller);
 * ckpt_jlen[j] receives the journal length at checkpoint j — which
 * equals the union-find history length, since every journal entry
 * coincides with exactly one union.
 * parent/tree_root/uf_parent/uf_size: length-n outputs (initialised
 * here).  journal: capacity n triples (child, merged, prev_root).
 * history: capacity n absorbed roots.  Returns the journal length. */
i64 repro_replay_scan(i64 n, const i64 *indptr, const i64 *indices,
                      const i64 *order, const i64 *pos,
                      i64 n_ckpt, const i64 *ckpt_pos, i64 *ckpt_jlen,
                      i64 *parent, i64 *tree_root,
                      i64 *uf_parent, i64 *uf_size,
                      i64 *journal, i64 *history) {
    i64 i, nj = 0, c = 0;
    for (i = 0; i < n; i++) {
        parent[i] = -1;
        tree_root[i] = i;
        uf_parent[i] = i;
        uf_size[i] = 1;
    }
    for (i = 0; i < n; i++) {
        i64 v, rank_v, p;
        while (c < n_ckpt && ckpt_pos[c] == i)
            ckpt_jlen[c++] = nj;
        v = order[i];
        rank_v = pos[v];
        for (p = indptr[v]; p < indptr[v + 1]; p++) {
            i64 w = indices[p];
            if (pos[w] < rank_v) {
                i64 rv = find_plain(uf_parent, v);
                i64 rw = find_plain(uf_parent, w);
                if (rv != rw) {
                    i64 child = tree_root[rw];
                    i64 rx = rv, ry = rw;
                    parent[child] = v;
                    if (uf_size[rx] < uf_size[ry]) {
                        i64 t = rx; rx = ry; ry = t;
                    }
                    uf_parent[ry] = rx;
                    uf_size[rx] += uf_size[ry];
                    history[nj] = ry;
                    journal[3 * nj] = child;
                    journal[3 * nj + 1] = rx;
                    journal[3 * nj + 2] = tree_root[rx];
                    tree_root[rx] = v;
                    nj++;
                }
            }
        }
    }
    while (c < n_ckpt)
        ckpt_jlen[c++] = nj;
    return nj;
}
"""


# ----------------------------------------------------------------------
# Compile / cache / load
# ----------------------------------------------------------------------
class _Unavailable(Exception):
    """Internal: native tier cannot be used; carries the counter label."""

    def __init__(self, reason: str, detail: str) -> None:
        super().__init__(detail)
        self.reason = reason


_STATE = {
    "attempted": False,
    "lib": None,
    "so_path": None,
    "error": None,          # "reason: detail" string after a fallback
    "compile_seconds": None,
    "compiled": False,       # False when the cached .so was reused
}


def reset() -> None:
    """Forget the load attempt (tests re-drive the lifecycle with a
    scratch ``REPRO_NATIVE_CACHE`` / ``CC``)."""
    _STATE.update(
        attempted=False, lib=None, so_path=None, error=None,
        compile_seconds=None, compiled=False,
    )


def cache_dir() -> Path:
    """Where compiled shared objects live (``$REPRO_NATIVE_CACHE``
    override; default ``~/.cache/repro-native``)."""
    override = os.environ.get("REPRO_NATIVE_CACHE", "").strip()
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-native"


def _compiler() -> Optional[list]:
    """The compile command prefix, or None when no toolchain exists.

    ``$CC`` is honoured strictly when set (it may carry flags); without
    it the usual suspects are searched on PATH.
    """
    cc = os.environ.get("CC", "").strip()
    if cc:
        parts = shlex.split(cc)
        found = shutil.which(parts[0])
        if found is None and not Path(parts[0]).exists():
            return None
        return parts
    for name in ("cc", "gcc", "clang"):
        found = shutil.which(name)
        if found is not None:
            return [found]
    return None


def _compiler_banner(cc: list) -> str:
    try:
        proc = subprocess.run(
            cc + ["--version"], stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, timeout=30,
        )
        return proc.stdout.decode(errors="replace").splitlines()[0]
    except (OSError, subprocess.TimeoutExpired, IndexError):
        return "unknown"


def _digest(cc: list) -> str:
    h = hashlib.sha256()
    for part in (C_SOURCE, " ".join(cc), _compiler_banner(cc),
                 platform.platform(), platform.machine()):
        h.update(part.encode())
        h.update(b"\0")
    return h.hexdigest()[:16]


def _configure(lib: ctypes.CDLL) -> ctypes.CDLL:
    p = ctypes.POINTER(ctypes.c_int64)
    i = ctypes.c_int64
    lib.repro_merge_scan.argtypes = [i, i, p, p, p, p, p, p]
    lib.repro_merge_scan.restype = None
    lib.repro_reduce_scan.argtypes = [i, i, p, p, p, p, p]
    lib.repro_reduce_scan.restype = i
    lib.repro_replay_scan.argtypes = [i] + [p] * 4 + [i] + [p] * 8
    lib.repro_replay_scan.restype = i
    return lib


def _self_test(lib: ctypes.CDLL) -> bool:
    """Known-answer check: chain 0-1-2 processed as 1, 2 must yield
    parents [1, 2, -1] — guards against a stale or corrupt cached .so."""
    cur = np.array([1, 2], dtype=np.int64)
    prev = np.array([0, 1], dtype=np.int64)
    parent = np.empty(3, dtype=np.int64)
    scratch = [np.empty(3, dtype=np.int64) for _ in range(3)]
    lib.repro_merge_scan(
        3, 2, _ptr(cur), _ptr(prev), _ptr(parent),
        _ptr(scratch[0]), _ptr(scratch[1]), _ptr(scratch[2]),
    )
    return parent.tolist() == [1, 2, -1]


def _load_impl() -> ctypes.CDLL:
    # Fault site `compile_fail`: a scheduled compile abort exercises the
    # soft-fallback path (warning + obs counter, vector-tier results).
    from ..resil import faults as resil_faults

    if resil_faults.active() and resil_faults.should_fire(
        "compile_fail"
    ) is not None:
        raise _Unavailable(
            "fault-injected", "scheduled compile failure (repro.resil)"
        )
    cc = _compiler()
    if cc is None:
        raise _Unavailable(
            "no-compiler",
            "no C compiler found ($CC unset, none of cc/gcc/clang on PATH)",
        )
    directory = cache_dir()
    so_path = directory / f"repro_native_{_digest(cc)}.so"
    if not so_path.exists():
        try:
            directory.mkdir(parents=True, exist_ok=True)
            c_path = directory / f"{so_path.stem}.c"
            c_path.write_text(C_SOURCE)
            tmp = directory / f"{so_path.stem}.{os.getpid()}.tmp.so"
            proc = subprocess.run(
                cc + ["-O2", "-shared", "-fPIC", "-o", str(tmp),
                      str(c_path)],
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                timeout=120,
            )
            if proc.returncode != 0:
                tail = proc.stdout.decode(errors="replace").strip()
                raise _Unavailable(
                    "compile-failed",
                    f"{' '.join(cc)} exited {proc.returncode}: "
                    f"{tail[-500:] or '(no output)'}",
                )
            os.replace(tmp, so_path)
        except _Unavailable:
            raise
        except (OSError, subprocess.TimeoutExpired) as exc:
            raise _Unavailable("compile-failed", f"{exc!r}")
        _STATE["compiled"] = True
    try:
        lib = _configure(ctypes.CDLL(str(so_path)))
        ok = _self_test(lib)
    except (OSError, AttributeError) as exc:
        ok = False
        detail = f"{exc!r}"
    else:
        detail = "self-test produced wrong parents"
    if not ok:
        try:
            so_path.unlink()
        except OSError:
            pass
        raise _Unavailable("load-failed", f"{so_path.name}: {detail}")
    _STATE["so_path"] = str(so_path)
    return lib


def load() -> Optional[ctypes.CDLL]:
    """The loaded kernel library, compiling on first call; None after a
    fallback (the attempt is made once and memoized either way)."""
    if _STATE["attempted"]:
        return _STATE["lib"]
    _STATE["attempted"] = True
    t0 = time.perf_counter()
    with obs_trace.span("accel.compile"):
        try:
            _STATE["lib"] = _load_impl()
            _AVAILABLE.set(1.0)
        except _Unavailable as exc:
            _STATE["error"] = f"{exc.reason}: {exc}"
            _FALLBACKS.inc(reason=exc.reason)
            _AVAILABLE.set(0.0)
            _LOG.warning(
                "native accel tier unavailable (%s); falling back to "
                "the vector tier — outputs are identical, only slower",
                _STATE["error"],
            )
    _STATE["compile_seconds"] = time.perf_counter() - t0
    _COMPILE_SECONDS.observe(_STATE["compile_seconds"])
    return _STATE["lib"]


def available() -> bool:
    """Whether the native kernels are usable (compiles on first call)."""
    return load() is not None


def info() -> dict:
    """Passive status for ``/stats`` — never triggers a compile."""
    return {
        "attempted": _STATE["attempted"],
        "available": (
            _STATE["lib"] is not None if _STATE["attempted"] else None
        ),
        "so_path": _STATE["so_path"],
        "compiled": _STATE["compiled"],
        "compile_seconds": _STATE["compile_seconds"],
        "error": _STATE["error"],
        "cache_dir": str(cache_dir()),
    }


# ----------------------------------------------------------------------
# ctypes wrappers (zero-copy over flat int64 arrays)
# ----------------------------------------------------------------------
def _ptr(arr: np.ndarray):
    return arr.ctypes.data_as(ctypes.POINTER(ctypes.c_int64))


def _as_i64(arr) -> np.ndarray:
    return np.ascontiguousarray(arr, dtype=np.int64)


def merge_scan(
    n_items: int, cur: np.ndarray, prev: np.ndarray
) -> Optional[np.ndarray]:
    """Native :func:`repro.accel.tree.merge_scan`; None when unavailable."""
    lib = load()
    if lib is None:
        return None
    cur = _as_i64(cur)
    prev = _as_i64(prev)
    parent = np.empty(n_items, dtype=np.int64)
    uf = np.empty(n_items, dtype=np.int64)
    size = np.empty(n_items, dtype=np.int64)
    tree_root = np.empty(n_items, dtype=np.int64)
    lib.repro_merge_scan(
        n_items, len(cur), _ptr(cur), _ptr(prev),
        _ptr(parent), _ptr(uf), _ptr(size), _ptr(tree_root),
    )
    return parent


def reduce_scan(
    n_vertices: int, cur: np.ndarray, prev: np.ndarray
) -> Optional[np.ndarray]:
    """Indices of merge-causing steps (dist shard reduction); None when
    unavailable."""
    lib = load()
    if lib is None:
        return None
    cur = _as_i64(cur)
    prev = _as_i64(prev)
    kept = np.empty(len(cur), dtype=np.int64)
    uf = np.empty(n_vertices, dtype=np.int64)
    size = np.empty(n_vertices, dtype=np.int64)
    k = lib.repro_reduce_scan(
        n_vertices, len(cur), _ptr(cur), _ptr(prev),
        _ptr(kept), _ptr(uf), _ptr(size),
    )
    return kept[:k].copy()


def replay_scan(
    n: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    order: np.ndarray,
    pos: np.ndarray,
    ckpt_pos: np.ndarray,
) -> Optional[dict]:
    """Journalled Algorithm-1 replay for the streaming rebuild.

    Returns the full rollback-capable state as flat arrays (see the C
    comment for semantics), or None when the native tier is unavailable.
    """
    lib = load()
    if lib is None:
        return None
    indptr = _as_i64(indptr)
    indices = _as_i64(indices)
    order = _as_i64(order)
    pos = _as_i64(pos)
    ckpt_pos = _as_i64(ckpt_pos)
    parent = np.empty(n, dtype=np.int64)
    tree_root = np.empty(n, dtype=np.int64)
    uf_parent = np.empty(n, dtype=np.int64)
    uf_size = np.empty(n, dtype=np.int64)
    cap = max(n, 1)
    journal = np.empty(3 * cap, dtype=np.int64)
    history = np.empty(cap, dtype=np.int64)
    ckpt_jlen = np.empty(max(len(ckpt_pos), 1), dtype=np.int64)
    nj = lib.repro_replay_scan(
        n, _ptr(indptr), _ptr(indices), _ptr(order), _ptr(pos),
        len(ckpt_pos), _ptr(ckpt_pos), _ptr(ckpt_jlen),
        _ptr(parent), _ptr(tree_root), _ptr(uf_parent), _ptr(uf_size),
        _ptr(journal), _ptr(history),
    )
    return {
        "parent": parent,
        "tree_root": tree_root,
        "uf_parent": uf_parent,
        "uf_size": uf_size,
        "journal": journal[: 3 * nj].reshape(nj, 3),
        "history": history[:nj],
        "ckpt_jlen": ckpt_jlen[: len(ckpt_pos)],
        "n_unions": int(nj),
    }
