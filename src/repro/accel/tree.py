"""Edge-ordered scalar-tree construction kernels (Algorithms 1 and 3).

The naive builds (:func:`repro.core.scalar_tree.build_vertex_tree`,
:func:`repro.core.edge_tree.build_edge_tree`) walk the full adjacency of
every item through :func:`~repro.core.scalar_tree.attach_vertex`,
visiting each undirected edge **twice** and paying a Python-level rank
comparison per visit.  The kernels here restructure the same
computation around the edges:

1. every undirected edge is attributed, vectorized, to the endpoint
   processed *later* (larger rank) — exactly the visits the naive scan
   acts on, so each edge is visited **once** and the rank test vanishes
   from the inner loop;
2. the edges are pre-sorted once (stable argsort on the later
   endpoint's rank) so a single flat :func:`merge_scan` replays them in
   processing order;
3. the scan runs union-find with path halving + union by size over
   flat int64 state arrays materialized once per build (and handed to
   the scan as machine ints — CPython's fastest representation for the
   inherently sequential find loops) — or, on the ``native`` tier, over
   the same arrays zero-copy through the compiled C scan of
   :mod:`repro.accel.native`, which removes the interpreter from the
   one loop vectorization cannot reach.

The result is **byte-identical** to the naive build: within one item's
merge group, every distinct already-built subtree root gets the current
item as parent exactly once regardless of the order the group's edges
are replayed in (the roots were fixed before the group started, and
re-encounters of an already-merged subtree are skipped), so attributing
edges instead of scanning adjacency cannot change a single parent
pointer.  ``tests/accel/test_tree_equivalence.py`` enforces this
property-wise — naive ≡ vector ≡ native — including disconnected
graphs and duplicate scalars.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from typing import Optional

import numpy as np

from . import resolve as _resolve
from . import native as _native

__all__ = [
    "merge_scan",
    "merge_scan_keep",
    "rank_order",
    "vertex_tree_parents",
    "edge_tree_parents",
]


# ----------------------------------------------------------------------
# rank_order, memoized
# ----------------------------------------------------------------------
# Both tree builders (and the dist executor's base + global replays)
# call rank_order on the *same* scalars buffer within one build, and
# warm pipelines re-build repeatedly over an unchanged field — so the
# lexsort + rank scatter is memoized per buffer identity.  Identity is
# a weakref to the array (so the memo never keeps a field alive and an
# id() reuse after garbage collection cannot alias) plus a cheap
# content guard against in-place mutation (streaming edits mutate the
# field buffer via DeltaGraph.set_scalar).
_RANK_MEMO: "OrderedDict[int, tuple]" = OrderedDict()
_RANK_MEMO_MAX = 8
#: Memo instrumentation for the once-per-build regression test.
RANK_STATS = {"hits": 0, "misses": 0}


def _rank_guard(arr: np.ndarray) -> tuple:
    if not len(arr):
        return ()
    return (
        arr.dtype.str,
        float(arr[0]),
        float(arr[-1]),
        float(np.add.reduce(arr, dtype=np.float64)),
    )


def rank_order(scalars: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    """Processing order and rank permutation for a scalar vector.

    Items are processed in decreasing scalar order, ties broken by
    ascending item id — the same ``np.lexsort`` the naive builds use,
    so both backends agree bit-for-bit on ties.  Results are memoized
    per scalars buffer (see above); callers must treat the returned
    arrays as read-only.
    """
    arr = np.asarray(scalars)
    key = id(arr)
    entry = _RANK_MEMO.get(key)
    if entry is not None:
        ref, guard, order, rank = entry
        if ref() is arr and guard == _rank_guard(arr):
            RANK_STATS["hits"] += 1
            _RANK_MEMO.move_to_end(key)
            return order, rank
        del _RANK_MEMO[key]
    RANK_STATS["misses"] += 1
    n = len(arr)
    order = np.lexsort((np.arange(n), -arr))
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n)
    try:
        ref = weakref.ref(arr)
    except TypeError:
        return order, rank
    _RANK_MEMO[key] = (ref, _rank_guard(arr), order, rank)
    while len(_RANK_MEMO) > _RANK_MEMO_MAX:
        _RANK_MEMO.popitem(last=False)
    return order, rank


def rank_order_cache_clear() -> None:
    """Drop the rank memo (tests and long-lived servers re-keying ids)."""
    _RANK_MEMO.clear()


# ----------------------------------------------------------------------
# The merge scans
# ----------------------------------------------------------------------
def _native_selected(backend: Optional[str], size: int) -> bool:
    """Whether this scan should run the compiled kernel.

    ``backend`` is a caller's already-resolved tier when given; None
    asks the global switch (``auto``/``native`` prefer the compiled
    scan at any size — the caller reaching a flat scan has already
    cleared the naive threshold).
    """
    if backend is None:
        backend = _resolve(None, size=size, threshold=0, native=True)
    return backend == "native" and _native.available()


def merge_scan(
    n_items: int,
    cur: np.ndarray,
    prev: np.ndarray,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Replay pre-ordered merge steps; return the forest's parent array.

    ``cur[i]`` is the item being processed at step ``i`` and ``prev[i]``
    an already-processed item it touches; steps must be sorted by the
    processing order of ``cur``.  Each step that joins two distinct
    subtrees re-roots the older one under ``cur[i]`` — one flat scan
    shared by the vertex-tree (Algorithm 1) and edge-tree (Algorithm 3)
    builds.  ``backend`` picks the scan implementation (``"native"``
    runs the compiled C kernel when available; anything else, or a
    failed compile, runs the Python scan below — byte-identical).
    """
    if _native_selected(backend, len(cur)):
        parent = _native.merge_scan(n_items, cur, prev)
        if parent is not None:
            return parent
    parent = [-1] * n_items
    uf = list(range(n_items))
    size = [1] * n_items
    tree_root = list(range(n_items))
    # A group's current item opens as a union-find singleton (nothing
    # merges with an item before its own processing turn), so its set
    # representative starts as itself — no find — and is then maintained
    # directly through the group's unions.  Only the already-processed
    # side of each step ever walks a find chain.
    prev_cur = -1
    root_v = -1
    for v, w in zip(cur.tolist(), prev.tolist()):
        if v != prev_cur:
            prev_cur = v
            root_v = v
        x = w
        while uf[x] != x:
            uf[x] = uf[uf[x]]
            x = uf[x]
        if root_v != x:
            parent[tree_root[x]] = v
            if size[root_v] < size[x]:
                root_v, x = x, root_v
            uf[x] = root_v
            size[root_v] += size[x]
            tree_root[root_v] = v
    return np.array(parent, dtype=np.int64)


def merge_scan_keep(
    n_items: int,
    cur: np.ndarray,
    prev: np.ndarray,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Indices of the steps :func:`merge_scan` would merge on.

    The dist executor's shard reduction keeps exactly these steps (the
    shard's merge forest); the scan is the same union-find, tracking
    merge-causing step indices instead of materialising parents.
    """
    if _native_selected(backend, len(cur)):
        kept = _native.reduce_scan(n_items, cur, prev)
        if kept is not None:
            return kept
    uf = list(range(n_items))
    size = [1] * n_items
    kept = []
    prev_cur = -1
    root_v = -1
    for i, (v, w) in enumerate(zip(cur.tolist(), prev.tolist())):
        if v != prev_cur:
            prev_cur = v
            root_v = v
        x = w
        while uf[x] != x:
            uf[x] = uf[uf[x]]
            x = uf[x]
        if root_v != x:
            kept.append(i)
            if size[root_v] < size[x]:
                root_v, x = x, root_v
            uf[x] = root_v
            size[root_v] += size[x]
    return np.array(kept, dtype=np.int64)


def vertex_tree_parents(
    n_vertices: int,
    edge_pairs: np.ndarray,
    rank: np.ndarray,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Algorithm 1 parents via the edge-ordered merge scan.

    ``edge_pairs`` is an ``(m, 2)`` array of undirected edges and
    ``rank`` the processing rank per vertex (see :func:`rank_order`).
    ``backend`` selects the scan tier (see :func:`merge_scan`).
    """
    if len(edge_pairs) == 0:
        return np.full(n_vertices, -1, dtype=np.int64)
    pairs = np.asarray(edge_pairs, dtype=np.int64)
    ra = rank[pairs[:, 0]]
    rb = rank[pairs[:, 1]]
    later = ra > rb
    cur = np.where(later, pairs[:, 0], pairs[:, 1])
    prev = np.where(later, pairs[:, 1], pairs[:, 0])
    # Stability is unnecessary: the merge result is invariant to the
    # order of one item's edges (see the module docstring).
    eorder = np.argsort(np.maximum(ra, rb))
    return merge_scan(n_vertices, cur[eorder], prev[eorder], backend)


def edge_tree_parents(
    n_vertices: int,
    edge_pairs: np.ndarray,
    rank: np.ndarray,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Algorithm 3 parents via the same merge scan.

    Items are dense edge ids; ``rank`` is the per-edge processing rank.
    ``min_id_edge`` (each vertex's first-processed incident edge —
    Proposition 3's sufficient candidate set) is computed with one
    ``np.minimum.at`` pass instead of a Python scan, then each edge's
    two candidates are filtered and ordered vectorized.
    """
    m = len(edge_pairs)
    if m == 0:
        return np.full(0, dtype=np.int64, fill_value=-1)
    pairs = np.asarray(edge_pairs, dtype=np.int64)
    order = np.argsort(rank)  # rank r -> edge id (a permutation)
    best_rank = np.full(n_vertices, m, dtype=np.int64)
    np.minimum.at(best_rank, pairs[:, 0], rank)
    np.minimum.at(best_rank, pairs[:, 1], rank)
    # Every endpoint of an edge has an incident edge, so best_rank < m
    # wherever it is indexed below.
    cand = np.stack(
        [order[best_rank[pairs[:, 0]]], order[best_rank[pairs[:, 1]]]],
        axis=1,
    )  # (m, 2): min_id_edge of each endpoint
    rows = order  # edges in processing order
    cand_rows = cand[rows]
    keep = rank[cand_rows] < rank[rows][:, None]
    cur = np.repeat(rows, 2)[keep.ravel()]
    prev = cand_rows.ravel()[keep.ravel()]
    return merge_scan(m, cur, prev, backend)
