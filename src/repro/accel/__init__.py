"""repro.accel — accelerated compute kernels with naive-identical semantics.

Every hot stage of the pipeline (tree construction, traversal-based
measures, layout relaxation, heightfield rasterization) has two
implementations: the *naive* reference code that lives next to the
algorithm it implements, and a numpy-vectorized *kernel* in this
package.  The inherently sequential union-find merge scan additionally
has a third, *native* tier: a small C implementation compiled at first
use from embedded source and loaded with ctypes
(:mod:`repro.accel.native`).  The contract is strict across all tiers:
for any input, every backend produces the **same arrays** — identical
``parent`` pointers, identical integer measure vectors, identical
layouts and heightfields (float centrality accumulations agree to
1e-9; everything else is byte-identical).  The property suite in
``tests/accel/`` enforces this, so the backends are interchangeable
mid-pipeline and share one cache identity (an
:class:`~repro.engine.cache.ArtifactCache` hit bypasses all of them).

Backend selection is a process-global setting:

* ``auto`` (default) — per call site, pick the fastest applicable tier
  once the input crosses a small size threshold (native when a C
  compiler is present and the call site has a native kernel, else
  vector), and stay naive below it (tiny inputs don't amortize the
  dispatch overhead);
* ``naive`` — always the pure-Python reference path;
* ``vector`` — always the numpy kernels;
* ``native`` — the compiled C merge-scan kernels where they exist,
  the vector kernels everywhere else.  **Soft fallback**: when no
  toolchain exists or compilation fails, native degrades to vector
  with one logged warning and a
  ``repro_accel_native_fallbacks_total`` increment — never an error.

Configure it with :func:`set_backend`, the ``REPRO_ACCEL`` environment
variable, or ``repro --accel {auto,naive,vector,native}`` on any CLI
subcommand.  Library calls can override per invocation via their
``backend=`` keyword, and tests can scope a choice with :func:`using`.

Kernels are deliberately *flat*: they take plain numpy arrays
(``indptr``/``indices`` CSR pairs, edge arrays, rank permutations) and
return plain arrays, importing nothing from :mod:`repro.core` — so the
core algorithm modules can dispatch to them without import cycles, and
the multi-source kernels stay picklable for
:meth:`repro.serve.workers.StageRunner.map_sync` sharding.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from ..obs import metrics as _obs_metrics

__all__ = [
    "BACKENDS",
    "get_backend",
    "set_backend",
    "using",
    "resolve",
]

BACKENDS = ("auto", "naive", "vector", "native")

_STATE = {"backend": "auto"}

# Info-style gauge: one child per mode, 1 on the configured one — lets
# /metrics scrapes see which tier a process was pinned to without
# parsing argv or the environment.
_BACKEND_INFO = _obs_metrics.REGISTRY.gauge(
    "repro_accel_backend_info",
    "Configured accel backend mode (1 on the active label).",
    ("backend",),
)


def _publish_backend() -> None:
    for mode in BACKENDS:
        _BACKEND_INFO.set(
            1.0 if mode == _STATE["backend"] else 0.0, backend=mode
        )


def _init_from_env() -> None:
    value = os.environ.get("REPRO_ACCEL", "").strip().lower()
    if not value:
        return
    if value not in BACKENDS:
        # Fail loudly: a typo (REPRO_ACCEL=vectr) silently falling back
        # to "auto" would neutralize exactly the runs that pin a backend
        # on purpose (CI's naive-fallback job, reproducibility scripts).
        raise ValueError(
            f"REPRO_ACCEL must be one of {BACKENDS}, got {value!r}"
        )
    _STATE["backend"] = value


_init_from_env()
_publish_backend()


def get_backend() -> str:
    """The configured backend mode (may be ``"auto"``)."""
    return _STATE["backend"]


def set_backend(name: str) -> None:
    """Set the process-global backend mode."""
    if name not in BACKENDS:
        raise ValueError(
            f"backend must be one of {BACKENDS}, got {name!r}"
        )
    _STATE["backend"] = name
    _publish_backend()


@contextmanager
def using(name: str) -> Iterator[None]:
    """Scope a backend choice: ``with accel.using("naive"): ...``."""
    previous = get_backend()
    set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)


def _native_usable() -> bool:
    """Whether the compiled tier can actually run (first call may
    compile; soft-fails to False)."""
    from . import native as _native

    return _native.available()


def resolve(
    backend: Optional[str] = None,
    *,
    size: Optional[int] = None,
    threshold: float = 0,
    native: bool = False,
) -> str:
    """Pick the concrete tier for one call site.

    ``backend`` overrides the global setting when given.  ``auto``
    resolves by comparing ``size`` (the call site's natural work
    measure: edges, vertices, siblings, nodes) against the call site's
    ``threshold``; with no size it resolves to the accelerated tier.  A
    call site whose vector kernel does not (yet) win may pass an
    infinite threshold: ``auto`` then stays naive while an explicit
    backend still forces the kernel.

    ``native`` declares that the call site *has* a compiled kernel.
    Only then can ``"native"`` come back — and only when the toolchain
    check passes (:func:`repro.accel.native.available`, which compiles
    on first use and soft-fails); otherwise ``native`` degrades to
    ``"vector"``, which is byte-identical.  Call sites without a native
    kernel resolve ``native`` straight to ``"vector"`` so a
    process-wide ``REPRO_ACCEL=native`` never breaks them.
    """
    mode = backend if backend is not None else _STATE["backend"]
    if mode not in BACKENDS:
        raise ValueError(
            f"backend must be one of {BACKENDS}, got {mode!r}"
        )
    if mode == "native":
        if native and _native_usable():
            return "native"
        return "vector"
    if mode != "auto":
        return mode
    if size is None or size >= threshold:
        if native and _native_usable():
            return "native"
        return "vector"
    return "naive"
