"""repro.accel — vectorized compute kernels with naive-identical semantics.

Every hot stage of the pipeline (tree construction, traversal-based
measures, layout relaxation, heightfield rasterization) has two
implementations: the *naive* reference code that lives next to the
algorithm it implements, and a numpy-vectorized *kernel* in this
package.  The contract is strict: for any input, both backends produce
the **same arrays** — identical ``parent`` pointers, identical integer
measure vectors, identical layouts and heightfields (float centrality
accumulations agree to 1e-9; everything else is byte-identical).  The
property suite in ``tests/accel/`` enforces this, so the backends are
interchangeable mid-pipeline and share one cache identity (an
:class:`~repro.engine.cache.ArtifactCache` hit bypasses both).

Backend selection is a process-global setting:

* ``auto`` (default) — per call site, pick the vector kernel once the
  input crosses a small size threshold, else stay naive (tiny inputs
  don't amortize the numpy dispatch overhead);
* ``naive`` — always the pure-Python reference path;
* ``vector`` — always the numpy kernels.

Configure it with :func:`set_backend`, the ``REPRO_ACCEL`` environment
variable, or ``repro --accel {auto,naive,vector}`` on any CLI
subcommand.  Library calls can override per invocation via their
``backend=`` keyword, and tests can scope a choice with :func:`using`.

Kernels are deliberately *flat*: they take plain numpy arrays
(``indptr``/``indices`` CSR pairs, edge arrays, rank permutations) and
return plain arrays, importing nothing from :mod:`repro.core` — so the
core algorithm modules can dispatch to them without import cycles, and
the multi-source kernels stay picklable for
:meth:`repro.serve.workers.StageRunner.map_sync` sharding.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = [
    "BACKENDS",
    "get_backend",
    "set_backend",
    "using",
    "resolve",
]

BACKENDS = ("auto", "naive", "vector")

_STATE = {"backend": "auto"}


def _init_from_env() -> None:
    value = os.environ.get("REPRO_ACCEL", "").strip().lower()
    if not value:
        return
    if value not in BACKENDS:
        # Fail loudly: a typo (REPRO_ACCEL=native) silently falling back
        # to "auto" would neutralize exactly the runs that pin a backend
        # on purpose (CI's naive-fallback job, reproducibility scripts).
        raise ValueError(
            f"REPRO_ACCEL must be one of {BACKENDS}, got {value!r}"
        )
    _STATE["backend"] = value


_init_from_env()


def get_backend() -> str:
    """The configured backend mode (may be ``"auto"``)."""
    return _STATE["backend"]


def set_backend(name: str) -> None:
    """Set the process-global backend mode."""
    if name not in BACKENDS:
        raise ValueError(
            f"backend must be one of {BACKENDS}, got {name!r}"
        )
    _STATE["backend"] = name


@contextmanager
def using(name: str) -> Iterator[None]:
    """Scope a backend choice: ``with accel.using("naive"): ...``."""
    previous = get_backend()
    set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)


def resolve(
    backend: Optional[str] = None,
    *,
    size: Optional[int] = None,
    threshold: float = 0,
) -> str:
    """Pick ``"naive"`` or ``"vector"`` for one call site.

    ``backend`` overrides the global setting when given.  ``auto``
    resolves by comparing ``size`` (the call site's natural work
    measure: edges, vertices, siblings, nodes) against the call site's
    ``threshold``; with no size it resolves to ``vector``.  A call site
    whose vector kernel does not (yet) win may pass an infinite
    threshold: ``auto`` then stays naive while explicit ``"vector"``
    still forces the kernel.
    """
    mode = backend if backend is not None else _STATE["backend"]
    if mode not in BACKENDS:
        raise ValueError(
            f"backend must be one of {BACKENDS}, got {mode!r}"
        )
    if mode != "auto":
        return mode
    if size is None or size >= threshold:
        return "vector"
    return "naive"
