"""Level-batched stamping kernels for heightfield rasterization.

:func:`repro.terrain.heightfield.rasterize` paints a tree's discs in
level-major order (all depth-0 discs, then depth-1, ...; see its
docstring for why that order is canonical).  Within a level the
expensive population is the *sub-pixel* discs — real trees carry
thousands of leaf nodes whose discs cover less than one grid cell, and
the naive path pays a Python iteration per leaf just to stamp a single
cell.  The kernels here batch that work:

* :func:`forest_depths` — per-node depth of a parent-pointer forest by
  whole-level propagation (no per-node parent chasing);
* :func:`stamp_points` — one level's sub-pixel stamps as a single
  sort-and-scatter: group the stamps by target cell, pick each cell's
  winner (the stamp the naive sequential rule would leave in place:
  highest scalar, latest position among equals), and apply the
  surviving stamps with one fancy-indexed compare-and-set.

Both produce exactly the arrays the naive per-node loop produces
(``tests/accel/test_raster_equivalence.py``).
"""

from __future__ import annotations

import numpy as np

__all__ = ["forest_depths", "stamp_points"]


def forest_depths(parent: np.ndarray) -> np.ndarray:
    """Depth of every node of a parent-pointer forest (roots at 0)."""
    parent = np.asarray(parent, dtype=np.int64)
    n = len(parent)
    depth = np.zeros(n, dtype=np.int64)
    known = parent < 0
    d = 0
    while not known.all():
        frontier = ~known & (parent >= 0) & known[np.maximum(parent, 0)]
        if not frontier.any():
            raise ValueError("parent pointers contain a cycle")
        d += 1
        depth[frontier] = d
        known |= frontier
    return depth


def stamp_points(
    height: np.ndarray,
    node: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    ids: np.ndarray,
    scalars: np.ndarray,
) -> None:
    """Apply one level's sub-pixel stamps to ``height``/``node`` in place.

    ``rows[p], cols[p]`` is stamp ``p``'s grid cell, ``ids[p]`` the node
    id to record and ``scalars[p]`` its height.  Sequential semantics
    being batched: stamps run in position order, each painting its cell
    iff its scalar is >= the cell's current height.  Per cell that
    leaves the highest scalar — and, among stamps tying for it, the
    latest position — so one lexsort picks every cell's winner and a
    single masked scatter applies them.
    """
    if len(ids) == 0:
        return
    res_cols = node.shape[1]
    cells = rows * np.int64(res_cols) + cols
    order = np.lexsort((np.arange(len(ids)), scalars, cells))
    cells_sorted = cells[order]
    last_of_group = np.ones(len(order), dtype=bool)
    last_of_group[:-1] = cells_sorted[1:] != cells_sorted[:-1]
    win = order[last_of_group]
    wr = rows[win]
    wc = cols[win]
    ws = scalars[win]
    ok = ws >= height[wr, wc]
    height[wr[ok], wc[ok]] = ws[ok]
    node[wr[ok], wc[ok]] = ids[win][ok]
