"""Frontier-at-a-time traversal kernels over CSR arrays.

The naive centrality code runs one Python ``deque`` BFS per source and
the naive k-core/k-truss peels remove one item at a time.  The kernels
here process a whole BFS frontier (or a whole peel level) per step with
numpy gathers: neighbour lists of the entire frontier are pulled in one
``indptr``-arithmetic gather (``np.repeat`` over degree counts), the
visited test is one mask, and peeling decrements arrive via
``np.bincount`` / ``np.add.at`` scatters.

Everything takes flat ``indptr``/``indices`` arrays (not a
:class:`~repro.graph.csr.CSRGraph`) so the functions pickle cleanly:
multi-source measures shard their source lists across an existing
:class:`repro.serve.workers.StageRunner` pool via
:func:`shard_sources` — each chunk is an independent
``(indptr, indices, sources)`` job, thread- or process-pooled.

Equivalence to the naive code (``tests/accel/``): BFS distances, and
hence harmonic/closeness values, are byte-identical (same masked-sum
expression over the same integer distances); k-core and k-truss
numbers are identical integer vectors (the decompositions are
peel-order-independent); Brandes betweenness accumulates partial
dependencies in a different order, so it agrees to ``atol=1e-9``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

__all__ = [
    "bfs_distances",
    "harmonic_values",
    "closeness_values",
    "betweenness_accumulate",
    "core_numbers_vector",
    "truss_numbers_vector",
    "shard_sources",
]


def _frontier_neighbors(
    indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """All adjacency entries of ``frontier`` as ``(sources, targets)``.

    One gather for the whole frontier: positions are ``arange`` offsets
    into each vertex's CSR slice, laid out with ``np.repeat``.
    """
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    csum = np.cumsum(counts)
    pos = np.arange(total, dtype=np.int64) + np.repeat(starts - (csum - counts), counts)
    return np.repeat(frontier, counts), indices[pos]


def bfs_distances(
    indptr: np.ndarray, indices: np.ndarray, source: int
) -> np.ndarray:
    """Hop distance from ``source`` to every vertex (−1 if unreachable)."""
    n = len(indptr) - 1
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    d = 0
    while frontier.size:
        __, nbrs = _frontier_neighbors(indptr, indices, frontier)
        fresh = nbrs[dist[nbrs] < 0]
        if fresh.size == 0:
            break
        d += 1
        dist[fresh] = d
        frontier = np.unique(fresh)
    return dist


def harmonic_values(
    indptr: np.ndarray,
    indices: np.ndarray,
    sources: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Harmonic centrality of each source (full length-n vector, zeros
    elsewhere); ``sources=None`` means every vertex."""
    n = len(indptr) - 1
    out = np.zeros(n)
    iterable = range(n) if sources is None else sources
    for v in iterable:
        dist = bfs_distances(indptr, indices, int(v))
        pos = dist > 0
        out[v] = float((1.0 / dist[pos]).sum())
    return out


def closeness_values(
    indptr: np.ndarray,
    indices: np.ndarray,
    sources: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Wasserman–Faust closeness of each source (zeros elsewhere)."""
    n = len(indptr) - 1
    out = np.zeros(n)
    iterable = range(n) if sources is None else sources
    for v in iterable:
        dist = bfs_distances(indptr, indices, int(v))
        reach = dist >= 0
        r = int(reach.sum())
        total = int(dist[reach].sum())
        if total > 0 and n > 1:
            out[v] = ((r - 1) / (n - 1)) * ((r - 1) / total)
    return out


def betweenness_accumulate(
    indptr: np.ndarray,
    indices: np.ndarray,
    sources: Sequence[int],
) -> np.ndarray:
    """Unscaled Brandes dependency sums from ``sources``.

    Level-synchronous: the forward pass grows whole BFS levels
    (shortest-path counts ``sigma`` scattered per level with
    ``np.add.at``), the backward pass folds dependencies level by level.
    The caller applies pair-count/sampling scaling, exactly as the
    naive accumulation expects.
    """
    n = len(indptr) - 1
    bc = np.zeros(n)
    for s in sources:
        s = int(s)
        dist = np.full(n, -1, dtype=np.int64)
        sigma = np.zeros(n)
        dist[s] = 0
        sigma[s] = 1.0
        levels: List[np.ndarray] = [np.array([s], dtype=np.int64)]
        d = 0
        while levels[-1].size:
            src, nbrs = _frontier_neighbors(indptr, indices, levels[-1])
            fresh = nbrs[dist[nbrs] < 0]
            d += 1
            if fresh.size:
                dist[fresh] = d
            # All frontier->next-level adjacency entries contribute to
            # sigma, including parallel discoveries within the level.
            on_next = dist[nbrs] == d
            if on_next.any():
                np.add.at(sigma, nbrs[on_next], sigma[src[on_next]])
            levels.append(np.unique(fresh))
        delta = np.zeros(n)
        for depth in range(len(levels) - 1, 0, -1):
            frontier = levels[depth]
            if frontier.size == 0:
                continue
            src, nbrs = _frontier_neighbors(indptr, indices, frontier)
            up = dist[nbrs] == depth - 1
            if up.any():
                coeff = (1.0 + delta[src[up]]) / sigma[src[up]]
                np.add.at(delta, nbrs[up], sigma[nbrs[up]] * coeff)
        bc += delta
        bc[s] -= delta[s]
    return bc


# ----------------------------------------------------------------------
# Peeling kernels
# ----------------------------------------------------------------------
def core_numbers_vector(indptr: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """K-core numbers by level-synchronous bucket peeling.

    Instead of removing one minimum-degree vertex at a time, every
    vertex at or below the current level peels in one batch; the batch's
    surviving neighbours take their degree decrements from one
    ``np.add.at`` scatter and are the only candidates for the next
    batch — cascade rounds touch O(frontier edges), not O(n), so long
    peel chains stay linear overall.  Core numbers are
    peel-order-independent, so the output matches the naive
    Batagelj–Zaversnik peel exactly.
    """
    n = len(indptr) - 1
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    deg = np.diff(indptr).astype(np.int64)
    core = np.zeros(n, dtype=np.int64)
    alive = np.ones(n, dtype=bool)
    remaining = n
    k = 0
    while remaining:
        k = max(k, int(deg[alive].min()))
        peel = np.flatnonzero(alive & (deg <= k))
        while peel.size:
            core[peel] = k
            alive[peel] = False
            remaining -= len(peel)
            __, nbrs = _frontier_neighbors(indptr, indices, peel)
            nbrs = nbrs[alive[nbrs]]
            if nbrs.size == 0:
                break
            np.add.at(deg, nbrs, -1)
            # Only vertices that just lost degree can newly fall to <= k.
            candidates = np.unique(nbrs)
            peel = candidates[deg[candidates] <= k]
    return core


def _alive_row(
    indptr: np.ndarray,
    indices: np.ndarray,
    slot_eid: np.ndarray,
    alive_slot: np.ndarray,
    v: int,
) -> "tuple[np.ndarray, np.ndarray]":
    """Surviving neighbours of ``v`` and the edge id of each slot."""
    lo, hi = int(indptr[v]), int(indptr[v + 1])
    keep = alive_slot[lo:hi]
    return indices[lo:hi][keep], slot_eid[lo:hi][keep]


def truss_numbers_vector(
    indptr: np.ndarray,
    indices: np.ndarray,
    support: Optional[np.ndarray] = None,
) -> np.ndarray:
    """K-truss numbers by level-synchronous support peeling.

    All edges at or below the current support level peel as one batch
    against a *pre-batch* adjacency snapshot.  A triangle that loses
    ``t`` of its three edges to the batch is rediscovered once from each
    of them, so every rediscovery contributes ``6 // t`` sixths to the
    surviving edges' decrement tally — integer-exact accounting that
    charges each dying triangle to each survivor exactly once, the same
    net effect as the naive one-edge-at-a-time peel.  Cascade rounds
    re-examine only the edges whose support was just decremented, so
    long peel chains stay proportional to the triangles they destroy.
    Truss numbers are peel-order-independent, so the output matches
    naive exactly.

    ``support`` is the initial triangle count per dense edge id —
    :func:`repro.measures.triangles.edge_supports` precomputed by the
    caller; omit it to have the kernel derive it here.
    """
    n = len(indptr) - 1
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    fwd = src < indices
    m = int(fwd.sum())
    if m == 0:
        return np.zeros(0, dtype=np.int64)
    pairs = np.column_stack([src[fwd], indices[fwd]])
    # Row-major CSR with sorted rows makes the canonical keys sorted,
    # so every slot's dense edge id is one searchsorted away.
    canon = pairs[:, 0] * np.int64(n) + pairs[:, 1]
    lo = np.minimum(src, indices)
    hi = np.maximum(src, indices)
    slot_eid = np.searchsorted(canon, lo * np.int64(n) + hi)
    # Each edge owns exactly two slots (one per direction).
    edge_slots = np.argsort(slot_eid, kind="stable").reshape(m, 2)

    alive_slot = np.ones(len(indices), dtype=bool)
    alive_edge = np.ones(m, dtype=bool)
    if support is not None:
        sup = np.array(support, dtype=np.int64)
    else:
        sup = np.zeros(m, dtype=np.int64)
        for eid in range(m):
            u, v = int(pairs[eid, 0]), int(pairs[eid, 1])
            a = indices[indptr[u]: indptr[u + 1]]
            b = indices[indptr[v]: indptr[v + 1]]
            if len(a) > len(b):
                a, b = b, a
            sup[eid] = len(np.intersect1d(a, b, assume_unique=True))

    truss = np.zeros(m, dtype=np.int64)
    in_batch = np.zeros(m, dtype=bool)
    dec6 = np.zeros(m, dtype=np.int64)
    remaining = m
    k = 0
    while remaining:
        k = max(k, int(sup[alive_edge].min()))
        batch = np.flatnonzero(alive_edge & (sup <= k))
        while batch.size:
            truss[batch] = k
            alive_edge[batch] = False
            remaining -= len(batch)
            in_batch[batch] = True
            touched = []
            for eid in batch.tolist():
                u, v = int(pairs[eid, 0]), int(pairs[eid, 1])
                nbr_u, eid_u = _alive_row(indptr, indices, slot_eid, alive_slot, u)
                nbr_v, eid_v = _alive_row(indptr, indices, slot_eid, alive_slot, v)
                common, iu, iv = np.intersect1d(
                    nbr_u, nbr_v, assume_unique=True, return_indices=True
                )
                if not len(common):
                    continue
                f1 = eid_u[iu]
                f2 = eid_v[iv]
                weight = 6 // (1 + in_batch[f1] + in_batch[f2])
                live1 = ~in_batch[f1]
                live2 = ~in_batch[f2]
                np.add.at(dec6, f1[live1], weight[live1])
                np.add.at(dec6, f2[live2], weight[live2])
                touched.append(f1[live1])
                touched.append(f2[live2])
            alive_slot[edge_slots[batch].ravel()] = False
            in_batch[batch] = False
            if touched:
                hit = np.unique(np.concatenate(touched))
                sup[hit] -= dec6[hit] // 6
                dec6[hit] = 0
                batch = hit[sup[hit] <= k]
            else:
                batch = np.empty(0, dtype=np.int64)
    return truss


# ----------------------------------------------------------------------
# Multi-source sharding
# ----------------------------------------------------------------------
def shard_sources(
    fn,
    indptr: np.ndarray,
    indices: np.ndarray,
    sources: Sequence[int],
    runner=None,
    min_chunk: int = 64,
) -> np.ndarray:
    """Fan a multi-source kernel's source list across a worker pool.

    ``fn(indptr, indices, chunk)`` must return a full-length float
    vector whose entries combine by addition (per-source values land in
    disjoint slots for harmonic/closeness; betweenness partials sum).
    ``runner`` is a :class:`repro.serve.workers.StageRunner` — in
    process mode ``fn`` ships as a module-level picklable plus the CSR
    arrays; with no runner the chunks just run inline.
    """
    sources = np.asarray(list(sources), dtype=np.int64)
    if runner is None or len(sources) <= min_chunk:
        return fn(indptr, indices, sources)
    n_chunks = max(1, min(len(sources) // min_chunk, 4 * _pool_width(runner)))
    chunks = np.array_split(sources, n_chunks)
    parts = runner.map_sync(
        fn, [(indptr, indices, chunk) for chunk in chunks if len(chunk)]
    )
    total = np.zeros(len(indptr) - 1)
    for part in parts:
        total += part
    return total


def _pool_width(runner) -> int:
    if getattr(runner, "uses_processes", False):
        return max(1, runner.workers)
    executor = getattr(runner, "thread_executor", None)
    return max(1, getattr(executor, "_max_workers", 1))
