"""Mutable overlay on an immutable :class:`~repro.graph.csr.CSRGraph`.

The CSR substrate is deliberately immutable — every algorithm in
:mod:`repro.core` assumes frozen adjacency.  Streaming workloads instead
mutate a :class:`DeltaGraph`: a thin overlay holding added/removed edges
and scalar-value updates on top of a base snapshot.  Neighbour queries
see the merged view; :meth:`DeltaGraph.compact` folds the overlay back
into a fresh immutable CSR snapshot when the delta grows large or a
non-streaming consumer needs one.

The vertex set is fixed at construction (streams over a known universe;
grow the universe by compacting into a larger base graph).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..graph.builders import from_edge_array
from ..graph.csr import CSRGraph

__all__ = ["DeltaGraph"]


def _canonical(u: int, v: int) -> Tuple[int, int]:
    return (u, v) if u < v else (v, u)


class DeltaGraph:
    """A :class:`CSRGraph` plus a mutable edge/scalar overlay.

    Parameters
    ----------
    base:
        The immutable snapshot to overlay.
    scalars:
        Optional per-vertex scalar field carried along with the graph
        (updated via :meth:`set_scalar`); copied, never aliased.
    """

    def __init__(self, base: CSRGraph, scalars=None) -> None:
        self.base = base
        self._added: Dict[int, Set[int]] = {}
        self._removed: Dict[int, Set[int]] = {}
        self._added_pairs: Set[Tuple[int, int]] = set()
        self._removed_pairs: Set[Tuple[int, int]] = set()
        self._nbr_cache: Dict[int, List[int]] = {}
        self._n_edges = base.n_edges
        if scalars is None:
            self._scalars: Optional[np.ndarray] = None
        else:
            arr = np.array(scalars, dtype=np.float64)
            if arr.shape != (base.n_vertices,):
                raise ValueError("scalars must have one entry per vertex")
            self._scalars = arr

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        return self.base.n_vertices

    @property
    def n_edges(self) -> int:
        """Edge count of the merged view (maintained incrementally)."""
        return self._n_edges

    @property
    def n_pending_edits(self) -> int:
        """Overlay size: added plus removed edges not yet compacted."""
        return len(self._added_pairs) + len(self._removed_pairs)

    @property
    def scalars(self) -> Optional[np.ndarray]:
        """The current scalar field (mutate via :meth:`set_scalar`)."""
        return self._scalars

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.n_vertices:
            raise IndexError(
                f"vertex {v} outside 0..{self.n_vertices - 1}"
            )

    def add_edge(self, u: int, v: int) -> bool:
        """Insert the undirected edge ``(u, v)``; False if already present."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise ValueError("self-loops are not allowed")
        if self.has_edge(u, v):
            return False
        key = _canonical(u, v)
        if key in self._removed_pairs:
            self._removed_pairs.discard(key)
            self._removed.get(u, set()).discard(v)
            self._removed.get(v, set()).discard(u)
        else:
            self._added_pairs.add(key)
            self._added.setdefault(u, set()).add(v)
            self._added.setdefault(v, set()).add(u)
        self._nbr_cache.pop(u, None)
        self._nbr_cache.pop(v, None)
        self._n_edges += 1
        return True

    def remove_edge(self, u: int, v: int) -> bool:
        """Delete the undirected edge ``(u, v)``; False if absent."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v or not self.has_edge(u, v):
            return False
        key = _canonical(u, v)
        if key in self._added_pairs:
            self._added_pairs.discard(key)
            self._added.get(u, set()).discard(v)
            self._added.get(v, set()).discard(u)
        else:
            self._removed_pairs.add(key)
            self._removed.setdefault(u, set()).add(v)
            self._removed.setdefault(v, set()).add(u)
        self._nbr_cache.pop(u, None)
        self._nbr_cache.pop(v, None)
        self._n_edges -= 1
        return True

    def set_scalar(self, v: int, value: float) -> float:
        """Update vertex ``v``'s scalar; returns the previous value."""
        if self._scalars is None:
            raise ValueError("this DeltaGraph carries no scalar field")
        self._check_vertex(v)
        value = float(value)
        if not np.isfinite(value):
            raise ValueError("scalar values must be finite")
        prev = float(self._scalars[v])
        self._scalars[v] = value
        return prev

    # ------------------------------------------------------------------
    # Merged-view queries
    # ------------------------------------------------------------------
    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``(u, v)`` exists in the merged view."""
        key = _canonical(u, v)
        if key in self._added_pairs:
            return True
        if key in self._removed_pairs:
            return False
        return self.base.has_edge(u, v)

    def neighbors_list(self, v: int) -> List[int]:
        """Sorted neighbour list of ``v`` in the merged view (cached)."""
        cached = self._nbr_cache.get(v)
        if cached is None:
            base = self.base.neighbors(v)
            add = self._added.get(v)
            rem = self._removed.get(v)
            if not add and not rem:
                cached = base.tolist()
            else:
                merged = set(base.tolist())
                if rem:
                    merged -= rem
                if add:
                    merged |= add
                cached = sorted(merged)
            self._nbr_cache[v] = cached
        return cached

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbours of ``v`` as an int64 array."""
        return np.array(self.neighbors_list(v), dtype=np.int64)

    def degree(self, v: int) -> int:
        return len(self.neighbors_list(v))

    def edge_array(self) -> np.ndarray:
        """All merged-view edges once, ``(m, 2)`` with ``u < v``."""
        pairs = self.base.edge_array()
        if self._removed_pairs:
            keep = np.fromiter(
                (
                    (int(a), int(b)) not in self._removed_pairs
                    for a, b in pairs
                ),
                dtype=bool,
                count=len(pairs),
            )
            pairs = pairs[keep]
        if self._added_pairs:
            extra = np.array(sorted(self._added_pairs), dtype=np.int64)
            pairs = np.vstack([pairs, extra.reshape(-1, 2)])
        return pairs

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self) -> CSRGraph:
        """Fold the overlay into a fresh immutable :class:`CSRGraph`.

        Returns ``base`` itself when no edge edits are pending.  Scalar
        updates live in :attr:`scalars` and are unaffected.
        """
        if not self._added_pairs and not self._removed_pairs:
            return self.base
        return from_edge_array(
            self.edge_array(),
            n_vertices=self.n_vertices,
            labels=self.base.labels,
        )

    def rebase(self) -> CSRGraph:
        """Compact, then make the result the new base with an empty overlay."""
        snapshot = self.compact()
        self.base = snapshot
        self._added.clear()
        self._removed.clear()
        self._added_pairs.clear()
        self._removed_pairs.clear()
        self._nbr_cache.clear()
        return snapshot

    def __repr__(self) -> str:
        return (
            f"DeltaGraph(n_vertices={self.n_vertices}, "
            f"n_edges={self.n_edges}, pending={self.n_pending_edits})"
        )
