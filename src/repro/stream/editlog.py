"""Typed edit events and the JSONL edit-log format.

A *stream* is a sequence of transactions (batches); each batch is a list
of edits applied atomically to a :class:`~repro.stream.delta.DeltaGraph`
/ :class:`~repro.stream.incremental.StreamingScalarTree`.  Three edit
kinds cover the dynamic-scalar-field setting:

* :class:`SetScalar` — a vertex's field value changed;
* :class:`AddEdge` / :class:`RemoveEdge` — the graph itself changed.

The on-disk format is line-delimited JSON so recorded streams can be
replayed by the CLI (``repro stream``) and benchmarks::

    {"op": "set", "v": 3, "value": 2.5}
    {"op": "add", "u": 1, "v": 2}
    {"op": "remove", "u": 0, "v": 4}
    {"op": "commit"}
    {"op": "set", "v": 1, "value": 0.0}
    {"op": "commit", "t": 7.5}

``commit`` lines end a batch; an optional ``t`` carries the batch
timestamp for sliding-window replay (:mod:`repro.stream.window`).
Edits after the last ``commit`` form a final implicit batch.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = [
    "SetScalar",
    "AddEdge",
    "RemoveEdge",
    "Edit",
    "Batch",
    "edit_to_obj",
    "edit_from_obj",
    "write_edit_log",
    "read_edit_log",
    "iter_edit_log",
]


@dataclass(frozen=True)
class SetScalar:
    """Vertex ``vertex``'s scalar becomes ``value``."""

    vertex: int
    value: float


@dataclass(frozen=True)
class AddEdge:
    """The undirected edge ``(u, v)`` is inserted."""

    u: int
    v: int


@dataclass(frozen=True)
class RemoveEdge:
    """The undirected edge ``(u, v)`` is deleted."""

    u: int
    v: int


Edit = Union[SetScalar, AddEdge, RemoveEdge]
Batch = List[Edit]


def edit_to_obj(edit: Edit) -> dict:
    """The JSON-serialisable dict for one edit."""
    if isinstance(edit, SetScalar):
        return {"op": "set", "v": int(edit.vertex), "value": float(edit.value)}
    if isinstance(edit, AddEdge):
        return {"op": "add", "u": int(edit.u), "v": int(edit.v)}
    if isinstance(edit, RemoveEdge):
        return {"op": "remove", "u": int(edit.u), "v": int(edit.v)}
    raise TypeError(f"not an edit: {edit!r}")


def edit_from_obj(obj: dict) -> Edit:
    """Parse one non-commit JSONL record back into a typed edit.

    Raises ``ValueError`` for any malformed record (unknown op, missing
    or non-numeric fields), so log readers surface one exception type.
    """
    if not isinstance(obj, dict):
        raise ValueError(f"edit record must be a JSON object, got {obj!r}")
    op = obj.get("op")
    try:
        if op == "set":
            return SetScalar(int(obj["v"]), float(obj["value"]))
        if op == "add":
            return AddEdge(int(obj["u"]), int(obj["v"]))
        if op == "remove":
            return RemoveEdge(int(obj["u"]), int(obj["v"]))
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed {op!r} edit {obj!r}: {exc}")
    raise ValueError(f"unknown edit op {op!r}")


def write_edit_log(
    path: Union[str, Path],
    batches: Iterable[Sequence[Edit]],
    times: Optional[Sequence[float]] = None,
) -> Path:
    """Write batches (with optional per-batch timestamps) as JSONL."""
    path = Path(path)
    times_list = None if times is None else list(times)
    with path.open("w", encoding="utf-8") as fh:
        for i, batch in enumerate(batches):
            for edit in batch:
                fh.write(json.dumps(edit_to_obj(edit)) + "\n")
            commit: dict = {"op": "commit"}
            if times_list is not None:
                commit["t"] = float(times_list[i])
            fh.write(json.dumps(commit) + "\n")
    return path


def iter_edit_log(lines: Iterable[str]) -> Iterator[Tuple[Optional[float], Batch]]:
    """Yield ``(timestamp, batch)`` pairs from JSONL lines, streaming.

    ``timestamp`` is ``None`` when the commit record carries no ``t``.
    Blank lines and ``#`` comments are skipped.  A trailing group of
    edits without a final ``commit`` is yielded as a last batch.
    """
    batch: Batch = []
    for raw in lines:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        obj = json.loads(line)
        if not isinstance(obj, dict):
            raise ValueError(
                f"edit record must be a JSON object, got {obj!r}"
            )
        if obj.get("op") == "commit":
            t = obj.get("t")
            yield (None if t is None else float(t)), batch
            batch = []
        else:
            batch.append(edit_from_obj(obj))
    if batch:
        yield None, batch


def read_edit_log(
    source: Union[str, Path, IO[str]]
) -> List[Tuple[Optional[float], Batch]]:
    """Read a whole JSONL edit log into ``[(timestamp, batch), ...]``."""
    if hasattr(source, "read"):
        return list(iter_edit_log(source))  # type: ignore[arg-type]
    with Path(source).open("r", encoding="utf-8") as fh:
        return list(iter_edit_log(fh))
