"""Dynamic scalar fields: incremental tree maintenance over edit streams.

The paper's Algorithms 1–3 build scalar trees in one shot over a static
snapshot.  This subpackage opens the *streaming* workload class: the
graph and its scalar field keep changing (edge churn, measure updates)
and the scalar tree — and therefore the terrain — is maintained with
work proportional to the touched α-components instead of a full
O(m·α(n)) rebuild per change.

Modules
-------
``repro.stream.delta``
    :class:`DeltaGraph` — mutable overlay (edge adds/removes + scalar
    updates) on the immutable CSR substrate, with ``compact()`` back to
    a snapshot.
``repro.stream.editlog``
    Typed edit events (:class:`SetScalar`, :class:`AddEdge`,
    :class:`RemoveEdge`), batched transactions, and the JSONL edit-log
    reader/writer used by ``repro stream`` and the benchmarks.
``repro.stream.incremental``
    :class:`StreamingScalarTree` — checkpointed, rollback-capable
    Algorithm 1 that rewinds to the batch's impact level and replays
    only the dirty suffix.
``repro.stream.window``
    :class:`SlidingWindow` — expire edits older than a horizon, for
    temporal-network replay.
"""

from .delta import DeltaGraph
from .editlog import (
    AddEdge,
    Batch,
    Edit,
    RemoveEdge,
    SetScalar,
    iter_edit_log,
    read_edit_log,
    write_edit_log,
)
from .incremental import StreamingScalarTree
from .window import SlidingWindow

__all__ = [
    "DeltaGraph",
    "SetScalar",
    "AddEdge",
    "RemoveEdge",
    "Edit",
    "Batch",
    "write_edit_log",
    "read_edit_log",
    "iter_edit_log",
    "StreamingScalarTree",
    "SlidingWindow",
]
