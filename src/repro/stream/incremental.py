"""Incremental scalar-tree maintenance over streaming edits.

Algorithm 1 processes vertices in decreasing scalar order, so an edit
batch can only change the tree at and below its *impact level* θ:

* ``SetScalar(v, x)`` matters at levels ≤ max(old value, new value);
* ``AddEdge``/``RemoveEdge`` ``(u, v)`` matters at levels
  ≤ max(min of endpoint scalars before, min after) — the edge only
  connects once *both* endpoints are in the α-sublevel graph.

Every vertex processed strictly above θ sees exactly the neighbourhood,
scalars and union-find state it saw before the batch, so that prefix of
the construction is byte-identical.  :class:`StreamingScalarTree`
therefore records the build as a journal with checkpoints at scalar-level
boundaries (a :class:`~repro.core.union_find.RollbackUnionFind` snapshot
plus the journal length), and on each batch:

1. applies the edits to a :class:`~repro.stream.delta.DeltaGraph`;
2. rewinds to the deepest checkpoint still strictly above θ;
3. re-sorts and replays only the suffix (the dirty maximal
   α-components' worth of vertices at levels ≤ θ), via the same
   :func:`~repro.core.scalar_tree.attach_vertex` step the full build
   uses;
4. splices the re-derived parent pointers into the previous tree
   (:meth:`~repro.core.scalar_tree.ScalarTree.spliced`) and lazily
   patches the super tree
   (:func:`~repro.core.super_tree.splice_super_tree`).

When the suffix exceeds ``rebuild_threshold`` of the vertices the whole
tree is rebuilt instead — replay would cost as much as a build.

The maintained tree is array-identical to ``build_vertex_tree`` on the
compacted snapshot (the equivalence property test in
``tests/stream/test_equivalence.py`` checks exactly this), because the
prefix order is preserved and the suffix is re-sorted with the same
(-scalar, vertex id) key.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import accel
from ..accel import native as _accel_native
from ..core.scalar_graph import ScalarGraph
from ..core.scalar_tree import ScalarTree, attach_vertex
from ..core.simplify import simplify_tree
from ..core.super_tree import SuperTree, build_super_tree, splice_super_tree
from ..core.union_find import RollbackUnionFind
from .delta import DeltaGraph
from .editlog import AddEdge, Batch, RemoveEdge, SetScalar

__all__ = ["StreamingScalarTree"]

_INF = float("inf")

# Below this many edges the native rebuild's CSR materialisation does
# not pay for itself; the journalled Python replay stays.
_NATIVE_REBUILD_MIN_EDGES = 2048


class StreamingScalarTree:
    """Maintains a vertex scalar tree under streaming graph/field edits.

    Parameters
    ----------
    field:
        The initial snapshot (graph + per-vertex scalars).
    rebuild_threshold:
        Full-rebuild fallback: when a batch dirties more than this
        fraction of the vertices, replaying the suffix is no cheaper
        than rebuilding, so rebuild.

    Attributes
    ----------
    delta:
        The mutable :class:`DeltaGraph` holding the current graph state.
    stats:
        Counters — ``batches``, ``incremental``, ``full_rebuilds``,
        ``last_suffix`` (vertices replayed by the latest batch) and
        ``replayed_vertices`` (cumulative).
    """

    def __init__(
        self, field: ScalarGraph, rebuild_threshold: float = 0.5
    ) -> None:
        if not 0.0 <= rebuild_threshold <= 1.0:
            raise ValueError("rebuild_threshold must be in [0, 1]")
        self.delta = DeltaGraph(field.graph, scalars=field.scalars)
        self.rebuild_threshold = rebuild_threshold
        self.stats: Dict[str, int] = {
            "batches": 0,
            "incremental": 0,
            "full_rebuilds": 0,
            "last_suffix": 0,
            "replayed_vertices": 0,
        }
        self._super: Optional[SuperTree] = None
        self._super_stale = True
        self._super_dirty_above = -_INF
        self._rebuild()

    # ------------------------------------------------------------------
    # Current state
    # ------------------------------------------------------------------
    @property
    def tree(self) -> ScalarTree:
        """The maintained vertex scalar tree for the current snapshot."""
        return self._tree

    @property
    def scalars(self) -> np.ndarray:
        """Current scalar field (do not mutate; edit via batches)."""
        return self.delta.scalars

    @property
    def n_vertices(self) -> int:
        return self.delta.n_vertices

    def snapshot(self) -> ScalarGraph:
        """The current state compacted into an immutable scalar graph."""
        return ScalarGraph(self.delta.compact(), self.delta.scalars.copy())

    def super_tree(self) -> SuperTree:
        """Super tree of the current snapshot (spliced lazily)."""
        if self._super_stale:
            if self._super is None:
                self._super = build_super_tree(self._tree)
            else:
                self._super = splice_super_tree(
                    self._tree, self._super, self._super_dirty_above
                )
            self._super_stale = False
            self._super_dirty_above = -_INF
        return self._super

    def display_tree(
        self, bins: Optional[int] = None, scheme: str = "quantile"
    ) -> SuperTree:
        """The presentation tree of the current snapshot: simplified to
        ``bins`` scalar levels when given, else the exact super tree.

        This is the streaming side of the pipeline's display stage
        (:class:`repro.engine.pipeline.StreamingPipeline`), matching
        what a static build would produce on the compacted snapshot.
        """
        if bins:
            return simplify_tree(self.tree, bins, scheme=scheme)
        return self.super_tree()

    # ------------------------------------------------------------------
    # Full (recorded) build
    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        n = self.delta.n_vertices
        scalars = self.delta.scalars
        order = np.lexsort((np.arange(n), -scalars))
        self._order: List[int] = order.tolist()
        self._pos: List[int] = [0] * n
        for i, v in enumerate(self._order):
            self._pos[v] = i
        chosen = accel.resolve(
            None, size=self.delta.n_edges,
            threshold=_NATIVE_REBUILD_MIN_EDGES, native=True,
        )
        if chosen != "native" or not self._rebuild_native(order, scalars):
            self._uf = RollbackUnionFind(n)
            self._parent: List[int] = [-1] * n
            self._tree_root: List[int] = list(range(n))
            self._journal: List[Tuple[int, int, int]] = []
            # (n_processed, journal_len, uf_token, boundary scalar)
            self._checkpoints: List[Tuple[int, int, int, float]] = [
                (0, 0, 0, _INF)
            ]
            self._replay(0)
        self._tree = ScalarTree(
            np.array(self._parent, dtype=np.int64), scalars.copy()
        )
        self._super = None
        self._super_stale = True
        self._super_dirty_above = -_INF

    def _rebuild_native(self, order: np.ndarray, scalars) -> bool:
        """Full journalled build through the compiled replay kernel.

        Produces the same rollback-capable state the Python replay
        maintains — parent/tree-root lists, the union-find with its
        undo history, the journal, and per-level checkpoints — from one
        C pass over the compacted CSR adjacency.  The union-find's
        internal forest may differ from the Python replay's when
        adjacency enumeration order differs, but the maintained
        invariant (``tree_root[find(x)]`` is x's current subtree root)
        and the resulting tree are identical, and the journal/history
        are self-consistent for later rewinds.  Returns False when the
        native tier is unavailable (caller falls back to Python).
        """
        n = self.delta.n_vertices
        graph = (
            self.delta.base
            if self.delta.n_pending_edits == 0
            else self.delta.compact()
        )
        pos = np.empty(n, dtype=np.int64)
        pos[order] = np.arange(n, dtype=np.int64)
        svals = np.asarray(scalars, dtype=np.float64)[order]
        # Checkpoint before every strict scalar decrease — exactly the
        # positions the Python replay snapshots at.
        ckpt_pos = (
            np.flatnonzero(svals[1:] < svals[:-1]) + 1
            if n > 1 else np.empty(0, dtype=np.int64)
        )
        state = _accel_native.replay_scan(
            n, graph.indptr, graph.indices, order, pos, ckpt_pos
        )
        if state is None:
            return False
        uf = RollbackUnionFind(n)
        uf.parent = state["uf_parent"].tolist()
        uf.size = state["uf_size"].tolist()
        uf.n_sets = n - state["n_unions"]
        uf._history = state["history"].tolist()
        self._uf = uf
        self._parent = state["parent"].tolist()
        self._tree_root = state["tree_root"].tolist()
        self._journal = [
            tuple(entry) for entry in state["journal"].tolist()
        ]
        # Journal length == union-find history length at every point
        # (each journal append coincides with exactly one union), so
        # one counter serves as both the journal offset and the
        # rollback token.
        self._checkpoints = [(0, 0, 0, _INF)] + [
            (int(i), int(j), int(j), float(b))
            for i, j, b in zip(
                ckpt_pos.tolist(),
                state["ckpt_jlen"].tolist(),
                svals[ckpt_pos - 1].tolist(),
            )
        ]
        return True

    def _replay(self, start: int) -> None:
        """Run Algorithm 1 over ``order[start:]``, journalled, with
        checkpoints at every strict scalar decrease."""
        order = self._order
        scalars = self.delta.scalars
        pos = self._pos
        uf = self._uf
        parent = self._parent
        tree_root = self._tree_root
        journal = self._journal
        neighbors = self.delta.neighbors_list
        prev = scalars[order[start - 1]] if start > 0 else _INF
        for i in range(start, len(order)):
            v = order[i]
            sv = scalars[v]
            if i > start and sv < prev:
                self._checkpoints.append(
                    (i, len(journal), uf.snapshot(), float(prev))
                )
            prev = sv
            attach_vertex(
                v, neighbors(v), pos, uf, parent, tree_root, journal
            )

    # ------------------------------------------------------------------
    # Edit application
    # ------------------------------------------------------------------
    def _validate_edits(self, edits: Sequence) -> None:
        """Reject a batch wholesale before any of it mutates the delta,
        so ``apply`` is atomic: either every edit lands or none do."""
        n = self.delta.n_vertices
        for edit in edits:
            if isinstance(edit, SetScalar):
                if not 0 <= edit.vertex < n:
                    raise IndexError(
                        f"vertex {edit.vertex} outside 0..{n - 1}"
                    )
                if not np.isfinite(edit.value):
                    raise ValueError("scalar values must be finite")
            elif isinstance(edit, (AddEdge, RemoveEdge)):
                for x in (edit.u, edit.v):
                    if not 0 <= x < n:
                        raise IndexError(f"vertex {x} outside 0..{n - 1}")
                if edit.u == edit.v:
                    raise ValueError("self-loops are not allowed")
            else:
                raise TypeError(f"not an edit: {edit!r}")

    def _apply_edits(self, edits: Sequence) -> float:
        """Apply ``edits`` to the delta; return the batch impact level θ
        (−inf when nothing effectively changed)."""
        scalars = self.delta.scalars
        before: Dict[int, float] = {}
        touched_edges: List[Tuple[int, int]] = []
        for edit in edits:
            if isinstance(edit, SetScalar):
                prev = self.delta.set_scalar(edit.vertex, edit.value)
                if edit.vertex not in before:
                    if prev == float(edit.value):
                        continue
                    before[edit.vertex] = prev
            elif isinstance(edit, AddEdge):
                if self.delta.add_edge(edit.u, edit.v):
                    touched_edges.append((edit.u, edit.v))
            elif isinstance(edit, RemoveEdge):
                if self.delta.remove_edge(edit.u, edit.v):
                    touched_edges.append((edit.u, edit.v))
            else:
                raise TypeError(f"not an edit: {edit!r}")
        theta = -_INF
        for v, old in before.items():
            theta = max(theta, old, float(scalars[v]))
        for u, v in touched_edges:
            min_before = min(
                before.get(u, float(scalars[u])),
                before.get(v, float(scalars[v])),
            )
            min_after = min(float(scalars[u]), float(scalars[v]))
            theta = max(theta, min_before, min_after)
        return theta

    def apply(self, edits: Batch) -> ScalarTree:
        """Apply one transaction and return the updated tree.

        Work is proportional to the vertices at scalar levels ≤ θ (the
        batch's impact level) plus O(n) array splicing — not to the
        whole edge set, unless the dirtiness threshold forces a rebuild.

        The batch is atomic: it is validated up front, and an invalid
        edit anywhere in it raises before anything is applied.
        """
        self._validate_edits(edits)
        self.stats["batches"] += 1
        theta = self._apply_edits(edits)
        if theta == -_INF:
            self.stats["last_suffix"] = 0
            return self._tree

        n = self.delta.n_vertices
        checkpoints = self._checkpoints
        idx = len(checkpoints) - 1
        while checkpoints[idx][3] <= theta:
            idx -= 1
        np_, jlen, token, _boundary = checkpoints[idx]
        suffix = n - np_

        self.stats["last_suffix"] = suffix
        if suffix > self.rebuild_threshold * n:
            self.stats["full_rebuilds"] += 1
            self._rebuild()
            return self._tree
        self.stats["incremental"] += 1
        self.stats["replayed_vertices"] += suffix

        # Rewind: undo journalled attachments and union-find merges.
        del checkpoints[idx + 1:]
        journal_tail = self._journal[jlen:]
        changed = [child for child, _, _ in journal_tail]
        for child, merged, prev_root in reversed(journal_tail):
            self._parent[child] = -1
            self._tree_root[merged] = prev_root
        del self._journal[jlen:]
        self._uf.rollback(token)

        # Re-sort the suffix under the new scalars; the prefix order is
        # untouched, and every suffix scalar is strictly below the
        # checkpoint boundary, so prefix + suffix is a global sort.
        scalars = self.delta.scalars
        arr = np.array(self._order[np_:], dtype=np.int64)
        arr = arr[np.lexsort((arr, -scalars[arr]))]
        new_suffix = arr.tolist()
        self._order[np_:] = new_suffix
        for i, v in enumerate(new_suffix):
            self._pos[v] = np_ + i

        self._replay(np_)

        changed.extend(child for child, _, _ in self._journal[jlen:])
        self._tree = self._tree.spliced(
            changed,
            [self._parent[c] for c in changed],
            scalars=scalars,
        )
        self._super_stale = True
        self._super_dirty_above = max(self._super_dirty_above, theta)
        return self._tree
