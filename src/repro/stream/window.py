"""Sliding-window replay: edits expire ``horizon`` time units after entry.

Temporal-network datasets (interaction logs, co-authorship years) are
usually analysed over a rolling window: an edge observed at time ``t``
counts until ``t + horizon`` and then lapses unless re-observed.
:class:`SlidingWindow` wraps a
:class:`~repro.stream.incremental.StreamingScalarTree` and maintains
exactly that view.

Expiry semantics — per *item* (an edge or a vertex's scalar): the first
windowed edit records the item's baseline (its pre-stream state); while
later edits keep touching the item its clock keeps resetting; when the
*last* edit touching the item expires, the item reverts to its baseline.
This keeps overlapping edits well-defined without replaying history.

Expiry is **deterministic for equal timestamps**: every windowed edit
gets a monotonically increasing sequence number, an item is kept alive
by its highest-sequence touch (not merely its latest timestamp), and a
batch of same-cutoff reverts is emitted in insertion order.  Window
contents are therefore a pure function of the pushed edit sequence —
the reproducibility :mod:`repro.evolve`'s peak tracker builds on.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from .editlog import AddEdge, Batch, Edit, RemoveEdge, SetScalar
from .incremental import StreamingScalarTree

__all__ = ["SlidingWindow"]

_VERTEX = "v"
_EDGE = "e"


class SlidingWindow:
    """Expire edits older than ``horizon`` from a streaming tree.

    Parameters
    ----------
    stream:
        The maintained tree; mutate it only through this window.
    horizon:
        Window length W: an edit pushed at time ``t`` lapses at
        ``t + horizon``.

    Timestamps must be pushed in non-decreasing order.
    """

    def __init__(self, stream: StreamingScalarTree, horizon: float) -> None:
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.stream = stream
        self.horizon = float(horizon)
        self._now = -float("inf")
        # (time, seq, key) entries in push order; key = (kind, id-tuple).
        # ``seq`` is a per-window edit counter: the insertion-order
        # tie-break that keeps expiry deterministic when many edits
        # share one timestamp (an item stays alive until its
        # highest-sequence touch expires, never just its latest time).
        self._entries: Deque[
            Tuple[float, int, Tuple[str, Tuple[int, ...]]]
        ] = deque()
        self._seq = 0
        self._last_touch: Dict[Tuple[str, Tuple[int, ...]], int] = {}
        # Baseline state captured at the item's first windowed edit:
        # scalar value for vertices, edge-presence bool for edges.
        self._baseline: Dict[Tuple[str, Tuple[int, ...]], object] = {}

    @property
    def now(self) -> float:
        """The latest time pushed or advanced to."""
        return self._now

    def _key(self, edit: Edit) -> Tuple[str, Tuple[int, ...]]:
        if isinstance(edit, SetScalar):
            return (_VERTEX, (edit.vertex,))
        u, v = (edit.u, edit.v) if edit.u < edit.v else (edit.v, edit.u)
        return (_EDGE, (u, v))

    def _expired_batch(self, when: float):
        """Pop lapsed entries; build the batch reverting orphaned items.

        Returns ``(reverts, reverted)`` where ``reverted`` maps each
        reverted key to its restored baseline — a same-push re-touch of
        that item must treat the restored value as its new baseline.
        Reverts are emitted in insertion order of each item's *final*
        touch, so equal-timestamp expiry is reproducible.
        """
        cutoff = when - self.horizon
        reverts: Batch = []
        reverted: Dict[Tuple[str, Tuple[int, ...]], object] = {}
        while self._entries and self._entries[0][0] <= cutoff:
            _t, seq, key = self._entries.popleft()
            if self._last_touch.get(key) != seq:
                continue  # a later edit keeps this item alive
            del self._last_touch[key]
            baseline = self._baseline.pop(key)
            reverted[key] = baseline
            kind, ids = key
            if kind == _VERTEX:
                reverts.append(SetScalar(ids[0], float(baseline)))
            else:
                u, v = ids
                if baseline and not self.stream.delta.has_edge(u, v):
                    reverts.append(AddEdge(u, v))
                elif not baseline and self.stream.delta.has_edge(u, v):
                    reverts.append(RemoveEdge(u, v))
        return reverts, reverted

    def push(self, when: float, edits: Batch):
        """Advance to ``when``, expire lapsed edits, apply ``edits``.

        Returns the updated scalar tree.
        """
        if when < self._now:
            raise ValueError("timestamps must be non-decreasing")
        self._now = when
        batch, reverted = self._expired_batch(when)
        for edit in edits:
            key = self._key(edit)
            if key not in self._baseline:
                kind, ids = key
                if key in reverted:
                    self._baseline[key] = reverted[key]
                elif kind == _VERTEX:
                    self._baseline[key] = float(
                        self.stream.scalars[ids[0]]
                    )
                else:
                    self._baseline[key] = self.stream.delta.has_edge(*ids)
            self._seq += 1
            self._last_touch[key] = self._seq
            self._entries.append((when, self._seq, key))
            batch.append(edit)
        return self.stream.apply(batch)

    def advance(self, when: float):
        """Advance the clock with no new edits (expiry only)."""
        return self.push(when, [])

    @property
    def n_live(self) -> int:
        """Number of items currently held away from their baseline."""
        return len(self._baseline)
