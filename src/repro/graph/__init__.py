"""Graph substrate: CSR graphs, builders, I/O, generators, datasets."""

from .builders import (
    empty_graph,
    from_edge_array,
    from_edges,
    from_networkx,
    to_networkx,
)
from .csr import CSRGraph
from .dual import line_graph

__all__ = [
    "CSRGraph",
    "from_edges",
    "from_edge_array",
    "from_networkx",
    "to_networkx",
    "empty_graph",
    "line_graph",
]
