"""Synthetic stand-ins for the paper's Table I datasets.

The paper evaluates on SNAP graphs (GrQc, Wikivote, Wikipedia, PPI,
Cit-Patent, Amazon, Astro, DBLP).  Offline and at pure-Python scale we
substitute seeded generators that preserve the *structural trait each
experiment relies on* — see DESIGN.md §3 for the full substitution table.
Stand-ins are scaled down but keep the relative size ordering (Wikipedia
and Cit-Patent are by far the largest).

Every dataset is deterministic: ``load(name)`` always returns the same
graph.  Results are cached per-process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, List, Optional

import numpy as np

from . import generators
from .builders import from_edge_array
from .csr import CSRGraph

__all__ = [
    "Dataset",
    "load",
    "names",
    "clear_cache",
    "dataset_table",
    "role_community_graph",
]


@dataclass
class Dataset:
    """A named benchmark graph plus whatever ground truth was planted.

    Attributes
    ----------
    name:
        Registry key (paper dataset it stands in for).
    graph:
        The generated :class:`CSRGraph`.
    context:
        Table I's one-line description of the original data.
    planted:
        Generator-side ground truth (e.g. clique member lists, community
        affiliation matrix, bridge vertex ids).  Algorithms never read
        this; tests and benches use it to validate recovered structure.
    """

    name: str
    graph: CSRGraph
    context: str
    planted: Dict[str, object] = field(default_factory=dict)

    @property
    def n_vertices(self) -> int:
        return self.graph.n_vertices

    @property
    def n_edges(self) -> int:
        return self.graph.n_edges


def role_community_graph(
    n_communities: int = 3,
    dense_size: int = 14,
    periphery_size: int = 10,
    whisker_length: int = 3,
    seed: int = 7,
):
    """Communities with explicit hub / dense / periphery / whisker roles.

    Stand-in for the Amazon co-purchase network of Fig 9.  Each community
    is built as: one *hub* adjacent to every dense member; a near-clique
    of *dense* members; *periphery* vertices each attached to 1–2 dense
    members; and a *whisker* chain hanging off one periphery vertex.
    Communities are joined by single weak edges.

    Returns ``(graph, roles, community)`` with per-vertex role labels
    (``0=hub, 1=dense, 2=periphery, 3=whisker``) and community ids.
    """
    rng = np.random.default_rng(seed)
    pairs = []
    roles: List[int] = []
    community: List[int] = []
    hubs = []
    v = 0
    for c in range(n_communities):
        hub = v
        hubs.append(hub)
        roles.append(0)
        community.append(c)
        v += 1
        dense = list(range(v, v + dense_size))
        v += dense_size
        roles.extend([1] * dense_size)
        community.extend([c] * dense_size)
        for d in dense:
            pairs.append((hub, d))
        for i, a in enumerate(dense):
            for b in dense[i + 1:]:
                if rng.random() < 0.75:
                    pairs.append((a, b))
        periphery = list(range(v, v + periphery_size))
        v += periphery_size
        roles.extend([2] * periphery_size)
        community.extend([c] * periphery_size)
        for p in periphery:
            k = 1 + int(rng.random() < 0.5)
            for d in rng.choice(dense, size=k, replace=False):
                pairs.append((int(d), p))
            if rng.random() < 0.6:
                pairs.append((hub, p))
        prev = periphery[0]
        for _ in range(whisker_length):
            pairs.append((prev, v))
            roles.append(3)
            community.append(c)
            prev = v
            v += 1
    for c in range(n_communities - 1):
        pairs.append((hubs[c], hubs[c + 1]))
    graph = from_edge_array(np.array(pairs, dtype=np.int64), n_vertices=v)
    return graph, np.array(roles), np.array(community)


def _make_grqc() -> Dataset:
    graph, cliques = generators.planted_cliques(
        background_n=1500,
        background_m=3200,
        clique_sizes=[26, 20, 16, 12, 9],
        attach_edges=2,
        seed=42,
    )
    return Dataset(
        name="grqc",
        graph=graph,
        context="Coauthorship in General Relativity and Quantum Cosmology",
        planted={"cliques": cliques},
    )


def _make_wikivote() -> Dataset:
    graph = generators.nested_core(
        n_layers=6, layer_size=110, p_core=0.85, decay=0.45, seed=7
    )
    return Dataset(
        name="wikivote",
        graph=graph,
        context="Who-votes-on-whom relationship between Wikipedia users",
    )


def _large_mixed(
    blocks,
    clique_sizes,
    join_edges: int,
    seed: int,
) -> CSRGraph:
    """Union of power-law blocks of differing density plus planted
    cliques, loosely joined.

    A single preferential-attachment graph has a near-uniform core
    number (KC(v) ≈ m everywhere), which collapses the scalar tree to
    one super node — real web/citation graphs instead mix regions of
    very different density.  Mixing blocks with different ``m`` and a
    ladder of clique sizes restores the paper's deep, varied k-core and
    k-truss hierarchies at large scale.
    """
    rng = np.random.default_rng(seed)
    pairs = []
    offset = 0
    anchors = []
    for i, (n, m, p_tri) in enumerate(blocks):
        block = generators.powerlaw_cluster(n, m, p_tri, seed=seed + i)
        pairs.extend(
            (int(u) + offset, int(v) + offset) for u, v in block.edge_array()
        )
        anchors.append((offset, n))
        offset += n
    for size in clique_sizes:
        members = range(offset, offset + size)
        for a in members:
            for b in members:
                if a < b:
                    pairs.append((a, b))
        lo, n = anchors[int(rng.integers(0, len(anchors)))]
        pairs.append((offset, lo + int(rng.integers(0, n))))
        offset += size
    for __ in range(join_edges):
        (lo_a, n_a), (lo_b, n_b) = rng.choice(anchors, size=2)
        pairs.append(
            (int(lo_a + rng.integers(0, n_a)), int(lo_b + rng.integers(0, n_b)))
        )
    return from_edge_array(np.array(pairs, dtype=np.int64), n_vertices=offset)


def _make_wikipedia() -> Dataset:
    graph = _large_mixed(
        blocks=[(25000, 3, 0.6), (8000, 6, 0.5), (4000, 10, 0.4)],
        clique_sizes=[40, 32, 26, 21, 17, 14, 11, 9, 7],
        join_edges=400,
        seed=3,
    )
    return Dataset(
        name="wikipedia",
        graph=graph,
        context="Links between Wikipedia pages",
    )


def _make_ppi() -> Dataset:
    graph, cliques = generators.planted_cliques(
        background_n=1100,
        background_m=2400,
        clique_sizes=[18, 13, 10],
        attach_edges=2,
        seed=11,
    )
    return Dataset(
        name="ppi",
        graph=graph,
        context="Protein Protein Interaction network",
        planted={"cliques": cliques},
    )


def _make_cit_patent() -> Dataset:
    graph = _large_mixed(
        blocks=[(35000, 2, 0.3), (10000, 5, 0.3), (5000, 8, 0.25)],
        clique_sizes=[30, 24, 19, 15, 12, 10, 8, 6],
        join_edges=500,
        seed=5,
    )
    return Dataset(
        name="cit_patent",
        graph=graph,
        context="Citations made by patents granted between 1975 and 1999",
    )


def _make_amazon() -> Dataset:
    graph, roles, community = role_community_graph(
        n_communities=4,
        dense_size=16,
        periphery_size=12,
        whisker_length=4,
        seed=13,
    )
    return Dataset(
        name="amazon",
        graph=graph,
        context="Co-Purchase relationship between products in Amazon",
        planted={"roles": roles, "community": community},
    )


def _make_astro() -> Dataset:
    # Three research communities connected *only* through a few bridge
    # vertices.  Every cross-community shortest path funnels through a
    # bridge, while each of the bridge's several attachment vertices
    # carries only a fraction of that flow — so bridges end up with low
    # degree but locally-maximal betweenness: the negative-LCI outliers
    # of Fig 10 / §III-C.
    n_comm = 3
    comm_size = 1000
    attachments_per_side = 5
    parts = [
        generators.powerlaw_cluster(comm_size, 5, 0.65, seed=17 + i)
        for i in range(n_comm)
    ]
    rng = np.random.default_rng(99)
    pairs = []
    for i, part in enumerate(parts):
        offset = i * comm_size
        pairs.extend(
            (int(u) + offset, int(v) + offset) for u, v in part.edge_array()
        )
    n = n_comm * comm_size
    bridges = []
    bridge_id = n
    for a in range(n_comm):
        for b in range(a + 1, n_comm):
            for __ in range(2):
                bridges.append(bridge_id)
                for comm in (a, b):
                    picks = rng.choice(
                        comm_size, size=attachments_per_side, replace=False
                    )
                    for p in picks:
                        pairs.append((comm * comm_size + int(p), bridge_id))
                bridge_id += 1
    graph = from_edge_array(
        np.array(pairs, dtype=np.int64), n_vertices=bridge_id
    )
    return Dataset(
        name="astro",
        graph=graph,
        context="Coauthorship between authors in Astro Physics",
        planted={"bridges": np.array(bridges)},
    )


def _make_dblp() -> Dataset:
    # Four communities in two chains of two; the chains touch only
    # through their *sparse* communities (1 and 3).  Heterogeneous
    # densities give the dense communities (0 and 2) different k-core
    # depths, and routing the inter-chain bridges through low-core
    # vertices keeps those dense cores disconnected at high α — the
    # real-DBLP trait the study's Task 2 and Fig 8 rely on.
    chain_a, aff_a = generators.overlapping_communities(
        n_communities=2, size=90, overlap=12,
        p_in=(0.62, 0.38), p_out=0.0, sub_blocks=2, seed=23,
    )
    chain_b, aff_b = generators.overlapping_communities(
        n_communities=2, size=90, overlap=12,
        p_in=(0.52, 0.33), p_out=0.0, sub_blocks=2, seed=29,
    )
    n_a = chain_a.n_vertices
    n_b = chain_b.n_vertices
    rng = np.random.default_rng(31)
    pairs = [tuple(e) for e in chain_a.edge_array()]
    pairs += [(int(u) + n_a, int(v) + n_a) for u, v in chain_b.edge_array()]
    # The chains are joined through low-degree *connector* authors
    # (cross-area collaborators) attached to the sparse communities'
    # interiors: they belong to no community strongly, so community
    # score fields dip at the junction (the valleys of Fig 1(b)) and
    # the dense cores stay disconnected at high α.
    sparse_a = np.arange(100, n_a)
    sparse_b = np.arange(100, n_b) + n_a
    connectors = []
    next_id = n_a + n_b
    for __ in range(6):
        connectors.append(next_id)
        pairs.append((int(rng.choice(sparse_a)), next_id))
        pairs.append((int(rng.choice(sparse_b)), next_id))
        next_id += 1
    graph = from_edge_array(
        np.array(pairs, dtype=np.int64), n_vertices=next_id
    )
    affiliation = np.zeros((next_id, 4), dtype=np.int64)
    affiliation[:n_a, :2] = aff_a
    affiliation[n_a: n_a + n_b, 2:] = aff_b
    return Dataset(
        name="dblp",
        graph=graph,
        context=(
            "Coauthorship between authors in (Database, Data Mining, "
            "Machine Learning, Information Retrieval)"
        ),
        planted={
            "affiliation": affiliation,
            "connectors": np.array(connectors),
        },
    )


_REGISTRY: Dict[str, Callable[[], Dataset]] = {
    "grqc": _make_grqc,
    "wikivote": _make_wikivote,
    "wikipedia": _make_wikipedia,
    "ppi": _make_ppi,
    "cit_patent": _make_cit_patent,
    "amazon": _make_amazon,
    "astro": _make_astro,
    "dblp": _make_dblp,
}

def names() -> List[str]:
    """All registered dataset names, in Table I order."""
    return list(_REGISTRY)


@lru_cache(maxsize=None)
def _load_cached(name: str) -> Dataset:
    return _REGISTRY[name]()


def load(name: str) -> Dataset:
    """Load the stand-in dataset called ``name``.

    Memoized per process (``functools.lru_cache`` keyed by name), so
    repeated loads from benchmarks, the CLI and stream replay share one
    generated instance; use :func:`clear_cache` to force regeneration.
    """
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(names())}"
        )
    return _load_cached(name)


def clear_cache() -> None:
    """Drop all memoized datasets (mainly for tests)."""
    _load_cached.cache_clear()


def dataset_table(include_large: bool = True) -> List[Dict[str, object]]:
    """Rows of Table I (name, nodes, edges, context) for the stand-ins."""
    rows = []
    for name in names():
        if not include_large and name in ("wikipedia", "cit_patent"):
            continue
        ds = load(name)
        rows.append(
            {
                "dataset": ds.name,
                "nodes": ds.n_vertices,
                "edges": ds.n_edges,
                "context": ds.context,
            }
        )
    return rows
