"""Seeded random-graph generators.

These supply the synthetic stand-ins for the paper's SNAP datasets (see
DESIGN.md §3) and the workloads for property-based tests and ablation
benches.  Every generator is deterministic given ``seed`` and returns a
:class:`~repro.graph.csr.CSRGraph` (plus planted metadata where noted).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from .builders import from_edge_array
from .csr import CSRGraph

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "ring_lattice",
    "watts_strogatz",
    "powerlaw_cluster",
    "planted_partition",
    "overlapping_communities",
    "connected_caveman",
    "hub_and_spoke",
    "planted_cliques",
    "nested_core",
    "CommunityEvent",
    "DynamicCommunityLog",
    "dynamic_planted_partition",
]


def _dedup_edges(pairs: np.ndarray, n: int) -> np.ndarray:
    """Drop self-loops and duplicates from an (m, 2) pair array."""
    pairs = pairs[pairs[:, 0] != pairs[:, 1]]
    lo = np.minimum(pairs[:, 0], pairs[:, 1])
    hi = np.maximum(pairs[:, 0], pairs[:, 1])
    canon = np.unique(lo * np.int64(n) + hi)
    return np.column_stack([canon // n, canon % n])


def erdos_renyi(n: int, m: int, seed: int = 0) -> CSRGraph:
    """G(n, m): ``m`` distinct uniform random edges on ``n`` vertices."""
    rng = np.random.default_rng(seed)
    max_m = n * (n - 1) // 2
    if m > max_m:
        raise ValueError(f"requested {m} edges but only {max_m} possible")
    edges = np.empty((0, 2), dtype=np.int64)
    while len(edges) < m:
        need = m - len(edges)
        batch = rng.integers(0, n, size=(int(need * 1.5) + 8, 2))
        edges = _dedup_edges(np.vstack([edges, batch]), n)
    # Deterministic trim: keep the lexicographically first m edges.
    return from_edge_array(edges[:m], n_vertices=n)


def barabasi_albert(n: int, m_per_node: int, seed: int = 0) -> CSRGraph:
    """Preferential attachment: each new vertex links to ``m_per_node`` targets."""
    if n <= m_per_node:
        raise ValueError("n must exceed m_per_node")
    rng = np.random.default_rng(seed)
    targets = list(range(m_per_node))
    repeated: List[int] = []
    pairs = []
    for v in range(m_per_node, n):
        for t in set(targets):
            pairs.append((v, t))
        repeated.extend(set(targets))
        repeated.extend([v] * m_per_node)
        targets = [repeated[i] for i in rng.integers(0, len(repeated), m_per_node)]
    return from_edge_array(np.array(pairs, dtype=np.int64), n_vertices=n)


def ring_lattice(n: int, k: int) -> CSRGraph:
    """Ring of ``n`` vertices each joined to its ``k`` nearest on each side."""
    pairs = [
        (v, (v + offset) % n) for v in range(n) for offset in range(1, k + 1)
    ]
    return from_edge_array(np.array(pairs, dtype=np.int64), n_vertices=n)


def watts_strogatz(n: int, k: int, p: float, seed: int = 0) -> CSRGraph:
    """Small-world graph: ring lattice with each edge rewired w.p. ``p``."""
    rng = np.random.default_rng(seed)
    pairs = []
    for v in range(n):
        for offset in range(1, k + 1):
            u = (v + offset) % n
            if rng.random() < p:
                u = int(rng.integers(0, n))
            pairs.append((v, u))
    return from_edge_array(np.array(pairs, dtype=np.int64), n_vertices=n)


def powerlaw_cluster(n: int, m_per_node: int, p_triangle: float, seed: int = 0) -> CSRGraph:
    """Holme–Kim power-law graph with tunable clustering.

    Like Barabási–Albert but after each preferential attachment, with
    probability ``p_triangle`` the next link closes a triangle with a
    random neighbour of the previous target.  Used for the Astro and
    Wikipedia/Cit-Patent stand-ins (heavy-tailed degrees, many triangles,
    hence non-trivial k-core and k-truss structure).
    """
    if n <= m_per_node:
        raise ValueError("n must exceed m_per_node")
    rng = np.random.default_rng(seed)
    repeated: List[int] = list(range(m_per_node))
    adjacency: List[set] = [set() for _ in range(n)]
    pairs = []

    def add_edge(u: int, v: int) -> bool:
        if u == v or v in adjacency[u]:
            return False
        adjacency[u].add(v)
        adjacency[v].add(u)
        pairs.append((u, v))
        repeated.append(u)
        repeated.append(v)
        return True

    for v in range(m_per_node, n):
        target = int(repeated[rng.integers(0, len(repeated))])
        links = 0
        guard = 0
        while links < m_per_node and guard < 20 * m_per_node:
            guard += 1
            if add_edge(v, target):
                links += 1
            if links >= m_per_node:
                break
            if adjacency[target] and rng.random() < p_triangle:
                candidates = list(adjacency[target])
                nxt = int(candidates[rng.integers(0, len(candidates))])
            else:
                nxt = int(repeated[rng.integers(0, len(repeated))])
            target = nxt
    return from_edge_array(np.array(pairs, dtype=np.int64), n_vertices=n)


def planted_partition(
    sizes: Sequence[int],
    p_in: float,
    p_out: float,
    seed: int = 0,
) -> Tuple[CSRGraph, np.ndarray]:
    """Blocks with dense internal and sparse external wiring.

    Returns ``(graph, membership)`` where ``membership[v]`` is the planted
    block id of vertex ``v``.
    """
    rng = np.random.default_rng(seed)
    n = int(sum(sizes))
    membership = np.zeros(n, dtype=np.int64)
    starts = np.cumsum([0] + list(sizes))
    for b, (lo, hi) in enumerate(zip(starts[:-1], starts[1:])):
        membership[lo:hi] = b
    pairs = []
    for u in range(n):
        for v in range(u + 1, n):
            p = p_in if membership[u] == membership[v] else p_out
            if rng.random() < p:
                pairs.append((u, v))
    arr = np.array(pairs, dtype=np.int64).reshape(-1, 2)
    return from_edge_array(arr, n_vertices=n), membership


def overlapping_communities(
    n_communities: int,
    size: int,
    overlap: int,
    p_in,
    p_out: float,
    sub_blocks: int = 1,
    seed: int = 0,
) -> Tuple[CSRGraph, np.ndarray]:
    """Overlapping community benchmark (DBLP stand-in, Figs 1(b)/8).

    Communities are laid out on a chain; consecutive communities share
    ``overlap`` vertices.  Each community may itself contain ``sub_blocks``
    denser sub-blocks (the paper's "sub-communities": geographically
    separated core-author groups that do not co-author across blocks).
    ``p_in`` may be a single density or one per community —
    heterogeneous densities give the communities distinct k-core levels
    (as in the real DBLP, where the densest groups are disconnected).

    Returns ``(graph, affiliation)`` with ``affiliation`` an
    ``(n, n_communities)`` 0/1 matrix of planted memberships.
    """
    rng = np.random.default_rng(seed)
    step = size - overlap
    n = step * (n_communities - 1) + size if n_communities else 0
    affiliation = np.zeros((n, n_communities), dtype=np.int64)
    if np.isscalar(p_in):
        p_in_values = [float(p_in)] * n_communities
    else:
        p_in_values = [float(p) for p in p_in]
        if len(p_in_values) != n_communities:
            raise ValueError("p_in must be scalar or one density per community")
    pairs = []
    for c in range(n_communities):
        lo = c * step
        members = np.arange(lo, lo + size)
        affiliation[members, c] = 1
        # Sub-block structure: denser wiring inside each sub-block.
        block_of = (np.arange(size) * sub_blocks) // size
        for i in range(size):
            for j in range(i + 1, size):
                same_block = block_of[i] == block_of[j]
                p = p_in_values[c] if same_block else p_in_values[c] * 0.25
                if rng.random() < p:
                    pairs.append((members[i], members[j]))
    # Background noise edges.
    n_noise = int(p_out * n)
    for _ in range(n_noise):
        u, v = rng.integers(0, n, size=2)
        pairs.append((int(u), int(v)))
    arr = np.array(pairs, dtype=np.int64).reshape(-1, 2)
    return from_edge_array(arr, n_vertices=n), affiliation


def connected_caveman(n_cliques: int, clique_size: int) -> CSRGraph:
    """``n_cliques`` cliques joined in a ring by single re-wired edges."""
    pairs = []
    for c in range(n_cliques):
        lo = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                pairs.append((lo + i, lo + j))
        nxt = ((c + 1) % n_cliques) * clique_size
        pairs.append((lo, nxt))
    n = n_cliques * clique_size
    return from_edge_array(np.array(pairs, dtype=np.int64), n_vertices=n)


def hub_and_spoke(n_spokes: int, spoke_length: int = 1) -> CSRGraph:
    """A hub vertex 0 with ``n_spokes`` chains of ``spoke_length`` hanging off."""
    pairs = []
    v = 1
    for _ in range(n_spokes):
        prev = 0
        for _ in range(spoke_length):
            pairs.append((prev, v))
            prev = v
            v += 1
    return from_edge_array(np.array(pairs, dtype=np.int64), n_vertices=v)


def planted_cliques(
    background_n: int,
    background_m: int,
    clique_sizes: Sequence[int],
    attach_edges: int = 2,
    seed: int = 0,
) -> Tuple[CSRGraph, List[np.ndarray]]:
    """Sparse background plus disjoint planted cliques (GrQc stand-in).

    Each clique is attached to the background by ``attach_edges`` random
    edges, so cliques are *disconnected from each other* at high α — the
    paper's "several disconnected dense K-cores" trait of GrQc.

    Returns ``(graph, clique_members)``.
    """
    rng = np.random.default_rng(seed)
    total = background_n + int(sum(clique_sizes))
    base = erdos_renyi(background_n, background_m, seed=seed)
    pairs = list(map(tuple, base.edge_array()))
    cliques = []
    v = background_n
    for size in clique_sizes:
        members = np.arange(v, v + size)
        cliques.append(members)
        for i in range(size):
            for j in range(i + 1, size):
                pairs.append((int(members[i]), int(members[j])))
        for _ in range(attach_edges):
            anchor = int(rng.integers(0, background_n))
            inside = int(members[rng.integers(0, size)])
            pairs.append((anchor, inside))
        v += size
    arr = np.array(pairs, dtype=np.int64)
    return from_edge_array(arr, n_vertices=total), cliques


def nested_core(
    n_layers: int,
    layer_size: int,
    p_core: float = 0.9,
    decay: float = 0.55,
    seed: int = 0,
) -> CSRGraph:
    """Onion graph: one dense core with density decaying outward.

    Layer 0 is near-clique; each outer layer is wired to itself and to all
    inner layers with geometrically decaying probability.  Its k-core
    field has a *single* dominant peak (the paper's Wikivote trait).
    """
    rng = np.random.default_rng(seed)
    n = n_layers * layer_size
    layer = np.arange(n) // layer_size
    pairs = []
    for u in range(n):
        for v in range(u + 1, n):
            depth = max(layer[u], layer[v])
            p = p_core * (decay ** depth)
            if rng.random() < p:
                pairs.append((u, v))
    arr = np.array(pairs, dtype=np.int64).reshape(-1, 2)
    return from_edge_array(arr, n_vertices=n)


# ---------------------------------------------------------------------------
# Dynamic planted partition (temporal ground truth for repro.evolve)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CommunityEvent:
    """A scheduled lifecycle event in a dynamic-community log.

    ``communities`` lists the planted ids involved: ``(cid,)`` for
    birth/death, ``(a, b, merged)`` for a merge, ``(a, left, right)``
    for a split.
    """

    kind: str  # "birth" | "death" | "merge" | "split"
    window: int
    communities: Tuple[int, ...]


@dataclass
class DynamicCommunityLog:
    """Output of :func:`dynamic_planted_partition`.

    ``rows`` is a timestamp-sorted ``(k, 4)`` float64 array of
    ``u v ts w`` records (one tumbling window per unit of time: window
    ``w`` owns timestamps in ``(w, w + 1)``).  ``memberships[w]`` maps
    each vertex to its planted community id at window ``w`` (``-1`` for
    background), and ``events`` is the scheduled ground truth the
    :mod:`repro.evolve` tracker is scored against.
    """

    rows: np.ndarray
    memberships: List[np.ndarray]
    events: List[CommunityEvent]
    n_vertices: int
    n_windows: int
    #: Timeline origin aligning frame k with window k exactly: window
    #: w's timestamps all lie strictly inside (w, w + 1), so a
    #: horizon-1 tumbling timeline started at 0 puts window w's edges
    #: in frame w and nothing else.
    origin: float = 0.0

    def write(self, path) -> None:
        """Write the log as a ``src dst ts w`` temporal edge list."""
        from .io import write_temporal_edge_list

        write_temporal_edge_list(
            self.rows,
            path,
            header=(
                "dynamic planted partition: "
                f"{self.n_vertices} vertices, {self.n_windows} windows"
            ),
        )

    def members_at(self, window: int, cid: int) -> np.ndarray:
        """Vertex ids belonging to community ``cid`` at ``window``."""
        return np.flatnonzero(self.memberships[window] == cid)


def _sample_community_edges(
    members: np.ndarray, p_in: float, rng: np.random.Generator
) -> Set[Tuple[int, int]]:
    """Bernoulli(p_in) edges over all member pairs, canonically ordered."""
    k = len(members)
    iu, ju = np.triu_indices(k, 1)
    keep = rng.random(len(iu)) < p_in
    edges: Set[Tuple[int, int]] = set()
    for i, j in zip(iu[keep], ju[keep]):
        a, b = int(members[i]), int(members[j])
        edges.add((a, b) if a < b else (b, a))
    return edges


def _churn_community_edges(
    edges: Set[Tuple[int, int]],
    members: np.ndarray,
    churn: float,
    rng: np.random.Generator,
) -> None:
    """Swap out a ``churn`` fraction of ``edges`` for fresh member pairs."""
    n_swap = int(round(churn * len(edges)))
    if n_swap <= 0 or len(members) < 2:
        return
    ordered = sorted(edges)
    drop = rng.choice(len(ordered), size=min(n_swap, len(ordered)), replace=False)
    for i in drop:
        edges.discard(ordered[int(i)])
    added, guard = 0, 0
    while added < n_swap and guard < 50 * n_swap + 100:
        guard += 1
        i, j = rng.integers(0, len(members), size=2)
        if i == j:
            continue
        a, b = int(members[i]), int(members[j])
        pair = (a, b) if a < b else (b, a)
        if pair in edges:
            continue
        edges.add(pair)
        added += 1


def dynamic_planted_partition(
    n_vertices: int = 96,
    n_windows: int = 8,
    n_communities: int = 3,
    community_size: int = 14,
    p_in: float = 0.6,
    churn: float = 0.2,
    noise_per_window: int = 6,
    schedule: Optional[Sequence[Tuple[str, int, Tuple[int, ...]]]] = None,
    seed: int = 0,
) -> DynamicCommunityLog:
    """Timestamped planted partition with scheduled community events.

    ``n_communities`` blocks of ``community_size`` vertices each emit
    Bernoulli(``p_in``) internal edges every window, with a ``churn``
    fraction of each block's edge set resampled between windows (the
    knob the incremental-vs-rebuild bench turns).  ``noise_per_window``
    background edges are added per window, each touching at least one
    background-pool vertex so noise never bridges two communities
    directly.  Timestamps land strictly inside ``(w, w + 1)`` — never
    on window boundaries.

    ``schedule`` entries are ``(kind, window, targets)``:
    ``("merge", w, (a, b))``, ``("split", w, (a,))``,
    ``("death", w, (a,))``, ``("birth", w, ())``.  Events apply
    *before* window ``w``'s edges are generated, so ``w`` is the first
    window reflecting them.  ``None`` picks a canonical
    merge-then-split schedule.  Initial communities are recorded as
    window-0 births.  Everything is deterministic given ``seed``.
    """
    if n_communities * community_size > n_vertices:
        raise ValueError("communities do not fit in n_vertices")
    rng = np.random.default_rng(seed)
    if schedule is None:
        schedule = []
        if n_windows >= 6 and n_communities >= 3:
            w_merge = max(2, n_windows // 3)
            w_split = max(w_merge + 2, (2 * n_windows) // 3)
            schedule = [
                ("merge", w_merge, (0, 1)),
                ("split", w_split, (2,)),
            ]
    by_window: Dict[int, List[Tuple[str, Tuple[int, ...]]]] = {}
    for kind, window, targets in schedule:
        if not 0 <= window < n_windows:
            raise ValueError(f"event window {window} out of range")
        by_window.setdefault(window, []).append((kind, tuple(targets)))

    live: Dict[int, np.ndarray] = {}
    edge_sets: Dict[int, Set[Tuple[int, int]]] = {}
    events: List[CommunityEvent] = []
    next_cid = 0
    free = list(range(n_communities * community_size, n_vertices))

    def _spawn(members: np.ndarray) -> int:
        nonlocal next_cid
        cid = next_cid
        next_cid += 1
        live[cid] = np.asarray(members, dtype=np.int64)
        edge_sets[cid] = _sample_community_edges(live[cid], p_in, rng)
        return cid

    for c in range(n_communities):
        lo = c * community_size
        cid = _spawn(np.arange(lo, lo + community_size))
        events.append(CommunityEvent("birth", 0, (cid,)))

    rows: List[Tuple[int, int, float, float]] = []
    memberships: List[np.ndarray] = []

    for w in range(n_windows):
        for kind, targets in by_window.get(w, ()):
            if kind == "merge":
                a, b = targets
                merged_members = np.concatenate([live.pop(a), live.pop(b)])
                edge_sets.pop(a)
                edge_sets.pop(b)
                cid = _spawn(np.sort(merged_members))
                events.append(CommunityEvent("merge", w, (a, b, cid)))
            elif kind == "split":
                (a,) = targets
                members = live.pop(a)
                edge_sets.pop(a)
                half = len(members) // 2
                left = _spawn(members[:half])
                right = _spawn(members[half:])
                events.append(CommunityEvent("split", w, (a, left, right)))
            elif kind == "death":
                (a,) = targets
                live.pop(a)
                edge_sets.pop(a)
                events.append(CommunityEvent("death", w, (a,)))
            elif kind == "birth":
                if len(free) < community_size:
                    raise ValueError("background pool exhausted for birth")
                members = np.array(free[:community_size], dtype=np.int64)
                del free[:community_size]
                cid = _spawn(members)
                events.append(CommunityEvent("birth", w, (cid,)))
            else:
                raise ValueError(f"unknown event kind {kind!r}")

        membership = np.full(n_vertices, -1, dtype=np.int64)
        for cid in sorted(live):
            membership[live[cid]] = cid
            if w > 0:
                _churn_community_edges(edge_sets[cid], live[cid], churn, rng)
            for u, v in sorted(edge_sets[cid]):
                ts = w + 0.01 + 0.98 * rng.random()
                rows.append((u, v, ts, 1.0))
        memberships.append(membership)

        # Noise always touches >= 1 background vertex, and every
        # background vertex carries at most 2 noise edges per window:
        # its degree stays strictly below any alpha >= 3, so noise can
        # never pull background into the alpha-cut and bridge two
        # planted communities into one spurious peak.
        pool = np.flatnonzero(membership < 0)
        pool_set = set(int(x) for x in pool)
        used: Dict[int, int] = {}
        if len(pool):
            for _ in range(noise_per_window):
                u = int(pool[rng.integers(0, len(pool))])
                v = int(rng.integers(0, n_vertices))
                if u == v or used.get(u, 0) >= 2:
                    continue
                if v in pool_set and used.get(v, 0) >= 2:
                    continue
                used[u] = used.get(u, 0) + 1
                if v in pool_set:
                    used[v] = used.get(v, 0) + 1
                ts = w + 0.01 + 0.98 * rng.random()
                rows.append((u, v, ts, 1.0))

    arr = np.array(rows, dtype=np.float64).reshape(-1, 4)
    arr = arr[np.argsort(arr[:, 2], kind="stable")]
    return DynamicCommunityLog(
        rows=arr,
        memberships=memberships,
        events=events,
        n_vertices=n_vertices,
        n_windows=n_windows,
    )
