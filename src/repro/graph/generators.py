"""Seeded random-graph generators.

These supply the synthetic stand-ins for the paper's SNAP datasets (see
DESIGN.md §3) and the workloads for property-based tests and ablation
benches.  Every generator is deterministic given ``seed`` and returns a
:class:`~repro.graph.csr.CSRGraph` (plus planted metadata where noted).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .builders import from_edge_array
from .csr import CSRGraph

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "ring_lattice",
    "watts_strogatz",
    "powerlaw_cluster",
    "planted_partition",
    "overlapping_communities",
    "connected_caveman",
    "hub_and_spoke",
    "planted_cliques",
    "nested_core",
]


def _dedup_edges(pairs: np.ndarray, n: int) -> np.ndarray:
    """Drop self-loops and duplicates from an (m, 2) pair array."""
    pairs = pairs[pairs[:, 0] != pairs[:, 1]]
    lo = np.minimum(pairs[:, 0], pairs[:, 1])
    hi = np.maximum(pairs[:, 0], pairs[:, 1])
    canon = np.unique(lo * np.int64(n) + hi)
    return np.column_stack([canon // n, canon % n])


def erdos_renyi(n: int, m: int, seed: int = 0) -> CSRGraph:
    """G(n, m): ``m`` distinct uniform random edges on ``n`` vertices."""
    rng = np.random.default_rng(seed)
    max_m = n * (n - 1) // 2
    if m > max_m:
        raise ValueError(f"requested {m} edges but only {max_m} possible")
    edges = np.empty((0, 2), dtype=np.int64)
    while len(edges) < m:
        need = m - len(edges)
        batch = rng.integers(0, n, size=(int(need * 1.5) + 8, 2))
        edges = _dedup_edges(np.vstack([edges, batch]), n)
    # Deterministic trim: keep the lexicographically first m edges.
    return from_edge_array(edges[:m], n_vertices=n)


def barabasi_albert(n: int, m_per_node: int, seed: int = 0) -> CSRGraph:
    """Preferential attachment: each new vertex links to ``m_per_node`` targets."""
    if n <= m_per_node:
        raise ValueError("n must exceed m_per_node")
    rng = np.random.default_rng(seed)
    targets = list(range(m_per_node))
    repeated: List[int] = []
    pairs = []
    for v in range(m_per_node, n):
        for t in set(targets):
            pairs.append((v, t))
        repeated.extend(set(targets))
        repeated.extend([v] * m_per_node)
        targets = [repeated[i] for i in rng.integers(0, len(repeated), m_per_node)]
    return from_edge_array(np.array(pairs, dtype=np.int64), n_vertices=n)


def ring_lattice(n: int, k: int) -> CSRGraph:
    """Ring of ``n`` vertices each joined to its ``k`` nearest on each side."""
    pairs = [
        (v, (v + offset) % n) for v in range(n) for offset in range(1, k + 1)
    ]
    return from_edge_array(np.array(pairs, dtype=np.int64), n_vertices=n)


def watts_strogatz(n: int, k: int, p: float, seed: int = 0) -> CSRGraph:
    """Small-world graph: ring lattice with each edge rewired w.p. ``p``."""
    rng = np.random.default_rng(seed)
    pairs = []
    for v in range(n):
        for offset in range(1, k + 1):
            u = (v + offset) % n
            if rng.random() < p:
                u = int(rng.integers(0, n))
            pairs.append((v, u))
    return from_edge_array(np.array(pairs, dtype=np.int64), n_vertices=n)


def powerlaw_cluster(n: int, m_per_node: int, p_triangle: float, seed: int = 0) -> CSRGraph:
    """Holme–Kim power-law graph with tunable clustering.

    Like Barabási–Albert but after each preferential attachment, with
    probability ``p_triangle`` the next link closes a triangle with a
    random neighbour of the previous target.  Used for the Astro and
    Wikipedia/Cit-Patent stand-ins (heavy-tailed degrees, many triangles,
    hence non-trivial k-core and k-truss structure).
    """
    if n <= m_per_node:
        raise ValueError("n must exceed m_per_node")
    rng = np.random.default_rng(seed)
    repeated: List[int] = list(range(m_per_node))
    adjacency: List[set] = [set() for _ in range(n)]
    pairs = []

    def add_edge(u: int, v: int) -> bool:
        if u == v or v in adjacency[u]:
            return False
        adjacency[u].add(v)
        adjacency[v].add(u)
        pairs.append((u, v))
        repeated.append(u)
        repeated.append(v)
        return True

    for v in range(m_per_node, n):
        target = int(repeated[rng.integers(0, len(repeated))])
        links = 0
        guard = 0
        while links < m_per_node and guard < 20 * m_per_node:
            guard += 1
            if add_edge(v, target):
                links += 1
            if links >= m_per_node:
                break
            if adjacency[target] and rng.random() < p_triangle:
                candidates = list(adjacency[target])
                nxt = int(candidates[rng.integers(0, len(candidates))])
            else:
                nxt = int(repeated[rng.integers(0, len(repeated))])
            target = nxt
    return from_edge_array(np.array(pairs, dtype=np.int64), n_vertices=n)


def planted_partition(
    sizes: Sequence[int],
    p_in: float,
    p_out: float,
    seed: int = 0,
) -> Tuple[CSRGraph, np.ndarray]:
    """Blocks with dense internal and sparse external wiring.

    Returns ``(graph, membership)`` where ``membership[v]`` is the planted
    block id of vertex ``v``.
    """
    rng = np.random.default_rng(seed)
    n = int(sum(sizes))
    membership = np.zeros(n, dtype=np.int64)
    starts = np.cumsum([0] + list(sizes))
    for b, (lo, hi) in enumerate(zip(starts[:-1], starts[1:])):
        membership[lo:hi] = b
    pairs = []
    for u in range(n):
        for v in range(u + 1, n):
            p = p_in if membership[u] == membership[v] else p_out
            if rng.random() < p:
                pairs.append((u, v))
    arr = np.array(pairs, dtype=np.int64).reshape(-1, 2)
    return from_edge_array(arr, n_vertices=n), membership


def overlapping_communities(
    n_communities: int,
    size: int,
    overlap: int,
    p_in,
    p_out: float,
    sub_blocks: int = 1,
    seed: int = 0,
) -> Tuple[CSRGraph, np.ndarray]:
    """Overlapping community benchmark (DBLP stand-in, Figs 1(b)/8).

    Communities are laid out on a chain; consecutive communities share
    ``overlap`` vertices.  Each community may itself contain ``sub_blocks``
    denser sub-blocks (the paper's "sub-communities": geographically
    separated core-author groups that do not co-author across blocks).
    ``p_in`` may be a single density or one per community —
    heterogeneous densities give the communities distinct k-core levels
    (as in the real DBLP, where the densest groups are disconnected).

    Returns ``(graph, affiliation)`` with ``affiliation`` an
    ``(n, n_communities)`` 0/1 matrix of planted memberships.
    """
    rng = np.random.default_rng(seed)
    step = size - overlap
    n = step * (n_communities - 1) + size if n_communities else 0
    affiliation = np.zeros((n, n_communities), dtype=np.int64)
    if np.isscalar(p_in):
        p_in_values = [float(p_in)] * n_communities
    else:
        p_in_values = [float(p) for p in p_in]
        if len(p_in_values) != n_communities:
            raise ValueError("p_in must be scalar or one density per community")
    pairs = []
    for c in range(n_communities):
        lo = c * step
        members = np.arange(lo, lo + size)
        affiliation[members, c] = 1
        # Sub-block structure: denser wiring inside each sub-block.
        block_of = (np.arange(size) * sub_blocks) // size
        for i in range(size):
            for j in range(i + 1, size):
                same_block = block_of[i] == block_of[j]
                p = p_in_values[c] if same_block else p_in_values[c] * 0.25
                if rng.random() < p:
                    pairs.append((members[i], members[j]))
    # Background noise edges.
    n_noise = int(p_out * n)
    for _ in range(n_noise):
        u, v = rng.integers(0, n, size=2)
        pairs.append((int(u), int(v)))
    arr = np.array(pairs, dtype=np.int64).reshape(-1, 2)
    return from_edge_array(arr, n_vertices=n), affiliation


def connected_caveman(n_cliques: int, clique_size: int) -> CSRGraph:
    """``n_cliques`` cliques joined in a ring by single re-wired edges."""
    pairs = []
    for c in range(n_cliques):
        lo = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                pairs.append((lo + i, lo + j))
        nxt = ((c + 1) % n_cliques) * clique_size
        pairs.append((lo, nxt))
    n = n_cliques * clique_size
    return from_edge_array(np.array(pairs, dtype=np.int64), n_vertices=n)


def hub_and_spoke(n_spokes: int, spoke_length: int = 1) -> CSRGraph:
    """A hub vertex 0 with ``n_spokes`` chains of ``spoke_length`` hanging off."""
    pairs = []
    v = 1
    for _ in range(n_spokes):
        prev = 0
        for _ in range(spoke_length):
            pairs.append((prev, v))
            prev = v
            v += 1
    return from_edge_array(np.array(pairs, dtype=np.int64), n_vertices=v)


def planted_cliques(
    background_n: int,
    background_m: int,
    clique_sizes: Sequence[int],
    attach_edges: int = 2,
    seed: int = 0,
) -> Tuple[CSRGraph, List[np.ndarray]]:
    """Sparse background plus disjoint planted cliques (GrQc stand-in).

    Each clique is attached to the background by ``attach_edges`` random
    edges, so cliques are *disconnected from each other* at high α — the
    paper's "several disconnected dense K-cores" trait of GrQc.

    Returns ``(graph, clique_members)``.
    """
    rng = np.random.default_rng(seed)
    total = background_n + int(sum(clique_sizes))
    base = erdos_renyi(background_n, background_m, seed=seed)
    pairs = list(map(tuple, base.edge_array()))
    cliques = []
    v = background_n
    for size in clique_sizes:
        members = np.arange(v, v + size)
        cliques.append(members)
        for i in range(size):
            for j in range(i + 1, size):
                pairs.append((int(members[i]), int(members[j])))
        for _ in range(attach_edges):
            anchor = int(rng.integers(0, background_n))
            inside = int(members[rng.integers(0, size)])
            pairs.append((anchor, inside))
        v += size
    arr = np.array(pairs, dtype=np.int64)
    return from_edge_array(arr, n_vertices=total), cliques


def nested_core(
    n_layers: int,
    layer_size: int,
    p_core: float = 0.9,
    decay: float = 0.55,
    seed: int = 0,
) -> CSRGraph:
    """Onion graph: one dense core with density decaying outward.

    Layer 0 is near-clique; each outer layer is wired to itself and to all
    inner layers with geometrically decaying probability.  Its k-core
    field has a *single* dominant peak (the paper's Wikivote trait).
    """
    rng = np.random.default_rng(seed)
    n = n_layers * layer_size
    layer = np.arange(n) // layer_size
    pairs = []
    for u in range(n):
        for v in range(u + 1, n):
            depth = max(layer[u], layer[v])
            p = p_core * (decay ** depth)
            if rng.random() < p:
                pairs.append((u, v))
    arr = np.array(pairs, dtype=np.int64).reshape(-1, 2)
    return from_edge_array(arr, n_vertices=n)
