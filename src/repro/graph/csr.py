"""Compressed-sparse-row graph: the substrate all algorithms run on.

The paper's algorithms (scalar-tree construction, k-core/k-truss peeling,
centralities) are neighbourhood-scan heavy.  A CSR adjacency gives O(1)
numpy-sliced neighbour access and keeps graphs with hundreds of thousands
of edges tractable in pure Python.

A :class:`CSRGraph` is simple, undirected (each edge stored in both
directions), and immutable after construction.  Vertices are the integers
``0..n-1``; an optional ``labels`` array maps them back to external ids.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

__all__ = ["CSRGraph"]


class CSRGraph:
    """An immutable undirected graph in compressed-sparse-row form.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; neighbours of vertex ``v`` are
        ``indices[indptr[v]:indptr[v + 1]]``.
    indices:
        ``int64`` array of length ``2 * m`` (each undirected edge appears
        twice, once per endpoint).
    labels:
        Optional array of external vertex labels, length ``n``.

    Use :func:`repro.graph.builders.from_edges` to construct one from an
    edge list; the raw constructor assumes the CSR invariants already hold.
    """

    __slots__ = ("indptr", "indices", "labels", "_edge_index")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        labels: Optional[np.ndarray] = None,
    ) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        if self.indptr.ndim != 1 or self.indptr[0] != 0:
            raise ValueError("indptr must be 1-D and start at 0")
        if self.indptr[-1] != len(self.indices):
            raise ValueError("indptr[-1] must equal len(indices)")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= self.n_vertices
        ):
            raise ValueError("indices reference vertices outside 0..n-1")
        self.labels = None if labels is None else np.asarray(labels)
        if self.labels is not None and len(self.labels) != self.n_vertices:
            raise ValueError("labels must have one entry per vertex")
        self._edge_index: Optional[dict] = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        """Number of vertices."""
        return len(self.indptr) - 1

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return len(self.indices) // 2

    def degree(self, v: Optional[int] = None):
        """Degree of vertex ``v``, or the full degree vector if ``v is None``."""
        if v is None:
            return np.diff(self.indptr)
        return int(self.indptr[v + 1] - self.indptr[v])

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbours of ``v`` as a (read-only view of an) int64 array."""
        return self.indices[self.indptr[v]: self.indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``(u, v)`` exists.

        Neighbour lists are sorted at construction, so this is a binary
        search: O(log deg(u)).
        """
        nbrs = self.neighbors(u)
        pos = np.searchsorted(nbrs, v)
        return bool(pos < len(nbrs) and nbrs[pos] == v)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate each undirected edge once, as ``(u, v)`` with ``u < v``."""
        for u in range(self.n_vertices):
            for v in self.neighbors(u):
                if u < v:
                    yield u, int(v)

    def edge_array(self) -> np.ndarray:
        """All undirected edges once, as an ``(m, 2)`` array with ``u < v``."""
        n = self.n_vertices
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(self.indptr))
        mask = src < self.indices
        return np.column_stack([src[mask], self.indices[mask]])

    def label_of(self, v: int):
        """External label of internal vertex ``v`` (``v`` itself if unlabelled)."""
        if self.labels is None:
            return v
        return self.labels[v]

    # ------------------------------------------------------------------
    # Edge ids
    # ------------------------------------------------------------------
    def edge_id(self, u: int, v: int) -> int:
        """Dense id in ``0..m-1`` of the undirected edge ``(u, v)``.

        Ids follow the order of :meth:`edge_array`.  Raises ``KeyError``
        for non-edges.  The id map is built lazily on first use.
        """
        if self._edge_index is None:
            pairs = self.edge_array()
            self._edge_index = {
                (int(a), int(b)): i for i, (a, b) in enumerate(pairs)
            }
        key = (u, v) if u < v else (v, u)
        return self._edge_index[key]

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, vertices: Sequence[int]) -> "CSRGraph":
        """Induced subgraph on ``vertices`` (relabelled to ``0..k-1``).

        The returned graph's ``labels`` hold the *original* internal ids
        (composed with existing labels if any), so results map back.
        """
        verts = np.asarray(sorted(set(int(v) for v in vertices)), dtype=np.int64)
        remap = -np.ones(self.n_vertices, dtype=np.int64)
        remap[verts] = np.arange(len(verts))
        rows = []
        for v in verts:
            nbrs = self.neighbors(v)
            kept = remap[nbrs]
            rows.append(np.sort(kept[kept >= 0]))
        indptr = np.zeros(len(verts) + 1, dtype=np.int64)
        indptr[1:] = np.cumsum([len(r) for r in rows])
        indices = (
            np.concatenate(rows) if rows else np.empty(0, dtype=np.int64)
        )
        if self.labels is not None:
            labels = self.labels[verts]
        else:
            labels = verts
        return CSRGraph(indptr, indices, labels=labels)

    def connected_components(self) -> np.ndarray:
        """Component id per vertex (ids are 0-based, order of discovery)."""
        n = self.n_vertices
        comp = -np.ones(n, dtype=np.int64)
        next_id = 0
        for start in range(n):
            if comp[start] >= 0:
                continue
            comp[start] = next_id
            stack = [start]
            while stack:
                u = stack.pop()
                for w in self.neighbors(u):
                    if comp[w] < 0:
                        comp[w] = next_id
                        stack.append(int(w))
            next_id += 1
        return comp

    def n_components(self) -> int:
        """Number of connected components."""
        if self.n_vertices == 0:
            return 0
        return int(self.connected_components().max()) + 1

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.n_vertices

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.n_vertices))

    def __repr__(self) -> str:
        return (
            f"CSRGraph(n_vertices={self.n_vertices}, n_edges={self.n_edges})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return bool(
            np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def __hash__(self):  # pragma: no cover - graphs are not hashable
        raise TypeError("CSRGraph is not hashable")
