"""Edge-dual (line) graph construction.

The *naive* edge-scalar-tree method of the paper converts the edge scalar
graph ``G`` into its dual ``Gd`` — a vertex per edge of ``G``, adjacency
when two edges share an endpoint — and then runs the vertex algorithm.
The dual has ``sum(deg(v)^2)`` edges, which is the bottleneck the paper's
Algorithm 3 removes; we keep the dual construction as the baseline for
Table II's ``te`` column and for cross-validation tests.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .builders import from_edge_array
from .csr import CSRGraph

__all__ = ["line_graph"]


def line_graph(graph: CSRGraph) -> Tuple[CSRGraph, np.ndarray]:
    """Build the line graph (edge dual) of ``graph``.

    Returns ``(dual, edge_pairs)`` where dual vertex ``i`` corresponds to
    the undirected edge ``edge_pairs[i] = (u, v)`` of the input (the same
    dense edge-id order as :meth:`CSRGraph.edge_array`).
    """
    edge_pairs = graph.edge_array()
    m = len(edge_pairs)
    # Incident edge ids per vertex.
    incident = [[] for _ in range(graph.n_vertices)]
    for eid, (u, v) in enumerate(edge_pairs):
        incident[int(u)].append(eid)
        incident[int(v)].append(eid)
    dual_pairs = []
    for eids in incident:
        k = len(eids)
        for a in range(k):
            for b in range(a + 1, k):
                dual_pairs.append((eids[a], eids[b]))
    arr = np.array(dual_pairs, dtype=np.int64).reshape(-1, 2)
    return from_edge_array(arr, n_vertices=m), edge_pairs
