"""Edge-list and scalar-field file I/O.

The formats mirror the SNAP collection the paper draws its datasets from:
whitespace-separated integer pairs, ``#`` comments.  Scalar fields are
stored one ``vertex value`` (or ``u v value`` for edge fields) per line.

*Temporal* edge lists — ``src dst ts [w]`` per line, the shape of the
Enron/Digg/Weibo interaction logs — stream through the same chunked
path: :func:`iter_temporal_edge_chunks` yields bounded ``(k, 4)``
blocks with typed, line-numbered validation errors
(:class:`TemporalEdgeError`), and :func:`iter_temporal_edges_sorted`
adds an external merge sort by timestamp (sorted runs spilled to a
scratch directory), so even an unsorted multi-GB log is consumed in
chunk-sized memory.
"""

from __future__ import annotations

import heapq
import json
import tempfile
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

import numpy as np

from .builders import from_edge_array
from .csr import CSRGraph

__all__ = [
    "iter_edge_chunks",
    "read_edge_list",
    "write_edge_list",
    "read_vertex_scalars",
    "write_vertex_scalars",
    "read_edge_scalars",
    "write_edge_scalars",
    "TemporalEdgeError",
    "iter_temporal_edge_chunks",
    "iter_temporal_edges_sorted",
    "write_temporal_edge_list",
]

PathLike = Union[str, Path]

#: Default edges per chunk for :func:`iter_edge_chunks` — 64k pairs is
#: 1 MiB of int64 payload, small enough to bound streaming consumers
#: and large enough to amortize the per-chunk numpy conversion.
DEFAULT_CHUNK_EDGES = 65536


def iter_edge_chunks(
    path: PathLike, chunk_edges: int = DEFAULT_CHUNK_EDGES
) -> Iterator[np.ndarray]:
    """Stream a SNAP-style edge list as ``(k, 2)`` int64 chunks.

    Yields at most ``chunk_edges`` edges per array, so peak memory is
    one chunk regardless of the file size — the primitive both
    :func:`read_edge_list` and the out-of-core scatter
    (:mod:`repro.dist.oocore`) are built on.  Comments (``#``) and
    blank lines are skipped; extra columns beyond ``u v`` are ignored.
    """
    if chunk_edges < 1:
        raise ValueError("chunk_edges must be >= 1")
    buf: list = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            u, v = line.split()[:2]
            buf.append((int(u), int(v)))
            if len(buf) >= chunk_edges:
                yield np.array(buf, dtype=np.int64)
                buf = []
    if buf:
        yield np.array(buf, dtype=np.int64)


def read_edge_list(path: PathLike, n_vertices: int = None) -> CSRGraph:
    """Read a SNAP-style edge list (``u v`` per line, ``#`` comments).

    Parsing goes through :func:`iter_edge_chunks`, so the transient
    Python-tuple overhead is bounded to one chunk; only the packed
    int64 edge array reaches full file size.
    """
    chunks = list(iter_edge_chunks(path))
    if chunks:
        arr = np.concatenate(chunks)
    else:
        arr = np.empty((0, 2), dtype=np.int64)
    return from_edge_array(arr, n_vertices=n_vertices)


def write_edge_list(graph: CSRGraph, path: PathLike, header: str = "") -> None:
    """Write each undirected edge once (``u v`` per line)."""
    with open(path, "w") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")


def read_vertex_scalars(path: PathLike, n_vertices: int) -> np.ndarray:
    """Read a ``vertex value`` file into a dense float vector."""
    values = np.zeros(n_vertices, dtype=np.float64)
    seen = np.zeros(n_vertices, dtype=bool)
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            v, value = line.split()[:2]
            values[int(v)] = float(value)
            seen[int(v)] = True
    if not seen.all():
        missing = int((~seen).sum())
        raise ValueError(f"{missing} vertices have no scalar value")
    return values


def write_vertex_scalars(values: np.ndarray, path: PathLike) -> None:
    """Write a vertex scalar field, one ``vertex value`` line each."""
    with open(path, "w") as handle:
        for v, value in enumerate(values):
            handle.write(f"{v} {value:.10g}\n")


def read_edge_scalars(
    path: PathLike, graph: CSRGraph
) -> np.ndarray:
    """Read a ``u v value`` file into a vector aligned with edge ids."""
    values = np.zeros(graph.n_edges, dtype=np.float64)
    seen = np.zeros(graph.n_edges, dtype=bool)
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            u, v, value = line.split()[:3]
            eid = graph.edge_id(int(u), int(v))
            values[eid] = float(value)
            seen[eid] = True
    if not seen.all():
        missing = int((~seen).sum())
        raise ValueError(f"{missing} edges have no scalar value")
    return values


def write_edge_scalars(
    graph: CSRGraph, values: np.ndarray, path: PathLike
) -> None:
    """Write an edge scalar field, one ``u v value`` line per edge."""
    if len(values) != graph.n_edges:
        raise ValueError("one value per edge required")
    with open(path, "w") as handle:
        for (u, v), value in zip(graph.edge_array(), values):
            handle.write(f"{u} {v} {value:.10g}\n")


# ---------------------------------------------------------------------------
# Temporal edge lists (``src dst ts [w]``)
# ---------------------------------------------------------------------------


class TemporalEdgeError(ValueError):
    """A malformed line in a timestamped edge list.

    Carries the 1-based ``line_no`` and the offending ``line`` so loader
    failures on multi-million-line interaction logs point at the exact
    record, not just the file.
    """

    def __init__(self, path: PathLike, line_no: int, line: str, reason: str):
        self.path = str(path)
        self.line_no = line_no
        self.line = line
        self.reason = reason
        super().__init__(f"{self.path}:{line_no}: {reason}: {line!r}")


def _parse_temporal_line(
    path: PathLike, line_no: int, line: str
) -> Tuple[int, int, float, float]:
    parts = line.split()
    if len(parts) < 3 or len(parts) > 4:
        raise TemporalEdgeError(
            path, line_no, line,
            f"expected 'src dst ts [w]', got {len(parts)} fields",
        )
    try:
        u = int(parts[0])
        v = int(parts[1])
    except ValueError:
        raise TemporalEdgeError(
            path, line_no, line, "non-integer endpoint"
        ) from None
    if u < 0 or v < 0:
        raise TemporalEdgeError(path, line_no, line, "negative endpoint")
    try:
        ts = float(parts[2])
    except ValueError:
        raise TemporalEdgeError(
            path, line_no, line, "non-numeric timestamp"
        ) from None
    if not np.isfinite(ts):
        raise TemporalEdgeError(
            path, line_no, line, "non-finite timestamp"
        )
    w = 1.0
    if len(parts) == 4:
        try:
            w = float(parts[3])
        except ValueError:
            raise TemporalEdgeError(
                path, line_no, line, "non-numeric weight"
            ) from None
        if not np.isfinite(w) or w < 0:
            raise TemporalEdgeError(path, line_no, line, "negative weight")
    return u, v, ts, w


def iter_temporal_edge_chunks(
    path: PathLike, chunk_edges: int = DEFAULT_CHUNK_EDGES
) -> Iterator[np.ndarray]:
    """Stream a ``src dst ts [w]`` log as ``(k, 4)`` float64 chunks.

    Columns are ``u, v, ts, w`` (weight defaults to 1).  Like
    :func:`iter_edge_chunks`, at most ``chunk_edges`` rows are buffered,
    ``#`` comments and blank lines are skipped — but malformed records
    raise :class:`TemporalEdgeError` with their line number rather than
    silently corrupting the stream.
    """
    if chunk_edges < 1:
        raise ValueError("chunk_edges must be >= 1")
    buf: list = []
    with open(path) as handle:
        for line_no, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            buf.append(_parse_temporal_line(path, line_no, line))
            if len(buf) >= chunk_edges:
                yield np.array(buf, dtype=np.float64)
                buf = []
    if buf:
        yield np.array(buf, dtype=np.float64)


def iter_temporal_edges_sorted(
    path: PathLike,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
    scratch_dir: Optional[PathLike] = None,
) -> Iterator[np.ndarray]:
    """Stream a temporal edge log globally sorted by timestamp.

    External merge sort built on :func:`iter_temporal_edge_chunks`: each
    chunk is stably sorted by ``ts`` and spilled to a scratch ``.npy``
    run, then the runs are merged lazily (memory-mapped) with
    :func:`heapq.merge`, yielding ``(k, 4)`` chunks in non-decreasing
    timestamp order.  Equal timestamps keep file order (stable sort +
    run-index tie-break), so the result is deterministic.  Peak memory
    stays at one chunk per run plus the output buffer — the full log is
    never materialized.
    """
    with tempfile.TemporaryDirectory(
        prefix="repro-tsort-", dir=scratch_dir
    ) as tmp:
        runs: list = []
        for i, chunk in enumerate(iter_temporal_edge_chunks(path, chunk_edges)):
            order = np.argsort(chunk[:, 2], kind="stable")
            run_path = Path(tmp) / f"run{i:06d}.npy"
            np.save(run_path, chunk[order])
            runs.append(run_path)
        if not runs:
            return
        if len(runs) == 1:
            arr = np.load(runs[0])
            for start in range(0, len(arr), chunk_edges):
                yield arr[start : start + chunk_edges]
            return

        def _rows(run_path: Path) -> Iterator[np.ndarray]:
            arr = np.load(run_path, mmap_mode="r")
            for row in arr:
                yield row

        buf: list = []
        # heapq.merge prefers earlier iterables on ties, so equal
        # timestamps resolve to earlier runs — i.e. file order.
        merged = heapq.merge(*map(_rows, runs), key=lambda r: r[2])
        for row in merged:
            buf.append(np.asarray(row))
            if len(buf) >= chunk_edges:
                yield np.array(buf, dtype=np.float64)
                buf = []
        if buf:
            yield np.array(buf, dtype=np.float64)


def write_temporal_edge_list(
    rows: "np.ndarray", path: PathLike, header: str = ""
) -> None:
    """Write ``(k, 4)`` ``u v ts w`` rows as a temporal edge list."""
    with open(path, "w") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for u, v, ts, w in np.asarray(rows, dtype=np.float64):
            handle.write(f"{int(u)} {int(v)} {ts:.10g} {w:.10g}\n")
