"""Edge-list and scalar-field file I/O.

The formats mirror the SNAP collection the paper draws its datasets from:
whitespace-separated integer pairs, ``#`` comments.  Scalar fields are
stored one ``vertex value`` (or ``u v value`` for edge fields) per line.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, Tuple, Union

import numpy as np

from .builders import from_edge_array
from .csr import CSRGraph

__all__ = [
    "iter_edge_chunks",
    "read_edge_list",
    "write_edge_list",
    "read_vertex_scalars",
    "write_vertex_scalars",
    "read_edge_scalars",
    "write_edge_scalars",
]

PathLike = Union[str, Path]

#: Default edges per chunk for :func:`iter_edge_chunks` — 64k pairs is
#: 1 MiB of int64 payload, small enough to bound streaming consumers
#: and large enough to amortize the per-chunk numpy conversion.
DEFAULT_CHUNK_EDGES = 65536


def iter_edge_chunks(
    path: PathLike, chunk_edges: int = DEFAULT_CHUNK_EDGES
) -> Iterator[np.ndarray]:
    """Stream a SNAP-style edge list as ``(k, 2)`` int64 chunks.

    Yields at most ``chunk_edges`` edges per array, so peak memory is
    one chunk regardless of the file size — the primitive both
    :func:`read_edge_list` and the out-of-core scatter
    (:mod:`repro.dist.oocore`) are built on.  Comments (``#``) and
    blank lines are skipped; extra columns beyond ``u v`` are ignored.
    """
    if chunk_edges < 1:
        raise ValueError("chunk_edges must be >= 1")
    buf: list = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            u, v = line.split()[:2]
            buf.append((int(u), int(v)))
            if len(buf) >= chunk_edges:
                yield np.array(buf, dtype=np.int64)
                buf = []
    if buf:
        yield np.array(buf, dtype=np.int64)


def read_edge_list(path: PathLike, n_vertices: int = None) -> CSRGraph:
    """Read a SNAP-style edge list (``u v`` per line, ``#`` comments).

    Parsing goes through :func:`iter_edge_chunks`, so the transient
    Python-tuple overhead is bounded to one chunk; only the packed
    int64 edge array reaches full file size.
    """
    chunks = list(iter_edge_chunks(path))
    if chunks:
        arr = np.concatenate(chunks)
    else:
        arr = np.empty((0, 2), dtype=np.int64)
    return from_edge_array(arr, n_vertices=n_vertices)


def write_edge_list(graph: CSRGraph, path: PathLike, header: str = "") -> None:
    """Write each undirected edge once (``u v`` per line)."""
    with open(path, "w") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")


def read_vertex_scalars(path: PathLike, n_vertices: int) -> np.ndarray:
    """Read a ``vertex value`` file into a dense float vector."""
    values = np.zeros(n_vertices, dtype=np.float64)
    seen = np.zeros(n_vertices, dtype=bool)
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            v, value = line.split()[:2]
            values[int(v)] = float(value)
            seen[int(v)] = True
    if not seen.all():
        missing = int((~seen).sum())
        raise ValueError(f"{missing} vertices have no scalar value")
    return values


def write_vertex_scalars(values: np.ndarray, path: PathLike) -> None:
    """Write a vertex scalar field, one ``vertex value`` line each."""
    with open(path, "w") as handle:
        for v, value in enumerate(values):
            handle.write(f"{v} {value:.10g}\n")


def read_edge_scalars(
    path: PathLike, graph: CSRGraph
) -> np.ndarray:
    """Read a ``u v value`` file into a vector aligned with edge ids."""
    values = np.zeros(graph.n_edges, dtype=np.float64)
    seen = np.zeros(graph.n_edges, dtype=bool)
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            u, v, value = line.split()[:3]
            eid = graph.edge_id(int(u), int(v))
            values[eid] = float(value)
            seen[eid] = True
    if not seen.all():
        missing = int((~seen).sum())
        raise ValueError(f"{missing} edges have no scalar value")
    return values


def write_edge_scalars(
    graph: CSRGraph, values: np.ndarray, path: PathLike
) -> None:
    """Write an edge scalar field, one ``u v value`` line per edge."""
    if len(values) != graph.n_edges:
        raise ValueError("one value per edge required")
    with open(path, "w") as handle:
        for (u, v), value in zip(graph.edge_array(), values):
            handle.write(f"{u} {v} {value:.10g}\n")
