"""Constructors that turn edge lists and networkx graphs into CSR form.

All builders normalise their input the same way: self-loops dropped,
parallel edges collapsed, both directions stored, neighbour lists sorted.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional, Sequence, Tuple

import numpy as np

from .csr import CSRGraph

__all__ = [
    "from_edges",
    "from_edge_array",
    "from_networkx",
    "to_networkx",
    "empty_graph",
]


def from_edge_array(
    edges: np.ndarray,
    n_vertices: Optional[int] = None,
    labels: Optional[np.ndarray] = None,
) -> CSRGraph:
    """Build a :class:`CSRGraph` from an ``(m, 2)`` integer edge array.

    Vertices must already be integers in ``0..n-1``.  Self-loops are
    removed and duplicate edges (either orientation) collapsed.

    Parameters
    ----------
    edges:
        Array of vertex-id pairs.
    n_vertices:
        Total vertex count; defaults to ``edges.max() + 1`` (isolated
        trailing vertices need it to be passed explicitly).
    labels:
        Optional external labels, one per vertex.
    """
    edges = np.asarray(edges, dtype=np.int64)
    if edges.size == 0:
        edges = edges.reshape(0, 2)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ValueError("edges must be an (m, 2) array")
    if n_vertices is None:
        n_vertices = int(edges.max()) + 1 if len(edges) else 0
    if len(edges) and (edges.min() < 0 or edges.max() >= n_vertices):
        raise ValueError("edge endpoints outside 0..n_vertices-1")

    # Canonicalise: drop loops, order endpoints, dedup.
    keep = edges[:, 0] != edges[:, 1]
    edges = edges[keep]
    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    if len(lo):
        canon = np.unique(lo * np.int64(n_vertices) + hi)
        lo = canon // n_vertices
        hi = canon % n_vertices

    # Symmetrise and bucket by source.
    src = np.concatenate([lo, hi])
    dst = np.concatenate([hi, lo])
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    indptr = np.zeros(n_vertices + 1, dtype=np.int64)
    np.add.at(indptr, src + 1, 1)
    indptr = np.cumsum(indptr)
    return CSRGraph(indptr, dst, labels=labels)


def from_edges(
    edges: Iterable[Tuple[Hashable, Hashable]],
    nodes: Optional[Sequence[Hashable]] = None,
) -> CSRGraph:
    """Build a :class:`CSRGraph` from an iterable of (u, v) pairs.

    Endpoints may be arbitrary hashables; they are relabelled to dense
    integer ids (sorted order when sortable, insertion order otherwise)
    and the originals stored as ``labels``.

    Parameters
    ----------
    edges:
        Edge pairs.
    nodes:
        Optional full node collection, for graphs with isolated vertices.
    """
    edge_list = [(u, v) for u, v in edges]
    seen = {}
    universe = list(nodes) if nodes is not None else []
    for u, v in edge_list:
        universe.append(u)
        universe.append(v)
    ordered = []
    for x in universe:
        if x not in seen:
            seen[x] = True
            ordered.append(x)
    try:
        ordered = sorted(ordered)
    except TypeError:
        pass  # unsortable mixed labels keep insertion order
    index = {x: i for i, x in enumerate(ordered)}
    arr = np.array(
        [(index[u], index[v]) for u, v in edge_list], dtype=np.int64
    ).reshape(-1, 2)
    labels = np.array(ordered, dtype=object)
    if labels.size and all(isinstance(x, (int, np.integer)) for x in ordered):
        labels = labels.astype(np.int64)
    return from_edge_array(arr, n_vertices=len(ordered), labels=labels)


def from_networkx(graph) -> CSRGraph:
    """Convert an undirected networkx graph (nodes relabelled densely)."""
    return from_edges(graph.edges(), nodes=list(graph.nodes()))


def to_networkx(graph: CSRGraph):
    """Convert to a ``networkx.Graph`` on internal integer ids."""
    import networkx as nx

    out = nx.Graph()
    out.add_nodes_from(range(graph.n_vertices))
    out.add_edges_from(graph.edges())
    return out


def empty_graph(n_vertices: int = 0) -> CSRGraph:
    """A graph with ``n_vertices`` isolated vertices and no edges."""
    return from_edge_array(
        np.empty((0, 2), dtype=np.int64), n_vertices=n_vertices
    )
