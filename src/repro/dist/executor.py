"""Sharded scalar-tree construction: fan out, reduce, merge, splice.

Algorithm 1 is, operationally, a union-find scan over edges ordered by
the later-processed endpoint's rank (:mod:`repro.accel.tree`).  Two
facts make it shard-parallel **without approximation**:

1. *within one item's merge group the result is order-invariant* (the
   accel module's equivalence argument), so edges may be regrouped
   freely as long as the scan stays sorted by rank; and
2. *redundant edges never touch the tree*: an edge whose endpoints are
   already connected by lower-rank edges causes no parent assignment.
   If a shard-local scan finds an edge redundant using only the shard's
   own lower-rank edges, that edge is redundant in the global scan too
   (the global prefix is a superset), so it can be dropped before the
   merge — the distributed-connectivity / filter-Kruskal argument.

:func:`reduce_shard` therefore runs the scan over one shard's edges and
keeps exactly the merge-causing ones — the shard's **merge forest**, at
most ``n - 1`` edges however many the shard holds.  Replaying the
concatenated merge forests through one global
:func:`~repro.accel.tree.vertex_tree_parents` scan yields a parent
array *identical node-for-node* to the single-process build
(``tests/dist/test_merge_identity.py`` enforces this across
partitioners × measures).  The final tree is assembled through the
splice hook (:meth:`~repro.core.scalar_tree.ScalarTree.spliced`): the
largest shard's local forest (recoverable from its merge forest alone)
is taken as the base and only the parents the cross-shard interleaving
actually moved are patched in.

Workers run through :class:`repro.serve.workers.StageRunner.map_sync` —
threads for in-process runs, a ``ProcessPoolExecutor`` when real
parallelism is wanted — and per-shard merge forests are content-hash
cached (:class:`~repro.engine.cache.ArtifactCache`), so a warm re-run
only re-reduces shards whose edges or field actually changed.
"""

from __future__ import annotations

import pickle
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..accel.tree import merge_scan_keep, rank_order, vertex_tree_parents
from ..core.scalar_tree import ScalarTree
from ..obs import costs as obs_costs
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .partition import Shard, cut_vertices

__all__ = [
    "DIST_FIELD_MERGERS",
    "reduce_shard",
    "shard_degree",
    "ShardedExecutor",
]

# Process-wide dist metrics (repro.obs).  The executor's per-instance
# ``stats`` dict keeps its shape (serve /stats and the CLI print it);
# every increment is mirrored here so /metrics sees one global truth.
_M_BUILDS = obs_metrics.REGISTRY.counter(
    "repro_dist_builds_total", "Sharded tree builds."
)
_M_REDUCE_JOBS = obs_metrics.REGISTRY.counter(
    "repro_dist_reduce_jobs_total", "Per-shard merge-forest reduce jobs run."
)
_M_REDUCE_HITS = obs_metrics.REGISTRY.counter(
    "repro_dist_reduce_cache_hits_total",
    "Per-shard merge forests served from the artifact cache.",
)
_M_REDUCE_SECONDS = obs_metrics.REGISTRY.histogram(
    "repro_dist_reduce_seconds", "Wall time of one shard-reduce fan-out."
)
_M_MERGE_SECONDS = obs_metrics.REGISTRY.histogram(
    "repro_dist_merge_seconds", "Global merge + splice time per build."
)
_M_POISONED = obs_metrics.REGISTRY.counter(
    "repro_resil_poisoned_forests_total",
    "Cached shard merge forests that failed validation and were "
    "re-derived from the shard's edges.",
)


def _valid_forest(forest, n_vertices: int) -> bool:
    """Cheap structural check of a cached merge forest: a ``(k, 2)``
    int array, ``k <= n - 1``, endpoints in range.  A corrupted disk
    envelope that still deserializes must be re-derived, not merged."""
    if not isinstance(forest, np.ndarray):
        return False
    if forest.ndim != 2 or forest.shape[1] != 2:
        return False
    if forest.dtype.kind not in "iu":
        return False
    if len(forest) > max(0, n_vertices - 1):
        return False
    if len(forest) and (
        int(forest.min()) < 0 or int(forest.max()) >= n_vertices
    ):
        return False
    return True


# ----------------------------------------------------------------------
# Module-level worker jobs (picklable for process pools)
# ----------------------------------------------------------------------
def reduce_shard(
    n_vertices: int, edges: np.ndarray, rank: np.ndarray
) -> np.ndarray:
    """One shard's merge forest: the edges that merge disjoint subtrees
    when the shard is scanned alone in global rank order.

    Returns a ``(k, 2)`` subset of ``edges`` (``k <= n_vertices - 1``).
    Replaying it alone reproduces the shard-local forest exactly, and
    concatenated with the other shards' forests it reproduces the
    global tree exactly (module docstring).
    """
    if len(edges) == 0:
        return np.empty((0, 2), dtype=np.int64)
    pairs = np.asarray(edges, dtype=np.int64)
    ra = rank[pairs[:, 0]]
    rb = rank[pairs[:, 1]]
    later = ra > rb
    cur = np.where(later, pairs[:, 0], pairs[:, 1])
    prev = np.where(later, pairs[:, 1], pairs[:, 0])
    eorder = np.argsort(np.maximum(ra, rb))

    # The merge scan of repro.accel.tree, tracking which steps merged
    # instead of materialising parents (same union-find: path halving +
    # union by size, group-root caching).  merge_scan_keep dispatches
    # to the compiled native kernel when the backend allows — process
    # workers re-resolve from their own environment.
    kept = merge_scan_keep(n_vertices, cur[eorder], prev[eorder])
    if not len(kept):
        return np.empty((0, 2), dtype=np.int64)
    return np.ascontiguousarray(pairs[eorder[kept]])


def _reduce_shard_traced(
    n_vertices: int, edges: np.ndarray, rank: np.ndarray, shard_index: int
) -> np.ndarray:
    """Thread-mode traced reduce: the caller's context (and so the
    parent span id) is copied into the worker thread by
    :meth:`StageRunner.map_sync`, so this span nests under the build's."""
    with obs_trace.span(
        "dist.reduce_shard", shard=shard_index, edges=int(len(edges))
    ):
        return reduce_shard(n_vertices, edges, rank)


def shard_degree(n_vertices: int, edges: np.ndarray) -> np.ndarray:
    """Per-shard degree contribution (duplicates within the shard are
    collapsed, matching CSR construction)."""
    edges = np.asarray(edges, dtype=np.int64)
    if len(edges):
        canon = np.unique(
            edges[:, 0] * np.int64(n_vertices) + edges[:, 1]
        )
        edges = np.column_stack(
            [canon // n_vertices, canon % n_vertices]
        )
    return np.bincount(edges.ravel(), minlength=n_vertices).astype(
        np.float64
    )


#: Measures whose field is an exact sum of per-shard contributions over
#: an edge partition.  Anything else computes its field globally (the
#: scalar field must be *global* for the tree to be identical — a
#: shard-local k-core number is simply a different field).
DIST_FIELD_MERGERS: Dict[str, object] = {"degree": shard_degree}


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------
class ShardedExecutor:
    """Fans shard jobs over a :class:`StageRunner`; merges exactly.

    Parameters
    ----------
    workers:
        ``0`` runs shard jobs on a small in-process thread pool (the
        test/teaching mode); ``N > 0`` uses a ``ProcessPoolExecutor``
        of ``N`` workers for real parallelism.
    runner:
        An existing :class:`~repro.serve.workers.StageRunner` to borrow
        (the server shares its own); when given, ``workers`` is ignored
        and :meth:`shutdown` leaves the runner alive.
    ledger:
        A :class:`~repro.obs.costs.CostLedger` receiving the measured
        shard costs (``dist.tree`` wall time, per-shard ``dist.reduce``
        seconds, ``dist.serialize`` bytes/seconds); defaults to the
        process-wide ledger.  These are the numbers
        :func:`repro.dist.plan.plan` weighs against the single-process
        ``stage.tree`` time before agreeing to shard again.
    """

    def __init__(
        self,
        workers: int = 0,
        *,
        runner=None,
        deadline_s: Optional[float] = None,
        ledger=None,
    ) -> None:
        from ..serve.workers import StageRunner

        if runner is not None:
            self.runner = runner
            self._owns_runner = False
        else:
            self.runner = StageRunner(workers=workers)
            self._owns_runner = True
        self.ledger = ledger if ledger is not None else obs_costs.default_ledger()
        #: Per-fan-out wall-clock budget (None = unbounded).  The runner
        #: charges retries and backoff against the same budget, so a
        #: fault storm surfaces as DeadlineExceeded instead of a hang.
        self.deadline_s = deadline_s
        self.stats: Dict[str, object] = {
            "builds": 0,
            "reduce_jobs": 0,
            "reduce_cache_hits": 0,
            "reduced_edges": 0,
            "spliced_parents": 0,
            "merge_seconds": 0.0,
            "field_merges": 0,
            "poisoned_forests": 0,
            "serialized_bytes": 0,
            "serialize_seconds": 0.0,
        }

    @property
    def workers(self) -> int:
        return self.runner.workers

    # ------------------------------------------------------------------
    def _reduce_all(
        self,
        shards: Sequence[Shard],
        rank: np.ndarray,
        cache,
        scalars_fp: Optional[str],
    ) -> List[np.ndarray]:
        """Per-shard merge forests, cache-first, misses fanned out."""
        n = shards[0].n_vertices
        forests: List[Optional[np.ndarray]] = [None] * len(shards)
        keys: List[Optional[str]] = [None] * len(shards)
        if cache is not None and scalars_fp is not None:
            from ..engine.cache import stage_key

            for i, shard in enumerate(shards):
                keys[i] = stage_key(
                    "dist-reduce",
                    {"method": shard.method, "n_shards": shard.n_shards},
                    shard.fingerprint(),
                    scalars_fp,
                )
                hit = cache.get(keys[i])
                if hit is None:
                    continue
                if not _valid_forest(hit, n):
                    # A poisoned reduction (corrupt disk envelope that
                    # still parsed, wrong shape, out-of-range ids) is
                    # re-derived from the shard's own edges; the fresh
                    # put below overwrites the bad entry.
                    self.stats["poisoned_forests"] += 1
                    _M_POISONED.inc()
                    continue
                forests[i] = hit
                self.stats["reduce_cache_hits"] += 1
                _M_REDUCE_HITS.inc()
        miss_idx = [i for i, f in enumerate(forests) if f is None]
        if miss_idx:
            self.stats["reduce_jobs"] += len(miss_idx)
            _M_REDUCE_JOBS.inc(len(miss_idx))
            self._measure_serialization(shards[miss_idx[0]], rank)
            with _M_REDUCE_SECONDS.time() as timer:
                results = self._fan_out_reduces(miss_idx, shards, rank, n)
            mean_edges = sum(
                int(shards[i].n_edges) for i in miss_idx
            ) // len(miss_idx)
            self._record_cost(
                "dist.reduce",
                timer.seconds / len(miss_idx),
                size=mean_edges,
            )
            for i, forest in zip(miss_idx, results):
                forests[i] = forest
                if cache is not None and keys[i] is not None:
                    cache.put(keys[i], forest)
        return forests  # type: ignore[return-value]

    def _record_cost(self, stage: str, seconds: float, *, size: int = 0,
                     nbytes: Optional[int] = None) -> None:
        try:
            self.ledger.record(
                stage,
                seconds,
                backend=f"workers={self.workers}",
                size=size,
                nbytes=nbytes,
            )
        except Exception:
            # A broken ledger (read-only cache dir) never fails a build.
            pass

    def _measure_serialization(self, shard: Shard, rank: np.ndarray) -> None:
        """Measure what shipping one shard job to a process worker
        costs (the fan-out's fixed overhead the planner must weigh).

        One representative ``pickle.dumps`` of a real job payload per
        cold fan-out — thread mode ships references, not bytes, so only
        process pools pay this and only they are measured.
        """
        if not getattr(self.runner, "uses_processes", False):
            return
        t0 = time.perf_counter()
        try:
            payload = pickle.dumps(
                (shard.edges, rank), protocol=pickle.HIGHEST_PROTOCOL
            )
        except Exception:
            return
        seconds = time.perf_counter() - t0
        self.stats["serialized_bytes"] += len(payload)
        self.stats["serialize_seconds"] += seconds
        self._record_cost(
            "dist.serialize",
            seconds,
            size=int(shard.n_edges),
            nbytes=len(payload),
        )

    def _fan_out_reduces(
        self,
        miss_idx: List[int],
        shards: Sequence[Shard],
        rank: np.ndarray,
        n: int,
    ) -> List[np.ndarray]:
        """Run the per-shard reduce jobs, tracing each when enabled.

        Thread mode relies on the runner's context propagation (the
        shard span nests under the caller's span directly); process
        mode wraps jobs in :func:`repro.obs.trace.traced_job`, whose
        captured worker spans are re-parented under this build's span
        and re-exported here (workers start with tracing off and no
        exporters of their own)."""
        if not obs_trace.ENABLED:
            return self.runner.map_sync(
                reduce_shard,
                [(n, shards[i].edges, rank) for i in miss_idx],
                timeout=self.deadline_s,
            )
        if getattr(self.runner, "uses_processes", False):
            parent = obs_trace.current_span_id()
            pairs = self.runner.map_sync(
                obs_trace.traced_job,
                [
                    (
                        reduce_shard,
                        (n, shards[i].edges, rank),
                        "dist.reduce_shard",
                        {"shard": i, "edges": int(shards[i].n_edges)},
                    )
                    for i in miss_idx
                ],
                timeout=self.deadline_s,
            )
            results = []
            for forest, records in pairs:
                obs_trace.adopt(records, parent)
                results.append(forest)
            return results
        return self.runner.map_sync(
            _reduce_shard_traced,
            [(n, shards[i].edges, rank, i) for i in miss_idx],
            timeout=self.deadline_s,
        )

    def build_tree(
        self,
        scalars: np.ndarray,
        shards: Sequence[Shard],
        *,
        cache=None,
        scalars_fingerprint: Optional[str] = None,
    ) -> ScalarTree:
        """The global vertex scalar tree of ``scalars`` over the union
        of the shards' edges — node-for-node identical to
        :func:`~repro.core.scalar_tree.build_vertex_tree` on the whole
        graph.

        ``cache`` (an :class:`~repro.engine.cache.ArtifactCache`) plus
        ``scalars_fingerprint`` enable per-shard merge-forest reuse;
        when the cache is shared with an :class:`engine.Pipeline` the
        fingerprints agree with the pipeline's own field stage.
        """
        if not shards:
            raise ValueError("at least one shard is required")
        n = shards[0].n_vertices
        scalars = np.asarray(scalars, dtype=np.float64)
        if len(scalars) != n:
            raise ValueError(
                f"scalar field has {len(scalars)} entries for "
                f"{n} vertices"
            )
        self.stats["builds"] += 1
        _M_BUILDS.inc()
        jobs_before = self.stats["reduce_jobs"]
        t0 = time.perf_counter()
        with obs_trace.span(
            "dist.build_tree", n_shards=len(shards), n_vertices=int(n)
        ):
            tree = self._build_tree(
                scalars, shards, n, cache, scalars_fingerprint
            )
        # Only cold builds (reduce jobs actually ran) are comparable to
        # the single-process stage.tree time the planner weighs this
        # against — a warm replay from cached forests would flatter
        # sharding.
        if self.stats["reduce_jobs"] > jobs_before:
            total_edges = sum(int(s.n_edges) for s in shards)
            self._record_cost(
                "dist.tree", time.perf_counter() - t0, size=total_edges
            )
        return tree

    def _build_tree(
        self, scalars, shards, n, cache, scalars_fingerprint
    ) -> ScalarTree:
        __, rank = rank_order(scalars)

        if cache is not None and scalars_fingerprint is None:
            from ..engine.cache import fingerprint_array

            scalars_fingerprint = fingerprint_array(scalars)
        forests = self._reduce_all(shards, rank, cache, scalars_fingerprint)

        t0 = time.perf_counter()
        # Base: the largest shard's local forest, recovered from its
        # merge forest alone (the reduction preserves it exactly).
        base = max(range(len(shards)), key=lambda i: shards[i].n_edges)
        base_parent = vertex_tree_parents(n, forests[base], rank)
        reduced = (
            np.concatenate(forests)
            if any(len(f) for f in forests)
            else np.empty((0, 2), dtype=np.int64)
        )
        global_parent = vertex_tree_parents(n, reduced, rank)
        changed = np.flatnonzero(base_parent != global_parent)
        tree = ScalarTree(base_parent, scalars, kind="vertex").spliced(
            changed, global_parent[changed]
        )
        merge_seconds = time.perf_counter() - t0
        self.stats["merge_seconds"] += merge_seconds
        _M_MERGE_SECONDS.observe(merge_seconds)
        self.stats["reduced_edges"] += int(len(reduced))
        self.stats["spliced_parents"] += int(len(changed))
        self.stats["last_build"] = {
            "n_shards": len(shards),
            "method": shards[0].method,
            "shard_edges": [int(s.n_edges) for s in shards],
            "boundary_vertices": cut_vertices(shards),
            "reduced_edges": int(len(reduced)),
            "spliced_parents": int(len(changed)),
        }
        return tree

    def merged_field(
        self, measure: str, shards: Sequence[Shard]
    ) -> Optional[np.ndarray]:
        """The global field of a shard-mergeable measure, summed from
        per-shard contributions; ``None`` when ``measure`` cannot be
        merged over an edge partition (caller computes it globally)."""
        job = DIST_FIELD_MERGERS.get(measure)
        if job is None or not shards:
            return None
        if not all(shard.dedup_safe for shard in shards):
            # Duplicate copies of an edge may straddle shards (range
            # scatter of a raw file); per-shard dedup would then count
            # them twice.  Correctness first: make the caller compute
            # the field globally.
            return None
        n = shards[0].n_vertices
        parts = self.runner.map_sync(
            job,
            [(n, shard.edges) for shard in shards],
            timeout=self.deadline_s,
        )
        self.stats["field_merges"] += 1
        total = np.zeros(n, dtype=np.float64)
        for part in parts:
            total += part
        return total

    def shutdown(self) -> None:
        """Release the worker pool (borrowed runners are left alive)."""
        if self._owns_runner:
            self.runner.shutdown()

    def __repr__(self) -> str:
        return (
            f"ShardedExecutor(workers={self.workers}, "
            f"builds={self.stats['builds']})"
        )
