"""Deterministic edge partitioners and self-describing shard manifests.

Sharded execution (:mod:`repro.dist.executor`) splits the *edge set* of
a graph into ``n_shards`` disjoint pieces, builds each piece's partial
scalar forest in a worker, and merges.  Everything downstream assumes
exactly one property of the partition: **every canonical edge lands in
exactly one shard** — the three partitioners here differ only in how
they trade balance against cut size:

``hash``
    Stateless multiplicative hash of the endpoint pair.  Near-perfect
    edge-count balance, oblivious to locality (worst cut), and the only
    scheme that needs no global pre-pass — the out-of-core scatter can
    route a chunk the moment it is parsed.
``range``
    Contiguous ranges of the canonical edge order (sorted by ``(u, v)``).
    Exact balance; cut size is whatever vertex locality the id order
    happens to carry (SNAP crawls are often locality-friendly).
``degree``
    Degree-balanced greedy: vertices are assigned to the currently
    lightest shard in decreasing-degree order (load = summed degree),
    and each edge follows its higher-degree endpoint.  Hub
    neighbourhoods stay intact, which keeps the merge-forest small on
    skewed graphs.

A :class:`Shard` is self-describing: besides its edge array it carries
the partition parameters that produced it and its *boundary* — the
vertices it shares with other shards (the interface the merge step must
reconcile).  :meth:`Shard.manifest` is the JSON side of the same record
(see the method docstring for the exact format).
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..graph.builders import from_edge_array
from ..graph.csr import CSRGraph

__all__ = [
    "PARTITIONERS",
    "Shard",
    "assign_hash",
    "assign_range",
    "assign_degree",
    "degree_owners",
    "partition_edges",
    "boundary_sets",
    "cut_vertices",
]

#: The registered partitioner names, in cost-model preference order.
PARTITIONERS = ("hash", "range", "degree")

# Knuth-style multiplicative mixing constants (fit in int64 products for
# vertex ids below ~2^31, far beyond any graph this codebase handles).
_MIX_A = np.int64(2654435761)
_MIX_B = np.int64(40503)


# ----------------------------------------------------------------------
# Per-edge shard assignment (vectorized, chunk-safe)
# ----------------------------------------------------------------------
def assign_hash(edges: np.ndarray, n_shards: int) -> np.ndarray:
    """Shard id per edge by a stateless hash of the endpoint pair.

    Chunk-safe: the assignment of an edge depends only on the edge
    itself, so the out-of-core scatter calls this per chunk and gets
    the same partition an in-memory call would produce.
    """
    edges = np.asarray(edges, dtype=np.int64)
    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    mixed = (lo * _MIX_A + hi * _MIX_B) & np.int64(0x7FFFFFFF)
    return (mixed % np.int64(n_shards)).astype(np.int64)


def assign_range(
    edge_index: np.ndarray, n_edges_total: int, n_shards: int
) -> np.ndarray:
    """Shard id per edge by contiguous position in the canonical order.

    ``edge_index`` is each edge's 0-based position in the full canonical
    edge array (for a chunk at offset ``o``: ``o + arange(len(chunk))``),
    so the scatter only needs the total count from its counting pre-pass.
    """
    idx = np.asarray(edge_index, dtype=np.int64)
    if n_edges_total <= 0:
        return np.zeros(len(idx), dtype=np.int64)
    return (idx * np.int64(n_shards)) // np.int64(n_edges_total)


def degree_owners(degrees: np.ndarray, n_shards: int) -> np.ndarray:
    """Greedy vertex→shard ownership balanced by summed degree.

    Vertices are visited in decreasing degree (ties by ascending id)
    and each goes to the shard with the smallest accumulated degree
    load (ties by ascending shard id, via the heap's tuple order) — the
    classic LPT greedy, deterministic by construction.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    n = len(degrees)
    owners = np.zeros(n, dtype=np.int64)
    order = np.lexsort((np.arange(n), -degrees))
    heap = [(0, s) for s in range(n_shards)]
    for v in order.tolist():
        load, shard = heapq.heappop(heap)
        owners[v] = shard
        heapq.heappush(heap, (load + int(degrees[v]), shard))
    return owners


def assign_degree(
    edges: np.ndarray, owners: np.ndarray, degrees: np.ndarray
) -> np.ndarray:
    """Shard id per edge: follow the higher-degree endpoint's owner
    (ties by the smaller vertex id).  Chunk-safe once ``owners`` and
    ``degrees`` exist (one O(n) pre-pass)."""
    edges = np.asarray(edges, dtype=np.int64)
    u, v = edges[:, 0], edges[:, 1]
    du, dv = degrees[u], degrees[v]
    anchor = np.where(
        (du > dv) | ((du == dv) & (u < v)), u, v
    )
    return owners[anchor]


# ----------------------------------------------------------------------
# Shards
# ----------------------------------------------------------------------
@dataclass
class Shard:
    """One piece of an edge partition, with its interface to the rest.

    Attributes
    ----------
    shard_id, n_shards:
        This shard's index and the partition width it belongs to.
    n_vertices:
        The *global* vertex count — shard edges keep global vertex ids,
        so per-shard results line up without any relabelling.
    edges:
        ``(k, 2)`` int64 array of canonical (``u < v``) edges.
    boundary:
        Sorted global ids of the vertices this shard shares with at
        least one other shard (the merge interface).
    method:
        The partitioner that produced the shard (``hash``/``range``/
        ``degree``), recorded for the manifest.
    dedup_safe:
        Whether duplicate copies of an edge are guaranteed to live in
        the *same* shard (so per-shard deduplication is global
        deduplication).  True for in-memory partitions (built from the
        already-deduplicated canonical edge array) and for value-routed
        scatters (``hash``, ``degree``); False for ``range`` scatters
        of raw files, where copies can straddle a position boundary.
        Consumers that sum per-shard contributions (the ``degree``
        field merge) require it.
    """

    shard_id: int
    n_shards: int
    n_vertices: int
    edges: np.ndarray
    boundary: np.ndarray
    method: str
    dedup_safe: bool = True
    _vertices: Optional[np.ndarray] = field(
        default=None, repr=False, compare=False
    )

    @property
    def n_edges(self) -> int:
        return len(self.edges)

    @property
    def vertices(self) -> np.ndarray:
        """Sorted global ids of the vertices incident to this shard."""
        if self._vertices is None:
            self._vertices = np.unique(self.edges)
        return self._vertices

    def fragment(self) -> CSRGraph:
        """The shard's edges as a CSR graph over the *global* vertex id
        space (vertices outside the shard are isolated).  Keeping global
        ids costs an O(n) indptr but removes every relabelling step from
        the distributed build."""
        return from_edge_array(self.edges, n_vertices=self.n_vertices)

    def fingerprint(self) -> str:
        """Content hash of the shard's edge set (cache-key component)."""
        digest = hashlib.sha256()
        digest.update(b"dist-shard")
        digest.update(np.ascontiguousarray(self.edges).tobytes())
        return digest.hexdigest()

    def manifest(self) -> Dict[str, object]:
        """The shard's self-describing JSON record.

        Format (``repro-dist-shard/1``)::

            {
              "format":      "repro-dist-shard/1",
              "shard_id":    int,     # 0-based shard index
              "n_shards":    int,     # partition width
              "n_vertices":  int,     # GLOBAL vertex count
              "n_edges":     int,     # edges in this shard
              "method":      str,     # "hash" | "range" | "degree"
              "dedup_safe":  bool,    # duplicates cannot span shards
              "boundary_vertices": int,   # len(boundary)
              "sha256":      str,     # fingerprint of the edge bytes
            }

        The manifest intentionally carries no edge data: it names and
        checks a shard (an out-of-core scatter stores edges in a raw
        int64 sidecar next to it — see :mod:`repro.dist.oocore`).
        """
        return {
            "format": "repro-dist-shard/1",
            "shard_id": self.shard_id,
            "n_shards": self.n_shards,
            "n_vertices": self.n_vertices,
            "n_edges": self.n_edges,
            "method": self.method,
            "dedup_safe": self.dedup_safe,
            "boundary_vertices": int(len(self.boundary)),
            "sha256": self.fingerprint(),
        }

    def __repr__(self) -> str:
        return (
            f"Shard({self.shard_id}/{self.n_shards}, method={self.method!r}, "
            f"n_edges={self.n_edges}, boundary={len(self.boundary)})"
        )


def boundary_sets(
    shard_edges: Sequence[np.ndarray], n_vertices: int
) -> List[np.ndarray]:
    """Per-shard sorted arrays of vertices shared with another shard."""
    touched = np.zeros(n_vertices, dtype=np.int64)
    uniques = [np.unique(edges) for edges in shard_edges]
    for verts in uniques:
        touched[verts] += 1
    shared = touched >= 2
    return [verts[shared[verts]] for verts in uniques]


def cut_vertices(shards: Sequence[Shard]) -> int:
    """Number of distinct vertices on any shard boundary (the global
    cut size the cost model scores partitions by)."""
    if not shards:
        return 0
    all_boundary = np.concatenate([s.boundary for s in shards]) \
        if any(len(s.boundary) for s in shards) else np.empty(0, np.int64)
    return int(len(np.unique(all_boundary)))


def partition_edges(
    source: Union[CSRGraph, np.ndarray],
    n_shards: int,
    method: str = "hash",
    n_vertices: Optional[int] = None,
) -> List[Shard]:
    """Split a graph's canonical edge array into ``n_shards`` shards.

    ``source`` is a :class:`CSRGraph` or an ``(m, 2)`` canonical edge
    array (then ``n_vertices`` is required).  Every edge lands in
    exactly one shard; shards may be empty (kept, so shard ids always
    run ``0..n_shards-1``).
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    if method not in PARTITIONERS:
        raise ValueError(
            f"unknown partitioner {method!r}; choose from "
            f"{', '.join(PARTITIONERS)}"
        )
    if isinstance(source, CSRGraph):
        edges = source.edge_array()
        n = source.n_vertices
        degrees = source.degree()
    else:
        edges = np.asarray(source, dtype=np.int64).reshape(-1, 2)
        if n_vertices is None:
            raise ValueError("n_vertices is required for a raw edge array")
        n = int(n_vertices)
        degrees = np.bincount(edges.ravel(), minlength=n).astype(np.int64)

    if method == "hash":
        ids = assign_hash(edges, n_shards)
    elif method == "range":
        ids = assign_range(np.arange(len(edges)), len(edges), n_shards)
    else:
        owners = degree_owners(degrees, n_shards)
        ids = assign_degree(edges, owners, degrees)

    pieces = [edges[ids == s] for s in range(n_shards)]
    boundaries = boundary_sets(pieces, n)
    return [
        Shard(
            shard_id=s,
            n_shards=n_shards,
            n_vertices=n,
            edges=np.ascontiguousarray(pieces[s]),
            boundary=boundaries[s],
            method=method,
        )
        for s in range(n_shards)
    ]
