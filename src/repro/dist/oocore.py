"""Out-of-core edge scatter: stream an on-disk edge list into shards.

For graphs whose edge list does not fit one worker's memory, the
distributed build never materializes the full edge array.  Instead
:func:`scatter_edge_list` makes (at most) two streaming passes over the
file via :func:`repro.graph.io.iter_edge_chunks`:

1. a **counting pre-pass** — max vertex id, canonical edge count and
   the degree vector (all O(n)+O(chunk), never O(m)) — needed by the
   ``range`` and ``degree`` partitioners and by every shard manifest
   (``hash`` also uses it so all three methods emit identical
   manifests);
2. the **scatter pass** — each chunk is canonicalised (self-loops
   dropped, ``u < v``), routed through the same vectorized assigners
   the in-memory partitioner uses, and appended to per-shard buffers
   that flush to raw int64 sidecar files whenever the total buffered
   bytes would exceed ``max_buffer_bytes``.

Peak memory is therefore ``max(max_buffer_bytes, one chunk)`` plus the
O(n) vertex-sized vectors — the bound
:data:`ScatterResult.stats`\\ ``["peak_buffered_bytes"]`` records and
``benchmarks/bench_dist_scaling.py`` asserts.

Duplicate edges are *kept per shard* (deduplication would need global
state); every consumer builds CSR fragments through
:func:`~repro.graph.builders.from_edge_array`, which collapses them,
and the merge scan is idempotent under repeats — so scatter output
builds the same tree as an in-memory partition of the deduplicated
graph, except under the ``range`` partitioner where shard *placement*
(not the merged result) can differ for files with duplicates.  The one
duplicate-sensitive consumer is the per-shard ``degree`` field merge,
which collapses repeats within each shard only; ``range`` shards are
therefore marked ``dedup_safe: false`` in their manifests and the
field merge refuses them (the field is computed globally instead) —
``hash``/``degree`` route every copy of a pair to one shard and stay
mergeable.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..graph.io import DEFAULT_CHUNK_EDGES, iter_edge_chunks
from ..obs import costs as obs_costs
from ..obs import metrics as obs_metrics
from ..resil import faults as resil_faults
from ..resil.retry import note_giveup, note_retry
from .partition import (
    PARTITIONERS,
    Shard,
    assign_degree,
    assign_hash,
    assign_range,
    degree_owners,
)

__all__ = [
    "ScatterResult",
    "ShardIntegrityError",
    "scatter_edge_list",
    "load_shards",
    "resilient_scatter",
]

PathLike = Union[str, Path]

_MANIFEST_SUFFIX = ".manifest.json"
_EDGES_SUFFIX = ".edges.i64"
_QUARANTINE_SUFFIX = ".quarantined"

_M_QUARANTINED = obs_metrics.REGISTRY.counter(
    "repro_resil_quarantined_total",
    "Shard fragments quarantined after a failed integrity check.",
    ("reason",),
)


def _record_cost(stage: str, seconds: float, *, size: int = 0,
                 nbytes: Optional[int] = None) -> None:
    """Measured scatter/load wall time into the process cost ledger —
    part of the sharding overhead ``--dist auto`` weighs.  Best-effort:
    a broken ledger never fails an I/O pass that already succeeded."""
    try:
        obs_costs.default_ledger().record(
            stage, seconds, size=size, nbytes=nbytes
        )
    except Exception:
        pass


class ShardIntegrityError(ValueError):
    """One or more shard fragments failed their manifest integrity check
    (missing sidecar, wrong edge count, bad sha256).  The offending
    sidecars are quarantined (renamed ``*.quarantined``) before this is
    raised, so a re-scatter writes fresh fragments.

    Subclasses ``ValueError`` so legacy ``except ValueError`` call
    sites keep working.
    """

    def __init__(self, message: str, bad_shards=()) -> None:
        super().__init__(message)
        self.bad_shards = tuple(bad_shards)


class ScatterResult:
    """What a scatter produced: the shard directory plus its stats.

    Attributes
    ----------
    directory:
        Where the per-shard sidecars and manifests live.
    manifests:
        One ``repro-dist-shard/1`` dict per shard, in shard-id order.
    stats:
        ``n_edges`` (canonical edges routed), ``n_vertices``,
        ``chunks`` (chunks streamed in the scatter pass), ``flushes``
        (buffer spills), ``peak_buffered_bytes`` (high-water mark of
        the shard buffers — the memory bound), ``buffer_limit_bytes``.
    """

    def __init__(
        self,
        directory: Path,
        manifests: List[Dict[str, object]],
        stats: Dict[str, int],
    ) -> None:
        self.directory = directory
        self.manifests = manifests
        self.stats = stats

    def load(self) -> List[Shard]:
        """Read the scattered shards back (see :func:`load_shards`)."""
        return load_shards(self.directory)

    def __repr__(self) -> str:
        return (
            f"ScatterResult({str(self.directory)!r}, "
            f"shards={len(self.manifests)}, "
            f"peak_buffered_bytes={self.stats['peak_buffered_bytes']})"
        )


def _canonicalise(chunk: np.ndarray) -> np.ndarray:
    """Per-chunk canonical form: self-loops out, ``u < v``."""
    chunk = chunk[chunk[:, 0] != chunk[:, 1]]
    lo = np.minimum(chunk[:, 0], chunk[:, 1])
    hi = np.maximum(chunk[:, 0], chunk[:, 1])
    return np.column_stack([lo, hi])


def scatter_edge_list(
    path: PathLike,
    n_shards: int,
    out_dir: PathLike,
    *,
    method: str = "hash",
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
    max_buffer_bytes: int = 8 << 20,
    n_vertices: Optional[int] = None,
) -> ScatterResult:
    """Stream ``path`` into ``n_shards`` on-disk shard fragments.

    Parameters
    ----------
    path:
        SNAP-style edge-list file.
    n_shards, method:
        Partition width and partitioner (``hash``/``range``/``degree``).
    chunk_edges:
        Streaming granularity (edges per parsed chunk).
    max_buffer_bytes:
        Flush the shard buffers to disk once they hold more than this
        many bytes; the scatter's peak buffered memory never exceeds
        ``max(max_buffer_bytes, one chunk)``.
    n_vertices:
        Global vertex count; defaults to ``max id + 1`` from the
        counting pre-pass (pass it explicitly for trailing isolated
        vertices).
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    if method not in PARTITIONERS:
        raise ValueError(
            f"unknown partitioner {method!r}; choose from "
            f"{', '.join(PARTITIONERS)}"
        )
    if max_buffer_bytes < 1:
        raise ValueError("max_buffer_bytes must be >= 1")
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    t_start = time.perf_counter()

    # ---- pass 1: counting (degrees, canonical edge count, max id) ----
    degrees = np.zeros(1024, dtype=np.int64)
    n_edges_total = 0
    max_id = -1
    for chunk in iter_edge_chunks(path, chunk_edges):
        chunk = _canonicalise(chunk)
        if not len(chunk):
            continue
        top = int(chunk.max())
        if top >= len(degrees):
            grown = np.zeros(max(top + 1, 2 * len(degrees)), dtype=np.int64)
            grown[: len(degrees)] = degrees
            degrees = grown
        np.add.at(degrees, chunk[:, 0], 1)
        np.add.at(degrees, chunk[:, 1], 1)
        n_edges_total += len(chunk)
        max_id = max(max_id, top)
    n = (max_id + 1) if n_vertices is None else int(n_vertices)
    if max_id >= n:
        raise ValueError(
            f"edge endpoints reach id {max_id} but n_vertices={n}"
        )
    degrees = degrees[:n] if len(degrees) >= n else np.concatenate(
        [degrees, np.zeros(n - len(degrees), dtype=np.int64)]
    )
    owners = (
        degree_owners(degrees, n_shards) if method == "degree" else None
    )

    # ---- pass 2: scatter with bounded buffers ------------------------
    buffers: List[List[np.ndarray]] = [[] for _ in range(n_shards)]
    buffered_bytes = 0
    peak_buffered = 0
    counts = np.zeros(n_shards, dtype=np.int64)
    hashes = [hashlib.sha256(b"dist-shard") for _ in range(n_shards)]
    seen_in = [
        np.zeros(n, dtype=bool) for _ in range(n_shards)
    ]  # per-shard vertex incidence, for the boundary record
    handles = [
        open(out_dir / f"shard_{s:04d}{_EDGES_SUFFIX}", "wb")
        for s in range(n_shards)
    ]
    n_chunks = 0
    n_flushes = 0

    def flush() -> None:
        nonlocal buffered_bytes, n_flushes
        for s, parts in enumerate(buffers):
            if not parts:
                continue
            block = np.ascontiguousarray(np.concatenate(parts))
            hashes[s].update(block.tobytes())
            block.tofile(handles[s])
            buffers[s] = []
        if buffered_bytes:
            n_flushes += 1
        buffered_bytes = 0

    try:
        offset = 0
        for chunk in iter_edge_chunks(path, chunk_edges):
            chunk = _canonicalise(chunk)
            if not len(chunk):
                continue
            n_chunks += 1
            if method == "hash":
                ids = assign_hash(chunk, n_shards)
            elif method == "range":
                ids = assign_range(
                    offset + np.arange(len(chunk)), n_edges_total, n_shards
                )
            else:
                ids = assign_degree(chunk, owners, degrees)
            offset += len(chunk)
            # Flush *before* the chunk that would overflow, so peak
            # buffered bytes never exceed max(max_buffer_bytes, one
            # chunk) — the bound the scaling benchmark asserts.
            if buffered_bytes and buffered_bytes + chunk.nbytes > \
                    max_buffer_bytes:
                flush()
            for s in np.unique(ids).tolist():
                part = chunk[ids == s]
                buffers[s].append(part)
                buffered_bytes += part.nbytes
                counts[s] += len(part)
                seen_in[s][part.ravel()] = True
            peak_buffered = max(peak_buffered, buffered_bytes)
        flush()
    finally:
        for handle in handles:
            handle.close()

    # Boundary: vertices incident to >= 2 shards.
    incidence = np.zeros(n, dtype=np.int64)
    for mask in seen_in:
        incidence += mask
    shared = incidence >= 2

    manifests: List[Dict[str, object]] = []
    for s in range(n_shards):
        manifest = {
            "format": "repro-dist-shard/1",
            "shard_id": s,
            "n_shards": n_shards,
            "n_vertices": n,
            "n_edges": int(counts[s]),
            "method": method,
            # hash/degree route every copy of a pair to one shard;
            # range splits by file position, so duplicate copies can
            # straddle a boundary (see Shard.dedup_safe).
            "dedup_safe": method != "range",
            "boundary_vertices": int(np.count_nonzero(shared & seen_in[s])),
            "sha256": hashes[s].hexdigest(),
        }
        (out_dir / f"shard_{s:04d}{_MANIFEST_SUFFIX}").write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        )
        manifests.append(manifest)
    np.flatnonzero(shared).astype(np.int64).tofile(
        str(out_dir / "boundary.i64")
    )

    scatter_seconds = time.perf_counter() - t_start
    stats = {
        "n_edges": int(n_edges_total),
        "n_vertices": n,
        "chunks": n_chunks,
        "flushes": n_flushes,
        "peak_buffered_bytes": int(peak_buffered),
        "buffer_limit_bytes": int(max_buffer_bytes),
        "scatter_seconds": scatter_seconds,
    }
    # 16 bytes per canonical edge (two int64 endpoints) hit the disk.
    _record_cost(
        "dist.scatter",
        scatter_seconds,
        size=int(n_edges_total),
        nbytes=int(n_edges_total) * 16,
    )

    # Fault sites `fragment_corrupt` / `fragment_truncate`: damage one
    # just-written sidecar (rule param selects the shard, default 0) so
    # the next load fails its sha256/count check and quarantines it.
    if resil_faults.active():
        for site, mode in (
            ("fragment_corrupt", "corrupt"),
            ("fragment_truncate", "truncate"),
        ):
            rule = resil_faults.should_fire(site)
            if rule is None:
                continue
            target = int(rule.param) % n_shards if rule.param else 0
            resil_faults.corrupt_file(
                out_dir / f"shard_{target:04d}{_EDGES_SUFFIX}", mode=mode
            )
    return ScatterResult(out_dir, manifests, stats)


def _quarantine(path: Path, reason: str) -> None:
    """Move a bad sidecar out of the way so a re-scatter starts clean
    and repeated loads cannot keep tripping over the same bytes."""
    try:
        os.replace(path, path.with_name(path.name + _QUARANTINE_SUFFIX))
    except OSError:
        pass  # e.g. the sidecar is missing entirely
    _M_QUARANTINED.inc(reason=reason)


def _check_shard(directory: Path, manifest_path: Path, doc: dict,
                 shared: np.ndarray) -> Shard:
    """Load + integrity-check one shard; ShardIntegrityError on damage."""
    shard_id = doc.get("shard_id", "?")
    stem = manifest_path.name[: -len(_MANIFEST_SUFFIX)]
    sidecar = directory / f"{stem}{_EDGES_SUFFIX}"
    try:
        edges = np.fromfile(str(sidecar), dtype=np.int64).reshape(-1, 2)
    except OSError as exc:
        raise ShardIntegrityError(
            f"shard {shard_id}: edge sidecar missing or unreadable "
            f"({exc})", bad_shards=(shard_id,)
        ) from None
    except ValueError:
        raise ShardIntegrityError(
            f"shard {shard_id}: sidecar holds a partial number of "
            f"edges (truncated write?)", bad_shards=(shard_id,)
        ) from None
    if len(edges) != doc["n_edges"]:
        raise ShardIntegrityError(
            f"shard {shard_id}: sidecar holds {len(edges)} "
            f"edges, manifest says {doc['n_edges']}",
            bad_shards=(shard_id,),
        )
    digest = hashlib.sha256(b"dist-shard")
    digest.update(np.ascontiguousarray(edges).tobytes())
    if digest.hexdigest() != doc["sha256"]:
        raise ShardIntegrityError(
            f"shard {shard_id}: edge sidecar does not match "
            "its manifest fingerprint",
            bad_shards=(shard_id,),
        )
    mask = np.zeros(doc["n_vertices"], dtype=bool)
    mask[edges.ravel()] = True
    return Shard(
        shard_id=doc["shard_id"],
        n_shards=doc["n_shards"],
        n_vertices=doc["n_vertices"],
        edges=edges,
        boundary=shared[mask[shared]],
        method=doc["method"],
        dedup_safe=bool(doc.get("dedup_safe", True)),
    )


def load_shards(directory: PathLike) -> List[Shard]:
    """Load every scattered shard in ``directory`` back into memory.

    Each shard's edge sidecar is checked against the manifest's SHA-256
    and edge count before use; a mismatch (truncated write, flipped
    bytes, a missing sidecar next to a live manifest) **quarantines**
    the sidecar and raises :class:`ShardIntegrityError` naming every
    damaged shard — callers re-scatter (see :func:`resilient_scatter`)
    rather than build a wrong tree.
    """
    directory = Path(directory)
    manifest_paths = sorted(directory.glob(f"*{_MANIFEST_SUFFIX}"))
    if not manifest_paths:
        raise FileNotFoundError(f"no shard manifests under {directory}")
    boundary_path = directory / "boundary.i64"
    shared = (
        np.fromfile(str(boundary_path), dtype=np.int64)
        if boundary_path.exists()
        else np.empty(0, dtype=np.int64)
    )
    shards: List[Shard] = []
    problems: List[str] = []
    bad: List[object] = []
    t_start = time.perf_counter()
    for manifest_path in manifest_paths:
        try:
            doc = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            _quarantine(manifest_path, "bad_manifest")
            problems.append(f"{manifest_path.name}: unreadable ({exc})")
            continue
        if doc.get("format") != "repro-dist-shard/1":
            raise ValueError(f"not a shard manifest: {manifest_path}")
        stem = manifest_path.name[: -len(_MANIFEST_SUFFIX)]
        try:
            shards.append(
                _check_shard(directory, manifest_path, doc, shared)
            )
        except ShardIntegrityError as exc:
            _quarantine(directory / f"{stem}{_EDGES_SUFFIX}", "bad_fragment")
            problems.append(str(exc))
            bad.extend(exc.bad_shards)
    if problems:
        raise ShardIntegrityError("; ".join(problems), bad_shards=bad)
    total_edges = sum(int(len(s.edges)) for s in shards)
    _record_cost(
        "dist.load",
        time.perf_counter() - t_start,
        size=total_edges,
        nbytes=total_edges * 16,
    )
    return shards


def resilient_scatter(
    path: PathLike,
    n_shards: int,
    out_dir: PathLike,
    max_attempts: int = 3,
    **kwargs,
) -> "Tuple[ScatterResult, List[Shard]]":
    """Scatter + load with quarantine-and-re-scatter healing.

    A :class:`ShardIntegrityError` from the verification load (bad
    sha256, truncated or missing fragment — including injected
    ``fragment_corrupt`` faults) triggers a full re-scatter: the damaged
    sidecars are already quarantined, the fresh pass rewrites every
    fragment, and fault-schedule occurrence counters have advanced, so
    bounded fault schedules heal deterministically.  Returns the final
    ``(ScatterResult, shards)``.
    """
    failures = 0
    while True:
        result = scatter_edge_list(path, n_shards, out_dir, **kwargs)
        try:
            return result, result.load()
        except ShardIntegrityError:
            failures += 1
            if failures >= max_attempts:
                note_giveup("dist.scatter")
                raise
            note_retry("dist.scatter")
