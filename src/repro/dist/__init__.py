"""repro.dist — sharded, out-of-core pipeline execution.

The horizontal-scale layer: graphs whose edge sets exceed one worker's
memory (or one core's patience) are split into self-describing
:class:`~repro.dist.partition.Shard`\\ s, each shard's scalar forest is
reduced in a worker, and the forests are merged into a global tree that
is **node-for-node identical** to the single-process build.

``repro.dist.partition``
    Deterministic edge partitioners (``hash``/``range``/``degree``),
    boundary-vertex bookkeeping, and the shard manifest format.
``repro.dist.oocore``
    Streaming scatter of an on-disk edge list into per-shard fragments
    with bounded peak memory.
``repro.dist.executor``
    :class:`ShardedExecutor` — fan-out over a
    :class:`~repro.serve.workers.StageRunner`, exact merge via the
    filter-and-replay argument, final assembly through the tree's
    splice hook.
``repro.dist.plan``
    The ``--dist {auto,off,N}`` cost model (shard count, cut size,
    measure cost → partitioner + worker count).

The engine integrates all of this as an execution *backend*: like
:mod:`repro.accel`, the dist choice never enters a cache key because
the outputs are identical.
"""

from .executor import ShardedExecutor, reduce_shard
from .oocore import (
    ScatterResult,
    ShardIntegrityError,
    load_shards,
    resilient_scatter,
    scatter_edge_list,
)
from .partition import (
    PARTITIONERS,
    Shard,
    boundary_sets,
    cut_vertices,
    partition_edges,
)
from .plan import DistPlan, choose_partitioner, plan, usable_cpus

__all__ = [
    "PARTITIONERS",
    "Shard",
    "boundary_sets",
    "cut_vertices",
    "partition_edges",
    "ScatterResult",
    "ShardIntegrityError",
    "scatter_edge_list",
    "resilient_scatter",
    "load_shards",
    "ShardedExecutor",
    "reduce_shard",
    "DistPlan",
    "plan",
    "choose_partitioner",
    "usable_cpus",
]
