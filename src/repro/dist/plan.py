"""Planning: when to shard, how wide, and with which partitioner.

The dist backend only pays off when the graph is big enough to amortize
worker fan-out and the host actually has cores to fan out to.  `plan`
turns the user-facing ``--dist {auto,off,N}`` knob into either ``None``
(run single-process) or a :class:`DistPlan`, using three signals the
ISSUE calls out:

* **shard count / workers** — bounded by the host's usable cores
  (``os.sched_getaffinity`` when available, so container CPU limits are
  respected);
* **cut size** — candidate partitions are actually *built* (the
  partitioners are vectorized and cheap relative to one tree build) and
  scored by edge balance plus boundary size;
* **the registry ``cost`` field** — an expensive field (betweenness)
  dominates end-to-end time, so sharding the tree stage is worth doing
  on smaller graphs than for a cheap field.

On top of those static signals, ``plan`` consults the *measured* cost
ledger (:mod:`repro.obs.costs`) when one is supplied: if this host has
recorded both single-process tree builds (``stage.tree``) and sharded
builds (``dist.tree``) at a comparable size, and the sharded path is
not measurably winning, auto declines regardless of what the static
thresholds say.  That is the ROADMAP's "measured, not assumed" exit
criterion — on a 1-core-ish host where sharding was observed to lose
(0.77–0.83× in the PR5 ledger), ``--dist auto`` now stays
single-process.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Union

from ..graph.csr import CSRGraph
from .partition import PARTITIONERS, Shard, cut_vertices, partition_edges

__all__ = [
    "DistPlan",
    "usable_cpus",
    "score_partition",
    "choose_partitioner",
    "plan",
    "last_decline_reason",
]

#: ``--dist auto`` leaves graphs below this many edges single-process
#: (scaled down by the measure's declared cost — see :func:`plan`).
AUTO_MIN_EDGES = 50_000

#: Relative weight of cut size against edge imbalance when scoring.
_CUT_WEIGHT = 0.5


@dataclass(frozen=True)
class DistPlan:
    """A resolved decision to shard: who, how wide, and why."""

    partitioner: str
    n_shards: int
    workers: int
    reason: str

    def summary(self) -> dict:
        return {
            "partitioner": self.partitioner,
            "n_shards": self.n_shards,
            "workers": self.workers,
            "reason": self.reason,
        }


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def score_partition(shards: List[Shard]) -> float:
    """Lower is better: edge imbalance + weighted relative cut size.

    Imbalance is ``max shard edges / mean shard edges`` (1.0 = perfect);
    cut is the fraction of vertices on any boundary.  The weighted sum
    mirrors what the two quantities cost at run time: imbalance is
    idle-worker time, cut size is merge-forest size.
    """
    if not shards:
        return float("inf")
    sizes = [s.n_edges for s in shards]
    mean = sum(sizes) / len(sizes)
    imbalance = (max(sizes) / mean) if mean else 1.0
    n = shards[0].n_vertices
    cut = (cut_vertices(shards) / n) if n else 0.0
    return imbalance + _CUT_WEIGHT * cut


def choose_partitioner(graph: CSRGraph, n_shards: int) -> str:
    """Build every candidate partition and keep the best-scoring one
    (ties go to the earlier name in :data:`PARTITIONERS`)."""
    best, best_score = PARTITIONERS[0], float("inf")
    for method in PARTITIONERS:
        score = score_partition(partition_edges(graph, n_shards, method))
        if score < best_score - 1e-12:
            best, best_score = method, score
    return best


_COST_SCALE = {"cheap": 1.0, "moderate": 0.5, "expensive": 0.25}

#: Sharding must beat single-process by at least this factor in the
#: *measured* ledger before auto agrees to it — fan-out has fixed costs
#: the EWMA smooths over, so a marginal win is treated as a loss.
MEASURED_WIN_MARGIN = 0.9

# Why the last `plan(..., "auto", ...)` call said no (None after a
# yes).  Module-level because plan() signals decline by returning None,
# which can't carry the reason; the pipeline reads it back through
# last_decline_reason() for its --explain note.
_LAST_DECLINE: Optional[str] = None


def last_decline_reason() -> Optional[str]:
    """Why the most recent auto plan declined to shard (or ``None``)."""
    return _LAST_DECLINE


def _decline(reason: str) -> None:
    global _LAST_DECLINE
    _LAST_DECLINE = reason


def _ledger_verdict(ledger, measure: Optional[str], n_edges: int):
    """Measured single vs sharded seconds at this size, if both exist.

    Returns ``(single_s, dist_s)`` or ``None`` when the ledger lacks
    either side of the comparison (first runs fall back to the static
    thresholds — the ledger refines decisions, it never blocks them).
    """
    if ledger is None:
        return None
    try:
        single = ledger.estimate("stage.tree", measure=measure, size=n_edges)
        dist_s = ledger.estimate("dist.tree", size=n_edges)
    except Exception:
        return None
    if single is None or dist_s is None:
        return None
    return single, dist_s


def plan(
    dist: Union[None, str, int, DistPlan],
    graph: Optional[CSRGraph] = None,
    *,
    measure_cost: str = "moderate",
    partitioner: str = "auto",
    measure: Optional[str] = None,
    ledger=None,
) -> Optional[DistPlan]:
    """Resolve a ``--dist`` value to a :class:`DistPlan` (or ``None``).

    ``dist`` is ``None``/``"off"``/``0`` (single-process), ``"auto"``
    (shard when the graph and the host justify it), an explicit worker
    count, or an already-resolved plan (returned as-is).
    ``measure_cost`` is the registry spec's ``cost`` field; expensive
    fields lower the auto threshold.  ``partitioner`` pins a method or
    lets the cost model pick (``"auto"``, needs ``graph``).

    ``ledger`` (a :class:`repro.obs.costs.CostLedger`) and ``measure``
    (the measure name, e.g. ``"kcore"``) let auto override the static
    decision with *measured* costs: when the ledger holds both a
    single-process ``stage.tree`` time and a sharded ``dist.tree`` time
    at a comparable size, auto shards only if the measured sharded path
    wins by at least ``1 - MEASURED_WIN_MARGIN``.
    """
    if isinstance(dist, DistPlan):
        return dist
    if dist is None or dist == 0 or (isinstance(dist, str) and dist == "off"):
        return None

    if isinstance(dist, str):
        if dist == "auto":
            cpus = usable_cpus()
            if cpus < 2:
                _decline(f"auto: {cpus} usable cpu, nothing to fan out to")
                return None
            if graph is None:
                raise ValueError("--dist auto needs the graph to decide")
            threshold = AUTO_MIN_EDGES * _COST_SCALE.get(measure_cost, 0.5)
            if graph.n_edges < threshold:
                _decline(
                    f"auto: {graph.n_edges} edges < {threshold:.0f} "
                    f"threshold ({measure_cost} field)"
                )
                return None
            verdict = _ledger_verdict(ledger, measure, graph.n_edges)
            if verdict is not None:
                single_s, dist_s = verdict
                if dist_s >= single_s * MEASURED_WIN_MARGIN:
                    _decline(
                        f"auto: measured sharded build {dist_s:.3f}s vs "
                        f"single-process {single_s:.3f}s at "
                        f"~{graph.n_edges} edges — sharding loses here"
                    )
                    return None
                measured_note = (
                    f", measured win {dist_s:.3f}s vs {single_s:.3f}s"
                )
            else:
                measured_note = ""
            workers = min(4, cpus)
            reason = (
                f"auto: {graph.n_edges} edges >= {threshold:.0f} "
                f"({measure_cost} field), {cpus} usable cpus"
                f"{measured_note}"
            )
        else:
            try:
                workers = int(dist)
            except ValueError:
                raise ValueError(
                    f"--dist must be 'auto', 'off' or a worker count; "
                    f"got {dist!r}"
                )
            return plan(
                workers, graph,
                measure_cost=measure_cost, partitioner=partitioner,
            )
    else:
        workers = int(dist)
        if workers < 0:
            raise ValueError("--dist worker count must be >= 0")
        if workers == 0:
            return None
        reason = f"explicit worker count {workers}"

    n_shards = max(2, workers)
    if partitioner == "auto":
        method = (
            choose_partitioner(graph, n_shards)
            if graph is not None
            else PARTITIONERS[0]
        )
    elif partitioner in PARTITIONERS:
        method = partitioner
    else:
        raise ValueError(
            f"unknown partitioner {partitioner!r}; choose from "
            f"{', '.join(PARTITIONERS)} or 'auto'"
        )
    return DistPlan(
        partitioner=method, n_shards=n_shards, workers=workers,
        reason=reason,
    )
