"""Timestamped edge streams → per-window terrain frames.

:class:`Timeline` is the temporal front-end of the pipeline: it
consumes a non-decreasing stream of ``(u, v, ts, w)`` rows (chunked,
as produced by :func:`repro.graph.io.iter_temporal_edges_sorted`),
groups them into frames at ``t_k = origin + horizon + k * stride``,
and drives one :class:`~repro.stream.incremental.StreamingScalarTree`
through a :class:`~repro.stream.window.SlidingWindow` so each frame's
graph is exactly the edges observed in the last ``horizon`` time units
(at frame granularity — edits enter the window at their frame's
``t_end``, so expiry is quantized to frame boundaries; with the
default tumbling stride ``stride == horizon`` this is *exact* window
semantics, frame ``k`` holds precisely the edges with
``t_{k-1} < ts <= t_k``).

Scalars are refreshed per frame — the measure is recomputed on the
window graph and the changed vertices patched through
``stream.apply`` *directly* (never through the window: windowed
``SetScalar`` edits would revert to stale baselines on expiry and
corrupt later windows).

Each emitted :class:`WindowFrame` carries the compacted window graph,
its scalar field, and the vertex/super trees, and is asserted (in
tier-1 tests) to be node-identical to a from-scratch build of the
same window — the incremental path changes cost, never arrays.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from ..core.scalar_tree import ScalarTree
from ..core.super_tree import SuperTree
from ..engine import registry
from ..graph.builders import empty_graph, from_edge_array
from ..graph.csr import CSRGraph
from ..graph.io import (
    DEFAULT_CHUNK_EDGES,
    iter_temporal_edge_chunks,
    iter_temporal_edges_sorted,
)
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..core.scalar_graph import ScalarGraph
from ..stream.editlog import AddEdge, RemoveEdge, SetScalar
from ..stream.incremental import StreamingScalarTree
from ..stream.window import SlidingWindow

__all__ = [
    "WindowFrame",
    "Timeline",
    "temporal_log_stats",
    "frames_from_log",
    "frames_from_rows",
]

_M_WINDOWS = obs_metrics.REGISTRY.counter(
    "repro_evolve_windows_total", "Terrain frames emitted by timelines."
)
_M_WINDOW_SECONDS = obs_metrics.REGISTRY.histogram(
    "repro_evolve_window_seconds", "Per-window maintenance time."
)


@dataclass
class WindowFrame:
    """One terrain frame: the window ending at ``t_end``.

    ``graph``/``scalars`` are the compacted window snapshot (safe to
    keep; later frames do not mutate them), ``tree`` the maintained
    vertex scalar tree and ``super`` the display (super or simplified)
    tree — what :mod:`repro.evolve.tracker` cuts peaks from and
    :mod:`repro.evolve.diff` rasterizes.
    """

    index: int
    t_end: float
    horizon: float
    graph: CSRGraph
    scalars: np.ndarray
    tree: ScalarTree
    super: SuperTree
    n_edges: int
    n_new_edges: int
    stream_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def t_start(self) -> float:
        """Window start (exclusive): the frame covers ``(t_start, t_end]``.

        Exception: frame 0 also includes rows stamped exactly at the
        origin — an explicit ``origin`` equal to the first timestamp
        keeps those rows rather than silently dropping them.
        """
        return self.t_end - self.horizon

    def describe(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "t_end": self.t_end,
            "t_start": self.t_start,
            "n_edges": self.n_edges,
            "n_new_edges": self.n_new_edges,
            "super_nodes": int(self.super.n_nodes),
            "incremental": int(self.stream_stats.get("incremental", 0)),
            "full_rebuilds": int(self.stream_stats.get("full_rebuilds", 0)),
        }


class Timeline:
    """Stateful window engine over a sorted temporal edge stream.

    Parameters
    ----------
    n_vertices:
        Fixed vertex universe (temporal logs address vertices by id).
    measure:
        Registered vertex measure recomputed per window.
    horizon:
        Window length W.
    stride:
        Frame spacing S; default ``horizon`` (tumbling windows, the
        exact-semantics case).  ``stride < horizon`` gives overlapping
        windows with expiry quantized to frame boundaries.

        Tumbling windows are maintained by *diffing* consecutive
        window edge sets (vectorized symmetric difference of canonical
        pair keys) so per-window tree work is proportional to the
        churned edges, not the window size; overlapping windows go
        through :class:`~repro.stream.window.SlidingWindow` leases.
    origin:
        Time origin; frame ``k`` ends at ``origin + horizon +
        k * stride``.  Default: just below the first timestamp, so the
        first event always lands in frame 0.
    """

    def __init__(
        self,
        n_vertices: int,
        measure: str = "degree",
        horizon: float = 1.0,
        stride: Optional[float] = None,
        origin: Optional[float] = None,
        bins: Optional[int] = None,
        scheme: str = "quantile",
        rebuild_threshold: float = 0.5,
        backend: Optional[str] = None,
    ) -> None:
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if stride is not None and stride <= 0:
            raise ValueError("stride must be positive")
        spec = registry.get_measure(measure)
        if spec.kind != "vertex":
            raise ValueError(
                f"timeline needs a vertex measure, {measure!r} is {spec.kind}"
            )
        self.n_vertices = int(n_vertices)
        self.measure = measure
        self.horizon = float(horizon)
        self.stride = float(stride) if stride is not None else float(horizon)
        self.origin = origin
        self.bins = bins
        self.scheme = scheme
        self.backend = backend
        graph = empty_graph(self.n_vertices)
        scalars = registry.compute(measure, graph, backend=backend)
        self.stream = StreamingScalarTree(
            ScalarGraph(graph, scalars), rebuild_threshold=rebuild_threshold
        )
        self.window = SlidingWindow(self.stream, self.horizon)
        self._t_end: Optional[float] = None
        self._index = 0
        self._buffer: List[np.ndarray] = []
        self._last_ts = -math.inf
        # Tumbling windows (stride == horizon) never overlap, so the
        # next window's edge set replaces the current one wholesale —
        # the transition is the vectorized symmetric difference of the
        # two canonical pair sets, and only the churned edges touch the
        # tree.  Overlapping windows go through the SlidingWindow's
        # per-entry lease machinery instead.
        self._tumbling = self.stride == self.horizon
        self._live_keys = np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------
    def _window_keys(self, rows: np.ndarray) -> np.ndarray:
        """Sorted unique canonical pair keys (``u * n + v``, u < v)."""
        uv = rows[:, :2].astype(np.int64)
        u = np.minimum(uv[:, 0], uv[:, 1])
        v = np.maximum(uv[:, 0], uv[:, 1])
        keep = u != v
        return np.unique(u[keep] * self.n_vertices + v[keep])

    def _emit(self) -> WindowFrame:
        with obs_trace.span(
            "evolve.window", index=self._index, measure=self.measure
        ), _M_WINDOW_SECONDS.time():
            rows = (
                np.concatenate(self._buffer)
                if self._buffer
                else np.empty((0, 4), dtype=np.float64)
            )
            self._buffer = []
            if self._tumbling:
                keys = self._window_keys(rows)
                gone = np.setdiff1d(
                    self._live_keys, keys, assume_unique=True
                )
                new = np.setdiff1d(keys, self._live_keys, assume_unique=True)
                n = self.n_vertices
                # The key set IS the window edge set, so the frame
                # graph comes straight from it (vectorized) rather
                # than from compacting the delta's per-vertex edit
                # lists; and because the measure can be computed on
                # that graph before touching the stream, the edge
                # diff and the scalar refresh fold into ONE apply —
                # a single theta-bounded rewind/replay per frame
                # instead of two.
                pairs = np.column_stack([keys // n, keys % n])
                graph = from_edge_array(pairs, n_vertices=n)
                values = registry.compute(
                    self.measure, graph, backend=self.backend
                )
                changed = np.flatnonzero(values != self.stream.scalars)
                edits: List[object] = [
                    RemoveEdge(int(k) // n, int(k) % n) for k in gone
                ]
                edits += [AddEdge(int(k) // n, int(k) % n) for k in new]
                edits += [
                    SetScalar(int(v), float(values[v])) for v in changed
                ]
                if edits:
                    self.stream.apply(edits)
                self._live_keys = keys
                n_new_edges = len(new)
            else:
                # One AddEdge per distinct pair: duplicates within a
                # frame are a single window touch anyway, and
                # re-touching an edge already live is a no-op on the
                # tree (theta stays -inf for it), so the incremental
                # cost tracks actual churn.
                seen: Dict[Tuple[int, int], None] = {}
                for u, v in rows[:, :2].astype(np.int64):
                    if u == v:
                        continue
                    pair = (int(u), int(v)) if u < v else (int(v), int(u))
                    seen.setdefault(pair, None)
                edits = [AddEdge(u, v) for u, v in seen]
                self.window.push(self._t_end, edits)
                n_new_edges = len(edits)

                graph = self.stream.delta.compact()
                values = registry.compute(
                    self.measure, graph, backend=self.backend
                )
                changed = np.flatnonzero(values != self.stream.scalars)
                if len(changed):
                    self.stream.apply(
                        [SetScalar(int(v), float(values[v])) for v in changed]
                    )
            frame = WindowFrame(
                index=self._index,
                t_end=self._t_end,
                horizon=self.horizon,
                graph=graph,
                scalars=self.stream.scalars.copy(),
                tree=self.stream.tree,
                super=self.stream.display_tree(self.bins, self.scheme),
                n_edges=int(graph.n_edges),
                n_new_edges=n_new_edges,
                stream_stats=dict(self.stream.stats),
            )
        _M_WINDOWS.inc()
        self._index += 1
        self._t_end += self.stride
        return frame

    def frames(
        self, chunks: Iterable[np.ndarray]
    ) -> Iterator[WindowFrame]:
        """Yield one :class:`WindowFrame` per elapsed frame interval.

        ``chunks`` are ``(k, 4)`` row blocks in non-decreasing ``ts``
        order (:func:`repro.graph.io.iter_temporal_edges_sorted`
        provides this for unsorted logs); out-of-order input raises.
        Quiet intervals still emit (empty) frames — expiry-driven
        deaths need them.  A trailing partial window is emitted last.
        """
        emitted_any = False
        for chunk in chunks:
            chunk = np.asarray(chunk, dtype=np.float64)
            if chunk.ndim != 2 or chunk.shape[1] < 3:
                raise ValueError("chunks must be (k, >=3) row arrays")
            if len(chunk) == 0:
                continue
            ts_col = chunk[:, 2]
            if ts_col[0] < self._last_ts or np.any(np.diff(ts_col) < 0):
                raise ValueError(
                    "timestamps must be non-decreasing; sort the log "
                    "first (iter_temporal_edges_sorted)"
                )
            self._last_ts = float(ts_col[-1])
            if self._t_end is None:
                start = (
                    self.origin
                    if self.origin is not None
                    else math.nextafter(float(ts_col[0]), -math.inf)
                )
                self._t_end = start + self.horizon
            i = 0
            while i < len(chunk):
                j = int(np.searchsorted(ts_col, self._t_end, side="right"))
                if j > i:
                    self._buffer.append(chunk[i:j])
                    i = j
                if i < len(chunk):
                    yield self._emit()
                    emitted_any = True
        if self._buffer or not emitted_any and self._t_end is not None:
            yield self._emit()

    # Convenience: the current window's edge set, for equivalence
    # checks against from-scratch builds.
    def window_graph(self) -> CSRGraph:
        return self.stream.delta.compact()


def temporal_log_stats(
    path, chunk_edges: int = DEFAULT_CHUNK_EDGES
) -> Dict[str, float]:
    """One streaming pass over a temporal log: vertex/edge/time bounds."""
    n_vertices = 0
    n_rows = 0
    t_min, t_max = math.inf, -math.inf
    for chunk in iter_temporal_edge_chunks(path, chunk_edges):
        n_rows += len(chunk)
        n_vertices = max(n_vertices, int(chunk[:, :2].max()) + 1)
        t_min = min(t_min, float(chunk[:, 2].min()))
        t_max = max(t_max, float(chunk[:, 2].max()))
    return {
        "n_vertices": n_vertices,
        "n_rows": n_rows,
        "t_min": t_min,
        "t_max": t_max,
    }


def frames_from_log(
    path,
    measure: str = "degree",
    horizon: float = 1.0,
    stride: Optional[float] = None,
    origin: Optional[float] = None,
    n_vertices: Optional[int] = None,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
    scratch_dir=None,
    **timeline_kwargs,
) -> Iterator[WindowFrame]:
    """Frames from an (possibly unsorted) on-disk temporal edge list.

    When ``n_vertices`` is ``None`` a first streaming pass sizes the
    vertex universe; the second pass replays the log timestamp-sorted
    through :func:`~repro.graph.io.iter_temporal_edges_sorted` — the
    full log is never materialized in memory.
    """
    if n_vertices is None:
        n_vertices = int(temporal_log_stats(path, chunk_edges)["n_vertices"])
    timeline = Timeline(
        n_vertices,
        measure=measure,
        horizon=horizon,
        stride=stride,
        origin=origin,
        **timeline_kwargs,
    )
    return timeline.frames(
        iter_temporal_edges_sorted(path, chunk_edges, scratch_dir)
    )


def frames_from_rows(
    rows: np.ndarray,
    n_vertices: int,
    measure: str = "degree",
    horizon: float = 1.0,
    stride: Optional[float] = None,
    origin: Optional[float] = None,
    **timeline_kwargs,
) -> Iterator[WindowFrame]:
    """Frames from an in-memory ``(k, >=3)`` row array (must be sorted
    by timestamp) — e.g. a
    :class:`~repro.graph.generators.DynamicCommunityLog`'s ``rows``."""
    timeline = Timeline(
        n_vertices,
        measure=measure,
        horizon=horizon,
        stride=stride,
        origin=origin,
        **timeline_kwargs,
    )
    return timeline.frames([np.asarray(rows, dtype=np.float64)])
