"""Windowed terrain evolution over timestamped edge streams.

The temporal subsystem the ROADMAP's community-evolution item calls
for, layered on :mod:`repro.stream` and served by :mod:`repro.serve`:

* :mod:`~repro.evolve.timeline` — timestamped edge streams →
  per-window edit batches → one terrain frame per window, driven
  through :class:`~repro.stream.window.SlidingWindow` so each frame
  is exactly the last-``horizon`` edge set;
* :mod:`~repro.evolve.tracker` — Jaccard matching of peaks across
  consecutive windows into trajectories with
  birth/growth/shrink/merge/split/death lifecycle events, scored by
  :func:`~repro.evolve.tracker.event_f1` against planted ground truth
  (:func:`repro.graph.generators.dynamic_planted_partition`);
* :mod:`~repro.evolve.diff` — signed terrain-diff heightfields
  between windows, cached as first-class tile artifacts.
"""

from .diff import DiffTiler, diff_heightfield
from .timeline import (
    Timeline,
    WindowFrame,
    frames_from_log,
    frames_from_rows,
    temporal_log_stats,
)
from .tracker import (
    PeakSnapshot,
    PeakTracker,
    TrackEvent,
    Trajectory,
    auto_alpha,
    event_f1,
    peaks_from_tree,
)

__all__ = [
    "Timeline",
    "WindowFrame",
    "frames_from_log",
    "frames_from_rows",
    "temporal_log_stats",
    "PeakSnapshot",
    "PeakTracker",
    "TrackEvent",
    "Trajectory",
    "auto_alpha",
    "event_f1",
    "peaks_from_tree",
    "DiffTiler",
    "diff_heightfield",
]
