"""Signed terrain-diff heightfields between consecutive windows.

A *diff field* is the cell-wise height change ``cur − prev`` between
two frames' rasterized terrains (same resolution; cells correspond in
normalized layout coordinates — each frame's layout is deterministic,
so persistent structure stays put and the diff reads as rise/fall).
Cells that are open ground in both frames are exactly zero; the
``node`` grid attributes each changed cell to the current frame's
super node (falling back to the vanished node for razed cells).

Diffs and their tiles are *first-class cached artifacts*: keyed by
:func:`~repro.engine.cache.stage_key` over the two frames' height
fingerprints and stored through the shared
:class:`~repro.engine.cache.ArtifactCache` — the same content-hash
identity the pipeline's own stages use, so a warm diff tile is a
dictionary lookup and survives on disk across processes.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..engine.cache import ArtifactCache, fingerprint_array, stage_key
from ..obs import trace as obs_trace
from ..terrain.heightfield import Heightfield, Tile, rasterize
from ..terrain.layout2d import layout_tree

__all__ = ["diff_heightfield", "DiffTiler"]


def diff_heightfield(prev: Heightfield, cur: Heightfield) -> Heightfield:
    """The signed change field ``cur − prev``.

    The result's ``base`` is 0 (no change); its extent is the current
    frame's.  Raises when resolutions disagree.
    """
    if prev.height.shape != cur.height.shape:
        raise ValueError(
            f"heightfield shapes differ: {prev.height.shape} vs "
            f"{cur.height.shape}"
        )
    delta = cur.height - prev.height
    both_ground = (cur.node < 0) & (prev.node < 0)
    delta[both_ground] = 0.0
    node = np.where(cur.node >= 0, cur.node, prev.node)
    return Heightfield(delta, node, cur.extent, 0.0)


class DiffTiler:
    """Rasterize frames and serve cached diff fields and tiles.

    Feed frames in order with :meth:`add_frame`; then ``diff(w)`` is
    the change field of window ``w`` against ``w − 1`` and
    ``tile(w, tx, ty)`` one ``tile_size``² block of it, both cached
    through the supplied :class:`~repro.engine.cache.ArtifactCache`.
    """

    def __init__(
        self,
        cache: Optional[ArtifactCache] = None,
        resolution: int = 256,
        tile_size: int = 64,
        backend: Optional[str] = None,
    ) -> None:
        if resolution % tile_size != 0:
            raise ValueError("resolution must be a multiple of tile_size")
        self.cache = cache if cache is not None else ArtifactCache()
        self.resolution = int(resolution)
        self.tile_size = int(tile_size)
        self.backend = backend
        self._fields: Dict[int, Heightfield] = {}
        self._fps: Dict[int, str] = {}

    @property
    def tiles_per_side(self) -> int:
        return self.resolution // self.tile_size

    def add_frame(self, frame) -> Heightfield:
        """Rasterize one window frame; keep its field for diffing."""
        layout = layout_tree(frame.super, backend=self.backend)
        hf = rasterize(layout, self.resolution, backend=self.backend)
        self._fields[frame.index] = hf
        self._fps[frame.index] = fingerprint_array(hf.height)
        return hf

    def heightfield(self, window: int) -> Heightfield:
        try:
            return self._fields[window]
        except KeyError:
            raise KeyError(f"window {window} not rasterized") from None

    def _pair(self, window: int):
        if window not in self._fields or window - 1 not in self._fields:
            raise KeyError(
                f"diff needs windows {window - 1} and {window} rasterized"
            )
        return self._fields[window - 1], self._fields[window]

    def diff(self, window: int) -> Heightfield:
        """Change field of ``window`` vs ``window − 1`` (cached)."""
        prev, cur = self._pair(window)
        key = stage_key(
            "evolve.diff",
            {"resolution": self.resolution},
            self._fps[window - 1],
            self._fps[window],
        )
        with obs_trace.span("evolve.diff", window=window) as sp:
            value = self.cache.get(key)
            if value is None:
                value = self.cache.put(key, diff_heightfield(prev, cur))
                sp.set(built=True)
        return value

    def tile(self, window: int, tx: int, ty: int) -> Tile:
        """One ``tile_size``² block of ``diff(window)`` (cached)."""
        per = self.tiles_per_side
        if not (0 <= tx < per and 0 <= ty < per):
            raise KeyError(
                f"no diff tile ({tx}, {ty}) — grid is {per}x{per}"
            )
        key = stage_key(
            "evolve.difftile",
            {
                "resolution": self.resolution,
                "tile_size": self.tile_size,
                "tx": int(tx),
                "ty": int(ty),
            },
            self._fps[window - 1],
            self._fps[window],
        )
        value = self.cache.get(key)
        if value is None:
            field = self.diff(window)
            size = self.tile_size
            crop = field.crop(ty * size, tx * size, size, size)
            value = self.cache.put(
                key,
                Tile(0, tx, ty, crop.height, crop.node, crop.extent, 0.0),
            )
        return value

    def summary(self, window: int) -> Dict[str, object]:
        """Aggregate change statistics for one window diff."""
        field = self.diff(window)
        delta = field.height
        raised = int(np.count_nonzero(delta > 0))
        lowered = int(np.count_nonzero(delta < 0))
        return {
            "window": int(window),
            "resolution": self.resolution,
            "cells_raised": raised,
            "cells_lowered": lowered,
            "max_rise": float(delta.max(initial=0.0)),
            "max_drop": float(-delta.min(initial=0.0)),
            "mean_abs": float(np.abs(delta).mean()) if delta.size else 0.0,
        }
