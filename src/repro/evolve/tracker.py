"""Peak lifecycle tracking across window frames.

The tracker follows the classic dynamic-community matching recipe
(Greene et al.): cut each frame's terrain at a height ``alpha``
(every peak is one maximal α-connected component,
:func:`repro.terrain.peaks.peaks_at`), then match the current frame's
peaks against the live trajectories' last member sets by Jaccard
similarity.  A similarity above ``jaccard`` is a *match*; matches are
resolved into lifecycle events:

* one peak ↔ one trajectory — continuation (plus a ``growth`` /
  ``shrink`` event when the size moved by more than
  ``growth_threshold``);
* one peak ↔ several trajectories — ``merge``: the best-matching
  trajectory continues, the others end absorbed into it;
* several peaks ↔ one trajectory — ``split``: the best-matching peak
  continues the trajectory, the others spawn new trajectories;
* unmatched peak — ``birth``;  unmatched trajectory — ``death``.

Matching is deterministic: candidate pairs are processed in
``(-jaccard, trajectory id, peak index)`` order, which is only
reproducible because window contents themselves are (the
:class:`~repro.stream.window.SlidingWindow` equal-timestamp
tie-break).  :func:`event_f1` scores a tracked event list against a
scheduled ground truth (e.g. a
:class:`~repro.graph.generators.DynamicCommunityLog`) with a ±1
window tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.super_tree import SuperTree
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..terrain.peaks import peaks_at

__all__ = [
    "PeakSnapshot",
    "TrackEvent",
    "Trajectory",
    "PeakTracker",
    "peaks_from_tree",
    "auto_alpha",
    "event_f1",
]

LIFECYCLE_KINDS = ("birth", "death", "merge", "split", "growth", "shrink")

_M_EVENTS = obs_metrics.REGISTRY.counter(
    "repro_evolve_events_total", "Tracker lifecycle events.", ("kind",)
)


@dataclass(frozen=True)
class PeakSnapshot:
    """One peak observed in one window."""

    window: int
    members: FrozenSet[int]
    summit: float
    alpha: float

    @property
    def size(self) -> int:
        return len(self.members)


@dataclass(frozen=True)
class TrackEvent:
    """One lifecycle event.

    ``trajectory`` is the primary trajectory: the surviving one for a
    merge, the splitting one for a split.  ``others`` lists the
    absorbed trajectories (merge) or the spawned ones (split).
    """

    kind: str
    window: int
    trajectory: int
    others: Tuple[int, ...] = ()
    size: int = 0
    prev_size: int = 0

    def describe(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "window": self.window,
            "trajectory": self.trajectory,
            "others": list(self.others),
            "size": self.size,
            "prev_size": self.prev_size,
        }


@dataclass
class Trajectory:
    """The life of one tracked peak across windows."""

    id: int
    born: int
    died: Optional[int] = None
    windows: List[int] = field(default_factory=list)
    sizes: List[int] = field(default_factory=list)
    summits: List[float] = field(default_factory=list)
    members: FrozenSet[int] = frozenset()

    @property
    def alive(self) -> bool:
        return self.died is None

    def _observe(self, snap: PeakSnapshot) -> None:
        self.windows.append(snap.window)
        self.sizes.append(snap.size)
        self.summits.append(snap.summit)
        self.members = snap.members

    def describe(self) -> Dict[str, object]:
        return {
            "id": self.id,
            "born": self.born,
            "died": self.died,
            "windows": list(self.windows),
            "sizes": list(self.sizes),
            "summits": list(self.summits),
            "members": sorted(self.members),
        }


def auto_alpha(scalars: np.ndarray) -> float:
    """Default cut height: halfway up the scalar range."""
    if np.size(scalars) == 0:
        return 0.0
    lo = float(np.min(scalars))
    hi = float(np.max(scalars))
    return lo + 0.5 * (hi - lo)


def peaks_from_tree(
    tree: SuperTree,
    alpha: Optional[float] = None,
    min_size: int = 3,
    window: int = 0,
) -> List[PeakSnapshot]:
    """Cut ``tree`` at ``alpha`` and snapshot every peak of
    ``min_size`` or more items.

    Uses :func:`~repro.terrain.peaks.peaks_at` — each snapshot is one
    *full* maximal α-connected component (``highest_peaks`` would give
    only summit subtrees, the wrong notion for community membership).
    """
    if alpha is None:
        alpha = auto_alpha(tree.scalars)
    snaps = []
    for peak in peaks_at(tree, alpha):
        if peak.size < min_size:
            continue
        snaps.append(
            PeakSnapshot(
                window=window,
                members=frozenset(int(x) for x in peak.items),
                summit=peak.summit,
                alpha=float(alpha),
            )
        )
    return snaps


def _jaccard(a: FrozenSet[int], b: FrozenSet[int]) -> float:
    if not a and not b:
        return 0.0
    inter = len(a & b)
    if inter == 0:
        return 0.0
    return inter / (len(a) + len(b) - inter)


class PeakTracker:
    """Match peaks window-over-window into trajectories and events.

    Feed windows in order with :meth:`observe`; read
    :attr:`trajectories` and :attr:`events` at any point.
    """

    def __init__(
        self,
        jaccard: float = 0.3,
        growth_threshold: float = 0.25,
        min_size: int = 3,
    ) -> None:
        if not 0.0 < jaccard <= 1.0:
            raise ValueError("jaccard threshold must be in (0, 1]")
        self.jaccard = float(jaccard)
        self.growth_threshold = float(growth_threshold)
        self.min_size = int(min_size)
        self.trajectories: Dict[int, Trajectory] = {}
        self.events: List[TrackEvent] = []
        self._live: List[int] = []
        self._next_id = 0
        self.windows_observed = 0

    # ------------------------------------------------------------------
    @property
    def live(self) -> List[int]:
        """Ids of trajectories alive after the last observed window."""
        return list(self._live)

    def _spawn(self, snap: PeakSnapshot) -> Trajectory:
        traj = Trajectory(id=self._next_id, born=snap.window)
        self._next_id += 1
        traj._observe(snap)
        self.trajectories[traj.id] = traj
        return traj

    def _event(self, event: TrackEvent) -> None:
        self.events.append(event)
        _M_EVENTS.inc(kind=event.kind)

    def observe_frame(self, frame, alpha=None) -> List[TrackEvent]:
        """Track a :class:`~repro.evolve.timeline.WindowFrame`."""
        return self.observe(
            frame.index,
            peaks_from_tree(
                frame.super, alpha, self.min_size, window=frame.index
            ),
        )

    def observe(
        self, window: int, peaks: Sequence[PeakSnapshot]
    ) -> List[TrackEvent]:
        """Match ``window``'s peaks against live trajectories.

        Returns the events this window produced (also appended to
        :attr:`events`).
        """
        if window < self.windows_observed:
            raise ValueError(
                f"windows must advance: got {window} after observing "
                f"{self.windows_observed}"
            )
        with obs_trace.span(
            "evolve.track", window=window, peaks=len(peaks)
        ):
            return self._observe(
                window, [p for p in peaks if p.size >= self.min_size]
            )

    def _observe(
        self, window: int, peaks: List[PeakSnapshot]
    ) -> List[TrackEvent]:
        start = len(self.events)
        # Candidate matches above the threshold, both directions.
        cands: List[Tuple[float, int, int]] = []  # (J, tid, peak index)
        peak_matches: Dict[int, List[int]] = {i: [] for i in range(len(peaks))}
        traj_matches: Dict[int, List[int]] = {t: [] for t in self._live}
        for tid in self._live:
            last = self.trajectories[tid].members
            for i, snap in enumerate(peaks):
                j = _jaccard(last, snap.members)
                if j >= self.jaccard:
                    cands.append((j, tid, i))
                    peak_matches[i].append(tid)
                    traj_matches[tid].append(i)

        # Greedy 1-1 continuation assignment, strongest overlap first.
        cands.sort(key=lambda c: (-c[0], c[1], c[2]))
        peak_of: Dict[int, int] = {}  # tid -> peak index
        traj_of: Dict[int, int] = {}  # peak index -> tid
        for _j, tid, i in cands:
            if tid in peak_of or i in traj_of:
                continue
            peak_of[tid] = i
            traj_of[i] = tid

        # Continuations (+ growth / shrink).
        for i, tid in sorted(traj_of.items()):
            traj = self.trajectories[tid]
            prev_size = traj.sizes[-1]
            traj._observe(peaks[i])
            size = peaks[i].size
            if prev_size and abs(size - prev_size) / prev_size >= (
                self.growth_threshold
            ):
                kind = "growth" if size > prev_size else "shrink"
                self._event(
                    TrackEvent(kind, window, tid, (), size, prev_size)
                )

        # Splits: a trajectory matched by several peaks — unassigned
        # matched peaks spawn new trajectories off it.
        spawned: Dict[int, int] = {}  # peak index -> new tid
        for tid in self._live:
            extra = [
                i for i in traj_matches[tid]
                if i not in traj_of and i not in spawned
            ]
            if not extra or len(traj_matches[tid]) < 2:
                continue
            children = []
            for i in extra:
                child = self._spawn(peaks[i])
                spawned[i] = child.id
                children.append(child.id)
            self._event(
                TrackEvent(
                    "split", window, tid, tuple(children),
                    size=sum(peaks[i].size for i in extra),
                    prev_size=self.trajectories[tid].sizes[0]
                    if tid not in peak_of
                    else self.trajectories[tid].sizes[-2]
                    if len(self.trajectories[tid].sizes) > 1
                    else self.trajectories[tid].sizes[-1],
                )
            )

        # Merges + deaths: live trajectories that did not continue.
        next_live: List[int] = []
        merged_into: Dict[int, List[int]] = {}
        for tid in self._live:
            if tid in peak_of:
                next_live.append(tid)
                continue
            traj = self.trajectories[tid]
            traj.died = window
            matched = traj_matches[tid]
            if matched:
                # Absorbed into whichever trajectory continued through
                # this trajectory's best-matching peak.
                best = max(
                    matched,
                    key=lambda i: (
                        _jaccard(traj.members, peaks[i].members), -i
                    ),
                )
                survivor = traj_of.get(best)
                if survivor is not None:
                    merged_into.setdefault(survivor, []).append(tid)
                    continue
            self._event(
                TrackEvent(
                    "death", window, tid, (), 0, traj.sizes[-1]
                )
            )
        for survivor, absorbed in sorted(merged_into.items()):
            self._event(
                TrackEvent(
                    "merge", window, survivor, tuple(absorbed),
                    size=self.trajectories[survivor].sizes[-1],
                )
            )

        # Births: peaks that neither continued nor split off.
        for i, snap in enumerate(peaks):
            if i in traj_of or i in spawned:
                continue
            traj = self._spawn(snap)
            self._event(
                TrackEvent("birth", window, traj.id, (), snap.size, 0)
            )

        self._live = sorted(
            tid for tid, traj in self.trajectories.items() if traj.alive
        )
        self.windows_observed = max(self.windows_observed, window + 1)
        return self.events[start:]

    def stats(self) -> Dict[str, object]:
        counts: Dict[str, int] = {k: 0 for k in LIFECYCLE_KINDS}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return {
            "windows": self.windows_observed,
            "trajectories": len(self.trajectories),
            "live": len(self._live),
            "events": counts,
        }


def event_f1(
    predicted: Iterable,
    truth: Iterable,
    tolerance: int = 1,
    kinds: Tuple[str, ...] = ("birth", "death", "merge", "split"),
) -> float:
    """F1 of predicted lifecycle events against a scheduled ground truth.

    Events match when their ``kind`` agrees and their windows differ by
    at most ``tolerance`` (greedy nearest-window matching, each event
    used once).  Both inputs only need ``.kind`` / ``.window``
    attributes, so :class:`TrackEvent` lists score directly against
    :class:`~repro.graph.generators.CommunityEvent` schedules.
    ``growth``/``shrink`` (and any kind not listed) are ignored.
    """
    pred = [e for e in predicted if e.kind in kinds]
    true = [e for e in truth if e.kind in kinds]
    matched = 0
    used: List[bool] = [False] * len(pred)
    for t in sorted(true, key=lambda e: (e.window, e.kind)):
        best, best_d = -1, tolerance + 1
        for i, p in enumerate(pred):
            if used[i] or p.kind != t.kind:
                continue
            d = abs(p.window - t.window)
            if d < best_d:
                best, best_d = i, d
        if best >= 0 and best_d <= tolerance:
            used[best] = True
            matched += 1
    if not pred and not true:
        return 1.0
    if not pred or not true:
        return 0.0
    precision = matched / len(pred)
    recall = matched / len(true)
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)
