"""Deterministic fault-injection harness, driven by ``REPRO_FAULTS``.

A schedule is a ``;``-joined list of rules, one per *site*::

    REPRO_FAULTS="worker_kill:1;task_delay:2,3:0.05;fragment_corrupt:1"

Each rule is ``site:occurrences[:param]``:

- ``site`` — a named injection point (see :data:`SITES`);
- ``occurrences`` — which 1-based passes through the site fire: a
  single number (``3``), a comma list (``1,4``), an inclusive range
  (``2-5``), or ``*`` (every pass);
- ``param`` — optional float, site-specific (seconds for ``task_delay``).

Sites wired through the codebase:

======================  ================================================
``worker_kill``         StageRunner (process mode) sacrifices a pool
                        worker via ``os._exit`` before a submit
``task_fail``           a pool job raises :class:`InjectedFault`
``task_delay``          a pool job sleeps ``param`` seconds first
``stage_fail``          a pipeline stage build raises before running
``fragment_corrupt``    ``scatter_edge_list`` flips a byte in a shard
                        fragment after writing it
``fragment_truncate``   ...or truncates the fragment instead
``cache_corrupt``       ArtifactCache truncates a disk envelope it just
                        wrote
``compile_fail``        the native-kernel compile aborts (soft fallback)
======================  ================================================

Determinism: each site keeps an occurrence counter, so the same
schedule against the same workload fires at exactly the same points.
Counters are process-local — worker processes parse ``REPRO_FAULTS``
themselves and count their own passes — which is why worker kills are
scheduled *parent-side* (the parent decides when and submits a
sacrificial job) rather than letting every fresh worker kill itself.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, Optional, Tuple

from ..obs import metrics as obs_metrics
from .retry import InjectedFault

__all__ = [
    "SITES",
    "FaultRule",
    "FaultSchedule",
    "configure",
    "schedule",
    "active",
    "should_fire",
    "maybe_fail",
    "maybe_delay",
    "wrap_job",
    "corrupt_file",
    "snapshot",
]

ENV_VAR = "REPRO_FAULTS"

SITES = (
    "worker_kill",
    "task_fail",
    "task_delay",
    "stage_fail",
    "fragment_corrupt",
    "fragment_truncate",
    "cache_corrupt",
    "compile_fail",
)

_M_INJECTED = obs_metrics.REGISTRY.counter(
    "repro_resil_faults_injected_total",
    "Scheduled faults fired, by injection site",
    ("site",),
)


class FaultRule:
    """One parsed ``site:occurrences[:param]`` rule."""

    __slots__ = ("site", "all", "low", "high", "chosen", "param")

    def __init__(self, site: str, occurrences: str, param: Optional[float]):
        if site not in SITES:
            raise ValueError(
                f"unknown fault site {site!r} (known: {', '.join(SITES)})"
            )
        self.site = site
        self.param = param
        self.all = occurrences == "*"
        self.low = self.high = 0
        self.chosen: Tuple[int, ...] = ()
        if not self.all:
            if "-" in occurrences:
                lo, _, hi = occurrences.partition("-")
                self.low, self.high = int(lo), int(hi)
            else:
                self.chosen = tuple(
                    int(part) for part in occurrences.split(",") if part
                )
            if (self.low, self.high) == (0, 0) and not self.chosen:
                raise ValueError(
                    f"rule for {site!r} has no occurrences"
                )

    def fires_at(self, n: int) -> bool:
        if self.all:
            return True
        if self.chosen:
            return n in self.chosen
        return self.low <= n <= self.high

    @property
    def bounded(self) -> bool:
        """Whether the rule stops firing eventually (retries can heal)."""
        return not self.all


class FaultSchedule:
    """A set of rules plus per-site occurrence counters."""

    def __init__(self, rules: Dict[str, FaultRule], spec: str = "") -> None:
        self.rules = rules
        self.spec = spec
        self._counts: Dict[str, int] = {}
        self._fired: Dict[str, int] = {}
        self._lock = threading.Lock()

    @classmethod
    def parse(cls, spec: str) -> "FaultSchedule":
        rules: Dict[str, FaultRule] = {}
        for chunk in spec.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            parts = chunk.split(":")
            if len(parts) not in (2, 3):
                raise ValueError(
                    f"bad fault rule {chunk!r} "
                    "(want site:occurrences[:param])"
                )
            site, occurrences = parts[0].strip(), parts[1].strip()
            param = float(parts[2]) if len(parts) == 3 else None
            if site in rules:
                raise ValueError(f"duplicate fault rule for site {site!r}")
            rules[site] = FaultRule(site, occurrences, param)
        return cls(rules, spec=spec)

    def should_fire(self, site: str) -> Optional[FaultRule]:
        """Count one pass through ``site``; the rule if this pass fires."""
        rule = self.rules.get(site)
        if rule is None:
            return None
        with self._lock:
            self._counts[site] = n = self._counts.get(site, 0) + 1
            if not rule.fires_at(n):
                return None
            self._fired[site] = self._fired.get(site, 0) + 1
        _M_INJECTED.inc(site=site)
        return rule

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "spec": self.spec,
                "passes": dict(self._counts),
                "fired": dict(self._fired),
            }


# ----------------------------------------------------------------------
# Process-global schedule (lazily parsed from $REPRO_FAULTS)
# ----------------------------------------------------------------------
_ACTIVE: Optional[FaultSchedule] = None
_LOADED = False
_GLOBAL_LOCK = threading.Lock()


def configure(spec: Optional[str]) -> Optional[FaultSchedule]:
    """Install a schedule (or ``None`` to disable injection).

    Does not touch ``$REPRO_FAULTS`` — the CLI exports that itself so
    pool worker processes inherit the same schedule.
    """
    global _ACTIVE, _LOADED
    with _GLOBAL_LOCK:
        _ACTIVE = FaultSchedule.parse(spec) if spec else None
        _LOADED = True
        return _ACTIVE


def schedule() -> Optional[FaultSchedule]:
    global _ACTIVE, _LOADED
    if not _LOADED:
        with _GLOBAL_LOCK:
            if not _LOADED:
                spec = os.environ.get(ENV_VAR, "").strip()
                _ACTIVE = FaultSchedule.parse(spec) if spec else None
                _LOADED = True
    return _ACTIVE


def active() -> bool:
    return schedule() is not None


def should_fire(site: str) -> Optional[FaultRule]:
    sched = schedule()
    return sched.should_fire(site) if sched is not None else None


def maybe_fail(site: str, detail: str = "") -> None:
    """Raise :class:`InjectedFault` if ``site`` is scheduled to fire now."""
    if should_fire(site) is not None:
        raise InjectedFault(site, detail)


def maybe_delay(site: str = "task_delay") -> float:
    """Sleep the rule's param if ``site`` fires; seconds actually slept."""
    rule = should_fire(site)
    if rule is None:
        return 0.0
    pause = rule.param if rule.param is not None else 0.05
    time.sleep(pause)
    return pause


def snapshot() -> Optional[dict]:
    sched = _ACTIVE if _LOADED else schedule()
    return sched.snapshot() if sched is not None else None


# ----------------------------------------------------------------------
# Pool-job wrapping (task_fail / task_delay) and worker sacrifice
# ----------------------------------------------------------------------
def wrap_job(fn, args: tuple) -> Tuple[object, tuple]:
    """Possibly wrap a pool job so a scheduled task fault fires inside it.

    The decision (does this submission fire?) is taken on the *parent*
    side so occurrence counting is deterministic regardless of which
    worker runs the job; the wrapper itself is a picklable module-level
    function, so this works in both thread and process mode.
    """
    sched = schedule()
    if sched is None:
        return fn, args
    fail = sched.should_fire("task_fail") is not None
    delay_rule = sched.should_fire("task_delay")
    if not fail and delay_rule is None:
        return fn, args
    pause = 0.0
    if delay_rule is not None:
        pause = delay_rule.param if delay_rule.param is not None else 0.05
    return _faulted_job, (fn, args, fail, pause)


def _faulted_job(fn, args: tuple, fail: bool, pause: float):
    if pause > 0.0:
        time.sleep(pause)
    if fail:
        raise InjectedFault("task_fail", "scheduled pool-task failure")
    return fn(*args)


def _worker_suicide() -> None:  # pragma: no cover - dies by design
    """Sacrificial pool job: kills its worker process without cleanup,
    breaking the ProcessPoolExecutor exactly once (the parent's
    ``worker_kill`` counter decides when this gets submitted)."""
    os._exit(86)


# ----------------------------------------------------------------------
# File corruption (shard fragments, cache envelopes)
# ----------------------------------------------------------------------
def corrupt_file(path: os.PathLike, mode: str = "corrupt") -> bool:
    """Flip the last byte (``corrupt``) or drop the back half
    (``truncate``) of ``path``; False when the file is missing/empty."""
    try:
        size = os.path.getsize(path)
    except OSError:
        return False
    if size <= 0:
        return False
    with open(path, "r+b") as handle:
        if mode == "truncate":
            handle.truncate(max(1, size // 2))
        else:
            handle.seek(size - 1)
            byte = handle.read(1)
            handle.seek(size - 1)
            handle.write(bytes((byte[0] ^ 0xFF,)))
    return True
