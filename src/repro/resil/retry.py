"""Retry, deadline, circuit-breaker, and admission-control primitives.

Everything here is dependency-free and synchronous; async callers own
their own sleeps (``asyncio.sleep``) and pass ``sleep=`` accordingly.
Backoff jitter comes from a dedicated :class:`random.Random` instance so
fault-injection runs stay reproducible when callers seed it.
"""

import random
import threading
import time
from typing import Callable, Optional

from ..obs import metrics as obs_metrics

_M_RETRIES = obs_metrics.REGISTRY.counter(
    "repro_resil_retries_total",
    "Transient failures retried, by call site",
    ("site",),
)
_M_GIVEUPS = obs_metrics.REGISTRY.counter(
    "repro_resil_giveups_total",
    "Retry budgets exhausted (error propagated), by call site",
    ("site",),
)
_M_BREAKER = obs_metrics.REGISTRY.counter(
    "repro_resil_breaker_total",
    "Circuit-breaker transitions and rejections",
    ("event",),
)
_M_SHED = obs_metrics.REGISTRY.counter(
    "repro_resil_shed_total",
    "Requests refused by admission control, by priority class",
    ("priority",),
)
_M_DEADLINES = obs_metrics.REGISTRY.counter(
    "repro_resil_deadline_exceeded_total",
    "Per-task/per-request deadlines blown, by call site",
    ("site",),
)


def note_retry(site: str) -> None:
    """Count one retried attempt at ``site`` (for callers that own
    their retry loop instead of going through :func:`retry_call`)."""
    _M_RETRIES.inc(site=site)


def note_giveup(site: str) -> None:
    _M_GIVEUPS.inc(site=site)


def note_deadline(site: str) -> None:
    _M_DEADLINES.inc(site=site)


class TransientFault(RuntimeError):
    """A failure worth retrying (worker death, injected fault, flaky IO).

    Ordinary exceptions are *not* retried: a deterministic bug re-run
    three times is still a bug, just slower.
    """


class InjectedFault(TransientFault):
    """Raised by the fault harness at a scheduled occurrence."""

    def __init__(self, site: str, detail: str = "") -> None:
        super().__init__(
            f"injected fault at {site!r}" + (f": {detail}" if detail else "")
        )
        self.site = site


class DeadlineExceeded(TimeoutError):
    """A per-task or per-request deadline expired."""


class Deadline:
    """A monotonic budget shared across retry attempts."""

    __slots__ = ("seconds", "_expires_at", "_clock")

    def __init__(self, seconds: float, clock: Callable[[], float] = time.monotonic):
        self.seconds = seconds
        self._clock = clock
        self._expires_at = clock() + seconds

    def remaining(self) -> float:
        return max(0.0, self._expires_at - self._clock())

    @property
    def expired(self) -> bool:
        return self._clock() >= self._expires_at

    def check(self, site: str = "deadline") -> None:
        if self.expired:
            _M_DEADLINES.inc(site=site)
            raise DeadlineExceeded(
                f"{site}: exceeded {self.seconds:g}s budget"
            )


class RetryPolicy:
    """Exponential backoff with full jitter.

    ``delay(n)`` is the sleep after the n-th failure (1-based):
    ``base_delay * multiplier**(n-1)``, capped at ``max_delay``, then
    scaled by a uniform jitter in ``[1-jitter, 1]``.
    """

    __slots__ = ("max_attempts", "base_delay", "max_delay", "multiplier",
                 "jitter", "_rng")

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        multiplier: float = 2.0,
        jitter: float = 0.5,
        seed: Optional[int] = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.multiplier = multiplier
        self.jitter = jitter
        self._rng = random.Random(seed)

    def delay(self, failures: int) -> float:
        raw = min(
            self.max_delay,
            self.base_delay * self.multiplier ** max(0, failures - 1),
        )
        if self.jitter <= 0.0:
            return raw
        return raw * (1.0 - self.jitter * self._rng.random())

    def snapshot(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "base_delay": self.base_delay,
            "max_delay": self.max_delay,
            "multiplier": self.multiplier,
            "jitter": self.jitter,
        }


def retry_call(
    fn: Callable,
    *args,
    policy: Optional[RetryPolicy] = None,
    site: str = "call",
    deadline: Optional[Deadline] = None,
    sleep: Callable[[float], None] = time.sleep,
    retry_on: tuple = (TransientFault,),
):
    """Run ``fn(*args)``, retrying ``retry_on`` failures with backoff.

    The final failure (attempts exhausted or deadline blown) propagates
    unchanged; every retried attempt bumps ``repro_resil_retries_total``.
    """
    policy = policy or RetryPolicy()
    failures = 0
    while True:
        if deadline is not None:
            deadline.check(site)
        try:
            return fn(*args)
        except retry_on:
            failures += 1
            if failures >= policy.max_attempts:
                _M_GIVEUPS.inc(site=site)
                raise
            _M_RETRIES.inc(site=site)
            pause = policy.delay(failures)
            if deadline is not None:
                pause = min(pause, deadline.remaining())
            if pause > 0.0:
                sleep(pause)


class CircuitOpen(Exception):
    """The circuit breaker for a build key is open; retry later."""

    def __init__(self, key: str, retry_after: float) -> None:
        super().__init__(
            f"circuit open for {key!r}; retry in {retry_after:.1f}s"
        )
        self.key = key
        self.retry_after = max(0.0, retry_after)


class CircuitBreaker:
    """Closed -> open after N consecutive failures -> half-open probe.

    While open, :meth:`allow` refuses (with a remaining-cooldown hint);
    after the cooldown one probe call is let through — its success
    closes the circuit, its failure re-opens it for another cooldown.
    """

    __slots__ = ("failure_threshold", "cooldown", "_clock", "_failures",
                 "_state", "_opened_at", "_lock")

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.failure_threshold = max(1, failure_threshold)
        self.cooldown = cooldown
        self._clock = clock
        self._failures = 0
        self._state = "closed"
        self._opened_at = 0.0
        self._lock = threading.Lock()

    @property
    def state(self) -> str:
        return self._state

    def retry_after(self) -> float:
        return max(0.0, self._opened_at + self.cooldown - self._clock())

    def allow(self) -> bool:
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if self._clock() - self._opened_at >= self.cooldown:
                    self._state = "half_open"
                    _M_BREAKER.inc(event="half_open")
                    return True
                _M_BREAKER.inc(event="rejected")
                return False
            # half_open: one probe already in flight
            _M_BREAKER.inc(event="rejected")
            return False

    def record_success(self) -> None:
        with self._lock:
            if self._state != "closed":
                _M_BREAKER.inc(event="closed")
            self._state = "closed"
            self._failures = 0

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if (
                self._state == "half_open"
                or self._failures >= self.failure_threshold
            ):
                if self._state != "open":
                    _M_BREAKER.inc(event="opened")
                self._state = "open"
                self._opened_at = self._clock()

    def snapshot(self) -> dict:
        return {
            "state": self._state,
            "failures": self._failures,
            "retry_after": round(self.retry_after(), 3)
            if self._state == "open" else 0.0,
        }


class Saturated(Exception):
    """Admission control refused the request (queue full); 429 material."""

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class AdmissionGate:
    """Bounded concurrent admissions with an interactive reserve.

    ``limit`` caps total concurrent work.  Bulk work (cold tile builds)
    is additionally capped at ``limit - reserve`` so a slice of capacity
    always remains for interactive requests (hit-tests, peaks) even
    under a cold-tile stampede.
    """

    __slots__ = ("limit", "bulk_limit", "retry_after", "_admitted", "_lock",
                 "_shed")

    def __init__(
        self,
        limit: int,
        interactive_reserve: float = 0.25,
        retry_after: float = 1.0,
    ) -> None:
        if limit < 1:
            raise ValueError("limit must be >= 1")
        self.limit = limit
        reserve = max(0, min(limit - 1, round(limit * interactive_reserve)))
        self.bulk_limit = limit - reserve
        self.retry_after = retry_after
        self._admitted = 0
        self._shed = 0
        self._lock = threading.Lock()

    @property
    def admitted(self) -> int:
        return self._admitted

    @property
    def shed(self) -> int:
        return self._shed

    def try_acquire(self, interactive: bool = False) -> bool:
        with self._lock:
            cap = self.limit if interactive else self.bulk_limit
            if self._admitted >= cap:
                self._shed += 1
                _M_SHED.inc(
                    priority="interactive" if interactive else "bulk"
                )
                return False
            self._admitted += 1
            return True

    def acquire(self, interactive: bool = False) -> None:
        if not self.try_acquire(interactive):
            cap = self.limit if interactive else self.bulk_limit
            raise Saturated(
                f"admission gate saturated ({self._admitted}/{cap} "
                f"{'interactive' if interactive else 'bulk'} slots)",
                retry_after=self.retry_after,
            )

    def release(self) -> None:
        with self._lock:
            if self._admitted > 0:
                self._admitted -= 1

    def snapshot(self) -> dict:
        return {
            "limit": self.limit,
            "bulk_limit": self.bulk_limit,
            "admitted": self._admitted,
            "shed": self._shed,
        }
