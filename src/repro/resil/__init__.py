"""repro.resil — resilience primitives and deterministic fault injection.

Two halves:

- :mod:`repro.resil.retry` — retry with exponential backoff + jitter,
  per-task deadlines, a circuit breaker for repeatedly-failing build
  keys, and an admission gate with an interactive-priority reserve.
- :mod:`repro.resil.faults` — a deterministic fault-injection harness
  driven by ``REPRO_FAULTS`` / ``--faults``: kill pool workers, delay or
  fail tasks, corrupt shard fragments and disk-cache envelopes, and fail
  native compiles, all on an exact occurrence schedule so every failure
  path is testable and reproducible.

All retry/shed/breaker/fault events emit ``repro_resil_*`` obs counters.
"""

from .retry import (
    AdmissionGate,
    CircuitBreaker,
    CircuitOpen,
    Deadline,
    DeadlineExceeded,
    InjectedFault,
    RetryPolicy,
    Saturated,
    TransientFault,
    retry_call,
)
from .faults import FaultRule, FaultSchedule

__all__ = [
    "AdmissionGate",
    "CircuitBreaker",
    "CircuitOpen",
    "Deadline",
    "DeadlineExceeded",
    "FaultRule",
    "FaultSchedule",
    "InjectedFault",
    "RetryPolicy",
    "Saturated",
    "TransientFault",
    "retry_call",
]
