"""Level-of-detail tile pyramid over a pipeline's heightfield.

The server never rasterizes per request: each (dataset, measure, bins)
is rasterized **once** at the pyramid's maximum resolution — a normal
cached pipeline stage — and everything a client can ask for is derived
from that one artifact:

* coarser levels are power-of-two downsamples of the level below
  (peak-preserving 2×2 max-pooling, see
  :meth:`~repro.terrain.heightfield.Heightfield.downsample`);
* each level is cut into fixed ``tile_size × tile_size``
  :class:`~repro.terrain.heightfield.Tile` blocks addressed as
  ``(level, tx, ty)`` — ``tx`` counts columns (x/west→east), ``ty``
  counts rows (y/south→north in layout coordinates).

Level 0 is the finest: its tiles stitch back *bit-identically* to the
full-resolution rasterization (``tests/serve/test_lod.py``).  Level
``levels-1`` is a single tile of the whole terrain.

Tiles are cached through the pipeline's :class:`ArtifactCache` under a
custom ``"tile"`` stage keyed by the graph + field content fingerprints,
so a warm tile request is a pure cache hit and a changed field can never
serve a stale tile.  The serving envelope (:meth:`tile_payload`) is the
tile's compact binary form plus its strong ETag — the SHA-256 of the
exact bytes on the wire.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Tuple

import numpy as np

from ..engine.pipeline import Pipeline
from ..terrain.heightfield import RASTER_ORDER_VERSION, Heightfield, Tile

__all__ = ["LODPyramid", "tile_etag"]


def tile_etag(payload: bytes) -> str:
    """Strong ETag of a tile payload: quoted content hash of its bytes."""
    return '"' + hashlib.sha256(payload).hexdigest()[:32] + '"'


class LODPyramid:
    """Tiled LOD pyramid bound to one :class:`Pipeline`.

    Parameters
    ----------
    pipeline:
        The (static) pipeline whose heightfield is served.
    tile_size:
        Edge length of every tile, in cells.
    levels:
        Pyramid depth; the base (level 0) resolution is
        ``tile_size * 2**(levels - 1)``, so the coarsest level is
        exactly one tile.

    Construction is free — no stage runs until a level or tile is first
    requested.
    """

    def __init__(
        self, pipeline: Pipeline, tile_size: int = 64, levels: int = 3
    ) -> None:
        if tile_size < 8:
            raise ValueError("tile_size must be >= 8")
        if tile_size % 2 != 0:
            raise ValueError("tile_size must be even (levels are 2x pools)")
        if levels < 1:
            raise ValueError("levels must be >= 1")
        self.pipeline = pipeline
        self.tile_size = int(tile_size)
        self.levels = int(levels)
        self.base_resolution = self.tile_size * 2 ** (self.levels - 1)

    # ------------------------------------------------------------------
    def _check_level(self, level: int) -> int:
        level = int(level)
        if not 0 <= level < self.levels:
            raise KeyError(
                f"level {level} out of range (pyramid has {self.levels} "
                "levels)"
            )
        return level

    def tiles_per_side(self, level: int) -> int:
        """Tile-grid edge length at ``level`` (level 0 is finest)."""
        return 2 ** (self.levels - 1 - self._check_level(level))

    def level_resolution(self, level: int) -> int:
        """Heightfield resolution at ``level``."""
        return self.tile_size * self.tiles_per_side(level)

    def _params(self, **extra) -> Dict[str, object]:
        params = self.pipeline.display_params()
        params.update(
            resolution=self.base_resolution,
            tile_size=self.tile_size,
            pyramid_levels=self.levels,
            # Tiles persist to disk; salting with the paint-order
            # version keeps grids rasterized under an older canonical
            # order from being stitched next to fresh ones.
            raster_order=RASTER_ORDER_VERSION,
        )
        params.update(extra)
        return params

    # -- levels ---------------------------------------------------------
    def level_field(self, level: int) -> Heightfield:
        """The whole heightfield at ``level`` (cached stage)."""
        level = self._check_level(level)
        if level == 0:
            return self.pipeline.heightfield(self.base_resolution)
        return self.pipeline.stage(
            "lod_level",
            self._params(level=level),
            lambda: self.level_field(level - 1).downsample(),
            disk=False,
        )

    def ensure_levels(self) -> Dict[str, object]:
        """Build every level (the coalesced cold-start unit) and return
        a picklable summary of the pyramid's geometry."""
        for level in range(self.levels):
            self.level_field(level)
        base = self.level_field(0)
        return {
            "tile_size": self.tile_size,
            "levels": self.levels,
            "base_resolution": self.base_resolution,
            "extent": list(base.extent),
            "base": base.base,
            "tiles_per_side": [
                self.tiles_per_side(level) for level in range(self.levels)
            ],
        }

    # -- tiles ----------------------------------------------------------
    def _check_tile(self, level: int, tx: int, ty: int) -> Tuple[int, int, int]:
        level = self._check_level(level)
        per = self.tiles_per_side(level)
        tx, ty = int(tx), int(ty)
        if not (0 <= tx < per and 0 <= ty < per):
            raise KeyError(
                f"tile ({tx}, {ty}) out of range at level {level} "
                f"({per}x{per} tiles)"
            )
        return level, tx, ty

    def tile(self, level: int, tx: int, ty: int) -> Tile:
        """The tile at ``(level, tx, ty)`` (cached; persisted to disk
        when the pipeline's cache has a directory)."""
        level, tx, ty = self._check_tile(level, tx, ty)
        ts = self.tile_size

        def build() -> Tile:
            block = self.level_field(level).crop(ty * ts, tx * ts, ts, ts)
            return Tile(
                level, tx, ty,
                block.height, block.node, block.extent, block.base,
            )

        return self.pipeline.stage(
            "tile", self._params(level=level, tx=tx, ty=ty), build
        )

    def tile_cache_key(self, level: int, tx: int, ty: int) -> str:
        """Content-hash cache key of one tile (for instrumentation)."""
        level, tx, ty = self._check_tile(level, tx, ty)
        return self.pipeline.stage_artifact_key(
            "tile", self._params(level=level, tx=tx, ty=ty)
        )

    def tile_payload(self, level: int, tx: int, ty: int) -> Tuple[bytes, str]:
        """``(wire bytes, strong ETag)`` for one tile.

        The ETag is a content hash of the exact payload, so it is
        stable across processes and changes iff the underlying field
        (or pyramid parameters) change.
        """
        payload = self.tile(level, tx, ty).to_bytes()
        return payload, tile_etag(payload)

    # -- assembly -------------------------------------------------------
    def stitch(self, level: int) -> Heightfield:
        """Reassemble a whole level from its tiles (what a client does).

        For level 0 the result is bit-identical to
        ``pipeline.heightfield(base_resolution)``.
        """
        level = self._check_level(level)
        per = self.tiles_per_side(level)
        ts = self.tile_size
        res = per * ts
        height = np.empty((res, res), dtype=np.float64)
        node = np.empty((res, res), dtype=np.int64)
        tiles: List[Tile] = []
        for ty in range(per):
            for tx in range(per):
                tile = self.tile(level, tx, ty)
                tiles.append(tile)
                height[ty * ts:(ty + 1) * ts, tx * ts:(tx + 1) * ts] = (
                    tile.height
                )
                node[ty * ts:(ty + 1) * ts, tx * ts:(tx + 1) * ts] = tile.node
        first, last = tiles[0], tiles[-1]
        extent = (
            first.extent[0], first.extent[1], last.extent[2], last.extent[3]
        )
        return Heightfield(height, node, extent, first.base)

    def __repr__(self) -> str:
        return (
            f"LODPyramid(levels={self.levels}, tile_size={self.tile_size}, "
            f"base_resolution={self.base_resolution})"
        )
