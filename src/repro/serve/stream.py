"""Server-Sent Events replay of a JSONL edit log.

``GET /stream/{session}`` replays a registered edit log through a
:class:`~repro.engine.pipeline.StreamingPipeline` and pushes, per batch:

* ``invalidate`` — the LOD tiles whose content changed, as
  ``[level, tx, ty]`` triples at every pyramid level, so a tile client
  refetches exactly the dirty part of its view;
* ``frame`` — a summary of the new state (batch index, timestamp, edit
  count, super-node count, the maintainer's incremental-vs-rebuild
  stats).

The stream opens with a ``hello`` event carrying the session's pyramid
geometry and closes with ``done``.  Each request gets its own replay
(the session is a recorded log, not shared mutable state), and every
pipeline step runs on the runner's thread executor so the event loop
stays responsive while frames are computed.

Dirty tiles are found by diffing consecutive base-resolution
heightfields block-by-block; if the layout's extent or ground plane
moved, the whole view is dirty (the terrain re-projected globally).
"""

from __future__ import annotations

import asyncio
import json
from typing import AsyncIterator, Dict, List, Optional, Tuple

import numpy as np

from ..engine.pipeline import StreamingPipeline
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..stream import read_edit_log
from ..terrain.heightfield import Heightfield
from .workers import source_from_spec

__all__ = ["StreamSession", "sse_events", "dirty_tiles"]

_M_REPLAY_ABORTS = obs_metrics.REGISTRY.counter(
    "repro_resil_sse_aborts_total",
    "SSE replays ended early by a client disconnect or server drain.",
)


class StreamSession:
    """One replayable SSE session registered with the app."""

    def __init__(
        self,
        name: str,
        source: Dict[str, str],
        measure: str,
        log_path: str,
        *,
        bins: Optional[int] = None,
        scheme: str = "quantile",
        tile_size: int = 64,
        levels: int = 3,
        rebuild_threshold: float = 0.5,
        interval: float = 0.0,
    ) -> None:
        self.name = name
        self.source = dict(source)
        self.measure = measure
        self.log_path = str(log_path)
        self.bins = bins
        self.scheme = scheme
        self.tile_size = int(tile_size)
        self.levels = int(levels)
        self.rebuild_threshold = rebuild_threshold
        self.interval = interval

    @property
    def base_resolution(self) -> int:
        return self.tile_size * 2 ** (self.levels - 1)

    def describe(self) -> Dict[str, object]:
        return {
            "session": self.name,
            "measure": self.measure,
            "tile_size": self.tile_size,
            "levels": self.levels,
            "base_resolution": self.base_resolution,
        }


def dirty_tiles(
    prev: Heightfield,
    cur: Heightfield,
    tile_size: int,
    levels: int,
) -> List[Tuple[int, int, int]]:
    """``(level, tx, ty)`` of every tile whose content changed.

    A changed base tile dirties its covering tile at every coarser
    level (the downsample of a dirty region is dirty).
    """
    per = prev.height.shape[0] // tile_size
    if (
        cur.height.shape != prev.height.shape
        or cur.extent != prev.extent
        or cur.base != prev.base
    ):
        changed = np.ones((per, per), dtype=bool)
    else:
        diff = (prev.height != cur.height) | (prev.node != cur.node)
        changed = (
            diff.reshape(per, tile_size, per, tile_size)
            .transpose(0, 2, 1, 3)
            .reshape(per, per, -1)
            .any(axis=2)
        )
    dirty: List[Tuple[int, int, int]] = []
    for level in range(levels):
        scale = 2 ** level  # always divides per (both are powers of two)
        coarse = changed.reshape(
            per // scale, scale, per // scale, scale
        ).any(axis=(1, 3))
        for ty, tx in np.argwhere(coarse):
            dirty.append((level, int(tx), int(ty)))
    return dirty


class _Replay:
    """Synchronous replay state (built and stepped on executor threads)."""

    def __init__(self, session: StreamSession, cache) -> None:
        self.session = session
        self.batches = read_edit_log(session.log_path)
        self.pipeline = StreamingPipeline(
            source_from_spec(session.source),
            session.measure,
            bins=session.bins,
            scheme=session.scheme,
            rebuild_threshold=session.rebuild_threshold,
            cache=cache,
        )
        self.prev = self.pipeline.heightfield(session.base_resolution)

    def step(self, index: int) -> Dict[str, object]:
        when, batch = self.batches[index]
        with obs_trace.span(
            "stream.frame",
            session=self.session.name,
            batch=index,
            edits=len(batch),
        ):
            self.pipeline.apply(batch)
            cur = self.pipeline.heightfield(self.session.base_resolution)
            dirty = dirty_tiles(
                self.prev, cur, self.session.tile_size, self.session.levels
            )
        self.prev = cur
        stats = self.pipeline.stats
        return {
            "batch": index,
            "t": when,
            "edits": len(batch),
            "super_nodes": int(self.pipeline.display_tree.n_nodes),
            "dirty": [list(d) for d in dirty],
            "incremental": int(stats["incremental"]),
            "full_rebuilds": int(stats["full_rebuilds"]),
        }


async def sse_events(
    session: StreamSession, runner, cache
) -> AsyncIterator[Tuple[str, str]]:
    """The SSE event iterator for one ``GET /stream/{session}``."""
    loop = asyncio.get_running_loop()
    # Replays are stateful, so they run on the runner's bounded thread
    # pool (never the process pool), one fresh replay per request.
    executor = runner.thread_executor
    replay = await loop.run_in_executor(executor, _Replay, session, cache)
    hello = dict(session.describe(), batches=len(replay.batches))
    try:
        yield "hello", json.dumps(hello)
        for index in range(len(replay.batches)):
            frame = await loop.run_in_executor(executor, replay.step, index)
            dirty = frame.pop("dirty")
            if dirty:
                yield "invalidate", json.dumps(
                    {"batch": frame["batch"], "tiles": dirty}
                )
            yield "frame", json.dumps(frame)
            if session.interval > 0:
                await asyncio.sleep(session.interval)
        yield "done", json.dumps({"batches": len(replay.batches)})
    except GeneratorExit:
        # The client went away (or the server is draining): the generator
        # is closed at its current yield, so no further frames are built.
        _M_REPLAY_ABORTS.inc()
        raise
