"""Hand-rolled HTTP/1.1 on ``asyncio.start_server`` — no ``http.server``.

Just enough protocol for the terrain service: GET/HEAD, percent-decoded
paths and query strings, request bodies by ``Content-Length``,
keep-alive, strong-ETag conditional responses, and Server-Sent Events.
Everything is stdlib (``asyncio`` + ``urllib.parse``); the goal is zero
new runtime dependencies, not a general-purpose web framework.

Pieces
------
:class:`Request` / :class:`Response`
    Parsed request and buffered response (``Response.json_`` /
    ``Response.text`` helpers).
:class:`EventStreamResponse`
    A response whose body is an async iterator of ``(event, data)``
    pairs, written as an SSE stream on a connection that then closes.
:class:`Router`
    ``/t/{ds}/{measure}/...``-style segment patterns; ``{name}``
    segments capture into handler keyword arguments.
:class:`HTTPServer`
    The connection loop: parse → route → respond, keep-alive until
    ``Connection: close``, a protocol error, or an event stream.
:class:`HTTPError`
    Raise from a handler to produce a JSON error response with that
    status.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import logging
import os
import time
import traceback
from typing import (
    AsyncIterator,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
)
from urllib.parse import parse_qsl, unquote

from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..resil.retry import CircuitOpen, DeadlineExceeded, Saturated

__all__ = [
    "HTTPError",
    "Request",
    "Response",
    "EventStreamResponse",
    "Router",
    "HTTPServer",
]

_REASONS = {
    200: "OK",
    204: "No Content",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}
_MAX_HEADERS = 100
_MAX_BODY = 1 << 20

#: Structured request/error log — one JSON line per record, so a log
#: shipper can parse it without multi-line stitching.
logger = logging.getLogger("repro.serve")

_request_ids = itertools.count(1)

_M_RESPONSES = obs_metrics.REGISTRY.counter(
    "repro_http_responses_total", "HTTP responses by status code.", ("status",)
)
_M_REQUEST_SECONDS = obs_metrics.REGISTRY.histogram(
    "repro_http_request_seconds", "HTTP request handling latency."
)
_M_SSE_SESSIONS = obs_metrics.REGISTRY.gauge(
    "repro_sse_sessions", "Currently open Server-Sent-Events streams."
)


def _new_request_id() -> str:
    return f"{os.getpid():x}-{next(_request_ids):x}"


def _log_request_error(request_id: str, request: "Request", exc: BaseException) -> None:
    """One structured JSON log line per unhandled handler exception.

    The traceback stays in the log (escaped inside the JSON), never in
    the 500 response body — clients get a generic message plus the
    request id to quote back at operators."""
    logger.error(json.dumps({
        "event": "request_error",
        "request_id": request_id,
        "method": request.method,
        "route": request.path,
        "status": 500,
        "exception": f"{type(exc).__name__}: {exc}",
        "traceback": traceback.format_exc(),
    }, sort_keys=True))


class HTTPError(Exception):
    """Handler-raised error rendered as a JSON response.

    ``headers`` ride on the error response (e.g. ``Retry-After`` on a
    429/503, ``Warning`` on a stale fallback); ``retry_after`` is sugar
    for the common load-shedding case.
    """

    def __init__(
        self,
        status: int,
        message: str,
        headers: Optional[List[Tuple[str, str]]] = None,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = list(headers or [])
        if retry_after is not None:
            self.headers.append(
                ("Retry-After", str(max(1, int(round(retry_after)))))
            )


class Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(
        self,
        method: str,
        path: str,
        query: Dict[str, str],
        headers: Dict[str, str],
        body: bytes = b"",
    ) -> None:
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body

    # -- typed query helpers (400 on bad input) -------------------------
    def query_str(self, name: str, default: Optional[str] = None) -> str:
        value = self.query.get(name, default)
        if value is None:
            raise HTTPError(400, f"missing required query parameter {name!r}")
        return value

    def query_int(
        self,
        name: str,
        default: Optional[int] = None,
        lo: Optional[int] = None,
        hi: Optional[int] = None,
    ) -> int:
        raw = self.query.get(name)
        if raw is None:
            if default is None:
                raise HTTPError(
                    400, f"missing required query parameter {name!r}"
                )
            return default
        try:
            value = int(raw)
        except ValueError:
            raise HTTPError(400, f"query parameter {name}={raw!r} is not an integer")
        if (lo is not None and value < lo) or (hi is not None and value > hi):
            raise HTTPError(400, f"query parameter {name}={value} out of range")
        return value

    def query_float(self, name: str) -> float:
        raw = self.query_str(name)
        try:
            return float(raw)
        except ValueError:
            raise HTTPError(400, f"query parameter {name}={raw!r} is not a number")

    def if_none_match(self) -> List[str]:
        """The ``If-None-Match`` header as a list of entity tags."""
        raw = self.headers.get("if-none-match", "")
        return [tag.strip() for tag in raw.split(",") if tag.strip()]


class Response:
    """A fully buffered response."""

    __slots__ = ("status", "body", "headers")

    def __init__(
        self,
        status: int = 200,
        body: bytes = b"",
        content_type: str = "application/octet-stream",
        headers: Optional[List[Tuple[str, str]]] = None,
    ) -> None:
        self.status = status
        self.body = body
        self.headers = list(headers or [])
        if body or status not in (204, 304):
            self.headers.insert(0, ("Content-Type", content_type))

    @classmethod
    def json_(cls, obj, status: int = 200, **kwargs) -> "Response":
        return cls(
            status,
            json.dumps(obj).encode(),
            content_type="application/json",
            **kwargs,
        )

    @classmethod
    def text(
        cls, text: str, status: int = 200, content_type: str = "text/plain"
    ) -> "Response":
        return cls(status, text.encode(), content_type=content_type)

    def render(self, head_only: bool = False) -> bytes:
        reason = _REASONS.get(self.status, "Unknown")
        lines = [f"HTTP/1.1 {self.status} {reason}"]
        lines.extend(f"{name}: {value}" for name, value in self.headers)
        lines.append(f"Content-Length: {len(self.body)}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head if head_only else head + self.body


class EventStreamResponse:
    """Server-Sent Events: ``events`` yields ``(event, data)`` pairs."""

    __slots__ = ("events",)

    def __init__(self, events: AsyncIterator[Tuple[str, str]]) -> None:
        self.events = events


Handler = Callable[..., "object"]


class Router:
    """Segment-pattern router; ``{name}`` segments capture path params."""

    def __init__(self) -> None:
        self._routes: List[Tuple[str, List[str], Handler]] = []

    def get(self, pattern: str, handler: Handler) -> None:
        self._routes.append(("GET", pattern.strip("/").split("/"), handler))

    def match(self, method: str, path: str) -> Tuple[Handler, Dict[str, str]]:
        segments = path.strip("/").split("/")
        found_path = False
        for route_method, route_segments, handler in self._routes:
            if len(route_segments) != len(segments):
                continue
            params: Dict[str, str] = {}
            for pat, seg in zip(route_segments, segments):
                if pat.startswith("{") and pat.endswith("}"):
                    if not seg:
                        break
                    params[pat[1:-1]] = seg
                elif pat != seg:
                    break
            else:
                found_path = True
                # HEAD is answered by the GET handler minus the body.
                if method in (route_method, "HEAD"):
                    return handler, params
        if found_path:
            raise HTTPError(405, f"method {method} not allowed")
        raise HTTPError(404, f"no route for {path}")


async def _read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request; ``None`` when the peer closed the connection.

    Raises :class:`HTTPError` (400/413) on malformed input.
    """
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError):
        raise HTTPError(400, "request line too long")
    if not line:
        return None
    parts = line.decode("latin-1", "replace").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise HTTPError(400, "malformed request line")
    method, target, _version = parts
    headers: Dict[str, str] = {}
    for _ in range(_MAX_HEADERS):
        try:
            raw = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            raise HTTPError(400, "header line too long")
        if raw in (b"\r\n", b"\n", b""):
            break
        name, sep, value = raw.decode("latin-1", "replace").partition(":")
        if not sep:
            raise HTTPError(400, "malformed header line")
        headers[name.strip().lower()] = value.strip()
    else:
        raise HTTPError(400, "too many headers")
    if "chunked" in headers.get("transfer-encoding", "").lower():
        # Reading no body would desync keep-alive framing (the first
        # chunk-size line would parse as the next request line).
        raise HTTPError(400, "chunked request bodies are not supported")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HTTPError(400, "bad Content-Length")
        if length > _MAX_BODY:
            raise HTTPError(413, "request body too large")
        if length:
            body = await reader.readexactly(length)
    path, _, qs = target.partition("?")
    query = dict(parse_qsl(qs, keep_blank_values=True))
    return Request(method.upper(), unquote(path) or "/", query, headers, body)


def _sse_chunk(event: str, data: str) -> bytes:
    lines = data.splitlines() or [""]
    frame = f"event: {event}\n" + "".join(f"data: {ln}\n" for ln in lines)
    return (frame + "\n").encode()


async def _aclose_quietly(events) -> None:
    """Close an async generator of SSE events, swallowing the teardown
    noise (the generator sees GeneratorExit at its current yield and
    stops building frames)."""
    aclose = getattr(events, "aclose", None)
    if aclose is None:
        return
    try:
        await aclose()
    except Exception:
        pass


class HTTPServer:
    """The asyncio connection loop around a :class:`Router`."""

    def __init__(
        self,
        router: Router,
        host: str = "127.0.0.1",
        port: int = 0,
        max_sse_sessions: int = 0,
    ) -> None:
        self.router = router
        self.host = host
        self.port = port
        #: ``> 0`` caps concurrently streaming SSE sessions; the
        #: overflow gets 429 + Retry-After instead of an unbounded pile
        #: of replay threads.
        self.max_sse_sessions = max_sse_sessions
        #: Optional post-response hook: called with keyword arguments
        #: ``path, request_id, status, t0_wall, dur_s`` after every
        #: buffered response.  The serve app wires its slow-request
        #: exemplar store here; errors in the hook are swallowed (debug
        #: surfaces must never fail a request that already succeeded).
        self.request_observer = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        self._sse_active = 0
        self._active_requests = 0
        # Created in start() — asyncio.Event needs the running loop on
        # older interpreters.
        self._closing: Optional[asyncio.Event] = None

    async def start(self) -> int:
        """Bind and start accepting; returns the actual port (useful
        when constructed with the ephemeral port 0)."""
        self._closing = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def drain(self, grace: float = 10.0) -> None:
        """Graceful shutdown (SIGTERM): stop accepting, let in-flight
        requests finish, end every SSE stream with a terminal
        ``shutdown`` event, then hang up — all within ``grace`` seconds
        (stragglers are force-closed after that)."""
        if self._server is not None:
            self._server.close()
            try:
                await asyncio.wait_for(self._server.wait_closed(), timeout=5)
            except asyncio.TimeoutError:
                pass
            self._server = None
        if self._closing is not None:
            self._closing.set()  # SSE loops notice and say goodbye
        loop = asyncio.get_running_loop()
        deadline = loop.time() + grace
        while (
            (self._active_requests or self._sse_active)
            and loop.time() < deadline
        ):
            await asyncio.sleep(0.02)
        await self.aclose()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            try:
                await asyncio.wait_for(self._server.wait_closed(), timeout=5)
            except asyncio.TimeoutError:
                pass
            self._server = None
        if self._closing is not None:
            self._closing.set()
        # Hang up idle keep-alive peers so their handler tasks finish
        # before the loop goes away.
        for writer in list(self._connections):
            writer.close()
        for _ in range(100):
            if not self._connections:
                break
            await asyncio.sleep(0.01)

    # ------------------------------------------------------------------
    async def _respond(self, request: Request, request_id: str):
        """Route + handle one request under the observability middleware:
        a span per request, a latency observation, a status counter, and
        ``X-Request-Id`` stamped on every buffered response."""
        t0 = time.perf_counter()
        t0_wall = time.time()
        with obs_trace.span(
            "http.request",
            method=request.method,
            path=request.path,
            request_id=request_id,
        ) as sp:
            try:
                handler, params = self.router.match(
                    request.method, request.path
                )
                response = await handler(request, **params)
                status = (
                    200
                    if isinstance(response, EventStreamResponse)
                    else response.status
                )
            except Saturated as exc:
                # Admission control shed the request: tell the client
                # when to come back rather than queueing unboundedly.
                status = 429
                response = Response.json_(
                    {
                        "error": str(exc),
                        "status": 429,
                        "request_id": request_id,
                    },
                    status=429,
                    headers=[(
                        "Retry-After",
                        str(max(1, int(round(exc.retry_after)))),
                    )],
                )
            except CircuitOpen as exc:
                status = 503
                response = Response.json_(
                    {
                        "error": str(exc),
                        "status": 503,
                        "request_id": request_id,
                    },
                    status=503,
                    headers=[(
                        "Retry-After",
                        str(max(1, int(round(exc.retry_after)))),
                    )],
                )
            except DeadlineExceeded as exc:
                status = 504
                response = Response.json_(
                    {
                        "error": str(exc),
                        "status": 504,
                        "request_id": request_id,
                    },
                    status=504,
                )
            except HTTPError as exc:
                status = exc.status
                response = Response.json_(
                    {
                        "error": exc.message,
                        "status": exc.status,
                        "request_id": request_id,
                    },
                    status=exc.status,
                    headers=exc.headers,
                )
            except Exception as exc:
                status = 500
                _log_request_error(request_id, request, exc)
                response = Response.json_(
                    {
                        "error": "internal server error",
                        "status": 500,
                        "request_id": request_id,
                    },
                    status=500,
                )
            sp.set(status=status)
        dur_s = time.perf_counter() - t0
        _M_REQUEST_SECONDS.observe(dur_s)
        _M_RESPONSES.inc(status=str(status))
        if self.request_observer is not None:
            try:
                self.request_observer(
                    path=request.path,
                    request_id=request_id,
                    status=status,
                    t0_wall=t0_wall,
                    dur_s=dur_s,
                )
            except Exception:
                pass
        if isinstance(response, Response):
            response.headers.append(("X-Request-Id", request_id))
        return response

    async def _stream_events(self, events, writer) -> None:
        """Pump an SSE generator to the peer until it finishes, the peer
        hangs up, or the server starts draining — in which case the
        stream ends with a terminal ``shutdown`` event so well-behaved
        clients know not to reconnect immediately."""
        iterator = events.__aiter__()
        while True:
            if self._closing is not None and self._closing.is_set():
                writer.write(_sse_chunk(
                    "shutdown", json.dumps({"reason": "server draining"})
                ))
                await writer.drain()
                return
            next_task = asyncio.ensure_future(iterator.__anext__())
            if self._closing is None:
                done = {next_task}
            else:
                closing_task = asyncio.ensure_future(self._closing.wait())
                done, pending = await asyncio.wait(
                    {next_task, closing_task},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                for task in pending:
                    task.cancel()
                if next_task not in done:
                    # Drain won the race: terminal event, then hang up.
                    writer.write(_sse_chunk(
                        "shutdown",
                        json.dumps({"reason": "server draining"}),
                    ))
                    await writer.drain()
                    return
            try:
                event, data = await next_task
            except StopAsyncIteration:
                return
            writer.write(_sse_chunk(event, data))
            await writer.drain()
            if writer.is_closing():
                # Peer hung up mid-replay; stop building frames.
                return

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                request_id = _new_request_id()
                try:
                    request = await _read_request(reader)
                except HTTPError as exc:
                    _M_RESPONSES.inc(status=str(exc.status))
                    writer.write(
                        Response.json_(
                            {
                                "error": exc.message,
                                "status": exc.status,
                                "request_id": request_id,
                            },
                            status=exc.status,
                            headers=[
                                ("Connection", "close"),
                                ("X-Request-Id", request_id),
                            ],
                        ).render()
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                self._active_requests += 1
                try:
                    response = await self._respond(request, request_id)
                finally:
                    self._active_requests -= 1
                if isinstance(response, EventStreamResponse):
                    if (
                        self.max_sse_sessions > 0
                        and self._sse_active >= self.max_sse_sessions
                    ):
                        # Session cap: shed before streaming starts, and
                        # shut the handler's generator down so it never
                        # builds a frame.
                        await _aclose_quietly(response.events)
                        writer.write(
                            Response.json_(
                                {
                                    "error": "SSE session limit reached",
                                    "status": 429,
                                    "request_id": request_id,
                                },
                                status=429,
                                headers=[
                                    ("Retry-After", "1"),
                                    ("Connection", "close"),
                                    ("X-Request-Id", request_id),
                                ],
                            ).render()
                        )
                        await writer.drain()
                        _M_RESPONSES.inc(status="429")
                        break
                    writer.write(
                        b"HTTP/1.1 200 OK\r\n"
                        b"Content-Type: text/event-stream\r\n"
                        b"Cache-Control: no-cache\r\n"
                        b"Connection: close\r\n"
                        + f"X-Request-Id: {request_id}\r\n\r\n".encode("latin-1")
                    )
                    await writer.drain()
                    if request.method != "HEAD":
                        self._sse_active += 1
                        _M_SSE_SESSIONS.inc()
                        try:
                            await self._stream_events(
                                response.events, writer
                            )
                        finally:
                            # Always runs — client disconnects included:
                            # the slot is released, the gauge drops, and
                            # closing the generator stops frame builds
                            # for the dead session.
                            self._sse_active -= 1
                            _M_SSE_SESSIONS.dec()
                            await _aclose_quietly(response.events)
                    break
                writer.write(response.render(head_only=request.method == "HEAD"))
                await writer.drain()
                if request.headers.get("connection", "").lower() == "close":
                    break
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
