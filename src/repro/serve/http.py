"""Hand-rolled HTTP/1.1 on ``asyncio.start_server`` — no ``http.server``.

Just enough protocol for the terrain service: GET/HEAD, percent-decoded
paths and query strings, request bodies by ``Content-Length``,
keep-alive, strong-ETag conditional responses, and Server-Sent Events.
Everything is stdlib (``asyncio`` + ``urllib.parse``); the goal is zero
new runtime dependencies, not a general-purpose web framework.

Pieces
------
:class:`Request` / :class:`Response`
    Parsed request and buffered response (``Response.json_`` /
    ``Response.text`` helpers).
:class:`EventStreamResponse`
    A response whose body is an async iterator of ``(event, data)``
    pairs, written as an SSE stream on a connection that then closes.
:class:`Router`
    ``/t/{ds}/{measure}/...``-style segment patterns; ``{name}``
    segments capture into handler keyword arguments.
:class:`HTTPServer`
    The connection loop: parse → route → respond, keep-alive until
    ``Connection: close``, a protocol error, or an event stream.
:class:`HTTPError`
    Raise from a handler to produce a JSON error response with that
    status.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import logging
import os
import time
import traceback
from typing import (
    AsyncIterator,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
)
from urllib.parse import parse_qsl, unquote

from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace

__all__ = [
    "HTTPError",
    "Request",
    "Response",
    "EventStreamResponse",
    "Router",
    "HTTPServer",
]

_REASONS = {
    200: "OK",
    204: "No Content",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}
_MAX_HEADERS = 100
_MAX_BODY = 1 << 20

#: Structured request/error log — one JSON line per record, so a log
#: shipper can parse it without multi-line stitching.
logger = logging.getLogger("repro.serve")

_request_ids = itertools.count(1)

_M_RESPONSES = obs_metrics.REGISTRY.counter(
    "repro_http_responses_total", "HTTP responses by status code.", ("status",)
)
_M_REQUEST_SECONDS = obs_metrics.REGISTRY.histogram(
    "repro_http_request_seconds", "HTTP request handling latency."
)
_M_SSE_SESSIONS = obs_metrics.REGISTRY.gauge(
    "repro_sse_sessions", "Currently open Server-Sent-Events streams."
)


def _new_request_id() -> str:
    return f"{os.getpid():x}-{next(_request_ids):x}"


def _log_request_error(request_id: str, request: "Request", exc: BaseException) -> None:
    """One structured JSON log line per unhandled handler exception.

    The traceback stays in the log (escaped inside the JSON), never in
    the 500 response body — clients get a generic message plus the
    request id to quote back at operators."""
    logger.error(json.dumps({
        "event": "request_error",
        "request_id": request_id,
        "method": request.method,
        "route": request.path,
        "status": 500,
        "exception": f"{type(exc).__name__}: {exc}",
        "traceback": traceback.format_exc(),
    }, sort_keys=True))


class HTTPError(Exception):
    """Handler-raised error rendered as a JSON response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(
        self,
        method: str,
        path: str,
        query: Dict[str, str],
        headers: Dict[str, str],
        body: bytes = b"",
    ) -> None:
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body

    # -- typed query helpers (400 on bad input) -------------------------
    def query_str(self, name: str, default: Optional[str] = None) -> str:
        value = self.query.get(name, default)
        if value is None:
            raise HTTPError(400, f"missing required query parameter {name!r}")
        return value

    def query_int(
        self,
        name: str,
        default: Optional[int] = None,
        lo: Optional[int] = None,
        hi: Optional[int] = None,
    ) -> int:
        raw = self.query.get(name)
        if raw is None:
            if default is None:
                raise HTTPError(
                    400, f"missing required query parameter {name!r}"
                )
            return default
        try:
            value = int(raw)
        except ValueError:
            raise HTTPError(400, f"query parameter {name}={raw!r} is not an integer")
        if (lo is not None and value < lo) or (hi is not None and value > hi):
            raise HTTPError(400, f"query parameter {name}={value} out of range")
        return value

    def query_float(self, name: str) -> float:
        raw = self.query_str(name)
        try:
            return float(raw)
        except ValueError:
            raise HTTPError(400, f"query parameter {name}={raw!r} is not a number")

    def if_none_match(self) -> List[str]:
        """The ``If-None-Match`` header as a list of entity tags."""
        raw = self.headers.get("if-none-match", "")
        return [tag.strip() for tag in raw.split(",") if tag.strip()]


class Response:
    """A fully buffered response."""

    __slots__ = ("status", "body", "headers")

    def __init__(
        self,
        status: int = 200,
        body: bytes = b"",
        content_type: str = "application/octet-stream",
        headers: Optional[List[Tuple[str, str]]] = None,
    ) -> None:
        self.status = status
        self.body = body
        self.headers = list(headers or [])
        if body or status not in (204, 304):
            self.headers.insert(0, ("Content-Type", content_type))

    @classmethod
    def json_(cls, obj, status: int = 200, **kwargs) -> "Response":
        return cls(
            status,
            json.dumps(obj).encode(),
            content_type="application/json",
            **kwargs,
        )

    @classmethod
    def text(
        cls, text: str, status: int = 200, content_type: str = "text/plain"
    ) -> "Response":
        return cls(status, text.encode(), content_type=content_type)

    def render(self, head_only: bool = False) -> bytes:
        reason = _REASONS.get(self.status, "Unknown")
        lines = [f"HTTP/1.1 {self.status} {reason}"]
        lines.extend(f"{name}: {value}" for name, value in self.headers)
        lines.append(f"Content-Length: {len(self.body)}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head if head_only else head + self.body


class EventStreamResponse:
    """Server-Sent Events: ``events`` yields ``(event, data)`` pairs."""

    __slots__ = ("events",)

    def __init__(self, events: AsyncIterator[Tuple[str, str]]) -> None:
        self.events = events


Handler = Callable[..., "object"]


class Router:
    """Segment-pattern router; ``{name}`` segments capture path params."""

    def __init__(self) -> None:
        self._routes: List[Tuple[str, List[str], Handler]] = []

    def get(self, pattern: str, handler: Handler) -> None:
        self._routes.append(("GET", pattern.strip("/").split("/"), handler))

    def match(self, method: str, path: str) -> Tuple[Handler, Dict[str, str]]:
        segments = path.strip("/").split("/")
        found_path = False
        for route_method, route_segments, handler in self._routes:
            if len(route_segments) != len(segments):
                continue
            params: Dict[str, str] = {}
            for pat, seg in zip(route_segments, segments):
                if pat.startswith("{") and pat.endswith("}"):
                    if not seg:
                        break
                    params[pat[1:-1]] = seg
                elif pat != seg:
                    break
            else:
                found_path = True
                # HEAD is answered by the GET handler minus the body.
                if method in (route_method, "HEAD"):
                    return handler, params
        if found_path:
            raise HTTPError(405, f"method {method} not allowed")
        raise HTTPError(404, f"no route for {path}")


async def _read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request; ``None`` when the peer closed the connection.

    Raises :class:`HTTPError` (400/413) on malformed input.
    """
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError):
        raise HTTPError(400, "request line too long")
    if not line:
        return None
    parts = line.decode("latin-1", "replace").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise HTTPError(400, "malformed request line")
    method, target, _version = parts
    headers: Dict[str, str] = {}
    for _ in range(_MAX_HEADERS):
        try:
            raw = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            raise HTTPError(400, "header line too long")
        if raw in (b"\r\n", b"\n", b""):
            break
        name, sep, value = raw.decode("latin-1", "replace").partition(":")
        if not sep:
            raise HTTPError(400, "malformed header line")
        headers[name.strip().lower()] = value.strip()
    else:
        raise HTTPError(400, "too many headers")
    if "chunked" in headers.get("transfer-encoding", "").lower():
        # Reading no body would desync keep-alive framing (the first
        # chunk-size line would parse as the next request line).
        raise HTTPError(400, "chunked request bodies are not supported")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HTTPError(400, "bad Content-Length")
        if length > _MAX_BODY:
            raise HTTPError(413, "request body too large")
        if length:
            body = await reader.readexactly(length)
    path, _, qs = target.partition("?")
    query = dict(parse_qsl(qs, keep_blank_values=True))
    return Request(method.upper(), unquote(path) or "/", query, headers, body)


def _sse_chunk(event: str, data: str) -> bytes:
    lines = data.splitlines() or [""]
    frame = f"event: {event}\n" + "".join(f"data: {ln}\n" for ln in lines)
    return (frame + "\n").encode()


class HTTPServer:
    """The asyncio connection loop around a :class:`Router`."""

    def __init__(
        self, router: Router, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.router = router
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()

    async def start(self) -> int:
        """Bind and start accepting; returns the actual port (useful
        when constructed with the ephemeral port 0)."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            try:
                await asyncio.wait_for(self._server.wait_closed(), timeout=5)
            except asyncio.TimeoutError:
                pass
            self._server = None
        # Hang up idle keep-alive peers so their handler tasks finish
        # before the loop goes away.
        for writer in list(self._connections):
            writer.close()
        for _ in range(100):
            if not self._connections:
                break
            await asyncio.sleep(0.01)

    # ------------------------------------------------------------------
    async def _respond(self, request: Request, request_id: str):
        """Route + handle one request under the observability middleware:
        a span per request, a latency observation, a status counter, and
        ``X-Request-Id`` stamped on every buffered response."""
        t0 = time.perf_counter()
        with obs_trace.span(
            "http.request",
            method=request.method,
            path=request.path,
            request_id=request_id,
        ) as sp:
            try:
                handler, params = self.router.match(
                    request.method, request.path
                )
                response = await handler(request, **params)
                status = (
                    200
                    if isinstance(response, EventStreamResponse)
                    else response.status
                )
            except HTTPError as exc:
                status = exc.status
                response = Response.json_(
                    {
                        "error": exc.message,
                        "status": exc.status,
                        "request_id": request_id,
                    },
                    status=exc.status,
                )
            except Exception as exc:
                status = 500
                _log_request_error(request_id, request, exc)
                response = Response.json_(
                    {
                        "error": "internal server error",
                        "status": 500,
                        "request_id": request_id,
                    },
                    status=500,
                )
            sp.set(status=status)
        _M_REQUEST_SECONDS.observe(time.perf_counter() - t0)
        _M_RESPONSES.inc(status=str(status))
        if isinstance(response, Response):
            response.headers.append(("X-Request-Id", request_id))
        return response

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                request_id = _new_request_id()
                try:
                    request = await _read_request(reader)
                except HTTPError as exc:
                    _M_RESPONSES.inc(status=str(exc.status))
                    writer.write(
                        Response.json_(
                            {
                                "error": exc.message,
                                "status": exc.status,
                                "request_id": request_id,
                            },
                            status=exc.status,
                            headers=[
                                ("Connection", "close"),
                                ("X-Request-Id", request_id),
                            ],
                        ).render()
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                response = await self._respond(request, request_id)
                if isinstance(response, EventStreamResponse):
                    writer.write(
                        b"HTTP/1.1 200 OK\r\n"
                        b"Content-Type: text/event-stream\r\n"
                        b"Cache-Control: no-cache\r\n"
                        b"Connection: close\r\n"
                        + f"X-Request-Id: {request_id}\r\n\r\n".encode("latin-1")
                    )
                    await writer.drain()
                    if request.method != "HEAD":
                        _M_SSE_SESSIONS.inc()
                        try:
                            async for event, data in response.events:
                                writer.write(_sse_chunk(event, data))
                                await writer.drain()
                        finally:
                            _M_SSE_SESSIONS.dec()
                    break
                writer.write(response.render(head_only=request.method == "HEAD"))
                await writer.drain()
                if request.headers.get("connection", "").lower() == "close":
                    break
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
