"""Run a :class:`ServeApp` on a background thread (tests, benchmarks,
example clients).

``ServerThread`` owns a private event loop on a daemon thread, binds an
ephemeral port by default, and tears everything down on exit::

    with ServerThread(app) as server:
        http.client.HTTPConnection("127.0.0.1", server.port)...
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from .app import ServeApp
from .http import HTTPServer

__all__ = ["ServerThread"]


class ServerThread:
    """Context manager: the app's HTTP server, live on its own thread."""

    def __init__(
        self,
        app: ServeApp,
        host: str = "127.0.0.1",
        port: int = 0,
        max_sse_sessions: int = 0,
    ) -> None:
        self.app = app
        self.host = host
        self.port = port
        self.url = ""
        self.max_sse_sessions = max_sse_sessions
        self.server: Optional[HTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopped: Optional[asyncio.Future] = None
        self._started = threading.Event()
        self._error: Optional[BaseException] = None

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        server = HTTPServer(
            self.app.router(), self.host, self.port,
            max_sse_sessions=self.max_sse_sessions,
        )
        # Slow-request exemplars (span waterfall + profile slice under
        # /debug/slow) ride the server's post-response hook.  Stub apps
        # without the hook (resilience tests) just skip it.
        server.request_observer = getattr(self.app, "observe_request", None)
        self.server = server
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # bind failure: surface in __enter__
            self._error = exc
            self._started.set()
            loop.close()
            return
        self.port = server.port
        self.url = f"http://{self.host}:{self.port}"
        self._stopped = loop.create_future()
        self._started.set()
        try:
            loop.run_until_complete(self._stopped)
        finally:
            loop.run_until_complete(server.aclose())
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def __enter__(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("server thread failed to start in 30s")
        if self._error is not None:
            raise RuntimeError("server failed to start") from self._error
        return self

    def run_coroutine(self, coro, timeout: float = 60.0):
        """Run ``coro`` on the server's loop from the calling thread —
        e.g. ``server.run_coroutine(server.server.drain())`` to exercise
        the graceful-shutdown path from a test."""
        assert self._loop is not None, "server not started"
        return asyncio.run_coroutine_threadsafe(
            coro, self._loop
        ).result(timeout=timeout)

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self._stopped is not None:
            def _stop() -> None:
                if not self._stopped.done():
                    self._stopped.set_result(None)

            self._loop.call_soon_threadsafe(_stop)
        if self._thread is not None:
            self._thread.join(timeout=30)
        self.app.runner.shutdown()
