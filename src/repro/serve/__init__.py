"""repro.serve — concurrent terrain tile/query server over the engine.

The interactive half of the paper's terrain metaphor, built the way the
ROADMAP's "heavy traffic" north star demands: precompute once through
the cached :mod:`repro.engine` pipeline, then serve cheap slices of the
cached artifacts concurrently.  Stdlib-only — a hand-rolled HTTP/1.1
service on ``asyncio.start_server``, zero new runtime dependencies.

``repro.serve.lod``
    :class:`LODPyramid` — rasterize once at maximum resolution per
    (dataset, measure, bins), derive power-of-two downsampled levels,
    cut fixed-size ``(level, tx, ty)`` tiles, each a cached artifact
    with a strong content-hash ETag.
``repro.serve.http``
    The minimal HTTP layer: request parsing, segment router,
    keep-alive, Server-Sent Events.
``repro.serve.workers``
    :class:`StageRunner` — CPU-bound stages on a bounded executor
    (threads by default, ``ProcessPoolExecutor`` with ``workers > 0``)
    with per-key request coalescing: concurrent cold requests for one
    artifact trigger exactly one build.
``repro.serve.app``
    :class:`ServeApp` — the routes (``/datasets``, tiles, ``/peaks``,
    ``/hit``, the linked SVG displays, ``/stats``).
``repro.serve.stream``
    ``GET /stream/{session}`` — SSE replay of a JSONL edit log through
    the streaming pipeline, pushing dirty-tile invalidations and frame
    summaries.
``repro.serve.evolve``
    Temporal evolution endpoints — ``/evolve/windows``, peak
    trajectories, signed terrain-diff tiles, and window-frame SSE on
    the stream channel (see :mod:`repro.evolve`).
``repro.serve.testing``
    :class:`ServerThread` — run an app on a background thread for
    tests, benchmarks and example clients.

Start from the CLI (``repro serve --datasets grqc --measures kcore``)
or embed::

    from repro.serve import ServeApp, ServerThread

    app = ServeApp(tile_size=32, levels=2)
    app.add_dataset("grqc", ["kcore"])
    with ServerThread(app) as server:
        print(server.url)  # e.g. http://127.0.0.1:49152
"""

from .app import ServeApp
from .evolve import EvolveRun, EvolveSession, evolve_sse_events
from .http import (
    EventStreamResponse,
    HTTPError,
    HTTPServer,
    Request,
    Response,
    Router,
)
from .lod import LODPyramid, tile_etag
from .stream import StreamSession, dirty_tiles, sse_events
from .testing import ServerThread
from .workers import StageRunner, pipeline_spec

__all__ = [
    "ServeApp",
    "LODPyramid",
    "tile_etag",
    "StageRunner",
    "pipeline_spec",
    "StreamSession",
    "sse_events",
    "dirty_tiles",
    "EvolveSession",
    "EvolveRun",
    "evolve_sse_events",
    "HTTPServer",
    "HTTPError",
    "Router",
    "Request",
    "Response",
    "EventStreamResponse",
    "ServerThread",
]
