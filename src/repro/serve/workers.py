"""CPU-bound stage execution for the server: bounded executor pools and
per-key request coalescing.

The event loop must never run a pipeline stage inline — a cold terrain
build can take seconds.  :class:`StageRunner` pushes builds onto a
bounded executor and **coalesces** them per logical key: any number of
concurrent requests for the same cold artifact await one in-flight
build; only the first actually executes (the single-flight pattern —
``stats["coalesced"]`` counts the riders).

Two executor modes:

* ``workers == 0`` (default) — a small bounded ``ThreadPoolExecutor``
  in-process.  Build callables may be closures over live pipeline
  objects; every build shares the server's :class:`ArtifactCache`
  directly.  This is the mode tests, benchmarks and single-host
  deployments use.
* ``workers > 0`` — a bounded ``ProcessPoolExecutor``.  Builds must be
  the picklable module-level functions below, which reconstruct
  pipelines from plain ``spec`` dicts and memoize them **per worker
  process**; pair with a ``--cache-dir`` so serialized stages (fields,
  trees, tiles) are shared across workers through the disk tier.
"""

from __future__ import annotations

import asyncio
import contextvars
import json
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

from ..engine import ArtifactCache
from ..engine.pipeline import (
    DatasetSource,
    EdgeListSource,
    Pipeline,
    Source,
)
from .lod import LODPyramid

__all__ = [
    "StageRunner",
    "pipeline_spec",
    "spec_key",
    "source_from_spec",
    "pyramid_for",
    "ensure_levels",
    "build_tile_payload",
    "build_peaks",
    "build_hit",
    "build_treemap_svg",
    "build_profile_svg",
]


# ----------------------------------------------------------------------
# Request coalescing over a bounded executor
# ----------------------------------------------------------------------
class StageRunner:
    """Single-flight execution of keyed build jobs.

    ``run(key, fn, *args)`` executes ``fn(*args)`` on the pool — unless
    a build for ``key`` is already in flight, in which case the caller
    just awaits that build's future.  Exactly one execution per key at
    any moment, however many clients hit a cold artifact together.
    """

    def __init__(self, workers: int = 0, threads: int = 4) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = workers
        # The thread pool always exists: it runs builds in thread mode
        # and stateful jobs (SSE replays) in every mode.
        self.thread_executor = ThreadPoolExecutor(
            max_workers=threads, thread_name_prefix="repro-serve"
        )
        self._executor = (
            ProcessPoolExecutor(max_workers=workers)
            if workers > 0
            else self.thread_executor
        )
        self._inflight: Dict[str, asyncio.Future] = {}
        self.stats: Dict[str, int] = {"builds": 0, "coalesced": 0, "errors": 0}

    @property
    def uses_processes(self) -> bool:
        return self.workers > 0

    async def run(self, key: str, fn, *args):
        """Run ``fn(*args)`` for ``key``, coalescing concurrent callers.

        All bookkeeping happens synchronously between awaits on the
        (single-threaded) event loop, so no lock is needed: a second
        request for ``key`` always sees the first one's future.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            self.stats["coalesced"] += 1
            # shield(): a rider hanging up must not cancel the build
            # other riders (and the cache) are waiting on.
            return await asyncio.shield(existing)
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        self.stats["builds"] += 1
        try:
            if self.uses_processes:
                value = await loop.run_in_executor(self._executor, fn, *args)
            else:
                # Thread mode: run the job inside a copy of the caller's
                # context so repro.obs span parenting survives the hop
                # onto the pool thread (a Context is not picklable, so
                # process mode can't do this — see obs.trace.traced_job).
                ctx = contextvars.copy_context()
                value = await loop.run_in_executor(
                    self.thread_executor, ctx.run, fn, *args
                )
        except BaseException as exc:
            self.stats["errors"] += 1
            if not future.done():
                future.set_exception(exc)
                future.exception()  # mark retrieved even with no riders
            raise
        else:
            if not future.done():
                future.set_result(value)
            return value
        finally:
            self._inflight.pop(key, None)

    def map_sync(self, fn, args_list: List[tuple]) -> List:
        """Run ``fn(*args)`` for every tuple in ``args_list`` on the
        pool, synchronously, preserving input order.

        The blocking counterpart of :meth:`run` for fan-out jobs that
        are *parts* of one computation rather than independently keyed
        artifacts — e.g. :func:`repro.accel.traverse.shard_sources`
        splitting a multi-source centrality's source list into chunks.
        In process mode ``fn`` must be a picklable module-level
        function, exactly like the build jobs below.
        """
        if self.uses_processes:
            futures = [self._executor.submit(fn, *args) for args in args_list]
        else:
            # Propagate the caller's context (repro.obs span parenting)
            # onto the worker threads; a fresh copy per job keeps the
            # jobs' own contextvar writes isolated from each other.
            futures = [
                self._executor.submit(
                    contextvars.copy_context().run, fn, *args
                )
                for args in args_list
            ]
        return [future.result() for future in futures]

    def shutdown(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)
        if self.thread_executor is not self._executor:
            self.thread_executor.shutdown(wait=False, cancel_futures=True)


# ----------------------------------------------------------------------
# Picklable pipeline specs (process mode)
# ----------------------------------------------------------------------
def pipeline_spec(
    source: Dict[str, str],
    measure: str,
    *,
    bins: Optional[int] = None,
    scheme: str = "quantile",
    tile_size: int = 64,
    levels: int = 3,
    cache_dir: Optional[str] = None,
) -> Dict[str, object]:
    """The plain-dict description a worker process needs to rebuild a
    pipeline + pyramid: source, measure, display and pyramid params."""
    return {
        "source": dict(source),
        "measure": measure,
        "bins": bins,
        "scheme": scheme,
        "tile_size": tile_size,
        "levels": levels,
        "cache_dir": cache_dir,
    }


def spec_key(spec: Dict[str, object]) -> str:
    return json.dumps(spec, sort_keys=True)


def source_from_spec(spec_source: Dict[str, str]) -> Source:
    kind = spec_source.get("kind")
    if kind == "dataset":
        return DatasetSource(spec_source["name"])
    if kind == "edge_list":
        return EdgeListSource(spec_source["path"])
    raise ValueError(f"unknown source spec kind {kind!r}")


_MEMO_LOCK = threading.Lock()
_PYRAMIDS: Dict[str, LODPyramid] = {}


def pyramid_for(spec: Dict[str, object]) -> LODPyramid:
    """Per-process memoized pyramid for ``spec`` (worker-side warmth:
    once a worker has built a pipeline, later jobs on it are cache
    hits in that worker's memory tier)."""
    key = spec_key(spec)
    with _MEMO_LOCK:
        pyramid = _PYRAMIDS.get(key)
        if pyramid is None:
            pipeline = Pipeline(
                source_from_spec(spec["source"]),
                spec["measure"],
                bins=spec["bins"],
                scheme=spec["scheme"],
                cache=ArtifactCache(spec.get("cache_dir")),
            )
            pyramid = LODPyramid(
                pipeline,
                tile_size=spec["tile_size"],
                levels=spec["levels"],
            )
            _PYRAMIDS[key] = pyramid
        return pyramid


# ----------------------------------------------------------------------
# Module-level build jobs (picklable for ProcessPoolExecutor)
# ----------------------------------------------------------------------
def ensure_levels(spec: Dict[str, object]) -> Dict[str, object]:
    """Cold-start unit: build every pyramid level; returns its summary."""
    return pyramid_for(spec).ensure_levels()


def build_tile_payload(
    spec: Dict[str, object], level: int, tx: int, ty: int
) -> Tuple[bytes, str]:
    return pyramid_for(spec).tile_payload(level, tx, ty)


def peaks_as_dicts(pipeline: Pipeline, count: int) -> List[Dict[str, object]]:
    """JSON-ready rows for the ``count`` highest disconnected peaks."""
    unit = "edges" if pipeline.display_tree.kind == "edge" else "vertices"
    return [
        {
            "node": int(peak.node),
            "alpha": float(peak.alpha),
            "summit": float(peak.summit),
            "prominence": float(peak.prominence),
            "size": int(peak.size),
            "unit": unit,
            "base_area": float(peak.base_area),
        }
        for peak in pipeline.peaks(count=count)
    ]


def build_peaks(spec: Dict[str, object], count: int) -> List[Dict[str, object]]:
    return peaks_as_dicts(pyramid_for(spec).pipeline, count)


def hit_as_dict(pipeline: Pipeline, x: float, y: float) -> Dict[str, object]:
    """JSON-ready hover hit-test at layout coordinates ``(x, y)``."""
    layout = pipeline.layout()
    node = layout.node_at(x, y)
    if node is None:
        return {"node": None}
    tree = pipeline.display_tree
    return {
        "node": int(node),
        "alpha": float(tree.scalars[node]),
        "size": int(tree.subtree_size(node)),
        "kind": tree.kind,
        "center": [float(layout.cx[node]), float(layout.cy[node])],
        "radius": float(layout.r[node]),
    }


def build_hit(spec: Dict[str, object], x: float, y: float) -> Dict[str, object]:
    return hit_as_dict(pyramid_for(spec).pipeline, x, y)


def build_treemap_svg(spec: Dict[str, object], size: int) -> str:
    return pyramid_for(spec).pipeline.treemap(size=size)


def build_profile_svg(spec: Dict[str, object], width: int, height: int) -> str:
    return pyramid_for(spec).pipeline.profile(width=width, height=height)
