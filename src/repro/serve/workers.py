"""CPU-bound stage execution for the server: bounded executor pools and
per-key request coalescing.

The event loop must never run a pipeline stage inline — a cold terrain
build can take seconds.  :class:`StageRunner` pushes builds onto a
bounded executor and **coalesces** them per logical key: any number of
concurrent requests for the same cold artifact await one in-flight
build; only the first actually executes (the single-flight pattern —
``stats["coalesced"]`` counts the riders).

Two executor modes:

* ``workers == 0`` (default) — a small bounded ``ThreadPoolExecutor``
  in-process.  Build callables may be closures over live pipeline
  objects; every build shares the server's :class:`ArtifactCache`
  directly.  This is the mode tests, benchmarks and single-host
  deployments use.
* ``workers > 0`` — a bounded ``ProcessPoolExecutor``.  Builds must be
  the picklable module-level functions below, which reconstruct
  pipelines from plain ``spec`` dicts and memoize them **per worker
  process**; pair with a ``--cache-dir`` so serialized stages (fields,
  trees, tiles) are shared across workers through the disk tier.
"""

from __future__ import annotations

import asyncio
import contextvars
import json
import threading
import time
from collections import OrderedDict
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Tuple

from ..engine import ArtifactCache
from ..engine.pipeline import (
    DatasetSource,
    EdgeListSource,
    Pipeline,
    Source,
)
from ..resil import faults
from ..resil.retry import (
    AdmissionGate,
    CircuitBreaker,
    CircuitOpen,
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
    Saturated,
    TransientFault,
    note_deadline,
    note_giveup,
    note_retry,
)
from .lod import LODPyramid

#: Breakers are per build key; keep the table bounded (LRU) so a long
#: serve process with unbounded key cardinality cannot grow it forever.
_MAX_BREAKERS = 512

__all__ = [
    "StageRunner",
    "pipeline_spec",
    "spec_key",
    "source_from_spec",
    "pyramid_for",
    "ensure_levels",
    "build_tile_payload",
    "build_peaks",
    "build_hit",
    "build_treemap_svg",
    "build_profile_svg",
]


# ----------------------------------------------------------------------
# Request coalescing over a bounded executor
# ----------------------------------------------------------------------
class StageRunner:
    """Single-flight execution of keyed build jobs.

    ``run(key, fn, *args)`` executes ``fn(*args)`` on the pool — unless
    a build for ``key`` is already in flight, in which case the caller
    just awaits that build's future.  Exactly one execution per key at
    any moment, however many clients hit a cold artifact together.
    """

    def __init__(
        self,
        workers: int = 0,
        threads: int = 4,
        retry: Optional[RetryPolicy] = None,
        max_inflight: int = 0,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 30.0,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = workers
        # The thread pool always exists: it runs builds in thread mode
        # and stateful jobs (SSE replays) in every mode.
        self.thread_executor = ThreadPoolExecutor(
            max_workers=threads, thread_name_prefix="repro-serve"
        )
        self._executor = (
            ProcessPoolExecutor(max_workers=workers)
            if workers > 0
            else self.thread_executor
        )
        self._inflight: Dict[str, asyncio.Future] = {}
        #: Transient faults (injected faults, dead pool workers) are
        #: retried with backoff; deterministic exceptions propagate on
        #: the first attempt, exactly as before.
        self.retry = retry if retry is not None else RetryPolicy(
            max_attempts=4, base_delay=0.05, max_delay=1.0
        )
        #: ``max_inflight > 0`` bounds concurrent *distinct* builds; the
        #: overflow is refused with :class:`Saturated` (→ HTTP 429), and
        #: a quarter of the slots stay reserved for interactive work.
        self.gate = (
            AdmissionGate(max_inflight) if max_inflight > 0 else None
        )
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self._breakers: "OrderedDict[str, CircuitBreaker]" = OrderedDict()
        self.stats: Dict[str, int] = {
            "builds": 0, "coalesced": 0, "errors": 0,
            "retries": 0, "respawns": 0, "shed": 0,
            "breaker_open": 0, "deadline_exceeded": 0,
        }

    @property
    def uses_processes(self) -> bool:
        return self.workers > 0

    # -- resilience plumbing -------------------------------------------
    def _breaker_for(self, key: str) -> Optional[CircuitBreaker]:
        if self.breaker_threshold <= 0:
            return None
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(
                self.breaker_threshold, self.breaker_cooldown
            )
            self._breakers[key] = breaker
            if len(self._breakers) > _MAX_BREAKERS:
                self._breakers.popitem(last=False)
        else:
            self._breakers.move_to_end(key)
        return breaker

    def _respawn(self) -> None:
        """Replace a broken ProcessPoolExecutor with a fresh one."""
        if not self.uses_processes:
            return
        broken, self._executor = self._executor, ProcessPoolExecutor(
            max_workers=self.workers
        )
        self.stats["respawns"] += 1
        broken.shutdown(wait=False, cancel_futures=True)

    def _maybe_sacrifice_worker(self) -> None:
        """Fault site ``worker_kill``: submit a job that ``os._exit``\\ s
        its worker, breaking the pool (the retry path then respawns).
        Scheduled parent-side so occurrence counting survives respawns."""
        if not self.uses_processes:
            return
        if faults.should_fire("worker_kill") is None:
            return
        try:
            self._executor.submit(faults._worker_suicide)
        except BrokenExecutor:
            pass

    def _submit(self, loop: asyncio.AbstractEventLoop, fn, args: tuple):
        job_fn, job_args = (
            faults.wrap_job(fn, tuple(args)) if faults.active()
            else (fn, args)
        )
        if self.uses_processes:
            self._maybe_sacrifice_worker()
            return loop.run_in_executor(self._executor, job_fn, *job_args)
        # Thread mode: run the job inside a copy of the caller's
        # context so repro.obs span parenting survives the hop
        # onto the pool thread (a Context is not picklable, so
        # process mode can't do this — see obs.trace.traced_job).
        ctx = contextvars.copy_context()
        return loop.run_in_executor(
            self.thread_executor, ctx.run, job_fn, *job_args
        )

    async def _execute(self, fn, args: tuple, deadline: Optional[Deadline]):
        """One logical build: retry transient faults with backoff,
        respawn a broken process pool, honour the deadline budget."""
        loop = asyncio.get_running_loop()
        failures = 0
        while True:
            try:
                awaitable = self._submit(loop, fn, args)
                if deadline is None:
                    return await awaitable
                try:
                    return await asyncio.wait_for(
                        awaitable, deadline.remaining()
                    )
                except asyncio.TimeoutError:
                    self.stats["deadline_exceeded"] += 1
                    note_deadline("stage_runner")
                    raise DeadlineExceeded(
                        f"build exceeded {deadline.seconds:g}s budget"
                    ) from None
            except (TransientFault, BrokenProcessPool) as exc:
                failures += 1
                if isinstance(exc, BrokenProcessPool):
                    self._respawn()
                if failures >= self.retry.max_attempts or (
                    deadline is not None and deadline.expired
                ):
                    note_giveup("stage_runner")
                    raise
                self.stats["retries"] += 1
                note_retry("stage_runner")
                pause = self.retry.delay(failures)
                if deadline is not None:
                    pause = min(pause, deadline.remaining())
                if pause > 0.0:
                    await asyncio.sleep(pause)

    async def run(
        self,
        key: str,
        fn,
        *args,
        interactive: bool = False,
        timeout: Optional[float] = None,
    ):
        """Run ``fn(*args)`` for ``key``, coalescing concurrent callers.

        All bookkeeping happens synchronously between awaits on the
        (single-threaded) event loop, so no lock is needed: a second
        request for ``key`` always sees the first one's future.

        Resilience semantics: transient faults (injected faults, dead
        pool workers) are retried inside the one logical build, so
        ``stats["builds"]`` still counts logical builds and
        ``stats["errors"]`` only final failures.  A saturated admission
        gate raises :class:`Saturated`, an open circuit breaker
        :class:`CircuitOpen` — both *before* any work is queued — and a
        blown ``timeout`` raises :class:`DeadlineExceeded`.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            self.stats["coalesced"] += 1
            # shield(): a rider hanging up must not cancel the build
            # other riders (and the cache) are waiting on.
            return await asyncio.shield(existing)
        breaker = self._breaker_for(key)
        if breaker is not None and not breaker.allow():
            self.stats["breaker_open"] += 1
            raise CircuitOpen(key, breaker.retry_after())
        if self.gate is not None and not self.gate.try_acquire(
            interactive=interactive
        ):
            self.stats["shed"] += 1
            raise Saturated(
                f"build queue saturated "
                f"({self.gate.admitted}/{self.gate.limit} in flight)",
                retry_after=self.gate.retry_after,
            )
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        self.stats["builds"] += 1
        deadline = Deadline(timeout) if timeout is not None else None
        try:
            value = await self._execute(fn, args, deadline)
        except BaseException as exc:
            self.stats["errors"] += 1
            if breaker is not None and not isinstance(
                exc, asyncio.CancelledError
            ):
                breaker.record_failure()
            if not future.done():
                future.set_exception(exc)
                future.exception()  # mark retrieved even with no riders
            raise
        else:
            if breaker is not None:
                breaker.record_success()
            if not future.done():
                future.set_result(value)
            return value
        finally:
            self._inflight.pop(key, None)
            if self.gate is not None:
                self.gate.release()

    def map_sync(
        self,
        fn,
        args_list: List[tuple],
        timeout: Optional[float] = None,
    ) -> List:
        """Run ``fn(*args)`` for every tuple in ``args_list`` on the
        pool, synchronously, preserving input order.

        The blocking counterpart of :meth:`run` for fan-out jobs that
        are *parts* of one computation rather than independently keyed
        artifacts — e.g. :func:`repro.accel.traverse.shard_sources`
        splitting a multi-source centrality's source list into chunks.
        In process mode ``fn`` must be a picklable module-level
        function, exactly like the build jobs below.

        Failed jobs (transient faults, a broken process pool) are
        **resubmitted individually** with backoff — completed shards are
        never recomputed — until the retry budget or the optional
        ``timeout`` budget runs out.
        """
        deadline = Deadline(timeout) if timeout is not None else None
        results: List = [None] * len(args_list)
        pending = list(range(len(args_list)))
        failures = 0
        last_exc: Optional[BaseException] = None
        while True:
            futures = {}
            broken = False
            for index in pending:
                job_fn, job_args = (
                    faults.wrap_job(fn, tuple(args_list[index]))
                    if faults.active() else (fn, args_list[index])
                )
                try:
                    if self.uses_processes:
                        self._maybe_sacrifice_worker()
                        futures[index] = self._executor.submit(
                            job_fn, *job_args
                        )
                    else:
                        # Propagate the caller's context (repro.obs span
                        # parenting) onto the worker threads; a fresh
                        # copy per job keeps the jobs' own contextvar
                        # writes isolated from each other.
                        futures[index] = self._executor.submit(
                            contextvars.copy_context().run, job_fn, *job_args
                        )
                except BrokenExecutor as exc:
                    broken = True
                    last_exc = exc
                    break
            still = [i for i in pending if i not in futures]
            for index, future in futures.items():
                try:
                    results[index] = future.result(
                        timeout=deadline.remaining()
                        if deadline is not None else None
                    )
                except FuturesTimeout:
                    self.stats["deadline_exceeded"] += 1
                    note_deadline("map_sync")
                    raise DeadlineExceeded(
                        f"map_sync exceeded {deadline.seconds:g}s budget"
                    ) from None
                except BrokenProcessPool as exc:
                    broken = True
                    last_exc = exc
                    still.append(index)
                except TransientFault as exc:
                    last_exc = exc
                    still.append(index)
            if broken:
                self._respawn()
            if not still:
                return results
            still.sort()
            failures += 1
            if failures >= self.retry.max_attempts or (
                deadline is not None and deadline.expired
            ):
                note_giveup("map_sync")
                raise last_exc if last_exc is not None else BrokenExecutor(
                    "process pool broke during submit"
                )
            self.stats["retries"] += len(still)
            note_retry("map_sync")
            pause = self.retry.delay(failures)
            if deadline is not None:
                pause = min(pause, deadline.remaining())
            if pause > 0.0:
                time.sleep(pause)
            pending = still

    def resil_snapshot(self) -> Dict[str, object]:
        """Admission/breaker/retry state for ``/stats``."""
        open_keys = [
            key for key, breaker in self._breakers.items()
            if breaker.state != "closed"
        ]
        return {
            "retry": self.retry.snapshot(),
            "gate": self.gate.snapshot() if self.gate is not None else None,
            "breakers": {
                "tracked": len(self._breakers),
                "open": open_keys[:16],
            },
        }

    def shutdown(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)
        if self.thread_executor is not self._executor:
            self.thread_executor.shutdown(wait=False, cancel_futures=True)


# ----------------------------------------------------------------------
# Picklable pipeline specs (process mode)
# ----------------------------------------------------------------------
def pipeline_spec(
    source: Dict[str, str],
    measure: str,
    *,
    bins: Optional[int] = None,
    scheme: str = "quantile",
    tile_size: int = 64,
    levels: int = 3,
    cache_dir: Optional[str] = None,
) -> Dict[str, object]:
    """The plain-dict description a worker process needs to rebuild a
    pipeline + pyramid: source, measure, display and pyramid params."""
    return {
        "source": dict(source),
        "measure": measure,
        "bins": bins,
        "scheme": scheme,
        "tile_size": tile_size,
        "levels": levels,
        "cache_dir": cache_dir,
    }


def spec_key(spec: Dict[str, object]) -> str:
    return json.dumps(spec, sort_keys=True)


def source_from_spec(spec_source: Dict[str, str]) -> Source:
    kind = spec_source.get("kind")
    if kind == "dataset":
        return DatasetSource(spec_source["name"])
    if kind == "edge_list":
        return EdgeListSource(spec_source["path"])
    raise ValueError(f"unknown source spec kind {kind!r}")


_MEMO_LOCK = threading.Lock()
_PYRAMIDS: Dict[str, LODPyramid] = {}


def pyramid_for(spec: Dict[str, object]) -> LODPyramid:
    """Per-process memoized pyramid for ``spec`` (worker-side warmth:
    once a worker has built a pipeline, later jobs on it are cache
    hits in that worker's memory tier)."""
    key = spec_key(spec)
    with _MEMO_LOCK:
        pyramid = _PYRAMIDS.get(key)
        if pyramid is None:
            pipeline = Pipeline(
                source_from_spec(spec["source"]),
                spec["measure"],
                bins=spec["bins"],
                scheme=spec["scheme"],
                cache=ArtifactCache(spec.get("cache_dir")),
            )
            pyramid = LODPyramid(
                pipeline,
                tile_size=spec["tile_size"],
                levels=spec["levels"],
            )
            _PYRAMIDS[key] = pyramid
        return pyramid


# ----------------------------------------------------------------------
# Module-level build jobs (picklable for ProcessPoolExecutor)
# ----------------------------------------------------------------------
def ensure_levels(spec: Dict[str, object]) -> Dict[str, object]:
    """Cold-start unit: build every pyramid level; returns its summary."""
    return pyramid_for(spec).ensure_levels()


def build_tile_payload(
    spec: Dict[str, object], level: int, tx: int, ty: int
) -> Tuple[bytes, str]:
    return pyramid_for(spec).tile_payload(level, tx, ty)


def peaks_as_dicts(pipeline: Pipeline, count: int) -> List[Dict[str, object]]:
    """JSON-ready rows for the ``count`` highest disconnected peaks."""
    unit = "edges" if pipeline.display_tree.kind == "edge" else "vertices"
    return [
        {
            "node": int(peak.node),
            "alpha": float(peak.alpha),
            "summit": float(peak.summit),
            "prominence": float(peak.prominence),
            "size": int(peak.size),
            "unit": unit,
            "base_area": float(peak.base_area),
        }
        for peak in pipeline.peaks(count=count)
    ]


def build_peaks(spec: Dict[str, object], count: int) -> List[Dict[str, object]]:
    return peaks_as_dicts(pyramid_for(spec).pipeline, count)


def hit_as_dict(pipeline: Pipeline, x: float, y: float) -> Dict[str, object]:
    """JSON-ready hover hit-test at layout coordinates ``(x, y)``."""
    layout = pipeline.layout()
    node = layout.node_at(x, y)
    if node is None:
        return {"node": None}
    tree = pipeline.display_tree
    return {
        "node": int(node),
        "alpha": float(tree.scalars[node]),
        "size": int(tree.subtree_size(node)),
        "kind": tree.kind,
        "center": [float(layout.cx[node]), float(layout.cy[node])],
        "radius": float(layout.r[node]),
    }


def build_hit(spec: Dict[str, object], x: float, y: float) -> Dict[str, object]:
    return hit_as_dict(pyramid_for(spec).pipeline, x, y)


def build_treemap_svg(spec: Dict[str, object], size: int) -> str:
    return pyramid_for(spec).pipeline.treemap(size=size)


def build_profile_svg(spec: Dict[str, object], width: int, height: int) -> str:
    return pyramid_for(spec).pipeline.profile(width=width, height=height)
