"""The terrain tile/query service: routes bound to cached pipelines.

:class:`ServeApp` owns one shared :class:`ArtifactCache`, one
:class:`StageRunner`, and a registry of datasets × measures.  Nothing is
built at boot: the first request for a (dataset, measure) triggers one
coalesced cold build (source → field → tree → layout → heightfield →
LOD levels) through the runner, and everything after that serves from
the cache — a warm tile request is a dictionary lookup, with zero
pipeline recomputation.

Routes
------
``GET /``                     service index
``GET /healthz``              liveness probe
``GET /stats``                cache/runner counters (benchmark hooks)
``GET /metrics``              Prometheus text exposition (repro.obs)
``GET /datasets``             served datasets, measures, tile grids
``GET /t/{ds}/{measure}/{level}/{tx}/{ty}``
                              binary tile; strong ETag, 304 on
                              ``If-None-Match``
``GET /peaks?dataset=&measure=&count=``
                              highest disconnected peaks as JSON
``GET /hit?dataset=&measure=&x=&y=``
                              hover hit-test via ``TerrainLayout.node_at``
``GET /treemap.svg?dataset=&measure=``   linked 2D treemap
``GET /profile.svg?dataset=&measure=``   linked 1D profile
``GET /stream/{session}``     SSE replay (see :mod:`repro.serve.stream`);
                              evolve sessions replay window frames here
``GET /evolve/windows``       per-window summary of an evolve run
``GET /evolve/peaks/{id}``    one tracked peak trajectory + its events
``GET /evolve/diff/{w}/{tx}/{ty}``
                              signed terrain-diff tile; strong ETag
``GET /dash``                 self-contained HTML dashboard (sparklines)
``GET /debug/prof?seconds=N`` on-demand profile: flamegraph SVG, or
                              collapsed text with ``format=collapsed``
``GET /debug/slow``           slow-request exemplars (span waterfall +
                              profile slice per request over threshold)
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from .. import accel
from ..accel import native as accel_native
from ..engine import ArtifactCache, registry
from ..engine.pipeline import Pipeline
from ..obs import metrics as obs_metrics
from ..obs import prof as obs_prof
from ..obs import trace as obs_trace
from ..resil import faults as resil_faults
from ..resil.retry import CircuitOpen, DeadlineExceeded, Saturated
from . import debug as serve_debug
from . import workers
from .evolve import EvolveRun, EvolveSession, evolve_sse_events
from .http import EventStreamResponse, HTTPError, Request, Response, Router
from .lod import LODPyramid, tile_etag
from .stream import StreamSession, sse_events
from .workers import StageRunner

__all__ = ["ServeApp"]

_TILE_CACHE_CONTROL = "public, max-age=0, must-revalidate"

# Span summary for ``/stats``: one process-wide ring buffer registered at
# import.  It only receives records while tracing is enabled, so the
# default-off fast path is untouched; ``/stats`` rolls up whatever the
# ring currently holds.
_SPAN_RING = obs_trace.RingBufferExporter(capacity=4096)
obs_trace.add_exporter(_SPAN_RING)

_M_TILES = obs_metrics.REGISTRY.counter(
    "repro_tiles_served_total", "Tiles served by pyramid level.", ("level",)
)
_M_UPTIME = obs_metrics.REGISTRY.gauge(
    "repro_serve_uptime_seconds", "Server uptime (monotonic clock)."
)
_M_DIFF_TILES = obs_metrics.REGISTRY.counter(
    "repro_evolve_diff_tiles_served_total",
    "Terrain-diff tiles served by evolve runs.",
)
_M_STALE = obs_metrics.REGISTRY.counter(
    "repro_resil_stale_tiles_total",
    "Stale tiles served (with a Warning header) after a rebuild "
    "failed or timed out.",
)

#: Last-known-good tile payloads kept for graceful degradation.  Bounded
#: by entry count, separate from the LRU payload memo: the memo is a
#: performance cache (evicted under memory pressure), this is a safety
#: net consulted only when a rebuild fails.
_MAX_STALE_TILES = 512


class _DatasetEntry:
    __slots__ = ("name", "source", "measures")

    def __init__(
        self, name: str, source: Dict[str, str], measures: List[str]
    ) -> None:
        self.name = name
        self.source = source
        self.measures = measures


class ServeApp:
    """Route handlers + lazy pipeline state for the terrain server."""

    def __init__(
        self,
        *,
        cache: Optional[ArtifactCache] = None,
        runner: Optional[StageRunner] = None,
        tile_size: int = 64,
        levels: int = 3,
        bins: Optional[int] = None,
        scheme: str = "quantile",
        dist=None,
        max_disk_bytes: Optional[int] = None,
        request_timeout: Optional[float] = None,
    ) -> None:
        self.cache = cache if cache is not None else ArtifactCache()
        self.runner = runner if runner is not None else StageRunner()
        self.tile_size = tile_size
        self.levels = levels
        self.bins = bins
        self.scheme = scheme
        # Sharded engine: forwarded to every in-process Pipeline.  In
        # process mode the builds already run in a worker pool, so the
        # dist backend stays off there (no nested process pools).
        self.dist = dist
        # Disk-tier budget: pruned after every cold build funnel so a
        # long-lived server's cache directory cannot grow unboundedly.
        self.max_disk_bytes = max_disk_bytes
        self.datasets: Dict[str, _DatasetEntry] = {}
        self.sessions: Dict[str, StreamSession] = {}
        self.evolve_sessions: Dict[str, EvolveSession] = {}
        # Coalesced evolve materializations: one asyncio future per run
        # name.  Runs are stateful (tracker + rasterized fields), so
        # they build on the thread executor even in process mode —
        # exactly like the SSE replays.
        self._evolve_futures: Dict[str, "asyncio.Future"] = {}
        self._pyramids: Dict[Tuple[str, str], LODPyramid] = {}
        self._ready: Dict[Tuple[str, str], Dict[str, object]] = {}
        # Encoded warm tiles: logical key -> (payload, etag).  Static
        # content is immutable for the server's lifetime (content-hash
        # keyed), so this memo never needs invalidation — and it shares
        # the cache's memory budget (artifacts + payloads together stay
        # under max_memory_bytes) so --cache-memory-mb bounds the whole
        # server; evicted payloads re-encode from the cache, or rebuild
        # through the coalesced funnel.
        self._payloads: "OrderedDict[str, Tuple[bytes, str]]" = OrderedDict()
        self._payload_bytes = 0
        #: Per-request build deadline (seconds); None = unbounded.  The
        #: deadline rides on the coalesced build, so every rider of a
        #: too-slow build gets the same DeadlineExceeded (→ 504, or a
        #: stale tile when one exists) instead of queueing forever.
        self.request_timeout = request_timeout
        # Last-known-good tiles for serve-stale-on-error (Warning: 110).
        self._stale: "OrderedDict[str, Tuple[bytes, str]]" = OrderedDict()
        self._stale_served = 0
        # Monotonic clock: uptime must never jump when the wall clock is
        # stepped (NTP corrections would yield negative or inflated
        # uptimes under time.time()).
        self._started = time.monotonic()
        # Debug surfaces: slow-request exemplars, the dashboard's
        # metrics-snapshot ring, and a continuous low-rate profiler.
        # The two background threads start lazily on the first request
        # observation or debug-page hit, so apps constructed in tests
        # (and never served) spawn no threads.
        self.slow_requests = serve_debug.SlowRequestStore()
        self.dash_ring = serve_debug.MetricsSnapshotRing()
        self.cont_profiler = obs_prof.ContinuousProfiler(hz=19)
        self._debug_started = False
        self._debug_lock = threading.Lock()

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self._started

    def _payload_get(self, key: str) -> Optional[Tuple[bytes, str]]:
        cached = self._payloads.get(key)
        if cached is not None:
            self._payloads.move_to_end(key)
        return cached

    def _payload_put(self, key: str, value: Tuple[bytes, str]) -> None:
        if key in self._payloads:
            return
        self._payloads[key] = value
        self._payload_bytes += len(value[0])
        budget = self.cache.max_memory_bytes
        if budget is None:
            return
        # One budget covers artifacts AND encoded payloads: the memo
        # yields whatever headroom the cache's own tier isn't using, so
        # --cache-memory-mb bounds the server's total, not each tier.
        while (
            self._payload_bytes + self.cache.memory_bytes > budget
            and len(self._payloads) > 1
        ):
            _, (old_payload, _) = self._payloads.popitem(last=False)
            self._payload_bytes -= len(old_payload)

    # -- registry -------------------------------------------------------
    def add_dataset(
        self,
        name: str,
        measures: List[str],
        *,
        edge_list: Optional[str] = None,
    ) -> None:
        """Serve ``name`` — a registered dataset, or an edge-list file
        when ``edge_list`` is given — under the listed measures."""
        if not measures:
            raise ValueError("at least one measure is required")
        known = registry.measure_names()
        for measure in measures:
            if measure not in known:
                raise KeyError(
                    f"unknown measure {measure!r}; known: {', '.join(known)}"
                )
        if edge_list is not None:
            source = {"kind": "edge_list", "path": str(edge_list)}
        else:
            source = {"kind": "dataset", "name": name}
        self.datasets[name] = _DatasetEntry(name, source, list(measures))

    def add_stream_session(self, session: StreamSession) -> None:
        if session.name in self.evolve_sessions:
            raise ValueError(
                f"name {session.name!r} already taken by an evolve run"
            )
        self.sessions[session.name] = session

    def add_evolve_session(self, session: EvolveSession) -> None:
        # Both session kinds share the /stream/{name} channel, so the
        # name must be unique across them.
        if session.name in self.sessions or session.name in (
            self.evolve_sessions
        ):
            raise ValueError(f"session name {session.name!r} already taken")
        self.evolve_sessions[session.name] = session

    # -- evolve ---------------------------------------------------------
    def _evolve_session(self, request: Request) -> EvolveSession:
        if not self.evolve_sessions:
            raise HTTPError(404, "no evolve runs registered")
        default = next(iter(self.evolve_sessions))
        name = request.query_str("run", default=default)
        session = self.evolve_sessions.get(name)
        if session is None:
            raise HTTPError(
                404,
                f"unknown evolve run {name!r} "
                f"(available: {', '.join(sorted(self.evolve_sessions))})",
            )
        return session

    def _evolve_run(self, session: EvolveSession) -> "asyncio.Future":
        """The coalesced materialization future for one evolve run."""
        fut = self._evolve_futures.get(session.name)
        if fut is None or (fut.done() and fut.exception() is not None):
            loop = asyncio.get_running_loop()
            fut = asyncio.ensure_future(
                loop.run_in_executor(
                    self.runner.thread_executor,
                    EvolveRun, session, self.cache,
                )
            )
            self._evolve_futures[session.name] = fut
        return fut

    async def _get_evolve_windows(self, request: Request) -> Response:
        session = self._evolve_session(request)
        run: EvolveRun = await self._evolve_run(session)
        return Response.json_(
            {
                "run": session.name,
                "runs": sorted(self.evolve_sessions),
                "measure": session.measure,
                "horizon": session.horizon,
                "tiles_per_side": run.tiler.tiles_per_side,
                "tile_size": session.tile_size,
                "windows": run.windows,
                "tracker": run.stats(),
            }
        )

    async def _get_evolve_peak(
        self, request: Request, tid: str
    ) -> Response:
        session = self._evolve_session(request)
        run: EvolveRun = await self._evolve_run(session)
        try:
            tid_i = int(tid)
        except ValueError:
            raise HTTPError(400, "trajectory id must be an integer")
        doc = run.trajectory(tid_i)
        if doc is None:
            raise HTTPError(
                404,
                f"no trajectory {tid_i} in run {session.name!r} "
                f"({len(run.tracker.trajectories)} tracked)",
            )
        return Response.json_(dict(doc, run=session.name))

    async def _get_evolve_diff(
        self, request: Request, w: str, tx: str, ty: str
    ) -> Response:
        session = self._evolve_session(request)
        run: EvolveRun = await self._evolve_run(session)
        try:
            w_i, tx_i, ty_i = int(w), int(tx), int(ty)
        except ValueError:
            raise HTTPError(400, "diff tile coordinates must be integers")
        per = run.tiler.tiles_per_side
        if not (1 <= w_i < run.n_windows and 0 <= tx_i < per and 0 <= ty_i < per):
            raise HTTPError(
                404,
                f"no diff tile ({w_i}, {tx_i}, {ty_i}) — run "
                f"{session.name!r} has windows 1..{run.n_windows - 1} "
                f"on a {per}x{per} grid",
            )
        memo_key = f"evolvediff:{session.name}:{w_i}:{tx_i}:{ty_i}"
        cached = self._payload_get(memo_key)
        if cached is None:
            loop = asyncio.get_running_loop()
            payload = await loop.run_in_executor(
                self.runner.thread_executor,
                run.tile_payload, w_i, tx_i, ty_i,
            )
            cached = (payload, tile_etag(payload))
            self._payload_put(memo_key, cached)
        payload, etag = cached
        _M_DIFF_TILES.inc()
        headers = [
            ("ETag", etag),
            ("Cache-Control", _TILE_CACHE_CONTROL),
        ]
        if etag in request.if_none_match() or "*" in request.if_none_match():
            return Response(304, b"", headers=headers)
        return Response(
            200, payload,
            content_type="application/x-repro-tile",
            headers=headers,
        )

    # -- lookup helpers -------------------------------------------------
    def _entry(self, ds: str) -> _DatasetEntry:
        entry = self.datasets.get(ds)
        if entry is None:
            raise HTTPError(404, f"unknown dataset {ds!r}")
        return entry

    def _check_measure(self, entry: _DatasetEntry, measure: str) -> str:
        if measure not in entry.measures:
            raise HTTPError(
                404,
                f"dataset {entry.name!r} is not served under measure "
                f"{measure!r} (available: {', '.join(entry.measures)})",
            )
        return measure

    def _ds_measure(self, request: Request) -> Tuple[_DatasetEntry, str]:
        entry = self._entry(request.query_str("dataset"))
        return entry, self._check_measure(entry, request.query_str("measure"))

    def spec(self, entry: _DatasetEntry, measure: str) -> Dict[str, object]:
        cache_dir = self.cache.directory
        return workers.pipeline_spec(
            entry.source,
            measure,
            bins=self.bins,
            scheme=self.scheme,
            tile_size=self.tile_size,
            levels=self.levels,
            cache_dir=str(cache_dir) if cache_dir else None,
        )

    def pyramid(self, entry: _DatasetEntry, measure: str) -> LODPyramid:
        """The in-process pyramid (thread mode's build target; also the
        parent-side reader once stages are cached)."""
        key = (entry.name, measure)
        pyramid = self._pyramids.get(key)
        if pyramid is None:
            pipeline = Pipeline(
                workers.source_from_spec(entry.source),
                measure,
                bins=self.bins,
                scheme=self.scheme,
                cache=self.cache,
                dist=None if self.runner.uses_processes else self.dist,
            )
            pyramid = LODPyramid(
                pipeline, tile_size=self.tile_size, levels=self.levels
            )
            self._pyramids[key] = pyramid
        return pyramid

    # -- coalesced build funnel ----------------------------------------
    async def _ensure(
        self, entry: _DatasetEntry, measure: str, interactive: bool = False
    ) -> Dict[str, object]:
        """Cold-start funnel: every endpoint for (dataset, measure)
        first awaits this one coalesced full build, so concurrent cold
        requests — same tile or not — trigger exactly one pipeline
        build, and everything downstream only reads caches."""
        key = (entry.name, measure)
        ready = self._ready.get(key)
        if ready is not None:
            return ready
        run_key = f"levels:{entry.name}:{measure}"
        if self.runner.uses_processes:
            ready = await self.runner.run(
                run_key, workers.ensure_levels, self.spec(entry, measure),
                interactive=interactive, timeout=self.request_timeout,
            )
        else:
            ready = await self.runner.run(
                run_key, self.pyramid(entry, measure).ensure_levels,
                interactive=interactive, timeout=self.request_timeout,
            )
        self._ready[key] = ready
        if self.max_disk_bytes is not None:
            self.cache.prune(self.max_disk_bytes)
        return ready

    #: Job kinds answered to a pointing human (small, latency-bound
    #: reads) get the admission gate's reserved slots; cold tile/SVG
    #: builds are bulk and shed first under overload.
    _INTERACTIVE_KINDS = frozenset({"hit", "peaks"})

    async def _job(self, entry, measure, kind, local_fn, worker_fn, *args):
        """Run one read-ish job after the cold funnel.

        ``local_fn(pyramid, *args)`` runs on the in-process thread pool
        in thread mode; ``worker_fn(spec, *args)`` (a picklable
        module-level function) runs on the process pool in process
        mode.  Coalesced per (kind, dataset, measure, args).
        """
        interactive = kind in self._INTERACTIVE_KINDS
        await self._ensure(entry, measure, interactive=interactive)
        run_key = f"{kind}:{entry.name}:{measure}:" + ":".join(
            str(a) for a in args
        )
        if self.runner.uses_processes:
            return await self.runner.run(
                run_key, worker_fn, self.spec(entry, measure), *args,
                interactive=interactive, timeout=self.request_timeout,
            )
        return await self.runner.run(
            run_key, local_fn, self.pyramid(entry, measure), *args,
            interactive=interactive, timeout=self.request_timeout,
        )

    # -- handlers -------------------------------------------------------
    async def _get_index(self, request: Request) -> Response:
        from .. import __version__

        return Response.json_(
            {
                "service": "repro.serve",
                "version": __version__,
                "endpoints": [
                    "/datasets",
                    "/t/{ds}/{measure}/{level}/{tx}/{ty}",
                    "/peaks?dataset=&measure=&count=",
                    "/hit?dataset=&measure=&x=&y=",
                    "/treemap.svg?dataset=&measure=",
                    "/profile.svg?dataset=&measure=",
                    "/stream/{session}",
                    "/evolve/windows",
                    "/evolve/peaks/{id}",
                    "/evolve/diff/{w}/{tx}/{ty}",
                    "/stats",
                    "/metrics",
                    "/healthz",
                    "/dash",
                    "/debug/prof?seconds=N",
                    "/debug/slow",
                ],
            }
        )

    async def _get_healthz(self, request: Request) -> Response:
        return Response.json_({"ok": True})

    async def _get_stats(self, request: Request) -> Response:
        _M_UPTIME.set(self.uptime_s)
        payload = {
            "cache": dict(
                self.cache.stats,
                entries=len(self.cache),
                memory_bytes=self.cache.memory_bytes,
                max_memory_bytes=self.cache.max_memory_bytes,
                disk=dict(
                    self.cache.disk_stats(),
                    max_bytes=self.max_disk_bytes,
                ),
            ),
            "runner": dict(
                self.runner.stats, workers=self.runner.workers
            ),
            "warm_tiles": len(self._payloads),
            "uptime_s": self.uptime_s,
            # Per-span-name rollup of the recent trace ring (empty when
            # tracing is disabled — the ring only fills under --trace).
            # Bounded to the hottest names by total ms so the payload
            # stays flat on long-lived servers with many span names.
            "spans": obs_trace.rollup(_SPAN_RING.snapshot(), top=20),
            # Kernel tier powering cold builds: the configured mode plus
            # the native tier's compile/cache/fallback status (passive —
            # never triggers a compile from a stats scrape).
            "accel": {
                "backend": accel.get_backend(),
                "native": accel_native.info(),
            },
            # Resilience posture: retry policy, admission gate, breaker
            # table, stale fallbacks, and (when --faults is active) the
            # injection schedule with per-site pass/fire counts.
            "resil": dict(
                self.runner.resil_snapshot(),
                stale_tiles={
                    "held": len(self._stale),
                    "served": self._stale_served,
                },
                request_timeout=self.request_timeout,
                faults=resil_faults.snapshot(),
            ),
        }
        if self.evolve_sessions:
            # Materialized runs only — a stats scrape never triggers a
            # timeline build.  The same numbers back the
            # repro_evolve_run_* gauges on /metrics.
            runs = {}
            for name in sorted(self.evolve_sessions):
                fut = self._evolve_futures.get(name)
                if (
                    fut is not None
                    and fut.done()
                    and fut.exception() is None
                ):
                    runs[name] = fut.result().stats()
                else:
                    runs[name] = {"built": False}
            payload["evolve"] = {
                "runs": runs,
                "windows": sum(
                    r.get("windows", 0) for r in runs.values()
                ),
                "tracked_peaks": sum(
                    r.get("trajectories", 0) for r in runs.values()
                ),
                "live_trajectories": sum(
                    r.get("live", 0) for r in runs.values()
                ),
            }
        if self.dist is not None:
            # Shard summary per built pipeline (in process mode the
            # dist backend is off in workers; say so instead of lying).
            if self.runner.uses_processes:
                payload["dist"] = {
                    "requested": str(self.dist),
                    "active": False,
                    "note": "dist backend disabled under process-mode "
                            "workers (no nested pools)",
                }
            else:
                payload["dist"] = {
                    "requested": str(self.dist),
                    "pipelines": {
                        f"{name}:{measure}": stats
                        for (name, measure), pyramid
                        in self._pyramids.items()
                        for stats in [pyramid.pipeline.dist_stats()]
                        if stats is not None
                    },
                }
        return Response.json_(payload)

    async def _get_metrics(self, request: Request) -> Response:
        """Prometheus text exposition of the process-wide registry."""
        self.cache.refresh_metrics()
        _M_UPTIME.set(self.uptime_s)
        return Response.text(
            obs_metrics.REGISTRY.render(),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    async def _get_datasets(self, request: Request) -> Response:
        rows = []
        for entry in self.datasets.values():
            geometry = self.pyramid(entry, entry.measures[0])
            row = {
                "name": entry.name,
                "source": entry.source["kind"],
                "measures": entry.measures,
                "tile_size": geometry.tile_size,
                "levels": geometry.levels,
                "base_resolution": geometry.base_resolution,
                "tiles_per_side": [
                    geometry.tiles_per_side(level)
                    for level in range(geometry.levels)
                ],
                "tile_url": "/t/{ds}/{measure}/{level}/{tx}/{ty}".replace(
                    "{ds}", entry.name
                ),
            }
            ready = {
                m: self._ready.get((entry.name, m), None)
                for m in entry.measures
            }
            row["ready"] = {
                m: (None if r is None else {"extent": r["extent"]})
                for m, r in ready.items()
            }
            rows.append(row)
        return Response.json_(
            {
                "datasets": rows,
                "bins": self.bins,
                "sessions": sorted(self.sessions),
                "evolve": sorted(self.evolve_sessions),
            }
        )

    async def _get_tile(
        self, request: Request, ds: str, measure: str,
        level: str, tx: str, ty: str,
    ) -> Response:
        entry = self._entry(ds)
        self._check_measure(entry, measure)
        try:
            level_i, tx_i, ty_i = int(level), int(tx), int(ty)
        except ValueError:
            raise HTTPError(400, "tile coordinates must be integers")
        # Bounds come from the pyramid itself (construction is free), so
        # the HTTP 404 contract can never drift from the tiles built.
        geometry = self.pyramid(entry, measure)
        try:
            per_side = geometry.tiles_per_side(level_i)
        except KeyError:
            per_side = 0
        if not (0 <= tx_i < per_side and 0 <= ty_i < per_side):
            raise HTTPError(
                404,
                f"no tile ({level_i}, {tx_i}, {ty_i}) — pyramid has "
                f"{self.levels} levels of {self.tile_size}px tiles",
            )
        memo_key = f"tile:{ds}:{measure}:{level_i}:{tx_i}:{ty_i}"
        stale_marker = None
        cached = self._payload_get(memo_key)
        if cached is None:
            try:
                cached = await self._job(
                    entry, measure, "tile",
                    LODPyramid.tile_payload,
                    workers.build_tile_payload,
                    level_i, tx_i, ty_i,
                )
            except HTTPError:
                raise
            except Exception as exc:
                # Covers Saturated, CircuitOpen, DeadlineExceeded and
                # genuine build failures alike (CancelledError is a
                # BaseException and still propagates).
                # Graceful degradation: a failed or timed-out rebuild
                # serves the last known good payload with a Warning
                # header instead of an error — stale terrain beats a
                # hole in the map.  No stale copy → the error stands.
                stale = self._stale.get(memo_key)
                if stale is None:
                    raise
                cached = stale
                stale_marker = exc
                self._stale_served += 1
                _M_STALE.inc()
            else:
                self._payload_put(memo_key, cached)
        self._stale[memo_key] = cached
        self._stale.move_to_end(memo_key)
        while len(self._stale) > _MAX_STALE_TILES:
            self._stale.popitem(last=False)
        payload, etag = cached
        _M_TILES.inc(level=str(level_i))
        headers = [
            ("ETag", etag),
            ("Cache-Control", _TILE_CACHE_CONTROL),
        ]
        if stale_marker is not None:
            headers.append(
                ("Warning", '110 repro "Response is Stale"')
            )
        if etag in request.if_none_match() or "*" in request.if_none_match():
            return Response(304, b"", headers=headers)
        return Response(
            200, payload,
            content_type="application/x-repro-tile",
            headers=headers,
        )

    async def _get_peaks(self, request: Request) -> Response:
        entry, measure = self._ds_measure(request)
        count = request.query_int("count", default=3, lo=1, hi=64)
        peaks = await self._job(
            entry, measure, "peaks",
            lambda pyr, c: workers.peaks_as_dicts(pyr.pipeline, c),
            workers.build_peaks,
            count,
        )
        return Response.json_(
            {"dataset": entry.name, "measure": measure, "peaks": peaks}
        )

    async def _get_hit(self, request: Request) -> Response:
        entry, measure = self._ds_measure(request)
        x = request.query_float("x")
        y = request.query_float("y")
        hit = await self._job(
            entry, measure, "hit",
            lambda pyr, xx, yy: workers.hit_as_dict(pyr.pipeline, xx, yy),
            workers.build_hit,
            x, y,
        )
        return Response.json_(
            dict(hit, dataset=entry.name, measure=measure, x=x, y=y)
        )

    async def _get_treemap(self, request: Request) -> Response:
        entry, measure = self._ds_measure(request)
        size = request.query_int("size", default=640, lo=64, hi=4096)
        svg = await self._job(
            entry, measure, "treemap",
            lambda pyr, s: pyr.pipeline.treemap(size=s),
            workers.build_treemap_svg,
            size,
        )
        return Response.text(svg, content_type="image/svg+xml")

    async def _get_profile(self, request: Request) -> Response:
        entry, measure = self._ds_measure(request)
        width = request.query_int("width", default=720, lo=64, hi=4096)
        height = request.query_int("height", default=240, lo=64, hi=4096)
        svg = await self._job(
            entry, measure, "profile",
            lambda pyr, w, h: pyr.pipeline.profile(width=w, height=h),
            workers.build_profile_svg,
            width, height,
        )
        return Response.text(svg, content_type="image/svg+xml")

    async def _get_stream(
        self, request: Request, session: str
    ) -> EventStreamResponse:
        # Evolve sessions share the stream channel: same SSE transport,
        # window-frame events instead of edit-batch replays.
        evolve = self.evolve_sessions.get(session)
        if evolve is not None:
            return EventStreamResponse(
                evolve_sse_events(self._evolve_run(evolve), evolve)
            )
        spec = self.sessions.get(session)
        if spec is None:
            raise HTTPError(404, f"unknown stream session {session!r}")
        return EventStreamResponse(sse_events(spec, self.runner, self.cache))

    # -- debug surfaces -------------------------------------------------
    def _ensure_debug_started(self) -> None:
        """Start the continuous profiler and dash sampler once, on the
        first observed request or debug-page hit."""
        if self._debug_started:
            return
        with self._debug_lock:
            if self._debug_started:
                return
            self.cont_profiler.start()
            self.dash_ring.start()
            self._debug_started = True

    def observe_request(
        self,
        *,
        path: str,
        request_id: str,
        status: int,
        t0_wall: float,
        dur_s: float,
    ) -> None:
        """HTTP-server hook, called once per finished request (after
        the response is written — never on the latency path)."""
        self._ensure_debug_started()
        self.slow_requests.observe(
            path=path,
            request_id=request_id,
            status=status,
            t0_wall=t0_wall,
            dur_s=dur_s,
            span_records=_SPAN_RING.snapshot(),
            profiler=self.cont_profiler,
        )

    async def _get_dash(self, request: Request) -> Response:
        self._ensure_debug_started()
        self.dash_ring.sample()  # one fresh point so the view is current
        _M_UPTIME.set(self.uptime_s)
        page = serve_debug.render_dash(
            ring=self.dash_ring,
            slow=self.slow_requests,
            uptime_s=self.uptime_s,
            span_rollup=obs_trace.rollup(_SPAN_RING.snapshot(), top=15),
        )
        return Response.text(page, content_type="text/html; charset=utf-8")

    async def _get_debug_prof(self, request: Request) -> Response:
        """On-demand sampled profile of the live server: block this
        handler ``seconds`` (the event loop keeps serving), then render
        a flamegraph SVG (default) or collapsed text."""
        self._ensure_debug_started()
        seconds = request.query_int("seconds", default=2, lo=1, hi=30)
        hz = request.query_int("hz", default=obs_prof.DEFAULT_HZ, lo=1,
                               hi=997)
        fmt = request.query_str("format", default="svg")
        if fmt not in ("svg", "collapsed"):
            raise HTTPError(400, "format must be 'svg' or 'collapsed'")
        profiler = obs_prof.SamplingProfiler(hz=hz).start()
        try:
            await asyncio.sleep(seconds)
        finally:
            profile = profiler.stop()
        if fmt == "collapsed":
            return Response.text(
                profile.collapsed(),
                content_type="text/plain; charset=utf-8",
            )
        svg = obs_prof.flamegraph_svg(
            profile, title=f"repro serve — {seconds}s at {hz}Hz"
        )
        return Response.text(svg, content_type="image/svg+xml")

    async def _get_debug_slow(self, request: Request) -> Response:
        self._ensure_debug_started()
        return Response.json_(
            {
                "threshold_s": self.slow_requests.threshold_s,
                "observed": self.slow_requests.observed,
                "captured": self.slow_requests.captured,
                "exemplars": self.slow_requests.snapshot(),
            }
        )

    # -- router ---------------------------------------------------------
    def router(self) -> Router:
        router = Router()
        router.get("/", self._get_index)
        router.get("/healthz", self._get_healthz)
        router.get("/stats", self._get_stats)
        router.get("/metrics", self._get_metrics)
        router.get("/datasets", self._get_datasets)
        router.get("/t/{ds}/{measure}/{level}/{tx}/{ty}", self._get_tile)
        router.get("/peaks", self._get_peaks)
        router.get("/hit", self._get_hit)
        router.get("/treemap.svg", self._get_treemap)
        router.get("/profile.svg", self._get_profile)
        router.get("/stream/{session}", self._get_stream)
        router.get("/evolve/windows", self._get_evolve_windows)
        router.get("/evolve/peaks/{tid}", self._get_evolve_peak)
        router.get("/evolve/diff/{w}/{tx}/{ty}", self._get_evolve_diff)
        router.get("/dash", self._get_dash)
        router.get("/debug/prof", self._get_debug_prof)
        router.get("/debug/slow", self._get_debug_slow)
        return router
