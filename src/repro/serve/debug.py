"""Serve-side debug surfaces: slow-request exemplars and the dashboard.

Three small pieces behind ``/debug/slow`` and ``/dash``:

* :class:`MetricsSnapshotRing` — a background sampler flattening the
  process metrics registry into scalar series on a bounded ring, the
  data the dashboard's sparklines draw from;
* :class:`SlowRequestStore` — a bounded store of *exemplars* for
  requests over a latency threshold: the span waterfall of the request
  window (cut from the server's trace ring) plus a profile slice from
  the continuous profiler covering the same wall-clock interval;
* :func:`render_dash` — a self-contained HTML dashboard (inline SVG
  sparklines, no scripts, no external assets).

Everything here is read-side instrumentation: nothing blocks or slows
a request beyond one ``observe()`` call after the response is written.
"""

from __future__ import annotations

import html
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Tuple

from ..obs import metrics as obs_metrics

__all__ = ["MetricsSnapshotRing", "SlowRequestStore", "render_dash"]

#: Spans kept per slow-request waterfall (largest first beyond this).
_MAX_WATERFALL = 64
#: Hottest frames kept per slow-request profile slice.
_MAX_PROFILE_FRAMES = 15


def scalar_snapshot(registry=None) -> Dict[str, float]:
    """The metrics registry flattened to ``{series_name: value}``.

    Labelled counters/gauges sum over their children (the dashboard
    wants trends, not cardinality); histograms contribute ``*_count``
    and ``*_sum`` series, whose deltas give rates and mean latencies.
    """
    registry = registry if registry is not None else obs_metrics.REGISTRY
    out: Dict[str, float] = {}
    for name, value in registry.summary().items():
        if isinstance(value, (int, float)):
            out[name] = float(value)
        elif isinstance(value, dict):
            children = list(value.values())
            if children and isinstance(children[0], dict):  # histogram
                out[name + "_count"] = float(
                    sum(c.get("count", 0) for c in children)
                )
                out[name + "_sum"] = float(
                    sum(c.get("sum", 0.0) for c in children)
                )
            else:
                out[name] = float(sum(children)) if children else 0.0
    return out


class MetricsSnapshotRing:
    """Periodic scalar snapshots of the metrics registry on a ring.

    ``start()`` spins a daemon thread sampling every ``interval_s``;
    at the defaults (5 s × 360 samples) the ring holds a 30-minute
    window.  :meth:`sample` can also be called directly (tests, and an
    extra point on each dashboard render so the view is current).
    """

    def __init__(self, capacity: int = 360, interval_s: float = 5.0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.interval_s = float(interval_s)
        self._ring: "deque[Tuple[float, Dict[str, float]]]" = deque(
            maxlen=capacity
        )
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def sample(self) -> None:
        point = (time.time(), scalar_snapshot())
        with self._lock:
            self._ring.append(point)

    def start(self) -> "MetricsSnapshotRing":
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-dash-sampler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self.sample()
            except Exception:
                pass
            self._stop.wait(self.interval_s)

    def snapshot(self) -> List[Tuple[float, Dict[str, float]]]:
        with self._lock:
            return list(self._ring)

    def series(self, name: str) -> List[Tuple[float, float]]:
        """One metric's ``(wall_time, value)`` points, oldest first."""
        return [
            (t, values[name])
            for t, values in self.snapshot()
            if name in values
        ]

    def names(self) -> List[str]:
        seen: Dict[str, None] = {}
        for _, values in self.snapshot():
            for name in values:
                seen.setdefault(name)
        return sorted(seen)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


class SlowRequestStore:
    """Bounded exemplars for requests slower than ``threshold_s``.

    Each exemplar carries the request identity, a span waterfall (the
    trace-ring records whose interval overlaps the request's) and a
    profile slice (the continuous profiler's samples over the same
    window) — enough to answer *what was this one slow request doing*
    without re-running anything.
    """

    def __init__(self, capacity: int = 32, threshold_s: float = 0.5) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.threshold_s = float(threshold_s)
        self._ring: "deque[dict]" = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.observed = 0
        self.captured = 0

    def observe(
        self,
        *,
        path: str,
        request_id: str,
        status: int,
        t0_wall: float,
        dur_s: float,
        span_records: Optional[List[dict]] = None,
        profiler=None,
    ) -> Optional[dict]:
        """Feed one finished request; returns the exemplar if captured."""
        self.observed += 1
        if dur_s < self.threshold_s:
            return None
        t1_wall = t0_wall + dur_s
        exemplar = {
            "path": path,
            "request_id": request_id,
            "status": int(status),
            "t_wall": t0_wall,
            "dur_ms": round(dur_s * 1000.0, 3),
            "waterfall": self._waterfall(span_records or [], t0_wall, t1_wall),
            "profile": self._profile_slice(profiler, t0_wall, t1_wall),
        }
        with self._lock:
            self._ring.append(exemplar)
        self.captured += 1
        return exemplar

    @staticmethod
    def _waterfall(records: List[dict], t0: float, t1: float) -> List[dict]:
        """Trace-ring records overlapping ``[t0, t1]`` as waterfall rows
        (offset/duration relative to the request start, largest kept)."""
        t0_us, t1_us = t0 * 1e6, t1 * 1e6
        rows = []
        for r in records:
            try:
                ts, dur = float(r["ts_us"]), float(r["dur_us"])
            except (KeyError, TypeError, ValueError):
                continue
            if ts + dur < t0_us or ts > t1_us:
                continue
            rows.append(
                {
                    "name": r.get("name", "?"),
                    "offset_ms": round((ts - t0_us) / 1000.0, 3),
                    "dur_ms": round(dur / 1000.0, 3),
                    "id": r.get("id"),
                    "parent": r.get("parent"),
                }
            )
        rows.sort(key=lambda row: -row["dur_ms"])
        del rows[_MAX_WATERFALL:]
        rows.sort(key=lambda row: row["offset_ms"])
        return rows

    @staticmethod
    def _profile_slice(profiler, t0: float, t1: float) -> Optional[dict]:
        if profiler is None:
            return None
        try:
            profile = profiler.window(t0, t1)
        except Exception:
            return None
        return {
            "samples": profile.n_samples,
            "hz": profile.hz,
            "top": [
                [label, count]
                for label, count in profile.top(_MAX_PROFILE_FRAMES)
            ],
        }

    def snapshot(self) -> List[dict]:
        """Exemplars, most recent first."""
        with self._lock:
            return list(reversed(self._ring))

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


# ----------------------------------------------------------------------
# Dashboard rendering
# ----------------------------------------------------------------------
def sparkline_svg(
    points: List[Tuple[float, float]],
    *,
    width: int = 220,
    height: int = 36,
    as_rate: bool = False,
) -> str:
    """One inline SVG sparkline for a ``(t, value)`` series.

    ``as_rate=True`` plots per-second deltas — the natural view for
    monotonic counters, where the raw series is just a ramp."""
    if as_rate and len(points) >= 2:
        points = [
            (t1, max(0.0, (v1 - v0) / (t1 - t0)) if t1 > t0 else 0.0)
            for (t0, v0), (t1, v1) in zip(points, points[1:])
        ]
    if not points:
        return (
            f'<svg width="{width}" height="{height}">'
            f'<text x="4" y="{height - 6}" font-size="10" '
            f'fill="#999">no data</text></svg>'
        )
    values = [v for _, v in points]
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    n = len(points)
    coords = []
    for i, (_, v) in enumerate(points):
        x = 2 + (width - 4) * (i / max(1, n - 1))
        y = height - 3 - (height - 8) * ((v - lo) / span)
        coords.append(f"{x:.1f},{y:.1f}")
    poly = " ".join(coords)
    return (
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">'
        f'<polyline points="{poly}" fill="none" stroke="#4677b8" '
        f'stroke-width="1.5"/>'
        f'<text x="{width - 4}" y="10" font-size="9" fill="#666" '
        f'text-anchor="end">{hi:.4g}</text>'
        f"</svg>"
    )


#: Dashboard panels: (title, series name, plot deltas as a rate?).
_DASH_PANELS = [
    ("HTTP requests /s", "repro_http_request_seconds_count", True),
    ("HTTP latency sum (s)", "repro_http_request_seconds_sum", True),
    ("Tiles served /s", "repro_tiles_served_total", True),
    ("Cache hits /s", "repro_cache_hits_total", True),
    ("Cache misses /s", "repro_cache_misses_total", True),
    ("Stage build seconds", "repro_stage_build_seconds_sum", True),
    ("Uptime (s)", "repro_serve_uptime_seconds", False),
]


def render_dash(
    *,
    ring: MetricsSnapshotRing,
    slow: SlowRequestStore,
    uptime_s: float,
    span_rollup: Optional[Dict[str, Dict[str, float]]] = None,
) -> str:
    """The ``/dash`` page: sparklines + slow exemplars + span rollup,
    as one self-contained HTML document (no scripts, no assets)."""
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        "<title>repro dashboard</title>",
        "<style>",
        "body{font-family:monospace;margin:1.5em;background:#fdf6ec;"
        "color:#222}",
        "h1{font-size:1.2em}h2{font-size:1em;margin-top:1.4em}",
        ".panel{display:inline-block;margin:0 1.2em 1em 0;"
        "vertical-align:top}",
        ".panel .t{font-size:10px;color:#555}",
        "table{border-collapse:collapse;font-size:11px}",
        "td,th{border:1px solid #ccb;padding:2px 7px;text-align:left}",
        "a{color:#4677b8}",
        "</style></head><body>",
        f"<h1>repro dashboard</h1>"
        f"<p>uptime {uptime_s:.0f}s &middot; {len(ring)} snapshots "
        f"&middot; <a href='/debug/prof?seconds=2'>profile (2s)</a> "
        f"&middot; <a href='/debug/slow'>slow requests</a> "
        f"&middot; <a href='/stats'>stats</a> "
        f"&middot; <a href='/metrics'>metrics</a></p>",
        "<h2>metrics</h2>",
    ]
    for title, name, as_rate in _DASH_PANELS:
        series = ring.series(name)
        parts.append(
            "<div class='panel'>"
            f"<div class='t'>{html.escape(title)}</div>"
            f"{sparkline_svg(series, as_rate=as_rate)}"
            "</div>"
        )
    parts.append(
        f"<h2>slow requests (&ge; {slow.threshold_s * 1000:.0f} ms "
        f"&middot; {slow.captured}/{slow.observed} captured)</h2>"
    )
    exemplars = slow.snapshot()
    if exemplars:
        parts.append(
            "<table><tr><th>when</th><th>path</th><th>status</th>"
            "<th>ms</th><th>hottest frame</th></tr>"
        )
        for ex in exemplars[:10]:
            prof_top = (ex.get("profile") or {}).get("top") or []
            hottest = prof_top[0][0] if prof_top else "-"
            when = time.strftime(
                "%H:%M:%S", time.localtime(ex["t_wall"])
            )
            parts.append(
                f"<tr><td>{when}</td>"
                f"<td>{html.escape(str(ex['path']))}</td>"
                f"<td>{ex['status']}</td><td>{ex['dur_ms']:.0f}</td>"
                f"<td>{html.escape(str(hottest))}</td></tr>"
            )
        parts.append("</table>")
    else:
        parts.append("<p>none captured</p>")
    if span_rollup:
        parts.append("<h2>span rollup (top by total ms)</h2>")
        parts.append(
            "<table><tr><th>span</th><th>count</th><th>p50 ms</th>"
            "<th>p95 ms</th><th>total ms</th></tr>"
        )
        ordered = sorted(
            span_rollup.items(), key=lambda kv: -kv[1]["total_ms"]
        )
        for name, stats in ordered:
            parts.append(
                f"<tr><td>{html.escape(name)}</td>"
                f"<td>{stats['count']}</td><td>{stats['p50_ms']}</td>"
                f"<td>{stats['p95_ms']}</td><td>{stats['total_ms']}</td>"
                f"</tr>"
            )
        parts.append("</table>")
    parts.append("</body></html>")
    return "".join(parts)
