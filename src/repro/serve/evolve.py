"""Serving temporal evolution: windows, trajectories, diff tiles, SSE.

An :class:`EvolveSession` registers a temporal edge log (or a
generated :class:`~repro.graph.generators.DynamicCommunityLog`) with
the app; the first request materializes one :class:`EvolveRun` —
timeline frames, tracked trajectories, rasterized diff fields — on
the runner's thread executor, coalesced so concurrent cold requests
build it exactly once.  Everything after that is dictionary lookups
over the run plus the shared :class:`~repro.engine.cache.ArtifactCache`
(diff tiles are content-hash keyed cached artifacts with strong
ETags, exactly like the static LOD tiles).

``GET /stream/{name}`` on an evolve session replays the run over the
existing SSE channel: a ``hello`` with the run geometry, then one
``window`` event per frame (frame summary + peak count), an
``events`` event per window that produced lifecycle events, and a
closing ``done`` — the temporal counterpart of the edit-log replay in
:mod:`repro.serve.stream`.
"""

from __future__ import annotations

import json
from typing import AsyncIterator, Dict, List, Optional, Tuple

from ..evolve.diff import DiffTiler
from ..evolve.timeline import frames_from_log
from ..evolve.tracker import PeakTracker, peaks_from_tree
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace

__all__ = ["EvolveSession", "EvolveRun", "evolve_sse_events"]

_M_RUN_WINDOWS = obs_metrics.REGISTRY.gauge(
    "repro_evolve_run_windows",
    "Windows processed per materialized evolve run.",
    ("run",),
)
_M_RUN_TRAJECTORIES = obs_metrics.REGISTRY.gauge(
    "repro_evolve_run_trajectories",
    "Tracked peak trajectories per evolve run.",
    ("run",),
)
_M_RUN_LIVE = obs_metrics.REGISTRY.gauge(
    "repro_evolve_run_live",
    "Trajectories still alive at the end of an evolve run.",
    ("run",),
)


class EvolveSession:
    """One registered temporal-evolution run specification."""

    def __init__(
        self,
        name: str,
        log_path: str,
        *,
        measure: str = "degree",
        horizon: float = 1.0,
        stride: Optional[float] = None,
        origin: Optional[float] = None,
        alpha: Optional[float] = None,
        min_size: int = 3,
        jaccard: float = 0.3,
        resolution: int = 256,
        tile_size: int = 64,
        bins: Optional[int] = None,
        scheme: str = "quantile",
        max_windows: Optional[int] = None,
    ) -> None:
        self.name = name
        self.log_path = str(log_path)
        self.measure = measure
        self.horizon = float(horizon)
        self.stride = stride
        self.origin = origin
        self.alpha = alpha
        self.min_size = int(min_size)
        self.jaccard = float(jaccard)
        self.resolution = int(resolution)
        self.tile_size = int(tile_size)
        self.bins = bins
        self.scheme = scheme
        self.max_windows = max_windows

    def describe(self) -> Dict[str, object]:
        return {
            "run": self.name,
            "measure": self.measure,
            "horizon": self.horizon,
            "stride": self.stride if self.stride is not None else self.horizon,
            "alpha": self.alpha,
            "resolution": self.resolution,
            "tile_size": self.tile_size,
        }


class EvolveRun:
    """A materialized evolve session: frames tracked, diffed, indexed.

    Construction is synchronous and CPU-bound — run it on an executor
    thread (the app coalesces concurrent constructions).
    """

    def __init__(self, session: EvolveSession, cache=None) -> None:
        self.session = session
        self.tracker = PeakTracker(
            jaccard=session.jaccard, min_size=session.min_size
        )
        self.tiler = DiffTiler(
            cache=cache,
            resolution=session.resolution,
            tile_size=session.tile_size,
        )
        self.windows: List[Dict[str, object]] = []
        self._window_events: Dict[int, List[Dict[str, object]]] = {}
        with obs_trace.span("evolve.run", run=session.name):
            frames = frames_from_log(
                session.log_path,
                measure=session.measure,
                horizon=session.horizon,
                stride=session.stride,
                origin=session.origin,
                bins=session.bins,
                scheme=session.scheme,
            )
            for frame in frames:
                if (
                    session.max_windows is not None
                    and frame.index >= session.max_windows
                ):
                    break
                peaks = peaks_from_tree(
                    frame.super,
                    session.alpha,
                    session.min_size,
                    window=frame.index,
                )
                events = self.tracker.observe(frame.index, peaks)
                self.tiler.add_frame(frame)
                row = dict(frame.describe())
                row["n_peaks"] = len(peaks)
                row["n_events"] = len(events)
                if frame.index > 0:
                    row["diff"] = self.tiler.summary(frame.index)
                self.windows.append(row)
                if events:
                    self._window_events[frame.index] = [
                        e.describe() for e in events
                    ]
        stats = self.tracker.stats()
        _M_RUN_WINDOWS.set(len(self.windows), run=session.name)
        _M_RUN_TRAJECTORIES.set(stats["trajectories"], run=session.name)
        _M_RUN_LIVE.set(stats["live"], run=session.name)

    # -- read API -------------------------------------------------------
    @property
    def n_windows(self) -> int:
        return len(self.windows)

    def window_events(self, window: int) -> List[Dict[str, object]]:
        return self._window_events.get(window, [])

    def trajectory(self, tid: int) -> Optional[Dict[str, object]]:
        traj = self.tracker.trajectories.get(tid)
        if traj is None:
            return None
        doc = traj.describe()
        doc["events"] = [
            e.describe()
            for e in self.tracker.events
            if e.trajectory == tid or tid in e.others
        ]
        return doc

    def tile_payload(self, window: int, tx: int, ty: int) -> bytes:
        return self.tiler.tile(window, tx, ty).to_bytes()

    def stats(self) -> Dict[str, object]:
        stats = self.tracker.stats()
        return {
            "windows": self.n_windows,
            "trajectories": stats["trajectories"],
            "live": stats["live"],
            "events": stats["events"],
        }


async def evolve_sse_events(
    run_awaitable, session: EvolveSession
) -> AsyncIterator[Tuple[str, str]]:
    """SSE iterator replaying a materialized run's windows.

    ``run_awaitable`` resolves to the :class:`EvolveRun` (the app's
    coalesced build funnel), so the ``hello`` is only emitted once the
    run exists and every later event is a lookup.
    """
    run: EvolveRun = await run_awaitable
    hello = dict(session.describe(), windows=run.n_windows)
    yield "hello", json.dumps(hello)
    for row in run.windows:
        yield "window", json.dumps(row)
        events = run.window_events(int(row["index"]))
        if events:
            yield "events", json.dumps(
                {"window": row["index"], "events": events}
            )
    yield "done", json.dumps(dict(run.stats()))
