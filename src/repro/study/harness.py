"""User-study harness: regenerates Tables IV, V and VI.

For each (dataset, method) cell the harness builds the *actual*
visualization artifact, measures the task's visual signal on it, and
runs ten seeded simulated participants.  Outputs match the paper's
table shape: per-dataset accuracy and mean completion time per method.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from ..baselines.lanet_vi import lanet_vi_layout
from ..baselines.openord import openord_layout
from ..core.scalar_graph import ScalarGraph
from ..core.scalar_tree import build_vertex_tree
from ..core.super_tree import SuperTree, build_super_tree
from ..graph import datasets as dataset_registry
from ..graph.csr import CSRGraph
from ..measures.centrality import betweenness_centrality, degree_centrality
from ..measures.kcore import core_numbers
from ..terrain.layout2d import TerrainLayout, layout_tree
from ..terrain.render import node_colors_from_item_values
from .participants import SimulatedParticipant
from .signals import (
    VisualSignal,
    lanet_vi_target_signal,
    openord_correlation_signal,
    openord_target_signal,
    terrain_correlation_signal,
    terrain_target_signal,
)

__all__ = ["StudyRow", "run_task1", "run_task2", "run_task3", "run_full_study"]

_TASK12_DATASETS = ("grqc", "ppi", "dblp")
_N_PARTICIPANTS = 10


@dataclass(frozen=True)
class StudyRow:
    """One table cell group: a dataset × method outcome."""

    task: int
    dataset: str
    method: str
    accuracy: float
    mean_time: float


def _terrain_artifacts(graph: CSRGraph) -> (SuperTree, TerrainLayout):
    core = core_numbers(graph).astype(np.float64)
    tree = build_super_tree(build_vertex_tree(ScalarGraph(graph, core)))
    return tree, layout_tree(tree)


def _simulate(
    task: int,
    dataset: str,
    method: str,
    signal: VisualSignal,
    n_participants: int,
    seed: int,
) -> StudyRow:
    correct = 0
    times: List[float] = []
    for p in range(n_participants):
        # zlib.crc32 is stable across processes (builtin hash() is salted).
        key = f"{task}|{dataset}|{method}|{p}|{seed}".encode()
        participant = SimulatedParticipant(seed=zlib.crc32(key))
        ok, seconds = participant.attempt(signal)
        correct += int(ok)
        times.append(seconds)
    return StudyRow(
        task=task,
        dataset=dataset,
        method=method,
        accuracy=correct / n_participants,
        mean_time=float(np.mean(times)),
    )


def _core_target_rows(
    task: int,
    rank: int,
    names: Sequence[str],
    n_participants: int,
    seed: int,
) -> List[StudyRow]:
    rows: List[StudyRow] = []
    for name in names:
        graph = dataset_registry.load(name).graph
        core = core_numbers(graph)

        tree, layout = _terrain_artifacts(graph)
        rows.append(
            _simulate(
                task, name, "terrain",
                terrain_target_signal(tree, layout, rank=rank),
                n_participants, seed,
            )
        )

        __, lanet_core = lanet_vi_layout(graph, seed=seed)
        rows.append(
            _simulate(
                task, name, "lanet_vi",
                lanet_vi_target_signal(graph, lanet_core, rank=rank),
                n_participants, seed,
            )
        )

        positions = openord_layout(graph, seed=seed)
        rows.append(
            _simulate(
                task, name, "openord",
                openord_target_signal(
                    graph, core.astype(np.float64), positions, rank=rank
                ),
                n_participants, seed,
            )
        )
    return rows


def run_task1(
    names: Sequence[str] = _TASK12_DATASETS,
    n_participants: int = _N_PARTICIPANTS,
    seed: int = 0,
) -> List[StudyRow]:
    """Table IV: identify the densest K-core (3 datasets × 3 methods)."""
    return _core_target_rows(1, 1, names, n_participants, seed)


def run_task2(
    names: Sequence[str] = _TASK12_DATASETS,
    n_participants: int = _N_PARTICIPANTS,
    seed: int = 0,
) -> List[StudyRow]:
    """Table V: identify the densest K-core *disconnected from* the
    densest (3 datasets × 3 methods)."""
    return _core_target_rows(2, 2, names, n_participants, seed)


def run_task3(
    name: str = "astro",
    n_participants: int = _N_PARTICIPANTS,
    seed: int = 0,
    betweenness_samples: int = 256,
) -> List[StudyRow]:
    """Table VI: judge the correlation of betweenness (terrain height /
    node colour) and degree (terrain colour / node size) on Astro."""
    graph = dataset_registry.load(name).graph
    degree = degree_centrality(graph, normalized=False)
    betw = betweenness_centrality(graph, samples=betweenness_samples, seed=seed)

    tree = build_super_tree(build_vertex_tree(ScalarGraph(graph, betw)))
    node_deg = np.array(
        [degree[m].mean() if len(m) else 0.0 for m in tree.members]
    )
    terrain_signal = terrain_correlation_signal(tree, node_deg)

    positions = openord_layout(graph, seed=seed)
    openord_signal = openord_correlation_signal(betw, degree, positions)

    return [
        _simulate(3, name, "terrain", terrain_signal, n_participants, seed),
        _simulate(3, name, "openord", openord_signal, n_participants, seed),
    ]


def run_full_study(seed: int = 0) -> Dict[int, List[StudyRow]]:
    """All three tasks; keys are task numbers."""
    return {
        1: run_task1(seed=seed),
        2: run_task2(seed=seed),
        3: run_task3(seed=seed),
    }


def format_table(rows: Iterable[StudyRow]) -> str:
    """Pretty-print study rows in the paper's table layout."""
    rows = list(rows)
    methods = sorted({r.method for r in rows})
    names = []
    for r in rows:
        if r.dataset not in names:
            names.append(r.dataset)
    header = "dataset    " + "".join(
        f"{m:>12}_acc {m:>12}_time" for m in methods
    )
    lines = [header]
    for name in names:
        cells = []
        for m in methods:
            row = next(r for r in rows if r.dataset == name and r.method == m)
            cells.append(f"{row.accuracy:>16.2f} {row.mean_time:>16.1f}")
        lines.append(f"{name:<10}" + "".join(cells))
    return "\n".join(lines)
