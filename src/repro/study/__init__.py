"""Simulated user study (Tables IV-VI)."""

from .harness import (
    StudyRow,
    format_table,
    run_full_study,
    run_task1,
    run_task2,
    run_task3,
)
from .participants import SimulatedParticipant
from .signals import (
    VisualSignal,
    lanet_vi_target_signal,
    occlusion_fraction,
    openord_correlation_signal,
    openord_target_signal,
    terrain_correlation_signal,
    terrain_target_signal,
)

__all__ = [
    "StudyRow",
    "run_task1",
    "run_task2",
    "run_task3",
    "run_full_study",
    "format_table",
    "SimulatedParticipant",
    "VisualSignal",
    "terrain_target_signal",
    "lanet_vi_target_signal",
    "openord_target_signal",
    "terrain_correlation_signal",
    "openord_correlation_signal",
    "occlusion_fraction",
]
