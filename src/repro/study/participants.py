"""Simulated study participants.

A participant converts a :class:`~repro.study.signals.VisualSignal`
into a (correct?, seconds) outcome through a simple psychophysics-style
model with seeded noise:

* probability of a correct answer rises with discriminability and
  visibility and falls with trace cost;
* response time follows a base + visual-search + tracing decomposition,
  multiplied by log-normal per-trial noise.

The constants were chosen once, globally — the *per-method, per-dataset*
differences in the reproduced tables come entirely from the measured
signals, never from method-specific tweaks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .signals import VisualSignal

__all__ = ["SimulatedParticipant"]

# Global psychophysics constants (shared by every method and task).
_P_BASE = 0.30
_P_DISC = 0.55
_P_VIS = 0.25
_P_TRACE = 0.045
_T_BASE = 1.2
_T_SEARCH = 4.5
_T_TRACE = 0.9
_T_UNCERTAIN = 2.0
_T_NOISE_SIGMA = 0.22


@dataclass
class SimulatedParticipant:
    """One seeded participant; reusable across trials."""

    seed: int

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def p_correct(self, signal: VisualSignal) -> float:
        """Deterministic probability of answering correctly."""
        p = (
            _P_BASE
            + _P_DISC * signal.discriminability
            + _P_VIS * signal.visibility
            - _P_TRACE * signal.trace_cost
        )
        return float(np.clip(p, 0.05, 1.0))

    def expected_time(self, signal: VisualSignal) -> float:
        """Deterministic expected response time in seconds."""
        search = _T_SEARCH * (1.0 - signal.visibility)
        trace = _T_TRACE * signal.trace_cost
        uncertainty = _T_UNCERTAIN * (1.0 - signal.discriminability)
        return _T_BASE + search + trace + uncertainty

    def attempt(self, signal: VisualSignal) -> Tuple[bool, float]:
        """One noisy trial: (answered correctly?, seconds taken)."""
        correct = bool(self._rng.random() < self.p_correct(signal))
        noise = float(
            np.exp(self._rng.normal(0.0, _T_NOISE_SIGMA))
        )
        seconds = self.expected_time(signal) * noise
        if not correct:
            # Wrong answers tend to follow longer, flailing searches.
            seconds *= 1.15
        return correct, seconds
