"""Visual-signal extraction for the simulated user study.

The paper's Tables IV–VI come from ten human participants per task.
Offline we substitute *simulated* participants (DESIGN.md §3): their
accuracy and latency are functions of signals **measured from the same
artifacts a human would look at** — the terrain layout geometry, the
LaNet-vi shell structure, and the actual OpenOrd vertex positions.
Nothing is hard-coded per method: if a baseline renders the target
saliently, the simulator will reward it.

Every extractor returns a :class:`VisualSignal` with three components:

* ``visibility`` ∈ [0, 1] — how much display real estate / pop-out the
  target enjoys;
* ``discriminability`` ∈ [0, 1] — how separable the target is from its
  closest distractor (height gap, colour-ramp gap, …);
* ``trace_cost`` ≥ 0 — structured-inspection effort in "steps" (e.g.
  having to follow individual edges to settle connectivity).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.super_tree import SuperTree
from ..graph.csr import CSRGraph
from ..terrain.layout2d import TerrainLayout
from ..terrain.peaks import highest_peaks

__all__ = [
    "VisualSignal",
    "terrain_target_signal",
    "lanet_vi_target_signal",
    "openord_target_signal",
    "terrain_correlation_signal",
    "openord_correlation_signal",
    "occlusion_fraction",
]


@dataclass(frozen=True)
class VisualSignal:
    """What a visualization gives the viewer for one task."""

    visibility: float
    discriminability: float
    trace_cost: float


def _mountain_root(tree: SuperTree, node: int) -> int:
    """Root of the mountain containing ``node`` (its forest root)."""
    while tree.parent[node] >= 0:
        node = int(tree.parent[node])
    return node


def terrain_target_signal(
    tree: SuperTree,
    layout: TerrainLayout,
    rank: int = 1,
) -> VisualSignal:
    """Signal for "find the rank-th highest disconnected peak".

    Height is a position cue (pop-out): visibility comes from the
    target's relative height and the footprint of the mid-height
    boundary under it; discriminability from the summit-height gap to
    the next candidate.  Disconnection is directly visible (separate
    mountains), so the trace cost is the count of *competing* peaks
    only.
    """
    peaks = highest_peaks(tree, count=rank + 1, layout=layout)
    target = peaks[rank - 1]
    h_max = float(tree.scalars.max())
    h_min = float(tree.scalars.min())
    span = (h_max - h_min) or 1.0
    rel_height = (target.alpha - h_min) / span
    # Footprint: boundary of the target's ancestor at half its height.
    node = target.node
    half = h_min + (target.alpha - h_min) * 0.5
    anc = node
    while tree.parent[anc] >= 0 and tree.scalars[tree.parent[anc]] >= half:
        anc = int(tree.parent[anc])
    xmin, ymin, xmax, ymax = layout.extent
    total_area = (xmax - xmin) * (ymax - ymin)
    area_frac = layout.boundary_area(anc) / total_area
    visibility = float(
        np.clip(0.45 * rel_height + 0.55 * min(math.sqrt(area_frac) * 3, 1.0), 0, 1)
    )
    if len(peaks) > rank:
        runner = peaks[rank]
        gap = (target.alpha - runner.alpha) / span
    else:
        gap = 1.0
    # Height comparison in 3D is a metric judgement: even small gaps
    # resolve, hence the 0.55 floor.
    discriminability = float(np.clip(0.55 + 0.45 * gap * 4, 0, 1))
    trace_cost = math.log2(1 + rank)
    return VisualSignal(visibility, discriminability, trace_cost)


def lanet_vi_target_signal(
    graph: CSRGraph,
    core: np.ndarray,
    rank: int = 1,
) -> VisualSignal:
    """Signal for reading the rank-th densest core off an onion layout.

    The innermost shell's visibility is its population share of the
    display; coreness is colour-coded, so discriminability is the ramp
    gap between the top shells; settling *connectivity* (Task 2)
    requires following the actual edges incident to the target shell.
    """
    n = graph.n_vertices
    k_max = int(core.max())
    distinct = np.unique(core)
    k1 = distinct[-1]
    k2 = distinct[-2] if len(distinct) > 1 else k1
    target = np.flatnonzero(core == k1)
    visibility = float(np.clip(math.sqrt(len(target) / n) * 2.2, 0, 1))
    ramp_gap = (k1 - k2) / (k_max + 1)
    discriminability = float(np.clip(ramp_gap * 5, 0.05, 1))
    trace_cost = math.log2(1 + len(distinct)) / 2
    if rank > 1:
        # Must verify disconnection by tracing edges around the shell.
        incident = int(graph.degree()[target].sum())
        trace_cost += math.log2(1 + incident)
        visibility *= 0.8
    return VisualSignal(visibility, discriminability, trace_cost)


def occlusion_fraction(
    positions: np.ndarray, targets: np.ndarray, radius: float = 0.01
) -> float:
    """Fraction of target vertices overlapped by ≥2 non-target vertices
    within ``radius`` in the *actual* layout (unit square coords)."""
    targets = np.asarray(targets)
    if len(targets) == 0:
        return 0.0
    others = np.ones(len(positions), dtype=bool)
    others[targets] = False
    other_pos = positions[others]
    if len(other_pos) == 0:
        return 0.0
    occluded = 0
    for t in targets:
        d2 = ((other_pos - positions[t]) ** 2).sum(axis=1)
        if int((d2 < radius * radius).sum()) >= 2:
            occluded += 1
    return occluded / len(targets)


def openord_target_signal(
    graph: CSRGraph,
    values: np.ndarray,
    positions: np.ndarray,
    rank: int = 1,
) -> VisualSignal:
    """Signal for reading the rank-th densest region off an OpenOrd plot.

    Targets pop out only through colour, so visibility is their
    population share *after* discounting measured point occlusion;
    discriminability is the colour-ramp gap as for LaNet-vi; the whole
    cloud must be scanned (log-n search), and connectivity questions
    again require edge tracing.
    """
    values = np.asarray(values, dtype=np.float64)
    n = graph.n_vertices
    distinct = np.unique(values)
    v1 = distinct[-1]
    v2 = distinct[-2] if len(distinct) > 1 else v1
    target = np.flatnonzero(values == v1)
    occl = occlusion_fraction(positions, target)
    visibility = float(
        np.clip(math.sqrt(len(target) / n) * 2.0 * (1 - 0.7 * occl), 0, 1)
    )
    span = (values.max() - values.min()) or 1.0
    discriminability = float(np.clip((v1 - v2) / span * 4, 0.05, 1))
    trace_cost = math.log2(1 + n) / 4
    if rank > 1:
        incident = int(graph.degree()[target].sum())
        trace_cost += math.log2(1 + incident)
        visibility *= 0.8
    return VisualSignal(visibility, discriminability, trace_cost)


def terrain_correlation_signal(
    tree: SuperTree, node_color_values: np.ndarray
) -> VisualSignal:
    """Signal for judging two-field correlation off a coloured terrain.

    Height encodes field 1 and colour field 2, so the viewer reads the
    *rank agreement between height and colour over the super nodes* —
    we measure exactly that correlation on the artifact.
    """
    heights = tree.scalars
    colors = np.asarray(node_color_values, dtype=np.float64)
    if heights.std() == 0 or colors.std() == 0:
        rho = 0.0
    else:
        rho = float(np.corrcoef(heights, colors)[0, 1])
    discriminability = float(np.clip(abs(rho), 0, 1))
    visibility = 0.8  # the whole terrain carries the signal
    return VisualSignal(visibility, discriminability, 1.0)


def openord_correlation_signal(
    values_color: np.ndarray,
    values_size: np.ndarray,
    positions: np.ndarray,
) -> VisualSignal:
    """Signal for judging correlation from colour-vs-size glyphs.

    Same underlying statistic, but (a) node size is a weaker channel
    than terrain height and (b) measured occlusion hides part of the
    evidence (the paper's stated failure mode for Task 3).
    """
    color = np.asarray(values_color, dtype=np.float64)
    size = np.asarray(values_size, dtype=np.float64)
    if color.std() == 0 or size.std() == 0:
        rho = 0.0
    else:
        rho = float(np.corrcoef(color, size)[0, 1])
    # Occlusion over the densest tenth of the display.
    top = np.argsort(-size)[: max(len(size) // 10, 1)]
    occl = occlusion_fraction(positions, top)
    discriminability = float(np.clip(abs(rho) * (1 - 0.5 * occl) * 0.75, 0, 1))
    visibility = float(np.clip(0.65 * (1 - 0.5 * occl), 0, 1))
    return VisualSignal(visibility, discriminability, 1.5)
