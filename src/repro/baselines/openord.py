"""Simplified OpenOrd-style multilevel layout [26].

The user-study baseline for all three tasks: OpenOrd coarsens the graph
by edge matching, lays out the coarsest level force-directed, then
interpolates back down with progressively shorter refinement phases
(its "simulated annealing schedule" of liquid → expansion → cool-down
stages).  We reproduce that structure — matching-based coarsening,
seeded FR at each level with decreasing iteration budgets — which gives
the characteristic clustered blobs of OpenOrd at a fraction of the
code.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from ..graph.builders import from_edge_array
from ..graph.csr import CSRGraph
from ..terrain.colormap import intensity_ramp
from ..terrain.svg import SVGCanvas
from .spring import spring_layout

__all__ = ["coarsen", "openord_layout", "openord_svg"]

# Refinement budgets per level, coarse → fine (OpenOrd's stage schedule).
_STAGE_ITERATIONS = (60, 35, 20, 12, 8)


def coarsen(graph: CSRGraph, seed: int = 0) -> Tuple[CSRGraph, np.ndarray]:
    """One level of heavy-matching coarsening.

    Greedily matches each unmatched vertex with an unmatched neighbour
    (random order under ``seed``); matched pairs collapse into one
    coarse vertex.  Returns ``(coarse_graph, mapping)`` with
    ``mapping[v]`` the coarse id of fine vertex ``v``.
    """
    n = graph.n_vertices
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    mapping = -np.ones(n, dtype=np.int64)
    next_id = 0
    for v in order.tolist():
        if mapping[v] >= 0:
            continue
        mate = -1
        for w in graph.neighbors(v):
            if mapping[w] < 0 and w != v:
                mate = int(w)
                break
        mapping[v] = next_id
        if mate >= 0:
            mapping[mate] = next_id
        next_id += 1
    pairs = graph.edge_array()
    coarse_pairs = mapping[pairs]
    coarse = from_edge_array(coarse_pairs, n_vertices=next_id)
    return coarse, mapping


def openord_layout(
    graph: CSRGraph,
    levels: int = 4,
    seed: int = 0,
) -> np.ndarray:
    """Multilevel layout: coarsen ``levels`` times, lay out the coarsest
    graph, then project positions down with jittered refinement.

    Returns positions (n, 2) in [0, 1]².
    """
    hierarchy: List[Tuple[CSRGraph, np.ndarray]] = []
    current = graph
    for level in range(levels):
        if current.n_vertices <= 50:
            break
        coarse, mapping = coarsen(current, seed=seed + level)
        if coarse.n_vertices >= current.n_vertices:
            break
        hierarchy.append((current, mapping))
        current = coarse

    pos = spring_layout(current, iterations=_STAGE_ITERATIONS[0], seed=seed)
    rng = np.random.default_rng(seed + 17)
    for depth, (fine, mapping) in enumerate(reversed(hierarchy)):
        # Interpolate: each fine vertex starts at its coarse position
        # plus a small deterministic jitter, then refines briefly.
        jitter = (rng.random((fine.n_vertices, 2)) - 0.5) * 0.02
        start = pos[mapping] + jitter
        stage = _STAGE_ITERATIONS[min(depth + 1, len(_STAGE_ITERATIONS) - 1)]
        pos = _refine(fine, start, iterations=stage, seed=seed + depth)
    pos -= pos.min(axis=0)
    span = pos.max(axis=0)
    span[span == 0] = 1.0
    return pos / span


def _refine(
    graph: CSRGraph, pos: np.ndarray, iterations: int, seed: int
) -> np.ndarray:
    """Short FR refinement from given initial positions."""
    n = graph.n_vertices
    rng = np.random.default_rng(seed)
    pos = pos.copy()
    k = 1.0 / np.sqrt(max(n, 1))
    edges = graph.edge_array()
    temp = 0.05
    cool = temp / (iterations + 1)
    samples = min(n, 300)
    for __ in range(iterations):
        disp = np.zeros((n, 2))
        sample = rng.choice(n, size=samples, replace=False)
        delta = pos[:, None, :] - pos[sample][None, :, :]
        dist = np.sqrt((delta ** 2).sum(axis=2)) + 1e-9
        force = (k * k / dist) * (n / samples)
        disp += (delta / dist[:, :, None] * force[:, :, None]).sum(axis=1)
        if len(edges):
            d = pos[edges[:, 0]] - pos[edges[:, 1]]
            dist = np.sqrt((d ** 2).sum(axis=1)) + 1e-9
            pull = (dist / k)[:, None] * d / dist[:, None]
            np.add.at(disp, edges[:, 0], -pull)
            np.add.at(disp, edges[:, 1], pull)
        length = np.sqrt((disp ** 2).sum(axis=1)) + 1e-9
        capped = np.minimum(length, temp)
        pos += disp / length[:, None] * capped[:, None]
        temp = max(temp - cool, 1e-4)
    return pos


def openord_svg(
    graph: CSRGraph,
    values: np.ndarray,
    sizes: Optional[np.ndarray] = None,
    size: int = 640,
    seed: int = 0,
    path: Optional[Union[str, Path]] = None,
) -> str:
    """OpenOrd-style SVG: multilevel positions, colour = ``values``
    (intensity ramp), optional per-vertex radii = ``sizes`` (used by the
    study's Task 3 where node size encodes a second measure)."""
    pos = openord_layout(graph, seed=seed)
    colors = intensity_ramp(np.asarray(values, dtype=np.float64))
    if sizes is None:
        radii = np.full(graph.n_vertices, 2.6)
    else:
        sizes = np.asarray(sizes, dtype=np.float64)
        lo, hi = sizes.min(), sizes.max()
        t = (sizes - lo) / (hi - lo) if hi > lo else np.full(len(sizes), 0.5)
        radii = 1.5 + 5.0 * t
    margin = 10.0
    scale = size - 2 * margin
    canvas = SVGCanvas(size, size)
    xy = pos * scale + margin
    for u, v in graph.edges():
        canvas.line(
            xy[u, 0], xy[u, 1], xy[v, 0], xy[v, 1],
            stroke=(0.6, 0.6, 0.6), stroke_width=0.4, opacity=0.12,
        )
    order = np.argsort(values)
    for v in order:
        canvas.circle(
            xy[v, 0], xy[v, 1], float(radii[v]),
            fill=tuple(colors[v]), stroke=None,
        )
    svg = canvas.to_string()
    if path is not None:
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(svg)
    return svg
