"""LaNet-vi-style K-core onion layout [6].

The user-study baseline for Tasks 1–2: vertices are arranged in
concentric shells by core number — the densest core innermost — with
each shell's vertices spread angularly by connected component within
the shell.  Colour encodes coreness on the paper's intensity ramp.

This is a faithful simplification of LaNet-vi's published layout
principles (shell radius from coreness, angular sector from cluster
membership), sufficient for comparing "find the densest K-core" style
readability against the terrain.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..graph.csr import CSRGraph
from ..core.union_find import UnionFind
from ..measures.kcore import core_numbers
from ..terrain.colormap import intensity_ramp
from ..terrain.svg import SVGCanvas

__all__ = ["lanet_vi_layout", "lanet_vi_svg"]


def _shell_components(graph: CSRGraph, core: np.ndarray, k: int) -> Dict[int, int]:
    """Component id within the k-shell (vertices with core == k),
    connectivity measured inside the >=k-core subgraph."""
    members = np.flatnonzero(core == k)
    alive = core >= k
    uf = UnionFind(graph.n_vertices)
    for v in members:
        for w in graph.neighbors(int(v)):
            if alive[w]:
                uf.union(int(v), int(w))
    roots: Dict[int, int] = {}
    out: Dict[int, int] = {}
    for v in members:
        root = uf.find(int(v))
        if root not in roots:
            roots[root] = len(roots)
        out[int(v)] = roots[root]
    return out


def lanet_vi_layout(
    graph: CSRGraph, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Positions (n, 2) in [0, 1]² plus the core-number vector.

    Shell radius decreases with coreness (max core at the centre);
    within a shell, components occupy disjoint angular sectors and
    vertices jitter deterministically inside their sector.
    """
    n = graph.n_vertices
    rng = np.random.default_rng(seed)
    core = core_numbers(graph)
    k_max = int(core.max()) if n else 0
    pos = np.zeros((n, 2))
    for k in range(0, k_max + 1):
        members = np.flatnonzero(core == k)
        if len(members) == 0:
            continue
        radius = 0.05 + 0.45 * (k_max - k) / max(k_max, 1)
        comp = _shell_components(graph, core, k)
        comp_ids = sorted(set(comp.values()))
        sector = 2 * math.pi / max(len(comp_ids), 1)
        for v in members:
            c = comp[int(v)]
            angle = c * sector + rng.random() * sector
            rr = radius * (0.9 + 0.2 * rng.random())
            pos[v, 0] = 0.5 + rr * math.cos(angle)
            pos[v, 1] = 0.5 + rr * math.sin(angle)
    pos -= pos.min(axis=0)
    span = pos.max(axis=0)
    span[span == 0] = 1.0
    return pos / span, core


def lanet_vi_svg(
    graph: CSRGraph,
    size: int = 640,
    seed: int = 0,
    path: Optional[Union[str, Path]] = None,
) -> str:
    """Full LaNet-vi-style SVG: faint edges, shell-placed vertices
    coloured by coreness (blue = shallow, red = densest core)."""
    pos, core = lanet_vi_layout(graph, seed=seed)
    colors = intensity_ramp(core.astype(np.float64))
    margin = 8.0
    scale = size - 2 * margin
    canvas = SVGCanvas(size, size)
    xy = pos * scale + margin
    for u, v in graph.edges():
        canvas.line(
            xy[u, 0], xy[u, 1], xy[v, 0], xy[v, 1],
            stroke=(0.6, 0.6, 0.6), stroke_width=0.4, opacity=0.15,
        )
    order = np.argsort(core)  # densest drawn last (on top)
    for v in order:
        canvas.circle(
            xy[v, 0], xy[v, 1], 2.6,
            fill=tuple(colors[v]), stroke=None,
        )
    svg = canvas.to_string()
    if path is not None:
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(svg)
    return svg
