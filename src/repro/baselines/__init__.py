"""Comparison baselines: spring layout, LaNet-vi, OpenOrd, CSV plot."""

from .csv_plot import csv_order, csv_plot_svg
from .lanet_vi import lanet_vi_layout, lanet_vi_svg
from .openord import coarsen, openord_layout, openord_svg
from .spring import draw_graph_svg, spring_layout

__all__ = [
    "spring_layout",
    "draw_graph_svg",
    "lanet_vi_layout",
    "lanet_vi_svg",
    "coarsen",
    "openord_layout",
    "openord_svg",
    "csv_order",
    "csv_plot_svg",
]
