"""CSV (Cohesive Subgraph Visualization) density plot [1].

The database-community baseline the paper contrasts with for K-truss
visualization (Fig 6(g)): vertices (or edges) are arranged along the
x-axis in a cohesion-aware order and the y-axis plots the cohesion
measure, giving a 1-D "skyline" whose plateaus are cohesive subgraphs.
The plot shows *that* dense subgraphs exist and how large they are but —
as the paper argues — not their hierarchical containment.

We implement the CSV ordering as a max-cohesion greedy traversal: start
from the highest-valued element and repeatedly append the neighbouring
element of highest value, falling back to the global maximum when the
frontier empties.
"""

from __future__ import annotations

from heapq import heappop, heappush
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..graph.csr import CSRGraph
from ..terrain.svg import SVGCanvas
from ..terrain.colormap import intensity_ramp

__all__ = ["csv_order", "csv_plot_svg"]


def csv_order(graph: CSRGraph, values: np.ndarray) -> np.ndarray:
    """Cohesion-aware vertex order for the CSV curve.

    Greedy best-neighbour traversal: visit the globally best unvisited
    vertex, then repeatedly pop the best value adjacent to the visited
    set.  Plateaus of high-value, interconnected vertices end up
    contiguous on the x-axis.
    """
    values = np.asarray(values, dtype=np.float64)
    n = graph.n_vertices
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    heap: list = []
    remaining = np.argsort(-values, kind="stable").tolist()
    cursor = 0
    for slot in range(n):
        while heap and visited[heap[0][1]]:
            heappop(heap)
        if heap:
            __, v = heappop(heap)
        else:
            while cursor < n and visited[remaining[cursor]]:
                cursor += 1
            v = remaining[cursor]
        visited[v] = True
        order[slot] = v
        for w in graph.neighbors(int(v)):
            if not visited[w]:
                heappush(heap, (-values[w], int(w)))
    return order


def csv_plot_svg(
    graph: CSRGraph,
    values: np.ndarray,
    width: int = 720,
    height: int = 280,
    path: Optional[Union[str, Path]] = None,
) -> str:
    """The CSV skyline as SVG: x = CSV order, y = cohesion value."""
    values = np.asarray(values, dtype=np.float64)
    order = csv_order(graph, values)
    series = values[order]
    lo, hi = float(series.min()), float(series.max())
    span = hi - lo if hi > lo else 1.0
    margin = 24.0
    plot_w = width - 2 * margin
    plot_h = height - 2 * margin
    n = len(series)
    xs = margin + np.arange(n) / max(n - 1, 1) * plot_w
    ys = margin + (1.0 - (series - lo) / span) * plot_h
    colors = intensity_ramp(series)

    canvas = SVGCanvas(width, height)
    canvas.line(margin, height - margin, width - margin, height - margin,
                stroke=(0.2, 0.2, 0.2))
    canvas.line(margin, margin, margin, height - margin,
                stroke=(0.2, 0.2, 0.2))
    # Bars (coloured skyline) beat a polyline at showing plateaus.
    bar_w = max(plot_w / max(n, 1), 0.5)
    base_y = height - margin
    for i in range(n):
        canvas.rect(xs[i] - bar_w / 2, ys[i], bar_w, base_y - ys[i],
                    fill=tuple(colors[i]))
    canvas.text(width / 2, height - 4, "CSV order", size=11, anchor="middle")
    canvas.text(8, margin - 8, f"max={hi:g}", size=11)
    svg = canvas.to_string()
    if path is not None:
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(svg)
    return svg
