"""Fruchterman–Reingold spring layout [31].

The paper's point of comparison for "traditional" node-link drawing
(Figs 6(a)/(b)) and the renderer behind the linked-2D-display callback
(drawing a selected terrain region as a node-link diagram).  Vectorised
with numpy; for large graphs the quadratic repulsion term is estimated
from a seeded vertex sample.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..graph.csr import CSRGraph
from ..terrain.colormap import intensity_ramp
from ..terrain.svg import SVGCanvas

__all__ = ["spring_layout", "draw_graph_svg"]


def spring_layout(
    graph: CSRGraph,
    iterations: int = 80,
    seed: int = 0,
    sample_threshold: int = 1500,
    repulsion_samples: int = 400,
) -> np.ndarray:
    """Force-directed positions, one (x, y) row per vertex, in [0, 1]².

    Classic FR: repulsion k²/d between all pairs, attraction d²/k along
    edges, linearly cooling displacement cap.  Above
    ``sample_threshold`` vertices, repulsion per vertex is estimated
    against ``repulsion_samples`` random others (scaled up), keeping the
    layout O(n·s) per iteration.
    """
    n = graph.n_vertices
    rng = np.random.default_rng(seed)
    pos = rng.random((n, 2))
    if n <= 1:
        return pos
    k = 1.0 / np.sqrt(n)
    edges = graph.edge_array()
    temp = 0.12
    cool = temp / (iterations + 1)
    use_sampling = n > sample_threshold
    for __ in range(iterations):
        disp = np.zeros((n, 2))
        if use_sampling:
            sample = rng.choice(n, size=repulsion_samples, replace=False)
            delta = pos[:, None, :] - pos[sample][None, :, :]
            dist = np.sqrt((delta ** 2).sum(axis=2)) + 1e-9
            force = (k * k / dist) * (n / repulsion_samples)
            disp += (delta / dist[:, :, None] * force[:, :, None]).sum(axis=1)
        else:
            delta = pos[:, None, :] - pos[None, :, :]
            dist = np.sqrt((delta ** 2).sum(axis=2)) + 1e-9
            np.fill_diagonal(dist, np.inf)
            force = k * k / dist
            disp += (delta / dist[:, :, None] * force[:, :, None]).sum(axis=1)
        if len(edges):
            d = pos[edges[:, 0]] - pos[edges[:, 1]]
            dist = np.sqrt((d ** 2).sum(axis=1)) + 1e-9
            pull = (dist / k)[:, None] * d / dist[:, None]
            np.add.at(disp, edges[:, 0], -pull)
            np.add.at(disp, edges[:, 1], pull)
        length = np.sqrt((disp ** 2).sum(axis=1)) + 1e-9
        capped = np.minimum(length, temp)
        pos += disp / length[:, None] * capped[:, None]
        temp = max(temp - cool, 1e-4)
    pos -= pos.min(axis=0)
    span = pos.max(axis=0)
    span[span == 0] = 1.0
    return pos / span


def draw_graph_svg(
    graph: CSRGraph,
    pos: np.ndarray,
    colors: Optional[np.ndarray] = None,
    values: Optional[np.ndarray] = None,
    size: int = 640,
    node_radius: float = 3.0,
    edge_opacity: float = 0.25,
    path: Optional[Union[str, Path]] = None,
) -> str:
    """Node-link SVG of a positioned graph.

    Vertices are coloured explicitly (``colors``, (n, 3) floats) or via
    the intensity ramp over ``values``; default is a neutral blue-grey.
    """
    if colors is None:
        if values is not None:
            colors = intensity_ramp(np.asarray(values, dtype=np.float64))
        else:
            colors = np.tile(
                np.array([0.35, 0.45, 0.65]), (graph.n_vertices, 1)
            )
    margin = 4 + node_radius
    scale = size - 2 * margin
    canvas = SVGCanvas(size, size)
    xy = pos * scale + margin
    for u, v in graph.edges():
        canvas.line(
            xy[u, 0], xy[u, 1], xy[v, 0], xy[v, 1],
            stroke=(0.5, 0.5, 0.5), stroke_width=0.5, opacity=edge_opacity,
        )
    for v in range(graph.n_vertices):
        canvas.circle(
            xy[v, 0], xy[v, 1], node_radius,
            fill=tuple(colors[v]), stroke=None, stroke_width=0.0,
        )
    svg = canvas.to_string()
    if path is not None:
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(svg)
    return svg
