"""Shim for toolchains without PEP 660 editable-install support.

All metadata lives in pyproject.toml; ``pip install -e .`` uses it
directly on modern setuptools.  This file only enables
``python setup.py develop`` on older environments missing the ``wheel``
package.
"""

from setuptools import setup

setup()
