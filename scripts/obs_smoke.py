#!/usr/bin/env python
"""CI smoke test for repro.obs: trace a real CLI run, scrape /metrics.

Four legs, all against subprocesses (so the instrumentation is proven
end to end, not just in-process):

1. ``repro terrain --trace trace.jsonl`` on a tiny edge list — assert
   the trace is schema-valid JSONL, covers every pipeline stage plus
   cache get/put events, nests spans under the ``cli.terrain`` root,
   and converts to loadable Chrome ``trace_event`` JSON.
2. ``repro serve`` with ``--trace`` — scrape ``GET /metrics`` and
   assert the Prometheus exposition parses and carries the core metric
   families (cache hits/misses, HTTP latency histogram, uptime gauge),
   and that ``/stats`` exposes the span rollup section and every
   response carries an ``X-Request-Id``.
3. ``repro prof -- terrain ...`` — assert the CLI profiler passthrough
   writes a non-empty ``.collapsed`` stack file and a well-formed
   flamegraph ``.svg``.
4. The profiling/debug surfaces off a booted server: ``/dash`` renders
   the HTML dashboard with sparklines, ``/debug/prof`` returns both the
   flamegraph SVG and collapsed text, ``/debug/slow`` returns the
   exemplar store JSON.

Exit code 0 on success.  Usage::

    PYTHONPATH=src python scripts/obs_smoke.py        # all legs
    PYTHONPATH=src python scripts/obs_smoke.py prof   # prof legs only
"""

import http.client
import json
import os
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

REQUIRED_SPAN_KEYS = {"name", "id", "parent", "ts_us", "dur_us", "pid", "tid", "attrs"}
REQUIRED_STAGES = {
    "stage.source", "stage.field", "stage.tree",
    "stage.display", "stage.layout", "stage.heightfield",
}
REQUIRED_FAMILIES = {
    "repro_cache_hits_total",
    "repro_cache_misses_total",
    "repro_http_responses_total",
    "repro_http_request_seconds",
    "repro_serve_uptime_seconds",
}


def get(port, url, headers=None, timeout=120):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request("GET", url, headers=headers or {})
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


def child_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    return env


def wait_for_server(proc, boot_timeout=60):
    """Read the listening banner, then poll ``/healthz`` with bounded
    retries — failing fast with the child's output if the server dies
    during boot instead of hanging until the timeout."""
    line = proc.stdout.readline()
    if not line:
        proc.wait(timeout=10)
        raise AssertionError(
            f"server exited before its banner (rc={proc.returncode})"
        )
    print(f"[server] {line.rstrip()}")
    match = re.search(r"http://[\d.]+:(\d+)", line)
    assert match, f"no listening banner in: {line!r}"
    port = int(match.group(1))
    deadline = time.time() + boot_timeout
    attempt = 0
    last_error = "no probe ran"
    while time.time() < deadline:
        if proc.poll() is not None:
            tail = (proc.stdout.read() or "").strip()
            raise AssertionError(
                f"server died during boot (rc={proc.returncode}): {tail}"
            )
        attempt += 1
        try:
            status, _, _ = get(port, "/healthz", timeout=5)
            if status == 200:
                return port
            last_error = f"/healthz -> {status}"
        except OSError as exc:
            last_error = repr(exc)
        time.sleep(min(0.05 * attempt, 1.0))
    raise AssertionError(
        f"server never became healthy: {attempt} probes over "
        f"{boot_timeout}s (last: {last_error})"
    )


def check_trace(tmp: Path, edge_list: Path) -> None:
    from repro.obs import trace as obs_trace

    trace_path = tmp / "trace.jsonl"
    out_png = tmp / "terrain.png"
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro", "terrain",
            "--edge-list", str(edge_list),
            "--measure", "kcore",
            "--resolution", "32", "--width", "64", "--height", "48",
            "-o", str(out_png),
            "--trace", str(trace_path),
        ],
        env=child_env(), cwd=str(REPO),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
    )
    assert proc.returncode == 0, proc.stdout.decode(errors="replace")
    assert out_png.exists(), "terrain render missing"

    records = obs_trace.read_jsonl(trace_path)
    assert records, "trace file is empty"
    by_id = {}
    for record in records:
        missing = REQUIRED_SPAN_KEYS - set(record)
        assert not missing, f"span record missing {missing}: {record}"
        by_id[record["id"]] = record
    names = {r["name"] for r in records}
    assert REQUIRED_STAGES <= names, f"stages missing: {REQUIRED_STAGES - names}"
    assert "cache.get" in names and "cache.put" in names, names
    print(f"[ok] trace covers {sorted(names)}")

    roots = [r for r in records if r["parent"] is None]
    assert [r["name"] for r in roots] == ["cli.terrain"], roots
    for record in records:
        if record["parent"] is not None:
            assert record["parent"] in by_id, f"orphan span {record}"
    print(f"[ok] {len(records)} spans, single cli.terrain root, no orphans")

    chrome_path = tmp / "trace.chrome.json"
    trace = obs_trace.chrome_trace_from_jsonl(trace_path, chrome_path)
    reloaded = json.loads(chrome_path.read_text())
    assert reloaded["traceEvents"] == trace["traceEvents"]
    for event in reloaded["traceEvents"]:
        assert event["ph"] == "X" and event["dur"] >= 0, event
    print(f"[ok] Chrome trace: {len(reloaded['traceEvents'])} events")


def check_metrics(tmp: Path, edge_list: Path) -> None:
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--datasets", "",
            "--edge-list", f"toy={edge_list}",
            "--measures", "kcore",
            "--tile-size", "16", "--levels", "2",
            "--trace", str(tmp / "serve_trace.jsonl"),
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=child_env(),
    )
    try:
        port = wait_for_server(proc)

        # Generate some traffic: a tile build, a 404.
        status, headers, _ = get(port, "/t/toy/kcore/0/0/0")
        assert status == 200, status
        assert headers.get("X-Request-Id"), "tile response lacks X-Request-Id"
        status, headers, _ = get(port, "/t/toy/kcore/9/0/0")
        assert status == 404 and headers.get("X-Request-Id")
        print("[ok] X-Request-Id on 200 and 404 responses")

        status, headers, body = get(port, "/metrics")
        assert status == 200, status
        assert headers["Content-Type"].startswith("text/plain"), headers
        text = body.decode()
        families = set()
        for line in text.splitlines():
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split(" ", 3)
                assert kind in ("counter", "gauge", "histogram"), line
                families.add(name)
            elif line and not line.startswith("#"):
                assert re.fullmatch(
                    r'[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? \S+', line
                ), f"bad exposition line: {line!r}"
        missing = REQUIRED_FAMILIES - families
        assert not missing, f"metric families missing: {missing}"
        assert 'repro_http_request_seconds_bucket{le="+Inf"}' in text
        assert "repro_tiles_served_total" in text
        print(f"[ok] /metrics exposes {len(families)} families incl. core set")

        status, _, body = get(port, "/stats")
        stats = json.loads(body)
        assert "spans" in stats, sorted(stats)
        assert "http.request" in stats["spans"], stats["spans"].keys()
        assert stats["uptime_s"] >= 0
        print(f"[ok] /stats span rollup: {sorted(stats['spans'])}")
        return
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()


def check_cli_prof(tmp: Path, edge_list: Path) -> None:
    """``repro prof`` passthrough: profile a real terrain run, check
    both artifacts."""
    out_base = tmp / "prof_run"
    out_png = tmp / "prof_terrain.png"
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro", "prof",
            "-o", str(out_base), "--hz", "97", "--",
            "terrain",
            "--edge-list", str(edge_list),
            "--measure", "kcore",
            "--resolution", "32", "--width", "64", "--height", "48",
            "-o", str(out_png),
        ],
        env=child_env(), cwd=str(REPO),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
    )
    output = proc.stdout.decode(errors="replace")
    assert proc.returncode == 0, output
    assert out_png.exists(), "profiled terrain render missing"
    collapsed = out_base.with_suffix(".collapsed")
    svg = out_base.with_suffix(".svg")
    assert collapsed.exists() and svg.exists(), output
    lines = collapsed.read_text().strip().splitlines()
    assert lines, "collapsed profile is empty"
    for line in lines:
        stack, _, count = line.rpartition(" ")
        assert stack and count.isdigit(), f"bad collapsed line: {line!r}"
    import xml.etree.ElementTree as ET

    root = ET.fromstring(svg.read_text())
    assert root.tag.endswith("svg"), root.tag
    print(f"[ok] repro prof: {len(lines)} collapsed stacks + flamegraph SVG")


def check_serve_prof(tmp: Path, edge_list: Path) -> None:
    """Profiling/debug surfaces off a booted server: /dash, /debug/prof
    (svg + collapsed), /debug/slow."""
    import xml.etree.ElementTree as ET

    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--datasets", "",
            "--edge-list", f"toy={edge_list}",
            "--measures", "kcore",
            "--tile-size", "16", "--levels", "2",
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=child_env(),
    )
    try:
        port = wait_for_server(proc)

        # Traffic so the dashboard has something to chart.
        status, _, _ = get(port, "/t/toy/kcore/0/0/0")
        assert status == 200, status

        status, headers, body = get(port, "/dash")
        assert status == 200, status
        assert headers["Content-Type"].startswith("text/html"), headers
        page = body.decode()
        assert "<svg" in page, "dashboard has no sparklines"
        assert "/debug/prof" in page and "/debug/slow" in page, "no links"
        print(f"[ok] /dash renders ({len(page)} bytes, sparklines inline)")

        status, headers, body = get(port, "/debug/prof?seconds=1")
        assert status == 200, status
        assert headers["Content-Type"].startswith("image/svg"), headers
        root = ET.fromstring(body.decode())
        assert root.tag.endswith("svg"), root.tag
        print("[ok] /debug/prof?seconds=1 -> flamegraph SVG")

        status, headers, body = get(
            port, "/debug/prof?seconds=1&format=collapsed"
        )
        assert status == 200, status
        assert headers["Content-Type"].startswith("text/plain"), headers
        print("[ok] /debug/prof?format=collapsed -> text")

        status, _, body = get(port, "/debug/slow")
        assert status == 200, status
        slow = json.loads(body)
        assert "threshold_s" in slow and "exemplars" in slow, sorted(slow)
        print(f"[ok] /debug/slow: {slow['observed']} observed, "
              f"{slow['captured']} captured")
        return
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()


def main(argv=None) -> int:
    from repro.graph import from_edges
    from repro.graph.io import write_edge_list

    argv = sys.argv[1:] if argv is None else argv
    leg = argv[0] if argv else "all"
    assert leg in ("all", "trace", "prof"), f"unknown leg {leg!r}"

    tmp = Path(tempfile.mkdtemp(prefix="repro-obs-smoke-"))
    graph = from_edges(
        [(i, j) for i in range(6) for j in range(i + 1, 6)]
        + [(5, 6), (6, 7), (7, 8)]
    )
    edge_list = tmp / "toy.txt"
    write_edge_list(graph, edge_list)

    if leg in ("all", "trace"):
        check_trace(tmp, edge_list)
        check_metrics(tmp, edge_list)
    if leg in ("all", "prof"):
        check_cli_prof(tmp, edge_list)
        check_serve_prof(tmp, edge_list)
    print(f"obs smoke ({leg}): healthy")
    return 0


if __name__ == "__main__":
    sys.exit(main())
