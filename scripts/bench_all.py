#!/usr/bin/env python
"""Run every benchmark file and consolidate a PR-level perf ledger.

Each ``benchmarks/bench_*.py`` runs in its own pytest process (so one
bench's failure or import problem can't sink the rest) with the caller's
environment — set ``REPRO_BENCH_TINY=1`` for CI-smoke sizes and
``REPRO_ACCEL`` to pin a kernel backend.  Every bench subprocess also
runs with ``$REPRO_TRACE`` pointed at a per-bench JSONL sink under
``benchmarks/out/``, so repro.obs spans from the instrumented layers
are captured without any bench opting in.  Results land in
``BENCH_PR10.json``:

* ``benches`` — per-file wall time and exit status;
* ``speedups`` — the naive/vector/native kernel speedup columns and the
  sharded-vs-single dist scaling curves (merged from
  ``benchmarks/out/accel_*.json`` and ``benchmarks/out/dist_*.json``);
  the native columns carry the PR 7 floors (≥10× over naive, ≥4× over
  vector for tree build at 1e5 edges), asserted inside
  ``bench_table2_construction.py`` when a toolchain exists;
* ``span_rollups`` — per-span-name p50/p95/max/total ms over all spans
  traced across the run (see :func:`repro.obs.trace.rollup`);
* ``env`` — the knobs that shaped the run, including the host
  fingerprint (see :func:`repro.obs.costs.host_fingerprint`) so
  ``scripts/bench_diff.py`` can refuse cross-host comparisons.

Future PRs diff this file against their own run with
``scripts/bench_diff.py`` to keep a perf trajectory.

Usage::

    PYTHONPATH=src python scripts/bench_all.py              # everything
    PYTHONPATH=src python scripts/bench_all.py --only accel # filter
    REPRO_BENCH_TINY=1 python scripts/bench_all.py          # smoke sizes
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"
OUT_DIR = BENCH_DIR / "out"

sys.path.insert(0, str(REPO_ROOT / "src"))  # for repro.obs.trace.rollup


def run_bench(path: Path, pytest_args: list, trace_path: Path) -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH") else src
    )
    # Fresh per-bench trace sink: repro.obs enables itself in the child
    # when $REPRO_TRACE is set (see repro/obs/trace.py).
    trace_path.unlink(missing_ok=True)
    env["REPRO_TRACE"] = str(trace_path)
    t0 = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-q", str(path)] + pytest_args,
        cwd=str(REPO_ROOT),
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )
    seconds = time.perf_counter() - t0
    tail = proc.stdout.decode(errors="replace").strip().splitlines()[-1:]
    return {
        "seconds": round(seconds, 3),
        "exit_code": proc.returncode,
        "summary": tail[0] if tail else "",
    }


def _native_available() -> bool:
    """Whether the native kernel tier compiled on this host (the ledger
    records it so floor columns are interpretable after the fact)."""
    try:
        from repro.accel import native

        return native.available()
    except Exception:
        return False


def collect_speedups(not_before: float) -> dict:
    """Speedup sidecars written by *this* run (mtime filter keeps stale
    numbers from earlier runs — different env, different filters — out
    of the ledger).  Two families: ``accel_*`` (vector-vs-naive kernel
    speedups) and ``dist_*`` (sharded-vs-single scaling curves)."""
    speedups = {}
    for pattern in ("accel_*.json", "dist_*.json"):
        for path in sorted(OUT_DIR.glob(pattern)):
            if path.stat().st_mtime < not_before:
                continue
            try:
                speedups[path.stem] = json.loads(path.read_text())
            except ValueError:
                speedups[path.stem] = {"error": "unparseable sidecar"}
    return speedups


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--only", default=None, metavar="SUBSTRING",
        help="run only bench files whose name contains SUBSTRING",
    )
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_PR10.json"),
        help="consolidated ledger path (default: %(default)s)",
    )
    parser.add_argument(
        "pytest_args", nargs="*",
        help="extra arguments passed through to each pytest run",
    )
    args = parser.parse_args(argv)

    files = sorted(BENCH_DIR.glob("bench_*.py"))
    if args.only:
        files = [f for f in files if args.only in f.name]
    if not files:
        print("no benchmark files matched", file=sys.stderr)
        return 2

    OUT_DIR.mkdir(parents=True, exist_ok=True)
    started = time.time()
    benches = {}
    traces = []
    failed = []
    for path in files:
        print(f"[bench_all] {path.name} ...", flush=True)
        trace_path = OUT_DIR / f"trace_{path.stem}.jsonl"
        result = run_bench(path, args.pytest_args, trace_path)
        benches[path.name] = result
        if trace_path.exists():
            traces.append(trace_path)
        status = "ok" if result["exit_code"] == 0 else "FAIL"
        print(
            f"[bench_all] {path.name}: {status} in {result['seconds']:.1f}s "
            f"({result['summary']})",
            flush=True,
        )
        if result["exit_code"] != 0:
            failed.append(path.name)

    from repro.obs import costs as obs_costs
    from repro.obs import trace as obs_trace

    records = []
    for trace_path in traces:
        try:
            records.extend(obs_trace.read_jsonl(trace_path))
        except ValueError as exc:
            print(f"[bench_all] skipping bad trace: {exc}", file=sys.stderr)

    ledger = {
        "benches": benches,
        "speedups": collect_speedups(not_before=started - 1.0),
        "span_rollups": obs_trace.rollup(records),
        "env": {
            "tiny": os.environ.get("REPRO_BENCH_TINY", "") not in ("", "0"),
            "accel": os.environ.get("REPRO_ACCEL", "auto") or "auto",
            "native_available": _native_available(),
            "python": sys.version.split()[0],
            "host": obs_costs.host_fingerprint(),
        },
        "total_seconds": round(sum(b["seconds"] for b in benches.values()), 3),
    }
    output = Path(args.output)
    output.write_text(json.dumps(ledger, indent=2, sort_keys=True) + "\n")
    print(f"[bench_all] wrote {output} ({len(benches)} benches)")
    if failed:
        print(f"[bench_all] failures: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
