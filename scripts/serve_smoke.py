#!/usr/bin/env python
"""CI smoke test: boot ``repro serve`` for real and curl every endpoint.

Generates a tiny graph + edit log, launches the CLI server as a
subprocess on an ephemeral port, then asserts over plain HTTP:

* ``/datasets``, ``/healthz``, ``/stats`` answer 200 with sane JSON;
* a tile GET answers 200 with a parseable binary tile and a strong
  ETag, and revalidating with ``If-None-Match`` answers 304;
* ``/peaks`` and ``/hit`` answer 200 with the planted structure;
* ``/treemap.svg`` and ``/profile.svg`` answer SVG;
* ``/stream/smoke`` pushes at least one SSE frame and finishes.

Exit code 0 on success.  Usage::

    PYTHONPATH=src python scripts/serve_smoke.py
"""

import http.client
import json
import os
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))


def get(port, url, headers=None, timeout=120):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request("GET", url, headers=headers or {})
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


def wait_for_server(proc, boot_timeout=60):
    """Read the listening banner, then poll ``/healthz`` with bounded
    retries — failing fast with the child's output if the server dies
    during boot instead of hanging until the timeout."""
    line = proc.stdout.readline()
    if not line:
        proc.wait(timeout=10)
        raise AssertionError(
            f"server exited before its banner (rc={proc.returncode})"
        )
    print(f"[server] {line.rstrip()}")
    match = re.search(r"http://[\d.]+:(\d+)", line)
    assert match, f"no listening banner in: {line!r}"
    port = int(match.group(1))
    deadline = time.time() + boot_timeout
    attempt = 0
    last_error = "no probe ran"
    while time.time() < deadline:
        if proc.poll() is not None:
            tail = (proc.stdout.read() or "").strip()
            raise AssertionError(
                f"server died during boot (rc={proc.returncode}): {tail}"
            )
        attempt += 1
        try:
            status, _, _ = get(port, "/healthz", timeout=5)
            if status == 200:
                return port
            last_error = f"/healthz -> {status}"
        except OSError as exc:
            last_error = repr(exc)
        time.sleep(min(0.05 * attempt, 1.0))
    raise AssertionError(
        f"server never became healthy: {attempt} probes over "
        f"{boot_timeout}s (last: {last_error})"
    )


def main() -> int:
    from repro.graph import from_edges
    from repro.graph.io import write_edge_list
    from repro.stream import SetScalar, write_edit_log

    tmp = Path(tempfile.mkdtemp(prefix="repro-serve-smoke-"))
    graph = from_edges(
        [(i, j) for i in range(6) for j in range(i + 1, 6)]
        + [(5, 6), (6, 7), (7, 8)]
    )
    edge_list = tmp / "toy.txt"
    write_edge_list(graph, edge_list)
    log = write_edit_log(
        tmp / "edits.jsonl", [[SetScalar(8, 4.0)]], times=[1.0]
    )

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--datasets", "",            # only the edge list below
            "--edge-list", f"toy={edge_list}",
            "--measures", "kcore",
            "--tile-size", "16", "--levels", "2",
            "--stream-log", f"smoke=toy:kcore:{log}",
            "--cache-dir", str(tmp / "cache"),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        port = wait_for_server(proc)

        status, _, body = get(port, "/datasets")
        assert status == 200, status
        doc = json.loads(body)
        assert doc["datasets"][0]["name"] == "toy"
        assert doc["sessions"] == ["smoke"]
        print("[ok] /datasets")

        tile_url = "/t/toy/kcore/0/0/1"
        status, headers, body = get(port, tile_url)
        assert status == 200 and body, (status, len(body))
        etag = headers["ETag"]
        assert re.fullmatch(r'"[0-9a-f]{32}"', etag), etag

        from repro.terrain.heightfield import Tile

        tile = Tile.from_bytes(body)
        assert tile.size == 16 and (tile.tx, tile.ty) == (0, 1)
        print(f"[ok] {tile_url} -> 200, ETag {etag}")

        status, headers, body = get(
            port, tile_url, headers={"If-None-Match": etag}
        )
        assert status == 304 and body == b"", (status, body)
        assert headers["ETag"] == etag
        print(f"[ok] {tile_url} revalidation -> 304")

        status, _, _ = get(port, "/t/toy/kcore/9/0/0")
        assert status == 404, status
        print("[ok] out-of-range tile -> 404")

        status, _, body = get(port, "/peaks?dataset=toy&measure=kcore")
        assert status == 200
        peaks = json.loads(body)["peaks"]
        assert peaks[0]["alpha"] == 5.0 and peaks[0]["size"] == 6, peaks
        print("[ok] /peaks (K6 is the 5-core)")

        status, _, body = get(port, "/hit?dataset=toy&measure=kcore&x=0&y=0")
        assert status == 200 and json.loads(body)["node"] is not None
        print("[ok] /hit")

        for url in (
            "/treemap.svg?dataset=toy&measure=kcore",
            "/profile.svg?dataset=toy&measure=kcore",
        ):
            status, headers, body = get(port, url)
            assert status == 200 and body.startswith(b"<svg"), url
            print(f"[ok] {url}")

        status, headers, body = get(port, "/stream/smoke")
        assert status == 200
        assert headers["Content-Type"] == "text/event-stream"
        text = body.decode()
        assert "event: hello" in text
        assert "event: frame" in text
        assert "event: done" in text
        print("[ok] /stream/smoke (SSE hello/frame/done)")

        status, _, body = get(port, "/stats")
        stats = json.loads(body)
        assert stats["runner"]["builds"] >= 1
        assert "resil" in stats, sorted(stats)
        print(f"[ok] /stats: {stats['runner']}")

        # SIGTERM must drain: finish in-flight work and exit cleanly.
        proc.terminate()
        rc = proc.wait(timeout=30)
        assert rc == 0, f"SIGTERM drain exited rc={rc}"
        print("[ok] SIGTERM -> drained, clean exit")

        print("serve smoke: all endpoints healthy")
        return 0
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()


if __name__ == "__main__":
    sys.exit(main())
