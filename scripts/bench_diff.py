#!/usr/bin/env python
"""Diff two ``bench_all.py`` ledgers and gate on perf regressions.

Compares per-bench wall times and kernel/dist speedup columns between a
baseline ledger (e.g. the committed ``BENCH_PR10.json``) and a fresh
run, prints a per-metric delta table, and exits nonzero when any
regression exceeds the tolerance:

* metrics whose name contains ``seconds`` are lower-is-better — a
  regression is ``new > old * (1 + tolerance)``;
* metrics whose name contains ``speedup`` are higher-is-better — a
  regression is ``new < old / (1 + tolerance)``;
* everything else (span rollups, counts) is printed informationally
  and never fails the gate.

Wall times are only comparable on the same machine, so ledgers carry a
host fingerprint (``env.host`` — see ``repro.obs.costs``).  When the
fingerprints differ (or either ledger predates them) the diff refuses
with exit code 3 unless ``--allow-cross-host`` is passed.

Exit codes: 0 ok, 1 regression past tolerance, 2 usage/IO error,
3 host-fingerprint mismatch.

Usage::

    PYTHONPATH=src python scripts/bench_diff.py BENCH_PR10.json fresh.json
    ... --tolerance 0.3 --allow-cross-host
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Informational-only span-rollup metrics would otherwise swamp the
# table; keep the top few by baseline total.
_MAX_ROLLUP_ROWS = 8


def load_ledger(path):
    """Parse a bench ledger; raises ValueError with a readable message."""
    p = Path(path)
    try:
        data = json.loads(p.read_text())
    except OSError as exc:
        raise ValueError(f"cannot read {p}: {exc}")
    except json.JSONDecodeError as exc:
        raise ValueError(f"{p} is not valid JSON: {exc}")
    if not isinstance(data, dict) or "benches" not in data:
        raise ValueError(f"{p} does not look like a bench_all ledger")
    return data


def _host_of(ledger):
    """The host fingerprint dict, or None for pre-PR10 ledgers."""
    env = ledger.get("env") or {}
    host = env.get("host")
    return host if isinstance(host, dict) else None


def hosts_match(old, new):
    """(comparable, reason) — comparable only when both fingerprints
    exist and agree on the fields that move wall time."""
    h_old, h_new = _host_of(old), _host_of(new)
    if h_old is None or h_new is None:
        which = "baseline" if h_old is None else "new ledger"
        return False, f"{which} has no host fingerprint (env.host)"
    for field in ("cpus", "platform", "machine", "python"):
        if h_old.get(field) != h_new.get(field):
            return False, (
                f"host mismatch on {field!r}: "
                f"{h_old.get(field)!r} vs {h_new.get(field)!r}"
            )
    return True, ""


def _flatten_speedups(speedups):
    """``speedups`` sidecars are nested dicts; flatten to dotted-path →
    number so columns line up across ledgers."""
    flat = {}

    def walk(prefix, node):
        if isinstance(node, dict):
            for key in sorted(node):
                walk(f"{prefix}.{key}" if prefix else str(key), node[key])
        elif isinstance(node, (int, float)) and not isinstance(node, bool):
            flat[prefix] = float(node)

    walk("", speedups or {})
    return flat


def _gather_metrics(ledger):
    """name → value for every gated or printed metric."""
    metrics = {}
    for name, bench in sorted((ledger.get("benches") or {}).items()):
        if isinstance(bench, dict) and "seconds" in bench:
            metrics[f"bench.{name}.seconds"] = float(bench["seconds"])
    for path, value in _flatten_speedups(ledger.get("speedups")).items():
        metrics[f"speedups.{path}"] = value
    total = ledger.get("total_seconds")
    if isinstance(total, (int, float)):
        metrics["total_seconds"] = float(total)
    return metrics


def _rollup_rows(old, new):
    """Informational span-rollup comparison (never gated): top baseline
    spans by total ms."""
    r_old = old.get("span_rollups") or {}
    r_new = new.get("span_rollups") or {}
    names = sorted(
        (n for n in r_old if n in r_new),
        key=lambda n: -(r_old[n].get("total_ms") or 0),
    )[:_MAX_ROLLUP_ROWS]
    return [
        (
            f"span.{name}.total_ms",
            float(r_old[name].get("total_ms") or 0),
            float(r_new[name].get("total_ms") or 0),
        )
        for name in names
    ]


def compare(old, new, tolerance=0.2):
    """Diff two parsed ledgers.

    Returns ``(rows, regressions)`` where each row is
    ``(name, old_value, new_value, delta_pct, verdict)`` and
    ``regressions`` lists the names that failed the gate.
    """
    m_old = _gather_metrics(old)
    m_new = _gather_metrics(new)
    rows = []
    regressions = []
    for name in sorted(set(m_old) & set(m_new)):
        v_old, v_new = m_old[name], m_new[name]
        delta = (v_new - v_old) / v_old * 100.0 if v_old else 0.0
        if "seconds" in name:
            bad = v_old > 0 and v_new > v_old * (1.0 + tolerance)
            verdict = "REGRESSION" if bad else "ok"
        elif "speedup" in name:
            bad = v_old > 0 and v_new < v_old / (1.0 + tolerance)
            verdict = "REGRESSION" if bad else "ok"
        else:
            bad = False
            verdict = "info"
        rows.append((name, v_old, v_new, delta, verdict))
        if bad:
            regressions.append(name)
    for name, v_old, v_new in _rollup_rows(old, new):
        delta = (v_new - v_old) / v_old * 100.0 if v_old else 0.0
        rows.append((name, v_old, v_new, delta, "info"))
    only_old = sorted(set(m_old) - set(m_new))
    only_new = sorted(set(m_new) - set(m_old))
    return rows, regressions, only_old, only_new


def _print_table(rows):
    if not rows:
        print("bench_diff: no shared metrics between the two ledgers")
        return
    width = max(len(r[0]) for r in rows)
    print(f"{'metric':<{width}}  {'old':>10}  {'new':>10}  {'delta':>8}  verdict")
    for name, v_old, v_new, delta, verdict in rows:
        print(
            f"{name:<{width}}  {v_old:>10.3f}  {v_new:>10.3f}  "
            f"{delta:>+7.1f}%  {verdict}"
        )


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("baseline", help="old ledger (e.g. BENCH_PR10.json)")
    parser.add_argument("candidate", help="new ledger to gate")
    parser.add_argument(
        "--tolerance", type=float, default=0.2, metavar="FRAC",
        help="allowed fractional slowdown before failing (default: 0.2)",
    )
    parser.add_argument(
        "--allow-cross-host", action="store_true",
        help="compare even when host fingerprints differ or are missing",
    )
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        print("bench_diff: --tolerance must be >= 0", file=sys.stderr)
        return 2

    try:
        old = load_ledger(args.baseline)
        new = load_ledger(args.candidate)
    except ValueError as exc:
        print(f"bench_diff: {exc}", file=sys.stderr)
        return 2

    comparable, reason = hosts_match(old, new)
    if not comparable and not args.allow_cross_host:
        print(
            f"bench_diff: refusing to compare — {reason}.  Wall times "
            "from different machines are not comparable; pass "
            "--allow-cross-host to diff anyway (informational only).",
            file=sys.stderr,
        )
        return 3
    if not comparable:
        print(f"bench_diff: WARNING — {reason}; diffing anyway "
              "(--allow-cross-host)", file=sys.stderr)

    rows, regressions, only_old, only_new = compare(
        old, new, tolerance=args.tolerance
    )
    _print_table(rows)
    if only_old:
        print(f"bench_diff: {len(only_old)} metric(s) only in baseline: "
              + ", ".join(only_old[:5])
              + ("..." if len(only_old) > 5 else ""))
    if only_new:
        print(f"bench_diff: {len(only_new)} metric(s) only in candidate: "
              + ", ".join(only_new[:5])
              + ("..." if len(only_new) > 5 else ""))
    if regressions:
        print(
            f"bench_diff: {len(regressions)} regression(s) past "
            f"{args.tolerance:.0%} tolerance: {', '.join(regressions)}",
            file=sys.stderr,
        )
        return 1
    print(f"bench_diff: ok — no regressions past {args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
