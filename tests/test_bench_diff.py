"""The perf-regression gate: scripts/bench_diff.py exit codes and
direction-aware metric comparison."""

import copy
import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_diff",
    Path(__file__).resolve().parent.parent / "scripts" / "bench_diff.py",
)
bench_diff = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_diff)


HOST = {"cpus": 4, "platform": "linux", "machine": "x86_64",
        "python": "3.12.0", "compiler": "cc 13"}


def ledger(**overrides):
    base = {
        "benches": {
            "bench_x.py": {"exit_code": 0, "seconds": 2.0, "summary": "ok"},
            "bench_y.py": {"exit_code": 0, "seconds": 4.0, "summary": "ok"},
        },
        "speedups": {"accel_table2": {"tree_speedup": 5.0}},
        "span_rollups": {
            "stage.tree": {"count": 3, "p50_ms": 10.0, "p95_ms": 20.0,
                           "max_ms": 25.0, "total_ms": 120.0},
        },
        "env": {"host": dict(HOST)},
        "total_seconds": 6.0,
    }
    base.update(overrides)
    return base


@pytest.fixture
def write(tmp_path):
    def _write(name, data):
        path = tmp_path / name
        path.write_text(json.dumps(data))
        return str(path)

    return _write


class TestGate:
    def test_identity_diff_passes(self, write):
        a = write("a.json", ledger())
        assert bench_diff.main([a, a]) == 0

    def test_twenty_percent_regression_fails(self, write, capsys):
        slow = ledger()
        slow["benches"]["bench_x.py"]["seconds"] = 2.5  # +25% > 20% tol
        rc = bench_diff.main(
            [write("a.json", ledger()), write("b.json", slow)]
        )
        assert rc == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "bench.bench_x.py.seconds" in captured.err

    def test_tolerance_is_configurable(self, write):
        slow = ledger()
        slow["benches"]["bench_x.py"]["seconds"] = 2.5
        args = [write("a.json", ledger()), write("b.json", slow)]
        assert bench_diff.main(args + ["--tolerance", "0.3"]) == 0
        assert bench_diff.main(args + ["--tolerance", "0.1"]) == 1

    def test_speedup_columns_gate_downward(self, write):
        worse = ledger()
        worse["speedups"]["accel_table2"]["tree_speedup"] = 3.0  # -40%
        rc = bench_diff.main(
            [write("a.json", ledger()), write("b.json", worse)]
        )
        assert rc == 1
        # Higher speedup is never a regression.
        better = ledger()
        better["speedups"]["accel_table2"]["tree_speedup"] = 50.0
        assert bench_diff.main(
            [write("a.json", ledger()), write("c.json", better)]
        ) == 0

    def test_faster_benches_pass(self, write):
        fast = ledger()
        fast["benches"]["bench_x.py"]["seconds"] = 0.5
        assert bench_diff.main(
            [write("a.json", ledger()), write("b.json", fast)]
        ) == 0


class TestHostFencing:
    def test_cross_host_refused(self, write):
        other = ledger()
        other["env"]["host"] = dict(HOST, cpus=64)
        rc = bench_diff.main(
            [write("a.json", ledger()), write("b.json", other)]
        )
        assert rc == 3

    def test_missing_fingerprint_refused(self, write):
        legacy = ledger(env={})
        assert bench_diff.main(
            [write("a.json", legacy), write("b.json", ledger())]
        ) == 3

    def test_allow_cross_host_compares_anyway(self, write):
        other = ledger()
        other["env"]["host"] = dict(HOST, cpus=64)
        other["benches"]["bench_x.py"]["seconds"] = 9.0
        rc = bench_diff.main([
            write("a.json", ledger()), write("b.json", other),
            "--allow-cross-host",
        ])
        assert rc == 1  # still gates, just without the host fence

    def test_compiler_differences_do_not_fence(self, write):
        """Only fields that move wall time fence the diff; the compiler
        banner is informational."""
        other = ledger()
        other["env"]["host"] = dict(HOST, compiler="cc 99")
        assert bench_diff.main(
            [write("a.json", ledger()), write("b.json", other)]
        ) == 0


class TestUsage:
    def test_missing_file_is_usage_error(self, write, tmp_path):
        a = write("a.json", ledger())
        assert bench_diff.main([a, str(tmp_path / "nope.json")]) == 2

    def test_not_a_ledger_is_usage_error(self, write, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]")
        assert bench_diff.main([write("a.json", ledger()), str(bad)]) == 2

    def test_negative_tolerance_rejected(self, write):
        a = write("a.json", ledger())
        assert bench_diff.main([a, a, "--tolerance", "-1"]) == 2


class TestCompare:
    def test_rows_and_regression_names(self):
        old, new = ledger(), copy.deepcopy(ledger())
        new["benches"]["bench_y.py"]["seconds"] = 10.0
        rows, regressions, only_old, only_new = bench_diff.compare(
            old, new, tolerance=0.2
        )
        assert regressions == ["bench.bench_y.py.seconds"]
        assert not only_old and not only_new
        named = {row[0]: row for row in rows}
        assert named["span.stage.tree.total_ms"][4] == "info"

    def test_committed_ledger_loads(self):
        """The ledger committed for CI must stay parseable with a host
        fingerprint, or the bench-regression job goes dark."""
        path = (
            Path(__file__).resolve().parent.parent / "BENCH_PR10.json"
        )
        committed = bench_diff.load_ledger(path)
        assert bench_diff._host_of(committed) is not None
