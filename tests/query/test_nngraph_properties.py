"""Property tests for NN-graph construction (hypothesis).

The satellite contract: k-NN graphs are *symmetrised correctly* — an
undirected edge exists iff at least one endpoint names the other among
its k nearest — and construction is *deterministic under seed* (same
points in, bit-identical CSR out; same generator seed, same table).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query import knn_graph, plant_query_table, radius_graph


def _points(n: int, d: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    # Distinct rows: ties in distance are broken by cKDTree internals,
    # so property tests keep points in general position by jittering a
    # grid (still deterministic).
    base = rng.uniform(-1.0, 1.0, (n, d))
    return base + np.arange(n)[:, None] * 1e-7


def _directed_knn(points: np.ndarray, k: int) -> set:
    """Brute-force directed k-NN pairs (u -> its k nearest others)."""
    out = set()
    for u in range(len(points)):
        d = np.linalg.norm(points - points[u], axis=1)
        d[u] = np.inf
        for v in np.argsort(d, kind="stable")[:k]:
            out.add((u, int(v)))
    return out


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(4, 40),
    d=st.integers(1, 4),
    k=st.integers(1, 6),
    seed=st.integers(0, 99),
)
def test_knn_symmetric_union_correct(n, d, k, seed):
    """Edge set == symmetrised union of directed k-NN lists."""
    k = min(k, n - 1)
    points = _points(n, d, seed)
    graph = knn_graph(points, k)
    directed = _directed_knn(points, k)
    expected = {
        (min(u, v), max(u, v)) for u, v in directed
    }
    actual = {(u, v) for u, v in graph.edges()}
    assert actual == expected
    # Symmetry is structural in CSR, but check the adjacency anyway.
    for u, v in list(actual)[:20]:
        assert graph.has_edge(u, v) and graph.has_edge(v, u)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(4, 40),
    d=st.integers(1, 3),
    k=st.integers(1, 5),
    seed=st.integers(0, 99),
)
def test_knn_deterministic(n, d, k, seed):
    """Same points -> bit-identical CSR arrays."""
    k = min(k, n - 1)
    points = _points(n, d, seed)
    a = knn_graph(points, k)
    b = knn_graph(points.copy(), k)
    assert np.array_equal(a.indptr, b.indptr)
    assert np.array_equal(a.indices, b.indices)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(3, 30),
    eps=st.floats(0.05, 2.0),
    seed=st.integers(0, 99),
)
def test_radius_graph_matches_bruteforce(n, eps, seed):
    points = _points(n, 2, seed)
    graph = radius_graph(points, eps)
    expected = {
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if np.linalg.norm(points[u] - points[v]) <= eps
    }
    assert {(u, v) for u, v in graph.edges()} == expected


@settings(max_examples=15, deadline=None)
@given(
    per_genus=st.integers(5, 40),
    seed=st.integers(0, 99),
)
def test_plant_table_deterministic_under_seed(per_genus, seed):
    a, ga = plant_query_table(per_genus=per_genus, seed=seed)
    b, gb = plant_query_table(per_genus=per_genus, seed=seed)
    assert np.array_equal(a, b)
    assert np.array_equal(ga, gb)
    c, __ = plant_query_table(per_genus=per_genus, seed=seed + 1)
    assert not np.array_equal(a, c)


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(6, 30),
    k=st.integers(1, 4),
    seed=st.integers(0, 99),
)
def test_knn_pipeline_composability(n, k, seed):
    """The k-NN graph feeds straight into a scalar pipeline: one value
    per row, graph over the same vertex set (Fig 11's workload)."""
    from repro.core import ScalarGraph, build_vertex_tree

    k = min(k, n - 1)
    points = _points(n, 3, seed)
    graph = knn_graph(points, k)
    assert graph.n_vertices == n
    tree = build_vertex_tree(ScalarGraph(graph, points[:, 0]))
    tree.validate()
