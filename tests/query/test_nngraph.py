"""Unit tests for NN-graph construction and the plant-query table."""

import numpy as np
import pytest

from repro.query import knn_graph, plant_query_table, radius_graph


class TestKnnGraph:
    def test_minimum_degree_k(self):
        rng = np.random.default_rng(0)
        points = rng.random((50, 3))
        g = knn_graph(points, k=4)
        assert g.n_vertices == 50
        # Symmetrised kNN: every vertex keeps at least its own k links.
        assert (g.degree() >= 4).all()

    def test_nearest_neighbor_is_edge(self):
        rng = np.random.default_rng(1)
        points = rng.random((30, 2))
        g = knn_graph(points, k=1)
        for v in range(30):
            d = np.linalg.norm(points - points[v], axis=1)
            d[v] = np.inf
            assert g.has_edge(v, int(d.argmin()))

    def test_invalid_k(self):
        points = np.zeros((5, 2))
        with pytest.raises(ValueError):
            knn_graph(points, k=0)
        with pytest.raises(ValueError):
            knn_graph(points, k=5)


class TestRadiusGraph:
    def test_pairs_within_eps(self):
        points = np.array([[0.0, 0], [0.1, 0], [5.0, 0]])
        g = radius_graph(points, eps=0.5)
        assert g.has_edge(0, 1)
        assert not g.has_edge(0, 2)
        assert g.n_vertices == 3

    def test_matches_bruteforce(self):
        rng = np.random.default_rng(2)
        points = rng.random((40, 2))
        eps = 0.2
        g = radius_graph(points, eps)
        for u in range(40):
            for v in range(u + 1, 40):
                close = np.linalg.norm(points[u] - points[v]) <= eps
                assert g.has_edge(u, v) == close


class TestPlantTable:
    def test_shapes(self):
        table, genus = plant_query_table(per_genus=40, seed=0)
        assert table.shape == (120, 5)
        assert np.bincount(genus).tolist() == [40, 40, 40]

    def test_deterministic(self):
        a, __ = plant_query_table(seed=3)
        b, __ = plant_query_table(seed=3)
        assert np.allclose(a, b)

    def test_blue_genus_separated(self):
        """Fig 11(i): genus 2 is well separated from the other two."""
        table, genus = plant_query_table(seed=0)
        g = knn_graph(table, k=5)
        cross = sum(
            1 for u, v in g.edges()
            if (genus[u] == 2) != (genus[v] == 2)
        )
        within_blue = sum(
            1 for u, v in g.edges() if genus[u] == 2 and genus[v] == 2
        )
        assert cross < 0.05 * within_blue

    def test_attribute0_more_separable(self):
        """Fig 11(iii): attribute 0 separates genera more than attr 1."""
        table, genus = plant_query_table(seed=0)

        def between_within_ratio(col):
            overall = table[:, col].var()
            within = np.mean(
                [table[genus == g0, col].var() for g0 in range(3)]
            )
            return (overall - within) / within

        assert between_within_ratio(0) > between_within_ratio(1)

    def test_red_nested_in_green_range(self):
        table, genus = plant_query_table(seed=0)
        red = table[genus == 0, 0]
        green = table[genus == 1, 0]
        assert red.min() > green.min()
        assert red.max() < green.max()
