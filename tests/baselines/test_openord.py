"""Unit tests for the simplified OpenOrd multilevel layout."""

import numpy as np
import pytest

from repro.baselines import coarsen, openord_layout, openord_svg
from repro.graph import from_edges
from repro.graph.generators import connected_caveman, erdos_renyi


class TestCoarsen:
    def test_shrinks_graph(self):
        g = erdos_renyi(100, 300, seed=0)
        coarse, mapping = coarsen(g, seed=0)
        assert coarse.n_vertices < g.n_vertices
        assert coarse.n_vertices >= g.n_vertices // 2
        assert len(mapping) == g.n_vertices
        assert mapping.max() == coarse.n_vertices - 1

    def test_mapping_preserves_adjacency(self):
        g = erdos_renyi(60, 150, seed=1)
        coarse, mapping = coarsen(g, seed=0)
        for u, v in g.edges():
            cu, cv = mapping[u], mapping[v]
            if cu != cv:
                assert coarse.has_edge(int(cu), int(cv))

    def test_deterministic(self):
        g = erdos_renyi(60, 150, seed=2)
        a = coarsen(g, seed=5)[1]
        b = coarsen(g, seed=5)[1]
        assert np.array_equal(a, b)


class TestLayout:
    def test_unit_square(self):
        g = erdos_renyi(200, 500, seed=3)
        pos = openord_layout(g, seed=0)
        assert pos.shape == (200, 2)
        assert pos.min() >= 0 and pos.max() <= 1

    def test_deterministic(self):
        g = erdos_renyi(120, 300, seed=4)
        assert np.allclose(openord_layout(g, seed=1), openord_layout(g, seed=1))

    def test_clusters_separate(self):
        g = connected_caveman(3, 10)
        pos = openord_layout(g, seed=0)
        blocks = [list(range(c * 10, (c + 1) * 10)) for c in range(3)]
        intra = np.mean([
            np.linalg.norm(pos[a] - pos[b])
            for bl in blocks for a in bl for b in bl if a < b
        ])
        inter = np.mean([
            np.linalg.norm(pos[a] - pos[b])
            for a in blocks[0] for b in blocks[1]
        ])
        assert intra < inter

    def test_small_graph_no_coarsening(self):
        g = from_edges([(0, 1), (1, 2)])
        pos = openord_layout(g, seed=0)
        assert pos.shape == (3, 2)


class TestSvg:
    def test_sizes_encode_second_measure(self, tmp_path):
        g = erdos_renyi(30, 60, seed=5)
        rng = np.random.default_rng(0)
        svg = openord_svg(
            g, values=rng.random(30), sizes=rng.random(30) * 10,
            size=320, path=tmp_path / "o.svg",
        )
        assert svg.count("<circle") == 30
        assert (tmp_path / "o.svg").exists()

    def test_uniform_size_fallback(self):
        g = erdos_renyi(20, 40, seed=6)
        svg = openord_svg(g, values=np.arange(20, dtype=float))
        assert 'r="2.60"' in svg
