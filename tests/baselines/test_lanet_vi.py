"""Unit tests for the LaNet-vi-style onion layout."""

import numpy as np
import pytest

from repro.baselines import lanet_vi_layout, lanet_vi_svg
from repro.graph import datasets
from repro.graph.generators import planted_cliques
from repro.measures import core_numbers


class TestLayout:
    def test_positions_and_core_returned(self):
        g = planted_cliques(100, 200, [8], seed=0)[0]
        pos, core = lanet_vi_layout(g, seed=0)
        assert pos.shape == (g.n_vertices, 2)
        assert np.array_equal(core, core_numbers(g))

    def test_denser_cores_more_central(self):
        g = planted_cliques(150, 300, [12], seed=1)[0]
        pos, core = lanet_vi_layout(g, seed=0)
        center = pos.mean(axis=0)
        r = np.linalg.norm(pos - center, axis=1)
        top = core == core.max()
        shallow = core <= 1
        assert r[top].mean() < r[shallow].mean()

    def test_deterministic(self):
        g = planted_cliques(80, 160, [8], seed=2)[0]
        a, __ = lanet_vi_layout(g, seed=3)
        b, __ = lanet_vi_layout(g, seed=3)
        assert np.allclose(a, b)

    def test_unit_square(self):
        g = datasets.load("ppi").graph
        pos, __ = lanet_vi_layout(g, seed=0)
        assert pos.min() >= 0 and pos.max() <= 1


class TestSvg:
    def test_renders(self, tmp_path):
        g = planted_cliques(60, 120, [7], seed=3)[0]
        svg = lanet_vi_svg(g, size=320, path=tmp_path / "l.svg")
        assert svg.count("<circle") == g.n_vertices
        assert (tmp_path / "l.svg").exists()
