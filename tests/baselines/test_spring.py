"""Unit tests for the Fruchterman–Reingold spring layout."""

import numpy as np
import pytest

from repro.baselines import draw_graph_svg, spring_layout
from repro.graph import from_edges
from repro.graph.generators import connected_caveman, erdos_renyi


class TestSpringLayout:
    def test_output_in_unit_square(self):
        g = erdos_renyi(40, 90, seed=0)
        pos = spring_layout(g, iterations=30, seed=0)
        assert pos.shape == (40, 2)
        assert pos.min() >= 0.0 and pos.max() <= 1.0

    def test_deterministic(self):
        g = erdos_renyi(30, 60, seed=1)
        a = spring_layout(g, iterations=20, seed=5)
        b = spring_layout(g, iterations=20, seed=5)
        assert np.allclose(a, b)

    def test_edges_shorter_than_non_edges(self):
        """Connected pairs should end closer than random pairs."""
        g = connected_caveman(4, 6)
        pos = spring_layout(g, iterations=120, seed=0)
        edge_d = [
            np.linalg.norm(pos[u] - pos[v]) for u, v in g.edges()
        ]
        rng = np.random.default_rng(0)
        non_edges = []
        while len(non_edges) < 100:
            u, v = rng.integers(0, g.n_vertices, 2)
            if u != v and not g.has_edge(int(u), int(v)):
                non_edges.append(np.linalg.norm(pos[u] - pos[v]))
        assert np.mean(edge_d) < np.mean(non_edges)

    def test_cliques_form_clusters(self):
        g = connected_caveman(3, 8)
        pos = spring_layout(g, iterations=120, seed=2)
        # Mean intra-clique distance < mean inter-clique distance.
        cliques = [list(range(c * 8, (c + 1) * 8)) for c in range(3)]
        intra = np.mean([
            np.linalg.norm(pos[a] - pos[b])
            for cl in cliques for a in cl for b in cl if a < b
        ])
        inter = np.mean([
            np.linalg.norm(pos[a] - pos[b])
            for a in cliques[0] for b in cliques[1]
        ])
        assert intra < inter

    def test_single_vertex(self):
        g = from_edges([], nodes=[0])
        pos = spring_layout(g, iterations=5, seed=0)
        assert pos.shape == (1, 2)

    def test_sampled_repulsion_path(self):
        g = erdos_renyi(1600, 3000, seed=3)
        pos = spring_layout(
            g, iterations=3, seed=0, sample_threshold=1500,
            repulsion_samples=50,
        )
        assert np.isfinite(pos).all()


class TestDrawGraphSvg:
    def test_counts(self):
        g = erdos_renyi(10, 20, seed=4)
        pos = spring_layout(g, iterations=5, seed=0)
        svg = draw_graph_svg(g, pos)
        assert svg.count("<circle") == 10
        assert svg.count("<line") == g.n_edges

    def test_value_coloring(self):
        g = erdos_renyi(10, 20, seed=4)
        pos = spring_layout(g, iterations=5, seed=0)
        values = np.arange(10, dtype=float)
        svg = draw_graph_svg(g, pos, values=values)
        assert "#e6261a" in svg  # top value rendered red

    def test_save(self, tmp_path):
        g = from_edges([(0, 1)])
        pos = np.array([[0.0, 0.0], [1.0, 1.0]])
        draw_graph_svg(g, pos, path=tmp_path / "g.svg")
        assert (tmp_path / "g.svg").exists()
