"""Unit tests for the CSV density-plot baseline."""

import numpy as np
import pytest

from repro.baselines import csv_order, csv_plot_svg
from repro.graph import from_edges
from repro.graph.generators import planted_cliques
from repro.measures import core_numbers


class TestCsvOrder:
    def test_is_permutation(self):
        g = planted_cliques(50, 100, [6], seed=0)[0]
        order = csv_order(g, core_numbers(g).astype(float))
        assert sorted(order.tolist()) == list(range(g.n_vertices))

    def test_starts_at_global_max(self):
        g = from_edges([(0, 1), (1, 2), (2, 3)])
        values = np.array([1.0, 9.0, 2.0, 3.0])
        order = csv_order(g, values)
        assert order[0] == 1

    def test_dense_subgraph_contiguous(self):
        """A planted clique's vertices occupy one contiguous run."""
        g, cliques = planted_cliques(80, 150, [10], seed=1)
        kc = core_numbers(g).astype(float)
        order = csv_order(g, kc)
        positions = sorted(
            np.flatnonzero(np.isin(order, cliques[0])).tolist()
        )
        assert positions == list(range(positions[0], positions[0] + 10))

    def test_disconnected_graph_covered(self):
        g = from_edges([(0, 1), (2, 3)])
        order = csv_order(g, np.array([4.0, 3.0, 2.0, 1.0]))
        assert sorted(order.tolist()) == [0, 1, 2, 3]


class TestCsvPlotSvg:
    def test_renders_bars(self, tmp_path):
        g = planted_cliques(40, 80, [6], seed=2)[0]
        svg = csv_plot_svg(
            g, core_numbers(g).astype(float), path=tmp_path / "c.svg"
        )
        # One bar per vertex plus the background rect.
        assert svg.count("<rect") == g.n_vertices + 1
        assert (tmp_path / "c.svg").exists()

    def test_axis_labels(self):
        g = from_edges([(0, 1)])
        svg = csv_plot_svg(g, np.array([1.0, 2.0]))
        assert "CSV order" in svg
        assert "max=2" in svg
