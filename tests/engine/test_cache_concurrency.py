"""ArtifactCache under concurrency: locking, LRU bound, eviction."""

import threading

import numpy as np
import pytest

from repro.engine import ArtifactCache, artifact_nbytes
from repro.core.scalar_tree import ScalarTree


def array_kb(fill: float) -> np.ndarray:
    return np.full(128, fill)  # 1 KiB of float64


class TestSizeAccounting:
    def test_array_nbytes(self):
        assert artifact_nbytes(array_kb(0.0)) == 1024

    def test_tree_nbytes_counts_backing_arrays(self):
        tree = ScalarTree(
            np.array([-1, 0, 1], dtype=np.int64),
            np.array([3.0, 2.0, 1.0]),
        )
        assert artifact_nbytes(tree) == 3 * 8 + 3 * 8

    def test_fallback_for_opaque_objects(self):
        assert artifact_nbytes(object()) > 0

    def test_memory_bytes_tracks_contents(self):
        cache = ArtifactCache()
        cache.put("a", array_kb(1.0))
        cache.put("b", array_kb(2.0))
        assert cache.memory_bytes == 2048
        cache.clear()
        assert cache.memory_bytes == 0


class TestLRUBound:
    def test_unbounded_by_default(self):
        cache = ArtifactCache()
        for i in range(100):
            cache.put(f"k{i}", array_kb(i))
        assert len(cache) == 100
        assert cache.stats["evictions"] == 0

    def test_evicts_least_recently_used(self):
        cache = ArtifactCache(max_memory_bytes=3 * 1024)
        for i in range(3):
            cache.put(f"k{i}", array_kb(i))
        cache.get("k0")                      # refresh k0: k1 is now LRU
        cache.put("k3", array_kb(3.0))       # over budget -> evict k1
        assert cache.get("k1") is None
        assert cache.get("k0") is not None
        assert cache.get("k3") is not None
        assert cache.stats["evictions"] == 1
        assert cache.memory_bytes <= 3 * 1024

    def test_oversized_single_entry_is_kept(self):
        cache = ArtifactCache(max_memory_bytes=100)
        value = cache.put("big", array_kb(1.0))
        assert cache.get("big") is value  # never evict the live insert

    def test_replacing_a_key_does_not_double_count(self):
        cache = ArtifactCache(max_memory_bytes=10 * 1024)
        for _ in range(20):
            cache.put("same", array_kb(1.0))
        assert cache.memory_bytes == 1024

    def test_eviction_spares_disk_tier(self, tmp_path):
        cache = ArtifactCache(tmp_path, max_memory_bytes=2 * 1024)
        first = cache.put("first", array_kb(1.0))
        for i in range(4):
            cache.put(f"filler{i}", array_kb(i))
        assert "first" not in cache._memory  # evicted from memory
        reloaded = cache.get("first")        # ...but reloads from disk
        assert np.array_equal(reloaded, first)
        assert cache.stats["disk_hits"] >= 1

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            ArtifactCache(max_memory_bytes=-1)


class TestThreadSafety:
    def test_concurrent_get_put_consistent(self):
        cache = ArtifactCache(max_memory_bytes=64 * 1024)
        errors = []
        barrier = threading.Barrier(8)

        def worker(seed):
            try:
                barrier.wait(timeout=30)
                rng = np.random.default_rng(seed)
                for i in range(300):
                    key = f"k{rng.integers(0, 40)}"
                    if rng.random() < 0.5:
                        cache.put(key, array_kb(float(seed)), disk=False)
                    else:
                        value = cache.get(key)
                        if value is not None:
                            assert value.shape == (128,)
                if seed % 2:
                    cache.clear()
            except Exception as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(seed,)) for seed in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        # Accounting survived the stampede: recomputing from scratch
        # matches the running total.
        with cache._lock:
            expected = sum(
                artifact_nbytes(v) for v in cache._memory.values()
            )
            assert cache._memory_bytes == expected

    def test_stats_counts_are_plausible_under_threads(self):
        cache = ArtifactCache()
        cache.put("k", array_kb(0.0))

        def reader():
            for _ in range(200):
                assert cache.get("k") is not None

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert cache.stats["hits"] == 800
