"""Unit tests for the measure registry."""

import numpy as np
import pytest

from repro.engine import registry
from repro.graph import from_edges
from repro.measures import core_numbers


@pytest.fixture
def small_graph():
    return from_edges([(0, 1), (1, 2), (2, 0), (2, 3)])


class TestBuiltins:
    def test_names_include_cli_measures(self):
        names = registry.measure_names()
        for name in ("kcore", "ktruss", "degree", "betweenness",
                     "pagerank", "closeness", "harmonic", "eigenvector"):
            assert name in names

    def test_kind_filter(self):
        assert "ktruss" not in registry.measure_names(kind="vertex")
        assert "ktruss" in registry.measure_names(kind="edge")
        assert "kcore" in registry.measure_names(kind="vertex")

    def test_kind_filter_validates(self):
        with pytest.raises(ValueError):
            registry.measure_names(kind="hyperedge")

    def test_lazy_resolution(self, small_graph):
        spec = registry.get_measure("kcore")
        assert spec.kind == "vertex"
        assert spec.cost in ("cheap", "moderate", "expensive")
        values = registry.compute("kcore", small_graph)
        assert values.dtype == np.float64
        np.testing.assert_array_equal(
            values, core_numbers(small_graph).astype(float)
        )

    def test_edge_measure_length(self, small_graph):
        values = registry.compute("ktruss", small_graph)
        assert len(values) == small_graph.n_edges

    def test_unknown_measure(self):
        with pytest.raises(KeyError, match="unknown measure"):
            registry.get_measure("nonsense")


class TestCustomMeasures:
    def test_register_and_compute(self, small_graph):
        @registry.vertex_measure("test_halfdeg", cost="cheap")
        def half_degree(graph):
            return graph.degree() / 2.0

        try:
            assert "test_halfdeg" in registry.measure_names(kind="vertex")
            values = registry.compute("test_halfdeg", small_graph)
            np.testing.assert_array_equal(values, small_graph.degree() / 2.0)
        finally:
            registry.unregister("test_halfdeg")
        assert "test_halfdeg" not in registry.measure_names()

    def test_duplicate_rejected(self):
        @registry.edge_measure("test_dup")
        def one(graph):
            return np.ones(graph.n_edges)

        try:
            with pytest.raises(ValueError, match="already registered"):
                @registry.edge_measure("test_dup")
                def two(graph):
                    return np.zeros(graph.n_edges)
        finally:
            registry.unregister("test_dup")

    def test_replace_allowed(self, small_graph):
        @registry.vertex_measure("test_repl")
        def one(graph):
            return np.ones(graph.n_vertices)

        try:
            @registry.vertex_measure("test_repl", replace=True)
            def two(graph):
                return np.zeros(graph.n_vertices)

            assert registry.compute("test_repl", small_graph).sum() == 0
        finally:
            registry.unregister("test_repl")

    def test_bad_kind_and_cost(self):
        with pytest.raises(ValueError):
            registry.register_measure("test_bad", kind="face")
        with pytest.raises(ValueError):
            registry.register_measure("test_bad", kind="vertex", cost="free")

    def test_builtin_unregister_rejected(self):
        with pytest.raises(ValueError, match="built-in"):
            registry.unregister("kcore")

    def test_shadowing_lazy_builtin_rejected(self):
        # "betweenness" may not be imported/registered yet, but its name
        # is taken: silent shadowing would be clobbered on lazy import.
        with pytest.raises(ValueError, match="already registered"):
            @registry.vertex_measure("betweenness")
            def fake(graph):
                return np.zeros(graph.n_vertices)
