"""Streaming execution mode: the incremental tree stage must produce
super trees array-identical to a static pipeline on the compacted
snapshot, through the same sink code path."""

import numpy as np
import pytest

from repro.core import ScalarGraph
from repro.engine import ArtifactCache, Pipeline, StreamingPipeline
from repro.graph import from_edges
from repro.stream import AddEdge, RemoveEdge, SetScalar


@pytest.fixture
def field():
    graph = from_edges(
        [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (4, 5), (5, 6), (6, 7)]
    )
    return ScalarGraph(graph, [3.0, 2.0, 1.0, 2.0, 3.0, 1.0, 2.0, 1.5])


def assert_super_equal(a, b):
    np.testing.assert_array_equal(a.parent, b.parent)
    np.testing.assert_array_equal(a.scalars, b.scalars)
    assert len(a.members) == len(b.members)
    for ma, mb in zip(a.members, b.members):
        np.testing.assert_array_equal(ma, mb)


BATCHES = [
    [AddEdge(1, 3), SetScalar(5, 2.5)],
    [RemoveEdge(0, 1), SetScalar(2, 3.5)],
    [AddEdge(2, 7), AddEdge(0, 6), SetScalar(0, 0.5)],
]


class TestEquivalence:
    def test_identical_to_static_after_each_batch(self, field):
        sp = StreamingPipeline(field)
        for batch in BATCHES:
            sp.apply(batch)
            assert_super_equal(
                sp.display_tree, sp.static_equivalent().display_tree
            )

    def test_identical_with_bins(self, field):
        sp = StreamingPipeline(field, bins=2)
        for batch in BATCHES:
            sp.apply(batch)
        assert_super_equal(
            sp.display_tree, sp.static_equivalent().display_tree
        )

    def test_identical_under_rebuild_fallback(self, field):
        # Threshold 0 forces the full-rebuild path each batch.
        sp = StreamingPipeline(field, rebuild_threshold=0.0)
        for batch in BATCHES:
            sp.apply(batch)
        assert sp.stats["full_rebuilds"] > 0
        assert_super_equal(
            sp.display_tree, sp.static_equivalent().display_tree
        )

    def test_raw_tree_identical(self, field):
        sp = StreamingPipeline(field)
        for batch in BATCHES:
            sp.apply(batch)
        static = sp.static_equivalent()
        np.testing.assert_array_equal(sp.tree.parent, static.tree.parent)
        np.testing.assert_array_equal(sp.tree.scalars, static.tree.scalars)


class TestStreamingStages:
    def test_field_stage_shared_with_static(self, field):
        # Building via a measure name goes through the cached field stage.
        cache = ArtifactCache()
        Pipeline(field.graph, "kcore", cache=cache).display_tree
        misses = cache.stats["misses"]
        sp = StreamingPipeline(field.graph, "kcore", cache=cache)
        assert cache.stats["misses"] == misses  # field came from cache
        assert sp.stats["batches"] == 0

    def test_edge_measure_rejected(self, field):
        with pytest.raises(ValueError, match="vertex measure"):
            StreamingPipeline(field.graph, "ktruss")

    def test_display_invalidated_on_apply(self, field):
        sp = StreamingPipeline(field)
        before = sp.display_tree
        hf_before = sp.heightfield(24)
        sp.apply([SetScalar(0, 9.0)])
        after = sp.display_tree
        assert float(after.scalars.max()) == 9.0
        assert float(before.scalars.max()) != 9.0
        assert sp.heightfield(24) is not hf_before  # invalidated too

    def test_window_push(self, field):
        sp = StreamingPipeline(field, window=1.5)
        sp.push(0.0, [AddEdge(1, 3)])
        sp.push(1.0, [SetScalar(5, 2.5)])
        sp.push(3.0, [AddEdge(0, 6)])  # expires the first batch
        assert_super_equal(
            sp.display_tree, sp.static_equivalent().display_tree
        )

    def test_push_without_window(self, field):
        with pytest.raises(ValueError, match="no sliding window"):
            StreamingPipeline(field).push(0.0, [AddEdge(1, 3)])

    def test_sinks_render(self, field, tmp_path):
        sp = StreamingPipeline(field)
        sp.apply(BATCHES[0])
        out = tmp_path / "frame.png"
        sp.render(path=out, resolution=24, width=48, height=36)
        assert out.exists()
        assert sp.treemap().startswith("<svg")
        assert len(sp.peaks(count=2)) <= 2
