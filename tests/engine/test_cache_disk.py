"""Disk-tier accounting: disk_stats() and prune(max_bytes)."""

import time

import numpy as np
import pytest

from repro.engine import ArtifactCache


def _fill(cache: ArtifactCache, n: int, size: int = 64) -> list:
    keys = []
    for i in range(n):
        key = f"k{i:04d}"
        cache.put(key, np.full(size, float(i)))
        keys.append(key)
    return keys


class TestDiskStats:
    def test_memory_only_cache_reports_zero(self):
        cache = ArtifactCache()
        _fill(cache, 3)
        assert cache.disk_stats() == {"entries": 0, "bytes": 0}

    def test_counts_entries_and_bytes(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        _fill(cache, 4)
        stats = cache.disk_stats()
        assert stats["entries"] == 4
        expected = sum(p.stat().st_size for p in tmp_path.glob("*.json"))
        assert stats["bytes"] == expected > 0

    def test_memory_only_artifacts_do_not_count(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("mem", np.ones(8), disk=False)
        assert cache.disk_stats()["entries"] == 0


class TestPrune:
    def test_prunes_oldest_first(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        keys = _fill(cache, 5)
        # Make the write order unambiguous for the mtime sort.
        for i, key in enumerate(keys):
            path = tmp_path / f"{key}.json"
            stamp = time.time() - (5 - i) * 10
            import os

            os.utime(path, (stamp, stamp))
        per_entry = cache.disk_stats()["bytes"] // 5
        result = cache.prune(per_entry * 2)
        assert result["removed"] == 3
        survivors = sorted(p.stem for p in tmp_path.glob("*.json"))
        assert survivors == keys[3:]
        assert cache.disk_stats()["bytes"] == result["bytes"] <= per_entry * 2

    def test_prune_to_zero_empties_the_tier(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        _fill(cache, 3)
        result = cache.prune(0)
        assert result == {"removed": 3, "bytes": 0}
        assert cache.disk_stats() == {"entries": 0, "bytes": 0}

    def test_prune_within_budget_is_a_noop(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        _fill(cache, 3)
        before = cache.disk_stats()
        assert cache.prune(before["bytes"])["removed"] == 0
        assert cache.disk_stats() == before

    def test_pruned_entry_rebuilds_through_get(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("gone", np.arange(4.0))
        cache.clear()  # drop the memory tier, keep disk
        cache.prune(0)
        assert cache.get("gone") is None  # clean miss, not an error

    def test_memory_only_prune_is_safe(self):
        assert ArtifactCache().prune(0) == {"removed": 0, "bytes": 0}

    def test_negative_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ArtifactCache(tmp_path).prune(-1)

    def test_memory_tier_survives_prune(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("hot", np.arange(8.0))
        cache.prune(0)
        assert np.array_equal(cache.get("hot"), np.arange(8.0))
