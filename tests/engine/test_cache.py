"""Cache correctness: hit/miss on parameter change, invalidation when
the scalar field or graph changes, and round-trip equality of cached
trees through :mod:`repro.core.serialize`."""

import numpy as np
import pytest

from repro.core import ScalarGraph, build_super_tree, build_vertex_tree
from repro.core.serialize import artifact_from_json, artifact_to_json
from repro.engine import (
    ArtifactCache,
    Pipeline,
    fingerprint_array,
    fingerprint_graph,
    stage_key,
)
from repro.graph import from_edges


@pytest.fixture
def graph():
    return from_edges(
        [(i, j) for i in range(6) for j in range(i + 1, 6)]  # K6
        + [(5, 6), (6, 7), (7, 8)]
    )


@pytest.fixture
def field(graph):
    rng = np.random.default_rng(3)
    return ScalarGraph(graph, rng.integers(0, 4, graph.n_vertices).astype(float))


def assert_super_equal(a, b):
    np.testing.assert_array_equal(a.parent, b.parent)
    np.testing.assert_array_equal(a.scalars, b.scalars)
    assert len(a.members) == len(b.members)
    for ma, mb in zip(a.members, b.members):
        np.testing.assert_array_equal(ma, mb)


class TestFingerprints:
    def test_graph_fingerprint_is_content_based(self, graph):
        same = from_edges([tuple(e) for e in graph.edge_array()])
        assert fingerprint_graph(graph) == fingerprint_graph(same)
        other = from_edges([(0, 1), (1, 2)])
        assert fingerprint_graph(graph) != fingerprint_graph(other)

    def test_array_fingerprint_sensitive_to_values_and_dtype(self):
        a = np.array([1.0, 2.0, 3.0])
        assert fingerprint_array(a) == fingerprint_array(a.copy())
        assert fingerprint_array(a) != fingerprint_array(a + 1)
        assert fingerprint_array(a) != fingerprint_array(a.astype(np.int64))

    def test_stage_key_params_order_insensitive(self):
        k1 = stage_key("s", {"a": 1, "b": 2}, "fp")
        k2 = stage_key("s", {"b": 2, "a": 1}, "fp")
        assert k1 == k2
        assert stage_key("s", {"a": 2, "b": 2}, "fp") != k1


class TestHitMiss:
    def test_repeat_build_hits(self, field):
        cache = ArtifactCache()
        Pipeline(field, cache=cache).build()
        misses_cold = cache.stats["misses"]
        warm = Pipeline(field, cache=cache)
        warm.build()
        # The layout hit short-circuits every upstream stage.
        assert cache.stats["misses"] == misses_cold
        assert cache.stats["hits"] == 1
        warm.display_tree
        assert cache.stats["hits"] == 2

    def test_param_change_misses(self, field):
        cache = ArtifactCache()
        t_exact = Pipeline(field, cache=cache).display_tree
        misses = cache.stats["misses"]
        t_binned = Pipeline(field, bins=2, cache=cache).display_tree
        assert cache.stats["misses"] > misses
        assert t_binned.n_nodes <= t_exact.n_nodes

    def test_scheme_change_misses(self, field):
        cache = ArtifactCache()
        Pipeline(field, bins=2, scheme="quantile", cache=cache).display_tree
        misses = cache.stats["misses"]
        Pipeline(field, bins=2, scheme="uniform", cache=cache).display_tree
        assert cache.stats["misses"] > misses


class TestInvalidation:
    def test_field_change_invalidates(self, field):
        cache = ArtifactCache()
        t1 = Pipeline(field, cache=cache).display_tree
        hits = cache.stats["hits"]
        changed = field.with_scalars(field.scalars[::-1].copy())
        t2 = Pipeline(changed, cache=cache).display_tree
        # Different field fingerprint: nothing reused, fresh artifacts.
        assert cache.stats["hits"] == hits
        assert_super_equal(
            t2, build_super_tree(build_vertex_tree(changed))
        )
        del t1

    def test_graph_change_invalidates(self, graph, field):
        cache = ArtifactCache()
        p1 = Pipeline(graph, "degree", cache=cache)
        p1.build()
        hits = cache.stats["hits"]
        bigger = from_edges(
            [tuple(e) for e in graph.edge_array()] + [(8, 9)]
        )
        p2 = Pipeline(bigger, "degree", cache=cache)
        p2.build()
        assert cache.stats["hits"] == hits
        assert p2.display_tree.n_items == bigger.n_vertices


class TestDiskTier:
    def test_round_trip_across_instances(self, field, tmp_path):
        cold = Pipeline(field, cache=ArtifactCache(tmp_path))
        t_cold = cold.display_tree
        raw_cold = cold.tree

        # A fresh cache instance over the same directory: artifacts come
        # back from disk, array-identical after the serialize round trip.
        warm_cache = ArtifactCache(tmp_path)
        warm = Pipeline(field, cache=warm_cache)
        t_warm = warm.display_tree
        assert warm_cache.stats["disk_hits"] >= 1
        assert_super_equal(t_cold, t_warm)
        np.testing.assert_array_equal(raw_cold.parent, warm.tree.parent)
        np.testing.assert_array_equal(raw_cold.scalars, warm.tree.scalars)

    def test_artifact_envelope_round_trip(self, field):
        tree = build_vertex_tree(field)
        back = artifact_from_json(artifact_to_json(tree))
        np.testing.assert_array_equal(tree.parent, back.parent)
        np.testing.assert_array_equal(tree.scalars, back.scalars)
        assert back.kind == tree.kind

        sup = build_super_tree(tree)
        assert_super_equal(sup, artifact_from_json(artifact_to_json(sup)))

        arr = np.arange(12, dtype=np.float64).reshape(3, 4)
        np.testing.assert_array_equal(
            arr, artifact_from_json(artifact_to_json(arr))
        )

    def test_corrupt_disk_entry_is_a_miss(self, field, tmp_path):
        cache = ArtifactCache(tmp_path)
        p = Pipeline(field, cache=cache)
        t1 = p.display_tree
        # Truncate every entry (as if a writer died mid-write under an
        # os.replace-less implementation): a fresh cache must treat the
        # files as misses, drop them, and rebuild correctly.
        for path in tmp_path.glob("*.json"):
            path.write_text(path.read_text()[: 10])
        fresh = ArtifactCache(tmp_path)
        t2 = Pipeline(field, cache=fresh).display_tree
        assert fresh.stats["disk_hits"] == 0
        assert_super_equal(t1, t2)

    def test_unserializable_values_stay_in_memory(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("k", object())
        assert not list(tmp_path.glob("*.json"))
        assert cache.get("k") is not None

    def test_clear(self, field, tmp_path):
        cache = ArtifactCache(tmp_path)
        Pipeline(field, cache=cache).build()
        assert len(cache) > 0
        cache.clear()
        assert len(cache) == 0
        assert list(tmp_path.glob("*.json"))  # disk tier survives
        cache.clear(disk=True)
        assert not list(tmp_path.glob("*.json"))
