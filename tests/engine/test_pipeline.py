"""The static pipeline: stage equivalence with the direct API, sinks,
sources, and the field stage for correlation."""

import numpy as np
import pytest

from repro.core import (
    EdgeScalarGraph,
    ScalarGraph,
    build_edge_tree,
    build_super_tree,
    build_vertex_tree,
    simplify_tree,
)
from repro.engine import (
    ArtifactCache,
    DatasetSource,
    GraphSource,
    Pipeline,
    registry,
)
from repro.graph import from_edges
from repro.graph.io import write_edge_list
from repro.measures import core_numbers, truss_numbers


@pytest.fixture
def graph():
    return from_edges(
        [(i, j) for i in range(6) for j in range(i + 1, 6)]  # K6
        + [(5, 6), (6, 7), (7, 8)]
    )


def assert_super_equal(a, b):
    np.testing.assert_array_equal(a.parent, b.parent)
    np.testing.assert_array_equal(a.scalars, b.scalars)
    for ma, mb in zip(a.members, b.members):
        np.testing.assert_array_equal(ma, mb)


class TestStageEquivalence:
    def test_vertex_measure_matches_direct_calls(self, graph):
        p = Pipeline(graph, "kcore")
        field = ScalarGraph(graph, core_numbers(graph).astype(float))
        np.testing.assert_array_equal(p.field.scalars, field.scalars)
        ref = build_super_tree(build_vertex_tree(field))
        assert p.kind == "vertex"
        assert_super_equal(p.display_tree, ref)

    def test_edge_measure_matches_direct_calls(self, graph):
        p = Pipeline(graph, "ktruss")
        field = EdgeScalarGraph(graph, truss_numbers(graph).astype(float))
        ref = build_super_tree(build_edge_tree(field))
        assert p.kind == "edge"
        assert isinstance(p.field, EdgeScalarGraph)
        assert_super_equal(p.display_tree, ref)

    def test_bins_match_simplify_tree(self, graph):
        p = Pipeline(graph, "kcore", bins=2)
        raw = build_vertex_tree(
            ScalarGraph(graph, core_numbers(graph).astype(float))
        )
        assert_super_equal(
            p.display_tree, simplify_tree(raw, 2, scheme="quantile")
        )

    def test_explicit_field_source(self, graph):
        field = ScalarGraph(graph, np.arange(graph.n_vertices, dtype=float))
        p = Pipeline(field)
        assert_super_equal(
            p.display_tree, build_super_tree(build_vertex_tree(field))
        )

    def test_explicit_field_rejects_measure(self, graph):
        field = ScalarGraph(graph, np.ones(graph.n_vertices))
        with pytest.raises(ValueError, match="measure must be omitted"):
            Pipeline(field, "kcore")

    def test_unknown_measure_rejected_early(self, graph):
        with pytest.raises(KeyError, match="unknown measure"):
            Pipeline(graph, "nonsense")

    def test_measure_required_for_bare_graph(self, graph):
        with pytest.raises(ValueError, match="measure name"):
            Pipeline(graph)


class TestSources:
    def test_dataset_source(self):
        p = Pipeline(DatasetSource("amazon"), "degree")
        assert p.graph.n_vertices > 0
        assert p.display_tree.n_items == p.graph.n_vertices

    def test_from_edge_list(self, graph, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(graph, path)
        p = Pipeline.from_edge_list(str(path), "kcore")
        assert_super_equal(
            p.display_tree, Pipeline(GraphSource(graph), "kcore").display_tree
        )

    def test_bad_source_type(self):
        with pytest.raises(TypeError, match="source must be"):
            Pipeline([("not", "a"), ("graph", "!")], "kcore")


class TestSinks:
    def test_render(self, graph, tmp_path):
        out = tmp_path / "t.png"
        img = Pipeline(graph, "kcore").render(
            path=out, resolution=24, width=48, height=36
        )
        assert out.exists()
        assert img.shape == (36, 48, 3)

    def test_treemap_and_profile(self, graph, tmp_path):
        p = Pipeline(graph, "kcore")
        assert p.treemap(path=tmp_path / "m.svg").startswith("<svg")
        assert p.profile(path=tmp_path / "p.svg").startswith("<svg")

    def test_peaks(self, graph):
        peaks = Pipeline(graph, "kcore").peaks(count=1)
        # K6 is a 5-core with 6 members.
        assert peaks[0].alpha == 5.0
        assert peaks[0].size == 6

    def test_layout_is_reused(self, graph):
        cache = ArtifactCache()
        p = Pipeline(graph, "kcore", cache=cache)
        assert p.layout() is p.layout()
        p2 = Pipeline(graph, "kcore", cache=cache)
        assert p2.layout() is p.layout()  # memory tier shares layouts

    def test_heightfield_reused_across_renders(self, graph):
        p = Pipeline(graph, "kcore")
        hf = p.heightfield(24)
        assert p.heightfield(24) is hf  # rotated-camera renders reuse it
        assert p.heightfield(32) is not hf  # other resolutions don't
        p.render(resolution=24, width=48, height=36)
        assert p.heightfield(24) is hf


class TestMeasureField:
    def test_correlation_fields_cached(self, graph):
        cache = ArtifactCache()
        p = Pipeline(graph, "degree", cache=cache)
        d1 = p.measure_field("degree")
        d2 = p.measure_field("degree")
        np.testing.assert_array_equal(d1, d2)
        assert cache.stats["hits"] >= 1
        pr = p.measure_field("pagerank")
        assert len(pr) == graph.n_vertices

    def test_edge_measure_rejected(self, graph):
        with pytest.raises(ValueError, match="edge-based"):
            Pipeline(graph, "degree").measure_field("ktruss")

    def test_field_stage_shared_with_main_measure(self, graph):
        cache = ArtifactCache()
        p = Pipeline(graph, "kcore", cache=cache)
        p.display_tree  # computes the kcore field stage
        before = cache.stats["misses"]
        p.measure_field("kcore")
        assert cache.stats["misses"] == before  # same stage key: a hit
