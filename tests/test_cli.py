"""Unit tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.graph import from_edges
from repro.graph.io import write_edge_list


@pytest.fixture
def edge_list_file(tmp_path):
    graph = from_edges(
        [(i, j) for i in range(6) for j in range(i + 1, 6)]  # K6
        + [(5, 6), (6, 7), (7, 8)]
    )
    path = tmp_path / "graph.txt"
    write_edge_list(graph, path)
    return str(path)


class TestParser:
    def test_commands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["peaks", "--dataset", "grqc"])
        assert args.command == "peaks"

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert out.split()[1][0].isdigit()  # "repro X.Y.Z"


class TestServeParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8321
        assert args.datasets == "grqc"
        assert args.measures == "kcore"
        assert args.workers == 0
        assert args.tile_size == 64
        assert args.levels == 3
        assert args.cache_memory_mb is None

    def test_help_mentions_key_flags(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        for flag in (
            "--host", "--port", "--datasets", "--measures", "--workers",
            "--cache-dir", "--tile-size", "--levels", "--stream-log",
        ):
            assert flag in out

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit, match="unknown dataset"):
            main(["serve", "--datasets", "atlantis"])

    def test_unknown_measure_rejected(self):
        with pytest.raises(SystemExit, match="--measures"):
            main(["serve", "--measures", "nonsense"])

    def test_bad_edge_list_spec_rejected(self):
        with pytest.raises(SystemExit, match="NAME=PATH"):
            main(["serve", "--edge-list", "justapath.txt"])

    def test_missing_edge_list_rejected(self):
        with pytest.raises(SystemExit, match="edge list not found"):
            main(["serve", "--edge-list", "toy=/does/not/exist.txt"])

    def test_bad_stream_log_spec_rejected(self, edge_list_file):
        with pytest.raises(SystemExit, match="NAME=DATASET:MEASURE"):
            main([
                "serve", "--edge-list", f"toy={edge_list_file}",
                "--stream-log", "broken",
            ])

    def test_stream_log_unserved_dataset_rejected(self, edge_list_file):
        with pytest.raises(SystemExit, match="is not served"):
            main([
                "serve", "--edge-list", f"toy={edge_list_file}",
                "--stream-log", "s=ghost:kcore:/tmp/x.jsonl",
            ])

    def test_negative_cache_memory_rejected(self):
        with pytest.raises(SystemExit, match="cache-memory-mb"):
            main(["serve", "--cache-memory-mb", "-5"])

    def test_bad_pyramid_flags_rejected_at_boot(self):
        with pytest.raises(SystemExit, match="--tile-size"):
            main(["serve", "--tile-size", "9"])
        with pytest.raises(SystemExit, match="--tile-size"):
            main(["serve", "--tile-size", "4"])
        with pytest.raises(SystemExit, match="--levels"):
            main(["serve", "--levels", "0"])
        with pytest.raises(SystemExit, match="--workers"):
            main(["serve", "--workers", "-1"])


class TestTerrainCommand:
    def test_renders_from_edge_list(self, edge_list_file, tmp_path):
        out = tmp_path / "terrain.png"
        code = main([
            "terrain", "--edge-list", edge_list_file,
            "--measure", "kcore", "-o", str(out),
            "--resolution", "32", "--width", "64", "--height", "48",
        ])
        assert code == 0
        assert out.exists()

    def test_simplify_bins(self, edge_list_file, tmp_path):
        out = tmp_path / "t.png"
        code = main([
            "terrain", "--edge-list", edge_list_file, "--bins", "3",
            "-o", str(out), "--resolution", "32",
            "--width", "64", "--height", "48",
        ])
        assert code == 0

    def test_unknown_measure(self, edge_list_file):
        with pytest.raises(SystemExit):
            main([
                "terrain", "--edge-list", edge_list_file,
                "--measure", "nonsense",
            ])

    def test_unknown_measure_is_parse_error_with_choices(
        self, edge_list_file, capsys
    ):
        # Validated at argparse level against the measure registry: the
        # process exits with the usage-error code and the message lists
        # the known measures.
        with pytest.raises(SystemExit) as exc:
            main([
                "terrain", "--edge-list", edge_list_file,
                "--measure", "nonsense",
            ])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice: 'nonsense'" in err
        assert "kcore" in err and "ktruss" in err

    def test_missing_input(self):
        with pytest.raises(SystemExit):
            main(["terrain"])


class TestPeaksCommand:
    def test_lists_clique_core(self, edge_list_file, capsys):
        code = main([
            "peaks", "--edge-list", edge_list_file,
            "--measure", "kcore", "--count", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "level 5" in out  # K6 is a 5-core
        assert "6 vertices" in out

    def test_edge_measure(self, edge_list_file, capsys):
        code = main([
            "peaks", "--edge-list", edge_list_file,
            "--measure", "ktruss", "--count", "1",
        ])
        assert code == 0
        assert "edges" in capsys.readouterr().out


class TestLinked2DCommands:
    def test_treemap(self, edge_list_file, tmp_path):
        out = tmp_path / "m.svg"
        assert main([
            "treemap", "--edge-list", edge_list_file, "-o", str(out),
        ]) == 0
        assert out.read_text().startswith("<svg")

    def test_profile(self, edge_list_file, tmp_path):
        out = tmp_path / "p.svg"
        assert main([
            "profile", "--edge-list", edge_list_file, "-o", str(out),
        ]) == 0
        assert out.read_text().startswith("<svg")


class TestStreamCommand:
    @pytest.fixture
    def edit_log(self, tmp_path):
        from repro.stream import AddEdge, RemoveEdge, SetScalar, write_edit_log

        return str(write_edit_log(
            tmp_path / "edits.jsonl",
            [
                [SetScalar(8, 1.0), AddEdge(0, 7)],
                [RemoveEdge(0, 7)],
                [SetScalar(8, 2.0)],
            ],
            times=[0.0, 1.0, 2.0],
        ))

    def test_replays_and_emits_frames(self, edge_list_file, edit_log,
                                      tmp_path, capsys):
        frames = tmp_path / "frames"
        code = main([
            "stream", "--edge-list", edge_list_file, "--log", edit_log,
            "--frames-dir", str(frames), "--frame-every", "2",
            "--resolution", "24", "--width", "48", "--height", "36",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "replayed 3 batches (4 edits)" in out
        assert sorted(p.name for p in frames.iterdir()) == [
            "frame_00000.png", "frame_00002.png",
        ]

    def test_replays_without_frames(self, edge_list_file, edit_log, capsys):
        assert main([
            "stream", "--edge-list", edge_list_file, "--log", edit_log,
        ]) == 0
        out = capsys.readouterr().out
        assert "final tree:" in out
        assert "frames" not in out.splitlines()[-1]

    def test_window_replay(self, edge_list_file, edit_log, capsys):
        assert main([
            "stream", "--edge-list", edge_list_file, "--log", edit_log,
            "--window", "1.5",
        ]) == 0
        assert "replayed 3 batches" in capsys.readouterr().out

    def test_window_mixed_timestamps(self, edge_list_file, tmp_path,
                                     capsys):
        # Timed commit followed by a trailing untimed batch: the index
        # fallback must not step backwards past the explicit t=7.5.
        log = tmp_path / "mixed.jsonl"
        log.write_text(
            '{"op": "add", "u": 0, "v": 7}\n'
            '{"op": "commit", "t": 7.5}\n'
            '{"op": "set", "v": 8, "value": 1.0}\n'
        )
        assert main([
            "stream", "--edge-list", edge_list_file, "--log", str(log),
            "--window", "2.0",
        ]) == 0
        assert "replayed 2 batches" in capsys.readouterr().out

    def test_edge_measures_rejected(self, edge_list_file, edit_log):
        with pytest.raises(SystemExit):
            main([
                "stream", "--edge-list", edge_list_file, "--log", edit_log,
                "--measure", "ktruss",
            ])

    def test_edge_measures_rejected_at_parse_time(
        self, edge_list_file, edit_log, capsys
    ):
        with pytest.raises(SystemExit) as exc:
            main([
                "stream", "--edge-list", edge_list_file, "--log", edit_log,
                "--measure", "ktruss",
            ])
        assert exc.value.code == 2
        assert "vertex measures only" in capsys.readouterr().err

    def test_missing_log(self, edge_list_file):
        with pytest.raises(SystemExit, match="edit log not found"):
            main([
                "stream", "--edge-list", edge_list_file,
                "--log", "does-not-exist.jsonl",
            ])

    def test_malformed_log(self, edge_list_file, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"op": "explode"}\n')
        with pytest.raises(SystemExit, match="bad edit log"):
            main([
                "stream", "--edge-list", edge_list_file, "--log", str(bad),
            ])

    def test_out_of_range_edit(self, edge_list_file, tmp_path):
        oob = tmp_path / "oob.jsonl"
        oob.write_text('{"op": "set", "v": 999, "value": 1.0}\n')
        with pytest.raises(SystemExit, match="edit batch 0"):
            main([
                "stream", "--edge-list", edge_list_file, "--log", str(oob),
            ])

    def test_negative_window(self, edge_list_file, edit_log):
        with pytest.raises(SystemExit, match="--window"):
            main([
                "stream", "--edge-list", edge_list_file, "--log", edit_log,
                "--window", "-1",
            ])

    def test_frame_every_validated(self, edge_list_file, edit_log, tmp_path):
        with pytest.raises(SystemExit, match="--frame-every"):
            main([
                "stream", "--edge-list", edge_list_file, "--log", edit_log,
                "--frames-dir", str(tmp_path / "f"), "--frame-every", "0",
            ])

    def test_bins_simplify_frames(self, edge_list_file, edit_log, tmp_path):
        frames = tmp_path / "frames"
        assert main([
            "stream", "--edge-list", edge_list_file, "--log", edit_log,
            "--frames-dir", str(frames), "--bins", "2",
            "--resolution", "24", "--width", "48", "--height", "36",
        ]) == 0
        assert (frames / "frame_00000.png").exists()


class TestCorrelateCommand:
    def test_gci_printed(self, edge_list_file, capsys):
        code = main([
            "correlate", "--edge-list", edge_list_file,
            "degree", "pagerank", "--count", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "GCI(degree, pagerank)" in out
        assert "outlier" in out

    def test_unknown_field(self, edge_list_file):
        with pytest.raises(SystemExit):
            main([
                "correlate", "--edge-list", edge_list_file,
                "degree", "nonsense",
            ])

    def test_edge_field_rejected(self, edge_list_file, capsys):
        with pytest.raises(SystemExit) as exc:
            main([
                "correlate", "--edge-list", edge_list_file,
                "degree", "ktruss",
            ])
        assert exc.value.code == 2
        assert "vertex measures only" in capsys.readouterr().err


class TestCacheDir:
    def test_terrain_populates_cache(self, edge_list_file, tmp_path):
        cache_dir = tmp_path / "cache"
        out = tmp_path / "t.png"
        assert main([
            "terrain", "--edge-list", edge_list_file,
            "--cache-dir", str(cache_dir), "-o", str(out),
            "--resolution", "24", "--width", "48", "--height", "36",
        ]) == 0
        assert list(cache_dir.glob("*.json"))  # persisted stage artifacts


class TestEvolveCommand:
    def test_synthetic_run_scores_ground_truth(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main([
            "evolve", "--synthetic",
            "--windows", "6", "--community-size", "16",
            "--p-in", "0.8", "--alpha", "3", "--min-size", "5",
            "--resolution", "128", "-o", str(out),
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "event F1 vs planted ground truth" in text
        report = json.loads(out.read_text())
        assert report["event_f1"] >= 0.9
        assert len(report["windows"]) == 6
        assert "diff" in report["windows"][1]
        kinds = {e["kind"] for e in report["events"]}
        assert "birth" in kinds and "merge" in kinds

    def test_log_mode_roundtrips_written_log(self, tmp_path, capsys):
        log_path = tmp_path / "dyn.tsv"
        code = main([
            "evolve", "--synthetic", "--windows", "4",
            "--write-log", str(log_path), "--resolution", "0",
        ])
        assert code == 0
        assert log_path.exists()
        code = main([
            "evolve", "--log", str(log_path), "--origin", "0",
            "--resolution", "0",
        ])
        assert code == 0
        assert "tracked" in capsys.readouterr().out

    def test_requires_exactly_one_source(self):
        with pytest.raises(SystemExit):
            main(["evolve"])
        with pytest.raises(SystemExit):
            main(["evolve", "--log", "x.tsv", "--synthetic"])

    def test_missing_log_rejected(self):
        with pytest.raises(SystemExit):
            main(["evolve", "--log", "/does/not/exist.tsv"])

    def test_bad_window_rejected(self):
        with pytest.raises(SystemExit):
            main(["evolve", "--synthetic", "--window", "0"])

    def test_edge_measure_rejected_at_parse_time(self, capsys):
        with pytest.raises(SystemExit):
            main(["evolve", "--synthetic", "--measure", "ktruss"])
        assert "vertex measures only" in capsys.readouterr().err

    def test_malformed_log_is_a_clean_error(self, tmp_path):
        bad = tmp_path / "bad.tsv"
        bad.write_text("0 1 1.0\n0 nope 2.0\n")
        with pytest.raises(SystemExit, match="bad temporal log"):
            main(["evolve", "--log", str(bad), "--resolution", "0"])


class TestServeEvolveFlags:
    def test_bad_evolve_log_spec_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="--evolve-log"):
            main(["serve", "--evolve-log", "demo=degree:notaspec"])

    def test_bad_window_rejected(self, tmp_path):
        log = tmp_path / "t.tsv"
        log.write_text("0 1 0.5\n")
        with pytest.raises(SystemExit, match="positive"):
            main([
                "serve",
                "--evolve-log", f"demo=degree:zero:{log}",
            ])

    def test_missing_temporal_log_rejected(self):
        with pytest.raises(SystemExit, match="not found"):
            main([
                "serve",
                "--evolve-log", "demo=degree:1.0:/does/not/exist.tsv",
            ])
