"""Unit tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.graph import from_edges
from repro.graph.io import write_edge_list


@pytest.fixture
def edge_list_file(tmp_path):
    graph = from_edges(
        [(i, j) for i in range(6) for j in range(i + 1, 6)]  # K6
        + [(5, 6), (6, 7), (7, 8)]
    )
    path = tmp_path / "graph.txt"
    write_edge_list(graph, path)
    return str(path)


class TestParser:
    def test_commands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["peaks", "--dataset", "grqc"])
        assert args.command == "peaks"

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestTerrainCommand:
    def test_renders_from_edge_list(self, edge_list_file, tmp_path):
        out = tmp_path / "terrain.png"
        code = main([
            "terrain", "--edge-list", edge_list_file,
            "--measure", "kcore", "-o", str(out),
            "--resolution", "32", "--width", "64", "--height", "48",
        ])
        assert code == 0
        assert out.exists()

    def test_simplify_bins(self, edge_list_file, tmp_path):
        out = tmp_path / "t.png"
        code = main([
            "terrain", "--edge-list", edge_list_file, "--bins", "3",
            "-o", str(out), "--resolution", "32",
            "--width", "64", "--height", "48",
        ])
        assert code == 0

    def test_unknown_measure(self, edge_list_file):
        with pytest.raises(SystemExit):
            main([
                "terrain", "--edge-list", edge_list_file,
                "--measure", "nonsense",
            ])

    def test_missing_input(self):
        with pytest.raises(SystemExit):
            main(["terrain"])


class TestPeaksCommand:
    def test_lists_clique_core(self, edge_list_file, capsys):
        code = main([
            "peaks", "--edge-list", edge_list_file,
            "--measure", "kcore", "--count", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "level 5" in out  # K6 is a 5-core
        assert "6 vertices" in out

    def test_edge_measure(self, edge_list_file, capsys):
        code = main([
            "peaks", "--edge-list", edge_list_file,
            "--measure", "ktruss", "--count", "1",
        ])
        assert code == 0
        assert "edges" in capsys.readouterr().out


class TestLinked2DCommands:
    def test_treemap(self, edge_list_file, tmp_path):
        out = tmp_path / "m.svg"
        assert main([
            "treemap", "--edge-list", edge_list_file, "-o", str(out),
        ]) == 0
        assert out.read_text().startswith("<svg")

    def test_profile(self, edge_list_file, tmp_path):
        out = tmp_path / "p.svg"
        assert main([
            "profile", "--edge-list", edge_list_file, "-o", str(out),
        ]) == 0
        assert out.read_text().startswith("<svg")


class TestCorrelateCommand:
    def test_gci_printed(self, edge_list_file, capsys):
        code = main([
            "correlate", "--edge-list", edge_list_file,
            "degree", "pagerank", "--count", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "GCI(degree, pagerank)" in out
        assert "outlier" in out

    def test_unknown_field(self, edge_list_file):
        with pytest.raises(SystemExit):
            main([
                "correlate", "--edge-list", edge_list_file,
                "degree", "nonsense",
            ])
