"""Shared plumbing for the resilience tests: install a fault schedule
for one test and always tear it back down (the schedule is process-global
state — a leaked schedule would fail unrelated tests at a distance)."""

import pytest

from repro.resil import faults


@pytest.fixture
def fault_spec():
    """``fault_spec("task_fail:1;...")`` installs a schedule; teardown
    disables injection again."""
    installed = []

    def install(spec):
        installed.append(spec)
        return faults.configure(spec)

    yield install
    faults.configure(None)
