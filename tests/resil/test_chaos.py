"""Chaos suite: inject scheduled faults into real builds and assert the
outputs are *node-identical* to a fault-free run — resilience must heal,
never silently change results."""

import asyncio

import numpy as np
import pytest

from repro.core import ScalarGraph, build_vertex_tree
from repro.dist import (
    ShardedExecutor,
    ShardIntegrityError,
    load_shards,
    partition_edges,
    resilient_scatter,
    scatter_edge_list,
)
from repro.engine import ArtifactCache, EdgeListSource, Pipeline, registry
from repro.graph import generators
from repro.graph.io import write_edge_list
from repro.resil import faults
from repro.resil.retry import InjectedFault
from repro.serve import StageRunner


@pytest.fixture(scope="module")
def graph():
    return generators.powerlaw_cluster(300, 2, 0.3, seed=11)


@pytest.fixture(scope="module")
def scalars(graph):
    return registry.compute("degree", graph)


@pytest.fixture(scope="module")
def reference_tree(graph, scalars):
    return build_vertex_tree(ScalarGraph(graph, scalars))


@pytest.fixture(scope="module")
def edge_file(graph, tmp_path_factory):
    path = tmp_path_factory.mktemp("chaos") / "graph.txt"
    write_edge_list(graph, path)
    return path


def assert_identical(tree, reference):
    assert np.array_equal(tree.parent, reference.parent)
    assert np.array_equal(tree.scalars, reference.scalars)


class TestShardedBuilds:
    def test_task_faults_heal_to_identical_tree(
        self, graph, scalars, reference_tree, fault_spec
    ):
        fault_spec("task_fail:1,3;task_delay:2:0.01")
        shards = partition_edges(graph, 3, "hash")
        ex = ShardedExecutor(workers=0)
        try:
            tree = ex.build_tree(scalars, shards)
        finally:
            ex.shutdown()
        assert_identical(tree, reference_tree)
        assert ex.runner.stats["retries"] >= 1
        assert faults.snapshot()["fired"]["task_fail"] == 2

    def test_worker_kill_respawns_pool(
        self, graph, scalars, reference_tree, fault_spec
    ):
        # Every pool task also sleeps a beat: the surviving worker must
        # not race through the queue before the executor notices the
        # kill, or no BrokenProcessPool is ever observed.
        fault_spec("worker_kill:1;task_delay:*:0.05")
        shards = partition_edges(graph, 4, "hash")
        ex = ShardedExecutor(workers=2)
        try:
            tree = ex.build_tree(scalars, shards)
            assert ex.runner.stats["respawns"] >= 1
        finally:
            ex.shutdown()
        assert_identical(tree, reference_tree)

    def test_unbounded_faults_eventually_give_up(
        self, graph, scalars, fault_spec
    ):
        fault_spec("task_fail:*")
        shards = partition_edges(graph, 2, "hash")
        ex = ShardedExecutor(workers=0)
        ex.runner.retry.base_delay = 0.0
        try:
            with pytest.raises(InjectedFault):
                ex.build_tree(scalars, shards)
        finally:
            ex.shutdown()


class TestStageRunnerChaos:
    def test_run_retries_injected_fault(self, fault_spec):
        fault_spec("task_fail:1")
        runner = StageRunner()
        try:
            result = asyncio.run(runner.run("k", lambda: "healed"))
        finally:
            runner.shutdown()
        assert result == "healed"
        assert runner.stats == {
            **runner.stats, "builds": 1, "errors": 0, "retries": 1,
        }

    def test_map_sync_resubmits_only_failed_jobs(self, fault_spec):
        fault_spec("task_fail:2")
        runner = StageRunner()
        try:
            results = runner.map_sync(
                _double, [(i,) for i in range(5)]
            )
        finally:
            runner.shutdown()
        assert results == [0, 2, 4, 6, 8]
        assert runner.stats["retries"] == 1


def _double(x):
    return 2 * x


class TestPipelineChaos:
    def test_stage_fault_retried_inside_stage(
        self, edge_file, reference_tree, fault_spec
    ):
        fault_spec("stage_fail:1")
        pipeline = Pipeline(EdgeListSource(edge_file), "degree")
        assert_identical(pipeline.tree, reference_tree)

    def test_cache_corruption_is_a_miss_not_a_crash(
        self, edge_file, tmp_path, fault_spec
    ):
        # First process run writes envelopes, the scheduled fault
        # truncates one on disk right after the atomic rename.
        fault_spec("cache_corrupt:1")
        cache = ArtifactCache(tmp_path)
        first = Pipeline(EdgeListSource(edge_file), "degree", cache=cache)
        tree = first.tree
        faults.configure(None)
        # A fresh cache over the same directory (same process restart
        # semantics): the corrupted envelope must read as a miss and be
        # deleted, and the rebuild must agree with the first run.
        reread = ArtifactCache(tmp_path)
        second = Pipeline(EdgeListSource(edge_file), "degree", cache=reread)
        assert np.array_equal(second.tree.parent, tree.parent)
        assert reread.stats["corrupt"] >= 1


class TestScatterChaos:
    def test_corrupt_fragment_quarantined_and_rescattered(
        self, graph, edge_file, tmp_path, fault_spec
    ):
        fault_spec("fragment_corrupt:1")
        out = tmp_path / "healed"
        result, shards = resilient_scatter(
            edge_file, 2, out, method="hash"
        )
        assert len(shards) == 2
        quarantined = list(out.glob("*.quarantined"))
        assert quarantined, "bad fragment was not quarantined"
        # The healed scatter is byte-identical to a clean one.
        clean = scatter_edge_list(
            edge_file, 2, tmp_path / "clean", method="hash"
        ).load()
        for healed, good in zip(shards, clean):
            assert np.array_equal(healed.edges, good.edges)

    def test_truncated_fragment_quarantined(
        self, edge_file, tmp_path, fault_spec
    ):
        fault_spec("fragment_truncate:1:1")  # param 1 -> shard 1
        out = tmp_path / "trunc"
        result, shards = resilient_scatter(
            edge_file, 2, out, method="hash"
        )
        assert len(shards) == 2
        assert any(
            "shard_0001" in path.name for path in out.glob("*.quarantined")
        )

    def test_unbounded_corruption_raises_integrity_error(
        self, edge_file, tmp_path, fault_spec
    ):
        fault_spec("fragment_corrupt:*")
        with pytest.raises(ShardIntegrityError):
            resilient_scatter(
                edge_file, 2, tmp_path / "doomed", method="hash",
                max_attempts=2,
            )


class TestNativeCompileChaos:
    def test_scheduled_compile_failure_soft_falls_back(self, fault_spec):
        native = pytest.importorskip("repro.accel.native")
        fault_spec("compile_fail:1")
        with pytest.raises(
            native._Unavailable, match="scheduled compile failure"
        ):
            native._load_impl()
