"""The fault DSL: parsing, deterministic occurrence counting, file
corruption helpers, and pool-job wrapping."""

import pytest

from repro.resil import faults
from repro.resil.faults import FaultRule, FaultSchedule
from repro.resil.retry import InjectedFault


class TestParsing:
    def test_single_occurrence(self):
        schedule = FaultSchedule.parse("task_fail:3")
        rule = schedule.rules["task_fail"]
        assert not rule.fires_at(2)
        assert rule.fires_at(3)
        assert not rule.fires_at(4)
        assert rule.bounded

    def test_comma_list_and_range(self):
        listed = FaultSchedule.parse("task_fail:1,4").rules["task_fail"]
        assert [listed.fires_at(n) for n in (1, 2, 3, 4)] == [
            True, False, False, True,
        ]
        ranged = FaultSchedule.parse("task_delay:2-4").rules["task_delay"]
        assert [ranged.fires_at(n) for n in (1, 2, 3, 4, 5)] == [
            False, True, True, True, False,
        ]

    def test_star_is_unbounded(self):
        rule = FaultSchedule.parse("stage_fail:*").rules["stage_fail"]
        assert rule.fires_at(1) and rule.fires_at(10 ** 6)
        assert not rule.bounded

    def test_param_and_multiple_rules(self):
        schedule = FaultSchedule.parse(
            "task_delay:1:0.25; fragment_corrupt:2"
        )
        assert schedule.rules["task_delay"].param == 0.25
        assert schedule.rules["fragment_corrupt"].param is None
        assert len(schedule.rules) == 2

    def test_rejects_unknown_site(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSchedule.parse("meteor_strike:1")

    def test_rejects_malformed_and_duplicate_rules(self):
        with pytest.raises(ValueError, match="bad fault rule"):
            FaultSchedule.parse("task_fail")
        with pytest.raises(ValueError, match="duplicate"):
            FaultSchedule.parse("task_fail:1;task_fail:2")
        with pytest.raises(ValueError, match="no occurrences"):
            FaultRule("task_fail", "", None)


class TestCounting:
    def test_passes_counted_per_site(self):
        schedule = FaultSchedule.parse("task_fail:2")
        assert schedule.should_fire("task_fail") is None      # pass 1
        assert schedule.should_fire("task_fail") is not None  # pass 2
        assert schedule.should_fire("task_fail") is None      # pass 3
        # A site with no rule is not even counted.
        assert schedule.should_fire("worker_kill") is None
        snap = schedule.snapshot()
        assert snap["passes"] == {"task_fail": 3}
        assert snap["fired"] == {"task_fail": 1}
        assert snap["spec"] == "task_fail:2"

    def test_same_schedule_same_workload_fires_identically(self):
        spec = "task_fail:2,5;task_delay:3"
        runs = []
        for _ in range(2):
            schedule = FaultSchedule.parse(spec)
            runs.append([
                (schedule.should_fire("task_fail") is not None,
                 schedule.should_fire("task_delay") is not None)
                for _ in range(6)
            ])
        assert runs[0] == runs[1]
        assert [fired for fired, _ in runs[0]] == [
            False, True, False, False, True, False,
        ]


class TestModuleGlobals:
    def test_configure_and_maybe_fail(self, fault_spec):
        fault_spec("stage_fail:1")
        assert faults.active()
        with pytest.raises(InjectedFault) as excinfo:
            faults.maybe_fail("stage_fail", "stage.tree")
        assert excinfo.value.site == "stage_fail"
        faults.maybe_fail("stage_fail")  # pass 2: no fire
        assert faults.snapshot()["fired"] == {"stage_fail": 1}

    def test_disabled_is_free(self, fault_spec):
        faults.configure(None)
        assert not faults.active()
        assert faults.should_fire("task_fail") is None
        assert faults.snapshot() is None
        faults.maybe_fail("task_fail")  # no-op

    def test_schedule_parsed_from_env(self, fault_spec, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "task_fail:1")
        monkeypatch.setattr(faults, "_LOADED", False)
        monkeypatch.setattr(faults, "_ACTIVE", None)
        assert faults.active()
        assert faults.schedule().spec == "task_fail:1"

    def test_maybe_delay_sleeps_param(self, fault_spec, monkeypatch):
        fault_spec("task_delay:1:0.02")
        naps = []
        monkeypatch.setattr(faults.time, "sleep", naps.append)
        assert faults.maybe_delay() == 0.02
        assert naps == [0.02]
        assert faults.maybe_delay() == 0.0  # pass 2: no fire


class TestWrapJob:
    def test_identity_without_schedule(self, fault_spec):
        faults.configure(None)
        fn, args = faults.wrap_job(len, ("abc",))
        assert fn is len and args == ("abc",)

    def test_wrapped_job_raises_then_heals(self, fault_spec):
        fault_spec("task_fail:1")
        fn, args = faults.wrap_job(len, ("abc",))
        assert fn is faults._faulted_job
        with pytest.raises(InjectedFault):
            fn(*args)
        # The next submission is clean (decision is made at wrap time).
        fn, args = faults.wrap_job(len, ("abc",))
        assert fn is len
        assert fn(*args) == 3


class TestCorruptFile:
    def test_flip_and_truncate(self, tmp_path):
        victim = tmp_path / "payload.bin"
        victim.write_bytes(b"\x01\x02\x03\x04")
        assert faults.corrupt_file(victim)
        assert victim.read_bytes() == b"\x01\x02\x03\xfb"
        assert faults.corrupt_file(victim, mode="truncate")
        assert victim.read_bytes() == b"\x01\x02"

    def test_missing_or_empty_file(self, tmp_path):
        assert not faults.corrupt_file(tmp_path / "ghost.bin")
        empty = tmp_path / "empty.bin"
        empty.write_bytes(b"")
        assert not faults.corrupt_file(empty)
