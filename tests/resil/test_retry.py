"""Retry/backoff, deadlines, circuit breaker, and admission control."""

import pytest

from repro.resil.retry import (
    AdmissionGate,
    CircuitBreaker,
    CircuitOpen,
    Deadline,
    DeadlineExceeded,
    InjectedFault,
    RetryPolicy,
    Saturated,
    TransientFault,
    retry_call,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestRetryPolicy:
    def test_exponential_growth_capped(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0
        )
        assert [policy.delay(n) for n in (1, 2, 3, 4)] == [
            0.1, 0.2, 0.4, 0.5,
        ]

    def test_jitter_stays_in_band(self):
        policy = RetryPolicy(
            base_delay=1.0, max_delay=1.0, jitter=0.5, seed=7
        )
        for _ in range(100):
            assert 0.5 <= policy.delay(1) <= 1.0

    def test_seeded_jitter_reproducible(self):
        a = [RetryPolicy(seed=3).delay(n) for n in range(1, 6)]
        b = [RetryPolicy(seed=3).delay(n) for n in range(1, 6)]
        assert a == b

    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestRetryCall:
    def test_retries_transient_then_succeeds(self):
        naps = []
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientFault("worker died")
            return "ok"

        result = retry_call(
            flaky,
            policy=RetryPolicy(max_attempts=4, base_delay=0.01, jitter=0.0),
            sleep=naps.append,
        )
        assert result == "ok"
        assert len(attempts) == 3
        assert naps == [0.01, 0.02]

    def test_deterministic_errors_not_retried(self):
        attempts = []

        def buggy():
            attempts.append(1)
            raise RuntimeError("a plain bug")

        with pytest.raises(RuntimeError):
            retry_call(buggy, sleep=lambda _: None)
        assert len(attempts) == 1

    def test_budget_exhaustion_propagates_original(self):
        def always():
            raise InjectedFault("task_fail")

        with pytest.raises(InjectedFault):
            retry_call(
                always,
                policy=RetryPolicy(max_attempts=3, base_delay=0.0),
                sleep=lambda _: None,
            )

    def test_deadline_cuts_retries_short(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)

        def fail_and_burn():
            clock.advance(0.6)
            raise TransientFault("slow failure")

        with pytest.raises(DeadlineExceeded):
            retry_call(
                fail_and_burn,
                policy=RetryPolicy(max_attempts=100, base_delay=0.0),
                deadline=deadline,
                sleep=lambda _: None,
            )


class TestDeadline:
    def test_remaining_and_check(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        assert deadline.remaining() == 2.0
        deadline.check()
        clock.advance(2.5)
        assert deadline.expired
        assert deadline.remaining() == 0.0
        with pytest.raises(DeadlineExceeded, match="budget"):
            deadline.check("tile")


class TestCircuitBreaker:
    def test_opens_after_threshold_and_probes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=3, cooldown=10.0, clock=clock
        )
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert 0.0 < breaker.retry_after() <= 10.0
        # Cooldown elapses: exactly one half-open probe gets through.
        clock.advance(10.0)
        assert breaker.allow()
        assert breaker.state == "half_open"
        assert not breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown=5.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()  # probe
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.snapshot()["failures"] == 1

    def test_circuit_open_error_carries_hint(self):
        exc = CircuitOpen("toy/kcore", 12.34)
        assert exc.key == "toy/kcore"
        assert exc.retry_after == 12.34


class TestAdmissionGate:
    def test_interactive_reserve(self):
        gate = AdmissionGate(4)  # reserve 1 -> bulk cap 3
        assert gate.bulk_limit == 3
        assert all(gate.try_acquire() for _ in range(3))
        assert not gate.try_acquire()            # bulk saturated
        assert gate.try_acquire(interactive=True)  # reserve still open
        assert not gate.try_acquire(interactive=True)
        assert gate.shed == 2
        gate.release()              # 3 admitted: still at the bulk cap
        assert not gate.try_acquire()
        assert gate.try_acquire(interactive=True)
        gate.release()
        gate.release()              # 2 admitted: bulk fits again
        assert gate.try_acquire()

    def test_acquire_raises_saturated_with_hint(self):
        gate = AdmissionGate(1, retry_after=2.5)
        gate.acquire()
        with pytest.raises(Saturated) as excinfo:
            gate.acquire()
        assert excinfo.value.retry_after == 2.5

    def test_limit_one_still_admits(self):
        gate = AdmissionGate(1)
        assert gate.bulk_limit == 1
        assert gate.try_acquire()
        gate.release()
        gate.release()  # over-release is harmless
        assert gate.snapshot()["admitted"] == 0

    def test_rejects_bad_limit(self):
        with pytest.raises(ValueError):
            AdmissionGate(0)
