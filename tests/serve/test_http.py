"""Unit tests for the hand-rolled HTTP layer (no sockets)."""

import asyncio

import pytest

from repro.serve.http import (
    HTTPError,
    Request,
    Response,
    Router,
    _read_request,
)


def parse(raw: bytes) -> Request:
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await _read_request(reader)

    return asyncio.run(run())


class TestParsing:
    def test_request_line_and_query(self):
        request = parse(b"GET /t/a%20b/c?x=1&y=-2.5&empty= HTTP/1.1\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/t/a b/c"
        assert request.query == {"x": "1", "y": "-2.5", "empty": ""}

    def test_headers_lowercased(self):
        request = parse(
            b"GET / HTTP/1.1\r\nIf-None-Match: \"abc\"\r\n"
            b"Connection: Close\r\n\r\n"
        )
        assert request.headers["if-none-match"] == '"abc"'
        assert request.if_none_match() == ['"abc"']

    def test_if_none_match_list(self):
        request = parse(
            b'GET / HTTP/1.1\r\nIf-None-Match: "a", "b"\r\n\r\n'
        )
        assert request.if_none_match() == ['"a"', '"b"']

    def test_body_by_content_length(self):
        request = parse(
            b"POST /x HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd"
        )
        assert request.body == b"abcd"

    def test_closed_connection_is_none(self):
        assert parse(b"") is None

    def test_malformed_request_line(self):
        with pytest.raises(HTTPError) as exc:
            parse(b"NONSENSE\r\n\r\n")
        assert exc.value.status == 400

    def test_bad_content_length(self):
        with pytest.raises(HTTPError):
            parse(b"GET / HTTP/1.1\r\nContent-Length: ten\r\n\r\n")


class TestQueryHelpers:
    def request(self, **query):
        return Request("GET", "/", {k: str(v) for k, v in query.items()}, {})

    def test_int_parsing_and_bounds(self):
        assert self.request(n=5).query_int("n", default=1) == 5
        assert self.request().query_int("n", default=7) == 7
        with pytest.raises(HTTPError):
            self.request(n="x").query_int("n", default=1)
        with pytest.raises(HTTPError):
            self.request(n=99).query_int("n", default=1, hi=10)

    def test_float_and_required(self):
        assert self.request(x="2.5").query_float("x") == 2.5
        with pytest.raises(HTTPError):
            self.request().query_float("x")
        with pytest.raises(HTTPError):
            self.request(x="nope").query_float("x")


class TestResponse:
    def test_render_includes_length_and_type(self):
        raw = Response.json_({"a": 1}).render()
        assert raw.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Type: application/json" in raw
        assert raw.endswith(b'{"a": 1}')

    def test_head_only_omits_body(self):
        response = Response.text("hello")
        head = response.render(head_only=True)
        assert b"Content-Length: 5" in head
        assert not head.endswith(b"hello")

    def test_304_has_no_content_type(self):
        raw = Response(304, b"", headers=[("ETag", '"x"')]).render()
        assert b"304 Not Modified" in raw
        assert b"Content-Type" not in raw


class TestRouter:
    def handler(self, name):
        async def _h(request, **params):
            return name, params

        return _h

    def test_static_and_captures(self):
        router = Router()
        router.get("/datasets", self.handler("datasets"))
        router.get("/t/{ds}/{m}/{level}/{tx}/{ty}", self.handler("tile"))
        handler, params = router.match("GET", "/t/toy/kcore/0/1/2")
        assert params == {
            "ds": "toy", "m": "kcore", "level": "0", "tx": "1", "ty": "2",
        }
        handler, params = router.match("GET", "/datasets")
        assert params == {}

    def test_head_maps_to_get(self):
        router = Router()
        router.get("/x", self.handler("x"))
        handler, _ = router.match("HEAD", "/x")
        assert handler is not None

    def test_404_and_405(self):
        router = Router()
        router.get("/only", self.handler("only"))
        with pytest.raises(HTTPError) as exc:
            router.match("GET", "/missing")
        assert exc.value.status == 404
        with pytest.raises(HTTPError) as exc:
            router.match("PUT", "/only")
        assert exc.value.status == 405
