"""Shared fixtures for the terrain server tests: a small two-mountain
graph, an app over it, and a live server on an ephemeral port."""

import http.client
import json

import pytest

from repro.graph import from_edges
from repro.graph.io import write_edge_list
from repro.serve import ServeApp, ServerThread, StreamSession
from repro.stream import AddEdge, SetScalar, write_edit_log


def toy_graph():
    """K6 (a 5-core) plus a tail — two peaks at very different heights."""
    return from_edges(
        [(i, j) for i in range(6) for j in range(i + 1, 6)]
        + [(5, 6), (6, 7), (7, 8)]
    )


@pytest.fixture(scope="module")
def edge_list_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("serve") / "toy.txt"
    write_edge_list(toy_graph(), path)
    return str(path)


@pytest.fixture(scope="module")
def edit_log_file(tmp_path_factory, edge_list_file):
    return str(write_edit_log(
        tmp_path_factory.mktemp("serve-log") / "edits.jsonl",
        [
            [SetScalar(8, 4.0)],
            [AddEdge(0, 8)],
        ],
        times=[1.0, 2.0],
    ))


@pytest.fixture(scope="module")
def app(edge_list_file, edit_log_file):
    app = ServeApp(tile_size=16, levels=3)
    app.add_dataset("toy", ["kcore", "degree"], edge_list=edge_list_file)
    app.add_stream_session(StreamSession(
        "replay",
        {"kind": "edge_list", "path": edge_list_file},
        "kcore",
        edit_log_file,
        tile_size=16,
        levels=2,
    ))
    return app


@pytest.fixture(scope="module")
def server(app):
    with ServerThread(app) as running:
        yield running


class Client:
    """Tiny convenience wrapper over ``http.client`` for assertions."""

    def __init__(self, port):
        self.port = port

    def get(self, url, headers=None):
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=60)
        try:
            conn.request("GET", url, headers=headers or {})
            response = conn.getresponse()
            body = response.read()
            return response.status, dict(response.getheaders()), body
        finally:
            conn.close()

    def get_json(self, url):
        status, headers, body = self.get(url)
        return status, json.loads(body)


@pytest.fixture(scope="module")
def client(server):
    return Client(server.port)
