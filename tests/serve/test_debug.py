"""The serve debug surfaces: slow-request exemplars, the metrics
snapshot ring, dashboard rendering, and the /dash + /debug/* routes."""

import http.client
import json
import time
import xml.etree.ElementTree as ET

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs import prof as obs_prof
from repro.serve import debug as serve_debug
from repro.serve.debug import (
    MetricsSnapshotRing,
    SlowRequestStore,
    render_dash,
    scalar_snapshot,
    sparkline_svg,
)


def get(port, url):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        conn.request("GET", url)
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


class TestScalarSnapshot:
    def test_flattens_registry_shapes(self):
        registry = obs_metrics.Registry()
        counter = registry.counter("t_hits_total", "hits")
        counter.inc()
        counter.inc()
        gauge = registry.gauge("t_level", "level")
        gauge.set(7.0)
        histogram = registry.histogram(
            "t_seconds", "latency", buckets=(0.1, 1.0)
        )
        histogram.observe(0.05)
        histogram.observe(0.5)
        snapshot = scalar_snapshot(registry)
        assert snapshot["t_hits_total"] == 2.0
        assert snapshot["t_level"] == 7.0
        assert snapshot["t_seconds_count"] == 2.0
        assert snapshot["t_seconds_sum"] == pytest.approx(0.55)

    def test_labelled_series_sum_over_children(self):
        registry = obs_metrics.Registry()
        counter = registry.counter(
            "t_status_total", "by status", labelnames=("status",)
        )
        counter.inc(status="200")
        counter.inc(status="200")
        counter.inc(status="404")
        assert scalar_snapshot(registry)["t_status_total"] == 3.0


class TestMetricsSnapshotRing:
    def test_sample_and_series(self):
        ring = MetricsSnapshotRing(capacity=4, interval_s=999)
        ring.sample()
        ring.sample()
        assert len(ring) == 2
        names = ring.names()
        assert "repro_serve_uptime_seconds" in names
        series = ring.series(names[0])
        assert len(series) == 2
        assert series[0][0] <= series[1][0]

    def test_ring_is_bounded(self):
        ring = MetricsSnapshotRing(capacity=3, interval_s=999)
        for __ in range(10):
            ring.sample()
        assert len(ring) == 3

    def test_background_sampler_start_stop(self):
        ring = MetricsSnapshotRing(capacity=16, interval_s=0.02)
        ring.start()
        try:
            deadline = time.time() + 5.0
            while len(ring) < 2 and time.time() < deadline:
                time.sleep(0.02)
        finally:
            ring.stop()
        assert len(ring) >= 2
        assert ring._thread is None  # stopped cleanly, restartable


class TestSlowRequestStore:
    def _observe(self, store, dur_s, **kwargs):
        defaults = dict(
            path="/t/x", request_id="r1", status=200,
            t0_wall=time.time() - dur_s, dur_s=dur_s,
        )
        defaults.update(kwargs)
        return store.observe(**defaults)

    def test_fast_requests_are_not_captured(self):
        store = SlowRequestStore(threshold_s=0.5)
        assert self._observe(store, 0.1) is None
        assert store.observed == 1 and store.captured == 0

    def test_slow_request_capture_shape(self):
        store = SlowRequestStore(threshold_s=0.1)
        exemplar = self._observe(store, 0.5)
        assert exemplar is not None
        assert exemplar["dur_ms"] == pytest.approx(500.0)
        assert exemplar["waterfall"] == []
        assert exemplar["profile"] is None
        assert store.snapshot() == [exemplar]

    def test_waterfall_filters_to_request_window(self):
        store = SlowRequestStore(threshold_s=0.1)
        t0 = 1000.0
        spans = [
            # inside the window
            {"name": "stage.tree", "ts_us": 1000.2e6, "dur_us": 100e3,
             "id": "a", "parent": None},
            # long before it
            {"name": "old", "ts_us": 900.0e6, "dur_us": 50e3,
             "id": "b", "parent": None},
        ]
        exemplar = store.observe(
            path="/x", request_id="r", status=200,
            t0_wall=t0, dur_s=1.0, span_records=spans,
        )
        names = [row["name"] for row in exemplar["waterfall"]]
        assert names == ["stage.tree"]
        row = exemplar["waterfall"][0]
        assert row["offset_ms"] == pytest.approx(200.0)
        assert row["dur_ms"] == pytest.approx(100.0)

    def test_profile_slice_from_continuous_profiler(self):
        profiler = obs_prof.ContinuousProfiler(hz=100, capacity=256)
        profiler.start()
        try:
            t0 = time.time()
            deadline = time.perf_counter() + 0.3
            while time.perf_counter() < deadline:
                sum(i * i for i in range(200))
            dur = time.time() - t0
        finally:
            profiler.stop()
        store = SlowRequestStore(threshold_s=0.1)
        exemplar = store.observe(
            path="/x", request_id="r", status=200,
            t0_wall=t0, dur_s=dur, profiler=profiler,
        )
        assert exemplar["profile"]["samples"] > 0
        assert exemplar["profile"]["top"]

    def test_capacity_bound(self):
        store = SlowRequestStore(capacity=2, threshold_s=0.0)
        for i in range(5):
            self._observe(store, 1.0, request_id=f"r{i}")
        assert len(store) == 2
        assert [e["request_id"] for e in store.snapshot()] == ["r4", "r3"]


class TestRenderDash:
    def test_self_contained_html(self):
        ring = MetricsSnapshotRing(capacity=8, interval_s=999)
        ring.sample()
        ring.sample()
        store = SlowRequestStore(threshold_s=0.0)
        store.observe(
            path="/t/toy/kcore/0/0/0", request_id="r", status=200,
            t0_wall=time.time(), dur_s=0.8,
        )
        page = render_dash(
            ring=ring, slow=store, uptime_s=12.0,
            span_rollup={"stage.tree": {
                "count": 3, "p50_ms": 1.0, "p95_ms": 2.0,
                "max_ms": 2.5, "total_ms": 4.0,
            }},
        )
        assert page.startswith("<!DOCTYPE html>")
        assert "<script" not in page and "src=" not in page
        assert "<svg" in page
        assert "/t/toy/kcore/0/0/0" in page
        assert "stage.tree" in page
        assert "/debug/prof" in page and "/debug/slow" in page

    def test_sparkline_rate_mode(self):
        # A counter ramping 0,10,20 at 1s spacing is a flat 10/s rate.
        svg = sparkline_svg(
            [(0.0, 0.0), (1.0, 10.0), (2.0, 20.0)], as_rate=True
        )
        assert "10" in svg
        assert ET.fromstring(svg).tag.endswith("svg")

    def test_sparkline_empty_series(self):
        assert "no data" in sparkline_svg([])


class TestDebugRoutes:
    def test_dash_route(self, server):
        get(server.port, "/t/toy/kcore/0/0/0")
        status, headers, body = get(server.port, "/dash")
        assert status == 200
        assert headers["Content-Type"].startswith("text/html")
        page = body.decode()
        assert "repro dashboard" in page and "<svg" in page

    def test_debug_prof_svg(self, server):
        status, headers, body = get(server.port, "/debug/prof?seconds=1")
        assert status == 200
        assert headers["Content-Type"].startswith("image/svg")
        assert ET.fromstring(body.decode()).tag.endswith("svg")

    def test_debug_prof_collapsed(self, server):
        status, headers, body = get(
            server.port, "/debug/prof?seconds=1&format=collapsed"
        )
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")

    def test_debug_prof_rejects_bad_format(self, server):
        status, __, __ = get(server.port, "/debug/prof?format=exe")
        assert status == 400

    def test_debug_prof_rejects_out_of_range_seconds(self, server):
        # seconds is bounded to [1, 30]: a 0s or 10-minute profile
        # request is a caller bug, not something to silently clamp.
        status, __, __ = get(server.port, "/debug/prof?seconds=0")
        assert status == 400
        status, __, __ = get(server.port, "/debug/prof?seconds=600")
        assert status == 400

    def test_debug_slow_route(self, server):
        status, __, body = get(server.port, "/debug/slow")
        assert status == 200
        payload = json.loads(body)
        assert {"threshold_s", "observed", "captured", "exemplars"} <= set(
            payload
        )

    def test_index_lists_debug_endpoints(self, server):
        __, __, body = get(server.port, "/")
        endpoints = json.loads(body)["endpoints"]
        assert "/dash" in endpoints
        assert any(e.startswith("/debug/prof") for e in endpoints)
        assert "/debug/slow" in endpoints
